// Active learning: confidence ranking surfaces unfamiliar formats, and the
// select -> label -> adapt loop fixes them with few labels.
#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "whois/active_learning.h"

namespace whoiscrf::whois {
namespace {

class ActiveLearningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 400;
    options.seed = 77;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<LabeledRecord> train;
    for (size_t i = 0; i < 250; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    base_training_ = new std::vector<LabeledRecord>(train);
    parser_ = new WhoisParser(WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete parser_;
    delete base_training_;
  }
  static datagen::CorpusGenerator* generator_;
  static WhoisParser* parser_;
  static std::vector<LabeledRecord>* base_training_;
};

datagen::CorpusGenerator* ActiveLearningTest::generator_ = nullptr;
WhoisParser* ActiveLearningTest::parser_ = nullptr;
std::vector<LabeledRecord>* ActiveLearningTest::base_training_ = nullptr;

TEST_F(ActiveLearningTest, UnfamiliarFormatScoresLowest) {
  // Pool: familiar .com records plus one record in an unseen TLD format.
  std::vector<std::string> pool;
  for (size_t i = 300; i < 320; ++i) {
    pool.push_back(generator_->Generate(i).thick.text);
  }
  const auto alien = generator_->GenerateNewTld("coop", 1);
  pool.push_back(alien.thick.text);

  const auto selected = SelectForLabeling(*parser_, pool, 3);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].index, pool.size() - 1)
      << "the coop record should be the least confident";
  EXPECT_LT(selected[0].confidence, selected[1].confidence + 1e-12);
}

TEST_F(ActiveLearningTest, ConfidencesAreSortedAndNonPositive) {
  std::vector<std::string> pool;
  for (size_t i = 320; i < 335; ++i) {
    pool.push_back(generator_->Generate(i).thick.text);
  }
  const auto selected = SelectForLabeling(*parser_, pool, pool.size());
  ASSERT_EQ(selected.size(), pool.size());
  for (size_t i = 0; i + 1 < selected.size(); ++i) {
    EXPECT_LE(selected[i].confidence, selected[i + 1].confidence + 1e-12);
  }
  for (const auto& choice : selected) {
    EXPECT_LE(choice.confidence, 1e-9);
  }
}

TEST_F(ActiveLearningTest, SelectHandlesEdgeCases) {
  EXPECT_TRUE(SelectForLabeling(*parser_, {}, 5).empty());
  const auto one = SelectForLabeling(
      *parser_, {generator_->Generate(350).thick.text}, 5);
  EXPECT_EQ(one.size(), 1u);
}

TEST_F(ActiveLearningTest, ActiveAdaptFixesNewFormats) {
  // Pool mixes two unfamiliar TLD formats into familiar .com records.
  std::vector<std::string> pool;
  std::vector<LabeledRecord> pool_truth;
  for (size_t i = 360; i < 380; ++i) {
    const auto domain = generator_->Generate(i);
    pool.push_back(domain.thick.text);
    pool_truth.push_back(domain.thick);
  }
  for (const std::string tld : {"coop", "travel"}) {
    for (uint64_t salt = 1; salt <= 2; ++salt) {
      const auto domain = generator_->GenerateNewTld(tld, salt);
      pool.push_back(domain.thick.text);
      pool_truth.push_back(domain.thick);
    }
  }

  ActiveAdaptOptions options;
  options.batch_size = 2;
  options.max_rounds = 6;
  const auto result = ActiveAdapt(
      *parser_, *base_training_, pool,
      [&](size_t index) { return pool_truth[index]; }, options);

  ASSERT_TRUE(result.parser.has_value());
  EXPECT_GT(result.rounds.size(), 0u);
  EXPECT_GT(result.total_labeled, 0u);
  EXPECT_LE(result.total_labeled,
            options.batch_size * options.max_rounds);

  // The adapted parser now labels fresh records of both formats almost
  // perfectly (allow one residual line on the pathological coop format).
  size_t errors = 0;
  size_t lines = 0;
  for (const std::string tld : {"coop", "travel"}) {
    const auto probe = generator_->GenerateNewTld(tld, 9);
    const auto labels = result.parser->LabelLines(probe.thick.text);
    for (size_t t = 0; t < labels.size(); ++t) {
      ++lines;
      if (labels[t] != probe.thick.labels[t]) ++errors;
    }
  }
  EXPECT_LE(errors, 1u) << "of " << lines << " lines";

  // Worst-pool confidence improves monotonically-ish across rounds.
  if (result.rounds.size() >= 2) {
    EXPECT_GT(result.rounds.back().worst_confidence,
              result.rounds.front().worst_confidence);
  }
}

TEST_F(ActiveLearningTest, ActiveAdaptStopsWhenConfident) {
  // All-familiar pool: the loop should stop without labeling everything.
  std::vector<std::string> pool;
  std::vector<LabeledRecord> pool_truth;
  for (size_t i = 380; i < 395; ++i) {
    const auto domain = generator_->Generate(i);
    pool.push_back(domain.thick.text);
    pool_truth.push_back(domain.thick);
  }
  ActiveAdaptOptions options;
  options.batch_size = 3;
  options.max_rounds = 5;
  options.stop_confidence = -0.5;  // generous: familiar records clear this
  const auto result = ActiveAdapt(
      *parser_, *base_training_, pool,
      [&](size_t index) { return pool_truth[index]; }, options);
  EXPECT_LT(result.total_labeled, pool.size());
}

}  // namespace
}  // namespace whoiscrf::whois
