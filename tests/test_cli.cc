// CLI layer: flag parsing, raw-record splitting, per-command help, and
// command round trips through temporary files.
#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "cli/commands.h"
#include "cli/help.h"
#include "net/crawl_journal.h"
#include "util/checkpoint.h"
#include "util/flags.h"
#include "whois/record_store.h"
#include "whois/stream_checkpoint.h"
#include "whois/training_data.h"

namespace whoiscrf {
namespace {

util::FlagParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return util::FlagParser(static_cast<int>(args.size()), args.data(), 1);
}

TEST(FlagParserTest, SpaceAndEqualsSyntax) {
  auto flags = Parse({"--name", "value", "--count=7", "--flag"});
  EXPECT_EQ(flags.GetString("name"), "value");
  EXPECT_EQ(flags.GetInt("count", 0), 7);
  EXPECT_TRUE(flags.GetBool("flag"));
  EXPECT_TRUE(flags.UnconsumedFlags().empty());
}

TEST(FlagParserTest, DefaultsAndMissing) {
  auto flags = Parse({});
  EXPECT_EQ(flags.GetString("missing", "fallback"), "fallback");
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 0.5), 0.5);
  EXPECT_FALSE(flags.GetBool("missing"));
}

TEST(FlagParserTest, Positional) {
  auto flags = Parse({"file1", "--k", "3", "file2"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file1");
  EXPECT_EQ(flags.positional()[1], "file2");
}

TEST(FlagParserTest, ErrorsOnBadInteger) {
  auto flags = Parse({"--count", "abc"});
  EXPECT_EQ(flags.GetInt("count", 3), 3);
  EXPECT_FALSE(flags.errors().empty());
}

TEST(FlagParserTest, DuplicateFlagIsError) {
  auto flags = Parse({"--a", "1", "--a", "2"});
  EXPECT_FALSE(flags.errors().empty());
}

TEST(FlagParserTest, UnconsumedFlagsReported) {
  auto flags = Parse({"--used", "1", "--unused", "2"});
  flags.GetInt("used", 0);
  const auto unconsumed = flags.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "--unused");
}

TEST(FlagParserTest, BooleanFalseValues) {
  auto flags = Parse({"--a=false", "--b=0", "--c=yes"});
  EXPECT_FALSE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b"));
  EXPECT_TRUE(flags.GetBool("c"));
}

TEST(ReadRawRecordsTest, SplitsOnSeparatorLines) {
  const std::string path = ::testing::TempDir() + "/raw_records.txt";
  {
    std::ofstream os(path);
    os << "Domain Name: A.COM\nRegistrar: X\n%%\n"
       << "Domain Name: B.COM\n%%\n";
  }
  const auto records = cli::ReadRawRecords(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_NE(records[0].find("A.COM"), std::string::npos);
  EXPECT_NE(records[1].find("B.COM"), std::string::npos);
  EXPECT_EQ(records[1].find("A.COM"), std::string::npos);
}

TEST(ReadRawRecordsTest, SingleRecordWithoutSeparator) {
  const std::string path = ::testing::TempDir() + "/raw_single.txt";
  {
    std::ofstream os(path);
    os << "Domain Name: ONLY.COM\n";
  }
  const auto records = cli::ReadRawRecords(path);
  ASSERT_EQ(records.size(), 1u);
}

TEST(ReadRawRecordsTest, MissingFileThrows) {
  EXPECT_THROW(cli::ReadRawRecords("/nonexistent/raw.txt"),
               std::runtime_error);
}

TEST(CliCommandsTest, GenTrainEvalRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string train_path = dir + "/cli_round_train.txt";
  const std::string model_path = dir + "/cli_round.model";

  {
    auto flags = Parse({"--out", train_path.c_str(), "--count", "80",
                        "--seed", "5"});
    ASSERT_EQ(cli::CmdGen(flags), 0);
  }
  {
    auto flags = Parse({"--data", train_path.c_str(), "--model",
                        model_path.c_str(), "--iterations", "80"});
    ASSERT_EQ(cli::CmdTrain(flags), 0);
  }
  {
    // Evaluating the model on its own training data must be perfect.
    auto flags = Parse({"--model", model_path.c_str(), "--data",
                        train_path.c_str()});
    EXPECT_EQ(cli::CmdEval(flags), 0);
  }
}

TEST(CliCommandsTest, GenRequiresOut) {
  auto flags = Parse({"--count", "5"});
  EXPECT_EQ(cli::CmdGen(flags), 2);
}

TEST(CliCommandsTest, TrainRequiresDataAndModel) {
  auto flags = Parse({"--data", "x"});
  EXPECT_EQ(cli::CmdTrain(flags), 2);
}

TEST(RunCommandTest, UnknownCommandReturnsNullopt) {
  auto flags = Parse({});
  EXPECT_FALSE(cli::RunCommand("definitely-not-a-command", flags).has_value());
}

TEST(RunCommandTest, ParseMetricsOutWritesRunReport) {
  const std::string dir = ::testing::TempDir();
  const std::string train_path = dir + "/run_cmd_train.txt";
  const std::string model_path = dir + "/run_cmd.model";
  const std::string raw_path = dir + "/run_cmd_raw.txt";
  const std::string metrics_path = dir + "/run_cmd_metrics.json";

  {
    auto flags = Parse({"--out", train_path.c_str(), "--count", "60",
                        "--seed", "7"});
    ASSERT_EQ(cli::RunCommand("gen", flags), 0);
  }
  {
    auto flags = Parse({"--data", train_path.c_str(), "--model",
                        model_path.c_str(), "--iterations", "60"});
    ASSERT_EQ(cli::RunCommand("train", flags), 0);
  }
  {
    std::ofstream os(raw_path);
    os << "Domain Name: EXAMPLE.COM\nRegistrar: EXAMPLE REGISTRAR LLC\n";
  }
  {
    auto flags = Parse({"--model", model_path.c_str(), "--in",
                        raw_path.c_str(), "--format", "fields",
                        "--metrics-out", metrics_path.c_str()});
    ASSERT_EQ(cli::RunCommand("parse", flags), 0);
    // --metrics-out was consumed by RunCommand, not left for CmdParse.
    EXPECT_TRUE(flags.UnconsumedFlags().empty());
  }

  std::ifstream is(metrics_path);
  ASSERT_TRUE(is.good());
  std::string report((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
  EXPECT_NE(report.find("\"schema\":\"whoiscrf.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"command\":\"parse\""), std::string::npos);
  EXPECT_NE(report.find("\"exit_code\":0"), std::string::npos);
  EXPECT_NE(report.find("\"wall_seconds\":"), std::string::npos);
  // The parse fast path registered and incremented its record counter.
  EXPECT_NE(report.find("\"whoiscrf_parse_records_total\""),
            std::string::npos);
  // Training inside this process also left the optimizer metrics behind.
  EXPECT_NE(report.find("\"whoiscrf_train_iterations_total\""),
            std::string::npos);
}

TEST(CliCommandsTest, GenNewTld) {
  const std::string path = ::testing::TempDir() + "/cli_tld.txt";
  auto flags = Parse({"--out", path.c_str(), "--count", "3", "--new-tld",
                      "coop"});
  ASSERT_EQ(cli::CmdGen(flags), 0);
  std::ifstream is(path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find(".coop"), std::string::npos);
}

TEST(CliCommandsTest, StreamStoreQuarantinesAndResumesIdempotently) {
  const std::string dir = ::testing::TempDir();
  const std::string train_path = dir + "/cli_ckpt_train.txt";
  const std::string model_path = dir + "/cli_ckpt.model";
  const std::string raw_path = dir + "/cli_ckpt_raw.txt";
  const std::string store_prefix = dir + "/cli_ckpt_store";

  {
    auto flags = Parse({"--out", train_path.c_str(), "--count", "60",
                        "--seed", "11"});
    ASSERT_EQ(cli::CmdGen(flags), 0);
  }
  {
    auto flags = Parse({"--data", train_path.c_str(), "--model",
                        model_path.c_str(), "--iterations", "60"});
    ASSERT_EQ(cli::CmdTrain(flags), 0);
  }
  {
    // Three clean records plus one oversized poison record.
    std::ofstream os(raw_path);
    os << "Domain Name: A.COM\nRegistrar: One\n%%\n"
       << "Domain Name: HUGE.COM\n" << std::string(9000, 'x') << "\n%%\n"
       << "Domain Name: B.COM\nRegistrar: Two\n%%\n"
       << "Domain Name: C.COM\nRegistrar: Three\n%%\n";
  }
  {
    auto flags = Parse({"--model", model_path.c_str(), "--in",
                        raw_path.c_str(), "--stream", "--store-out",
                        store_prefix.c_str(), "--max-record-bytes", "4096",
                        "--checkpoint-interval", "2"});
    ASSERT_EQ(cli::CmdParse(flags), 0);
  }
  // The oversized record was quarantined, not fatal: 3 records stored,
  // 1 quarantine entry, checkpoint marked complete.
  {
    const whois::RecordStoreReader store(store_prefix);
    EXPECT_EQ(store.size(), 3u);
    const whois::RecordStoreReader quarantine(store_prefix + "-quarantine");
    ASSERT_EQ(quarantine.size(), 1u);
    uint64_t index = 0;
    std::string reason;
    std::string raw;
    whois::ParseQuarantineEntry(quarantine.Get(0), index, reason, raw);
    EXPECT_EQ(index, 1u);
    EXPECT_NE(raw.find("HUGE.COM"), std::string::npos);
    whois::StreamCheckpoint cp;
    ASSERT_TRUE(whois::LoadStreamCheckpoint(
        whois::StreamCheckpointPath(store_prefix), cp));
    EXPECT_TRUE(cp.complete);
    EXPECT_EQ(cp.consumed, 4u);
  }
  // --resume on a finished run skips everything and leaves the store
  // byte-identical.
  std::string shard_before;
  ASSERT_TRUE(util::ReadFileToString(
      whois::RecordStoreShardPath(store_prefix, 0), shard_before));
  {
    auto flags = Parse({"--model", model_path.c_str(), "--in",
                        raw_path.c_str(), "--stream", "--store-out",
                        store_prefix.c_str(), "--max-record-bytes", "4096",
                        "--checkpoint-interval", "2", "--resume"});
    ASSERT_EQ(cli::CmdParse(flags), 0);
  }
  std::string shard_after;
  ASSERT_TRUE(util::ReadFileToString(
      whois::RecordStoreShardPath(store_prefix, 0), shard_after));
  EXPECT_EQ(shard_before, shard_after);
}

TEST(CliCommandsTest, BeamZeroRejectsWithClearError) {
  // --beam 0 is a footgun (it would silently mean "exact decoding" while
  // looking like a tiny beam); the flag demands K >= 1. Validation runs
  // before the model loads, so no model file is needed.
  {
    auto flags = Parse({"--model", "unused.model", "--beam", "0"});
    EXPECT_EQ(cli::CmdParse(flags), 2);
  }
  {
    auto flags = Parse({"--model", "unused.model", "--beam", "-3"});
    EXPECT_EQ(cli::CmdParse(flags), 2);
  }
}

TEST(CliCommandsTest, CascadeRequiresData) {
  auto flags = Parse({"--model", "unused.model", "--cascade"});
  EXPECT_EQ(cli::CmdParse(flags), 2);
}

TEST(CliCommandsTest, CascadeRejectsBeam) {
  auto flags = Parse({"--model", "unused.model", "--cascade",
                      "--cascade-data", "unused.txt", "--beam", "2"});
  EXPECT_EQ(cli::CmdParse(flags), 2);
}

TEST(RunCommandTest, HelpPrintsFlagTable) {
  for (const char* command :
       {"gen", "train", "parse", "adapt", "eval", "select", "crawl",
        "serve"}) {
    ASSERT_NE(cli::CommandHelp(command), nullptr) << command;
  }
  EXPECT_EQ(cli::CommandHelp("nonsense"), nullptr);

  auto flags = Parse({"--help"});
  ::testing::internal::CaptureStdout();
  const auto code = cli::RunCommand("parse", flags);
  const std::string out = ::testing::internal::GetCapturedStdout();
  ASSERT_TRUE(code.has_value());
  EXPECT_EQ(*code, 0);
  // The flag table names every parse flag, including the cascade knobs
  // and the global telemetry flags.
  for (const char* flag :
       {"--model", "--beam", "--cascade", "--cascade-data", "--shadow-rate",
        "--metrics-out", "--trace-out"}) {
    EXPECT_NE(out.find(flag), std::string::npos) << flag;
  }
}

TEST(CliCommandsTest, CascadeParseRoundTrip) {
  const std::string dir = ::testing::TempDir();
  const std::string train_path = dir + "/cli_cascade_train.txt";
  const std::string model_path = dir + "/cli_cascade.model";
  const std::string raw_path = dir + "/cli_cascade_raw.txt";

  {
    auto flags = Parse({"--out", train_path.c_str(), "--count", "60",
                        "--seed", "21"});
    ASSERT_EQ(cli::CmdGen(flags), 0);
  }
  {
    auto flags = Parse({"--data", train_path.c_str(), "--model",
                        model_path.c_str(), "--iterations", "60"});
    ASSERT_EQ(cli::CmdTrain(flags), 0);
  }
  {
    // Raw input drawn from the same corpus: the cascade's cheap tiers
    // must absorb these without touching the CRF.
    const auto corpus = whois::ReadLabeledRecordsFile(train_path);
    std::ofstream os(raw_path);
    for (size_t i = 0; i < 10; ++i) os << corpus[i].text << "%%\n";
  }
  {
    auto flags = Parse({"--model", model_path.c_str(), "--in",
                        raw_path.c_str(), "--cascade", "--cascade-data",
                        train_path.c_str(), "--shadow-rate", "1.0",
                        "--format", "fields"});
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(cli::CmdParse(flags), 0);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_TRUE(flags.UnconsumedFlags().empty());
    EXPECT_NE(out.find("domain:"), std::string::npos);
  }
  {
    // The streaming path takes the same flags.
    auto flags = Parse({"--model", model_path.c_str(), "--in",
                        raw_path.c_str(), "--stream", "--cascade",
                        "--cascade-data", train_path.c_str(), "--format",
                        "fields"});
    ::testing::internal::CaptureStdout();
    ASSERT_EQ(cli::CmdParse(flags), 0);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_TRUE(flags.UnconsumedFlags().empty());
    EXPECT_NE(out.find("domain:"), std::string::npos);
  }
}

TEST(CliCommandsTest, CrawlJournalResumeSkipsCompletedDomains) {
  const std::string journal_path =
      ::testing::TempDir() + "/cli_crawl.journal";
  std::remove(journal_path.c_str());
  {
    auto flags = Parse({"--domains", "25", "--seed", "3", "--journal",
                        journal_path.c_str()});
    ASSERT_EQ(cli::CmdCrawl(flags), 0);
  }
  const net::CrawlJournal::Replay replay =
      net::CrawlJournal::Load(journal_path);
  EXPECT_EQ(replay.domains.size(), 25u);

  // The resumed run skips every journaled domain and appends nothing new.
  {
    auto flags = Parse({"--domains", "25", "--seed", "3", "--journal",
                        journal_path.c_str(), "--resume"});
    ASSERT_EQ(cli::CmdCrawl(flags), 0);
  }
  const net::CrawlJournal::Replay after =
      net::CrawlJournal::Load(journal_path);
  EXPECT_EQ(after.domains.size(), 25u);
  std::remove(journal_path.c_str());
}

TEST(CliCommandsTest, ScaleRunRequiresOut) {
  auto flags = Parse({"--smoke"});
  EXPECT_EQ(cli::CmdScaleRun(flags), 2);
}

TEST(CliCommandsTest, ScaleRunRejectsBadShadowRate) {
  auto flags = Parse({"--smoke", "--out", "/tmp/x", "--cascade",
                      "--shadow-rate", "1.5"});
  EXPECT_EQ(cli::CmdScaleRun(flags), 2);
}

TEST(CliCommandsTest, ScaleRunSmokeStreamsChecksAndResumes) {
  const std::string dir = ::testing::TempDir();
  const std::string prefix = dir + "/cli_scale_run";
  const std::string bench_path = dir + "/cli_scale_bench.json";
  const std::string tables_path = dir + "/cli_scale_tables.txt";

  const auto read_file = [](const std::string& path) {
    std::ifstream is(path);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return text;
  };
  const auto run_args = [&](bool resume) {
    std::vector<const char*> args = {
        "--smoke",       "--count",       "300",
        "--train-count", "100",           "--checkpoint-interval",
        "64",            "--self-check",  "150",
        "--out",         prefix.c_str(),  "--bench-out",
        bench_path.c_str(), "--tables-out", tables_path.c_str()};
    if (resume) args.push_back("--resume");
    return args;
  };

  {
    auto flags = Parse(run_args(false));
    ASSERT_EQ(cli::CmdScaleRun(flags), 0);
    EXPECT_TRUE(flags.UnconsumedFlags().empty());
  }
  // The §6 tables and the floor-gated bench artifact both materialized,
  // and the self-check confirmed streaming == in-memory aggregation.
  const std::string tables = read_file(tables_path);
  EXPECT_NE(tables.find("creation-year histogram"), std::string::npos);
  EXPECT_NE(read_file(bench_path).find("\"checksums_match\": true"),
            std::string::npos);

  const whois::StreamCheckpoint cp = whois::ParseStreamCheckpoint(
      read_file(whois::StreamCheckpointPath(prefix)));
  EXPECT_TRUE(cp.complete);
  EXPECT_EQ(cp.consumed, 300u);
  EXPECT_FALSE(cp.aux.empty());  // the serialized survey accumulator

  // Resuming the finished run is an idempotent no-op with identical
  // tables.
  {
    auto flags = Parse(run_args(true));
    ASSERT_EQ(cli::CmdScaleRun(flags), 0);
  }
  EXPECT_EQ(read_file(tables_path), tables);

  for (size_t s = 0; s < 8; ++s) {
    std::remove(whois::RecordStoreShardPath(prefix, s).c_str());
    std::remove(
        whois::RecordStoreShardPath(prefix + "-quarantine", s).c_str());
  }
  std::remove(whois::StreamCheckpointPath(prefix).c_str());
  std::remove(bench_path.c_str());
  std::remove(tables_path.c_str());
}

}  // namespace
}  // namespace whoiscrf
