// Network substrate: rate limiter semantics, in-proc crawling with thin ->
// thick referral resolution, rate-limit inference, retry behavior, and the
// real TCP loopback path.
#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "net/tcp.h"
#include "net/whois_server.h"

namespace whoiscrf::net {
namespace {

TEST(RateLimiterTest, AllowsUnderLimit) {
  RateLimiter limiter({.max_queries = 3, .window_ms = 1000, .penalty_ms = 5000});
  EXPECT_TRUE(limiter.Allow("a", 0));
  EXPECT_TRUE(limiter.Allow("a", 10));
  EXPECT_TRUE(limiter.Allow("a", 20));
  EXPECT_FALSE(limiter.Allow("a", 30));  // 4th within the window
  EXPECT_TRUE(limiter.InPenalty("a", 31));
}

TEST(RateLimiterTest, WindowSlides) {
  RateLimiter limiter({.max_queries = 2, .window_ms = 100, .penalty_ms = 50});
  EXPECT_TRUE(limiter.Allow("a", 0));
  EXPECT_TRUE(limiter.Allow("a", 10));
  // After the window passes, the budget refreshes.
  EXPECT_TRUE(limiter.Allow("a", 200));
}

TEST(RateLimiterTest, PenaltyExtendsWhileHammering) {
  RateLimiter limiter({.max_queries = 1, .window_ms = 100, .penalty_ms = 100});
  EXPECT_TRUE(limiter.Allow("a", 0));
  EXPECT_FALSE(limiter.Allow("a", 10));   // trip: penalty until 110
  EXPECT_FALSE(limiter.Allow("a", 100));  // still in penalty; extends to 200
  EXPECT_FALSE(limiter.Allow("a", 150));  // extended again
  EXPECT_TRUE(limiter.Allow("a", 500));   // finally backed off
}

TEST(RateLimiterTest, SourcesAreIndependent) {
  RateLimiter limiter({.max_queries = 1, .window_ms = 1000, .penalty_ms = 1000});
  EXPECT_TRUE(limiter.Allow("a", 0));
  EXPECT_TRUE(limiter.Allow("b", 0));
  EXPECT_FALSE(limiter.Allow("a", 1));
  EXPECT_FALSE(limiter.Allow("b", 1));
}

TEST(RecordStoreTest, CaseInsensitiveLookup) {
  RecordStore store;
  store.Add("Example.COM", "body");
  EXPECT_NE(store.Find("example.com"), nullptr);
  EXPECT_EQ(store.Find("other.com"), nullptr);
}

TEST(RegistrarHandlerTest, ServesAndLimits) {
  auto store = std::make_shared<RecordStore>();
  store->Add("x.com", "RECORD BODY\n");
  ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 2, .window_ms = 1000,
                         .penalty_ms = 1000};
  behavior.limit_banner = "%% limit exceeded\n";
  RegistrarHandler handler(store, behavior);
  EXPECT_EQ(handler.HandleQuery("x.com", "ip1", 0), "RECORD BODY\n");
  EXPECT_EQ(handler.HandleQuery("nope.com", "ip1", 1), "No match for domain.\n");
  EXPECT_EQ(handler.HandleQuery("x.com", "ip1", 2), "%% limit exceeded\n");
  EXPECT_EQ(handler.queries_served(), 2u);
  EXPECT_EQ(handler.queries_limited(), 1u);
}

TEST(CrawlerTest, ExtractWhoisServer) {
  EXPECT_EQ(Crawler::ExtractWhoisServer(
                "   Domain Name: X.COM\n   Whois Server: whois.godaddy.com\n"),
            "whois.godaddy.com");
  EXPECT_EQ(Crawler::ExtractWhoisServer("no referral here\n"), "");
}

class SimulatedCrawlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions corpus_options;
    corpus_options.size = 60;
    corpus_options.seed = 77;
    generator_ = std::make_unique<datagen::CorpusGenerator>(corpus_options);
    SimulationOptions options;
    options.num_domains = 60;
    options.missing_fraction = 0.1;
    sim_ = BuildSimulatedInternet(*generator_, options);
  }
  std::unique_ptr<datagen::CorpusGenerator> generator_;
  SimulatedInternet sim_;
  SimClock clock_;
};

TEST_F(SimulatedCrawlTest, TwoStepCrawlRetrievesThickRecords) {
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(*sim_.network, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);

  size_t ok = 0;
  size_t no_match = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) {
      ++ok;
      auto it = sim_.truth.find(result.domain);
      ASSERT_NE(it, sim_.truth.end());
      EXPECT_EQ(result.thick, it->second.thick.text);
      EXPECT_EQ(result.registrar_server, it->second.facts.whois_server);
    } else if (result.status == CrawlResult::Status::kNoMatch) {
      ++no_match;
    }
  }
  EXPECT_EQ(ok, sim_.truth.size());
  EXPECT_EQ(no_match, sim_.missing_domains.size());
}

TEST_F(SimulatedCrawlTest, InfersRateLimitsAndStillFinishes) {
  // Tight limits force the crawler to trip, infer, and back off.
  SimulationOptions tight;
  tight.num_domains = 60;
  tight.missing_fraction = 0.0;
  tight.registry_policy = {.max_queries = 5, .window_ms = 60'000,
                           .penalty_ms = 60'000};
  tight.registrar_policy = {.max_queries = 3, .window_ms = 60'000,
                            .penalty_ms = 60'000};
  auto sim = BuildSimulatedInternet(*generator_, tight);

  CrawlerOptions options;
  options.registry_server = sim.registry_server;
  Crawler crawler(*sim.network, clock_, options);
  const auto results = crawler.CrawlAll(sim.zone_domains);

  size_t ok = 0;
  for (const auto& r : results) {
    if (r.status == CrawlResult::Status::kOk) ++ok;
  }
  // Despite aggressive limits the crawler eventually gets everything by
  // waiting out windows (virtual time makes this instant in the test).
  EXPECT_GT(ok, sim.zone_domains.size() * 8 / 10);
  EXPECT_GT(crawler.stats().limit_hits, 0u);
  EXPECT_FALSE(crawler.stats().inferred_limits.empty());
  // Inferred limits are in the right ballpark (not wildly above truth).
  for (const auto& [server, limit] : crawler.stats().inferred_limits) {
    EXPECT_LE(limit, 40u) << server;
  }
}

TEST_F(SimulatedCrawlTest, UnreachableRegistryFailsGracefully) {
  CrawlerOptions options;
  options.registry_server = "whois.nonexistent.example";
  Crawler crawler(*sim_.network, clock_, options);
  const auto result = crawler.CrawlDomain("whatever.com");
  EXPECT_EQ(result.status, CrawlResult::Status::kFailed);
  EXPECT_EQ(crawler.stats().failed, 1u);
}

TEST(TcpTransportTest, RealSocketsRoundTrip) {
  auto store = std::make_shared<RecordStore>();
  store->Add("tcp-test.com", "Domain Name: TCP-TEST.COM\nRegistrar: T\n");
  ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 100, .window_ms = 1000,
                         .penalty_ms = 1000};
  TcpWhoisServer server(std::make_shared<RegistrarHandler>(store, behavior));
  ASSERT_GT(server.port(), 0);

  TcpNetwork network;
  network.Register("whois.tcp-test.example", server.port());
  const QueryResult ok =
      network.Query("whois.tcp-test.example", "tcp-test.com", "127.0.0.1", 0);
  EXPECT_TRUE(ok.connected);
  EXPECT_NE(ok.body.find("TCP-TEST.COM"), std::string::npos);

  const QueryResult miss =
      network.Query("whois.tcp-test.example", "missing.com", "127.0.0.1", 0);
  EXPECT_TRUE(miss.connected);
  EXPECT_NE(miss.body.find("No match"), std::string::npos);

  const QueryResult unknown_host =
      network.Query("whois.unknown.example", "x.com", "127.0.0.1", 0);
  EXPECT_FALSE(unknown_host.connected);
  server.Stop();
}

TEST(TcpTransportTest, CrawlerWorksOverTcp) {
  // End-to-end: thin registry + one registrar, both on real loopback
  // sockets, crawled with the same Crawler used in simulation.
  auto registry_store = std::make_shared<RecordStore>();
  auto registrar_store = std::make_shared<RecordStore>();
  registrar_store->Add("end2end.com",
                       "Domain Name: END2END.COM\nRegistrant Name: E2E\n");
  ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 100, .window_ms = 1000,
                         .penalty_ms = 1000};
  TcpWhoisServer registrar_server(
      std::make_shared<RegistrarHandler>(registrar_store, behavior));

  registry_store->Add(
      "end2end.com",
      "   Domain Name: END2END.COM\n   Whois Server: whois.registrar.test\n");
  TcpWhoisServer registry_server(
      std::make_shared<RegistryHandler>(registry_store, behavior));

  TcpNetwork network;
  network.Register("whois.registry.test", registry_server.port());
  network.Register("whois.registrar.test", registrar_server.port());

  RealClock clock;
  CrawlerOptions options;
  options.registry_server = "whois.registry.test";
  Crawler crawler(network, clock, options);
  const CrawlResult result = crawler.CrawlDomain("end2end.com");
  EXPECT_EQ(result.status, CrawlResult::Status::kOk);
  EXPECT_NE(result.thick.find("Registrant Name: E2E"), std::string::npos);
}

}  // namespace
}  // namespace whoiscrf::net
