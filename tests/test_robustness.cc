// Robustness: the trained parser and the text pipeline must survive
// arbitrary, hostile, or malformed input without crashing — WHOIS servers
// return garbage in the wild (truncation, binary noise, absurd line
// lengths), and a production parser sees all of it.
#include <string>

#include <gtest/gtest.h>

#include "baselines/rule_parser.h"
#include "baselines/template_parser.h"
#include "crf/tagger.h"
#include "datagen/corpus_gen.h"
#include "text/line_splitter.h"
#include "util/random.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 150;
    options.seed = 555;
    datagen::CorpusGenerator generator(options);
    std::vector<whois::LabeledRecord> train;
    for (size_t i = 0; i < 150; ++i) {
      train.push_back(generator.Generate(i).thick);
    }
    parser_ = new whois::WhoisParser(whois::WhoisParser::Train(train));
    rules_ = new baselines::RuleBasedParser(
        baselines::RuleBasedParser::Build(train));
    templates_ = new baselines::TemplateBasedParser(
        baselines::TemplateBasedParser::Build(train));
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete rules_;
    delete templates_;
  }

  // Parses with all three parsers; asserts label counts line up and the
  // JSON export is produced. Any crash/throw fails the test.
  static void ParseEverything(const std::string& input) {
    const size_t labeled_lines = text::SplitRecord(input).size();
    const whois::ParsedWhois parsed = parser_->Parse(input);
    EXPECT_EQ(parsed.line_labels.size(), labeled_lines);
    EXPECT_FALSE(whois::ToJson(parsed).empty());
    EXPECT_FALSE(whois::ToRdapJson(parsed).empty());
    EXPECT_EQ(rules_->LabelLines(input).size(), labeled_lines);
    (void)templates_->Parse(input);
  }

  static whois::WhoisParser* parser_;
  static baselines::RuleBasedParser* rules_;
  static baselines::TemplateBasedParser* templates_;
};

whois::WhoisParser* RobustnessTest::parser_ = nullptr;
baselines::RuleBasedParser* RobustnessTest::rules_ = nullptr;
baselines::TemplateBasedParser* RobustnessTest::templates_ = nullptr;

TEST_F(RobustnessTest, EmptyAndWhitespaceOnly) {
  ParseEverything("");
  ParseEverything("\n\n\n");
  ParseEverything("   \t  \n \r\n");
}

TEST_F(RobustnessTest, SeparatorEdgeCases) {
  ParseEverything(":\n::\n:::value\n=\n[]\n[x]\n...\n......:\n");
  ParseEverything("a:b:c:d:e\nkey==value\n[unclosed bracket\n");
}

TEST_F(RobustnessTest, BinaryGarbage) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::string noise;
    const int length = static_cast<int>(rng.UniformInt(1, 2000));
    for (int i = 0; i < length; ++i) {
      // Any byte except NUL (WHOIS bodies are C-string-ish in practice).
      char c = static_cast<char>(rng.UniformInt(1, 255));
      noise.push_back(c);
    }
    ParseEverything(noise);
  }
}

TEST_F(RobustnessTest, PathologicallyLongLines) {
  std::string long_line(100'000, 'a');
  ParseEverything("Registrant Name: " + long_line + "\n");
  std::string many_words;
  for (int i = 0; i < 5'000; ++i) many_words += "word" + std::to_string(i) + " ";
  ParseEverything(many_words + "\n");
}

TEST_F(RobustnessTest, ManyLines) {
  std::string record;
  for (int i = 0; i < 3'000; ++i) {
    record += "Field" + std::to_string(i % 7) + ": value\n";
  }
  ParseEverything(record);
}

TEST_F(RobustnessTest, TruncatedRealRecords) {
  datagen::CorpusOptions options;
  options.size = 10;
  options.seed = 556;
  datagen::CorpusGenerator generator(options);
  for (size_t i = 0; i < 10; ++i) {
    const std::string full = generator.Generate(i).thick.text;
    // Cut at every eighth of the record, mid-line or not.
    for (size_t num = 1; num < 8; ++num) {
      ParseEverything(full.substr(0, full.size() * num / 8));
    }
  }
}

TEST_F(RobustnessTest, MixedLineEndingsAndUnicode) {
  ParseEverything("Domain Name: X.COM\r\nRegistrant Name: Jörg Müller\rEmail: j@x.de\n");
  ParseEverything("Registrant Name: \xE5\xBC\xA0\xE4\xBC\x9F\n");  // UTF-8 CJK
}

TEST_F(RobustnessTest, PosteriorDecodingAgreesOnConfidentInput) {
  // On clean, in-distribution records posterior decoding and Viterbi agree
  // almost everywhere (they only differ on genuinely ambiguous lines).
  datagen::CorpusOptions options;
  options.size = 30;
  options.seed = 557;
  datagen::CorpusGenerator generator(options);
  const text::Tokenizer tokenizer;
  const crf::Tagger tagger(parser_->level1_model());
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 0; i < 30; ++i) {
    const auto record = generator.Generate(i).thick;
    std::vector<text::LineAttributes> attrs;
    for (const auto& line : text::SplitRecord(record.text)) {
      attrs.push_back(tokenizer.Extract(line));
    }
    const auto viterbi = tagger.Tag(attrs);
    const auto posterior = tagger.TagPosterior(attrs);
    ASSERT_EQ(viterbi.size(), posterior.labels.size());
    for (size_t t = 0; t < viterbi.size(); ++t) {
      ++total;
      if (viterbi[t] == posterior.labels[t]) ++agree;
    }
    // Posterior confidences are valid probabilities.
    for (double c : posterior.confidences) {
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c, 1.0 + 1e-9);
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.99);
}

}  // namespace
}  // namespace whoiscrf
