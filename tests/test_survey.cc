// Survey layer: privacy detection, aggregations, row normalization, and
// the streaming SurveyAccumulator's bit-identity with the in-memory path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "datagen/temporal.h"
#include "survey/accumulator.h"
#include "survey/aggregates.h"
#include "survey/build.h"
#include "survey/database.h"
#include "survey/normalize.h"
#include "survey/scale_run.h"
#include "whois/record_store.h"
#include "whois/stream_pipeline.h"

namespace whoiscrf::survey {
namespace {

SurveyDatabase MakeDb() {
  SurveyDatabase db;
  auto add = [&](std::string registrar, int year, std::string cc,
                 bool privacy, std::string service, bool dbl,
                 std::string org = "") {
    DomainRow row;
    row.domain = "d" + std::to_string(db.size()) + ".com";
    row.registrar = std::move(registrar);
    row.created_year = year;
    row.country_code = std::move(cc);
    row.privacy_protected = privacy;
    row.privacy_service = std::move(service);
    row.on_dbl = dbl;
    row.registrant_org = std::move(org);
    db.Add(std::move(row));
  };
  add("GoDaddy", 2014, "US", false, "", false);
  add("GoDaddy", 2014, "US", false, "", true);
  add("GoDaddy", 2014, "US", false, "", false);
  add("GoDaddy", 2013, "CN", false, "", false);
  add("eNom", 2014, "GB", false, "", true);
  add("eNom", 2014, "", false, "", false);          // unknown country
  add("HiChina", 2014, "CN", false, "", false, "Amazon");
  add("GoDaddy", 2014, "", true, "Domains By Proxy", false);
  add("eNom", 2012, "", true, "WhoisGuard", false);
  return db;
}

TEST(AggregatesTest, TopCountriesExcludesPrivacy) {
  const auto result = TopCountries(MakeDb(), 2);
  EXPECT_EQ(result.total, 7u);  // two privacy rows excluded
  ASSERT_GE(result.top.size(), 2u);
  EXPECT_EQ(result.top[0].key, "US");
  EXPECT_EQ(result.top[0].count, 3u);
  EXPECT_EQ(result.top[1].key, "CN");
  EXPECT_EQ(result.unknown_count, 1u);
  EXPECT_NEAR(result.top[0].share, 3.0 / 7.0, 1e-12);
}

TEST(AggregatesTest, TopCountriesYearFilter) {
  const auto result = TopCountries(MakeDb(), 3, 2014);
  EXPECT_EQ(result.total, 6u);
  EXPECT_EQ(result.top[0].key, "US");
}

TEST(AggregatesTest, TopRegistrars) {
  const auto result = TopRegistrars(MakeDb(), 1);
  EXPECT_EQ(result.top[0].key, "GoDaddy");
  EXPECT_EQ(result.top[0].count, 5u);
  EXPECT_EQ(result.other_count, 4u);  // eNom + HiChina rows beyond top-1
}

TEST(AggregatesTest, PrivacyAggregates) {
  const auto registrars = TopPrivacyRegistrars(MakeDb(), 5);
  EXPECT_EQ(registrars.total, 2u);
  const auto services = TopPrivacyServices(MakeDb(), 5);
  ASSERT_EQ(services.top.size(), 2u);
  EXPECT_EQ(services.top[0].count, 1u);
}

TEST(AggregatesTest, DblTables) {
  const auto countries = DblTopCountries(MakeDb(), 5, 2014);
  EXPECT_EQ(countries.total, 2u);
  const auto registrars = DblTopRegistrars(MakeDb(), 5, 2014);
  EXPECT_EQ(registrars.total, 2u);
}

TEST(AggregatesTest, BrandCounts) {
  const auto brands = BrandCounts(MakeDb(), {"Amazon", "Google"});
  ASSERT_EQ(brands.size(), 2u);
  EXPECT_EQ(brands[0].key, "Amazon");
  EXPECT_EQ(brands[0].count, 1u);
  EXPECT_EQ(brands[1].count, 0u);
}

TEST(AggregatesTest, CreationHistogram) {
  const auto hist = CreationHistogram(MakeDb());
  EXPECT_EQ(hist.at(2014), 7u);
  EXPECT_EQ(hist.at(2013), 1u);
  EXPECT_EQ(hist.at(2012), 1u);
}

TEST(AggregatesTest, CountryProportionsByYear) {
  const auto comps = CountryProportionsByYear(MakeDb(), {"US", "CN"}, 2012,
                                              2014);
  ASSERT_EQ(comps.size(), 3u);
  const auto& y2014 = comps.back();
  EXPECT_EQ(y2014.year, 2014);
  EXPECT_EQ(y2014.total, 7u);
  EXPECT_NEAR(y2014.shares.at("US"), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(y2014.shares.at("Private"), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(y2014.shares.at("Unknown"), 1.0 / 7.0, 1e-12);
  // GB is not in the tracked list, so its row lands in "Other".
  EXPECT_NEAR(y2014.shares.at("Other"), 1.0 / 7.0, 1e-12);
}

TEST(AggregatesTest, RegistrarCountryBreakdown) {
  const auto result = RegistrarCountryBreakdown(MakeDb(), "GoDaddy", 2);
  EXPECT_EQ(result.total, 4u);  // privacy row excluded
  EXPECT_EQ(result.top[0].key, "US");
}

TEST(PrivacyDetectionTest, CanonicalServices) {
  std::string service;
  EXPECT_TRUE(DetectPrivacyService("Domains By Proxy, LLC", "", &service));
  EXPECT_EQ(service, "Domains By Proxy");
  EXPECT_TRUE(DetectPrivacyService("", "WhoisGuard Protected", &service));
  EXPECT_EQ(service, "WhoisGuard");
}

TEST(PrivacyDetectionTest, GenericKeywords) {
  std::string service;
  EXPECT_TRUE(
      DetectPrivacyService("Private Registration", "Some Org", &service));
  EXPECT_TRUE(DetectPrivacyService("Identity Shield Inc", "", &service));
  EXPECT_FALSE(DetectPrivacyService("John Smith", "Acme LLC", &service));
}

TEST(RowFromParseTest, NormalizesFields) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrar = "GoDaddy.com, LLC";
  parsed.created = "02-Mar-2011";
  parsed.registrant.name = "John Smith";
  parsed.registrant.country = "United States";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, true);
  EXPECT_EQ(row.registrar, "GoDaddy");
  EXPECT_EQ(row.created_year, 2011);
  EXPECT_EQ(row.country_code, "US");
  EXPECT_TRUE(row.on_dbl);
  EXPECT_FALSE(row.privacy_protected);
}

TEST(RowFromParseTest, PrivacyHidesCountry) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrar = "eNom, Inc.";
  parsed.created = "2014-01-01";
  parsed.registrant.name = "Whois Privacy Protect";
  parsed.registrant.country = "US";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, false);
  EXPECT_TRUE(row.privacy_protected);
  EXPECT_EQ(row.privacy_service, "Whois Privacy Protect");
  EXPECT_TRUE(row.country_code.empty());
}

TEST(RowFromParseTest, CountryCodeAlreadyNormalized) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrant.country = "cn";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, false);
  EXPECT_EQ(row.country_code, "CN");
}

// ---------------------------------------------------------------------------
// SurveyAccumulator: the streaming path must reproduce the SurveyDatabase
// aggregates bit for bit, on bounded state.

void ExpectSameTopK(const TopKResult& a, const TopKResult& b,
                    const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.unknown_count, b.unknown_count);
  EXPECT_EQ(a.other_count, b.other_count);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].key, b.top[i].key);
    EXPECT_EQ(a.top[i].count, b.top[i].count);
    // Exact double equality on purpose: both sides must divide the same
    // integers in the same order (shared TopKFromCounts), not merely agree
    // to within epsilon.
    EXPECT_EQ(a.top[i].share, b.top[i].share);
  }
}

// Deterministic row soup covering every aggregate dimension: unknown
// registrars/countries/years, privacy rows with and without a named
// service, DBL rows, and tracked brand orgs.
std::vector<DomainRow> SyntheticRows(size_t count) {
  const std::vector<std::string> registrars = {"GoDaddy", "eNom", "HiChina",
                                               "Xinnet",  "Moniker", ""};
  const std::vector<std::string> countries = {"US", "CN", "GB", "JP", ""};
  const std::vector<std::string> services = {"Domains By Proxy",
                                             "WhoisGuard", ""};
  const std::vector<std::string> orgs = {"Amazon", "Google", "Acme LLC", ""};
  std::vector<DomainRow> rows;
  rows.reserve(count);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state](size_t mod) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<size_t>((state >> 33) % mod);
  };
  for (size_t i = 0; i < count; ++i) {
    DomainRow row;
    row.domain = "d" + std::to_string(i) + ".com";
    row.registrar = registrars[next(registrars.size())];
    row.created_year = next(7) == 0 ? 0 : 2009 + static_cast<int>(next(6));
    row.privacy_protected = next(4) == 0;
    if (row.privacy_protected) {
      row.privacy_service = services[next(services.size())];
    } else {
      row.country_code = countries[next(countries.size())];
    }
    row.on_dbl = next(5) == 0;
    row.registrant_org = orgs[next(orgs.size())];
    rows.push_back(std::move(row));
  }
  return rows;
}

void ExpectAccumulatorMatchesDatabase(const SurveyAccumulator& acc,
                                      const SurveyDatabase& db,
                                      const std::vector<std::string>& brands) {
  EXPECT_EQ(acc.records(), db.size());
  ExpectSameTopK(acc.TopCountries(3), TopCountries(db, 3), "countries");
  ExpectSameTopK(acc.TopCountries(3, 2012), TopCountries(db, 3, 2012),
                 "countries 2012");
  ExpectSameTopK(acc.TopRegistrars(4), TopRegistrars(db, 4), "registrars");
  ExpectSameTopK(acc.TopRegistrars(4, 2013), TopRegistrars(db, 4, 2013),
                 "registrars 2013");
  ExpectSameTopK(acc.TopPrivacyRegistrars(4), TopPrivacyRegistrars(db, 4),
                 "privacy registrars");
  ExpectSameTopK(acc.TopPrivacyServices(4), TopPrivacyServices(db, 4),
                 "privacy services");
  ExpectSameTopK(acc.DblTopCountries(3, 2014), DblTopCountries(db, 3, 2014),
                 "dbl countries");
  ExpectSameTopK(acc.DblTopRegistrars(3, 2014), DblTopRegistrars(db, 3, 2014),
                 "dbl registrars");
  EXPECT_EQ(acc.CreationHistogram(), CreationHistogram(db));

  const auto acc_brands = acc.BrandCounts();
  const auto db_brands = BrandCounts(db, brands);
  ASSERT_EQ(acc_brands.size(), db_brands.size());
  for (size_t i = 0; i < acc_brands.size(); ++i) {
    EXPECT_EQ(acc_brands[i].key, db_brands[i].key);
    EXPECT_EQ(acc_brands[i].count, db_brands[i].count);
  }

  const auto acc_comp =
      acc.CountryProportionsByYear({"US", "CN"}, 2009, 2014);
  const auto db_comp =
      CountryProportionsByYear(db, {"US", "CN"}, 2009, 2014);
  ASSERT_EQ(acc_comp.size(), db_comp.size());
  for (size_t i = 0; i < acc_comp.size(); ++i) {
    EXPECT_EQ(acc_comp[i].year, db_comp[i].year);
    EXPECT_EQ(acc_comp[i].total, db_comp[i].total);
    EXPECT_EQ(acc_comp[i].shares, db_comp[i].shares);
  }

  const auto registrars = TopRegistrars(db, 1);
  if (!registrars.top.empty()) {
    const std::string& top = registrars.top[0].key;
    ExpectSameTopK(acc.RegistrarCountryBreakdown(top, 3),
                   RegistrarCountryBreakdown(db, top, 3),
                   "registrar countries");
  }
}

TEST(SurveyAccumulatorTest, MatchesDatabaseAggregates) {
  const std::vector<std::string> brands = {"Amazon", "Google", "Microsoft"};
  SurveyAccumulator acc(brands);
  SurveyDatabase db;
  for (const DomainRow& row : SyntheticRows(600)) {
    acc.Add(row);
    db.Add(row);
  }
  ExpectAccumulatorMatchesDatabase(acc, db, brands);
}

TEST(SurveyAccumulatorTest, StateIsBoundedByKeyCardinality) {
  // SyntheticRows draws from 7 years (0 + 2009..2014), 6 registrars, 5
  // countries, 3 services, and 2 tracked brands. The worst-case state is
  // the full cross product:
  //   years x (1 header + countries + registrars + dbl countries +
  //            dbl registrars)            = 7 * 23 = 161
  //   + privacy registrars + services     = 6 + 3
  //   + registrar country breakdowns      = 6 * (1 + 5) = 36
  //   + brands                            = 2
  constexpr size_t kStateBound = 161 + 6 + 3 + 36 + 2;
  SurveyAccumulator acc({"Amazon", "Google"});
  for (const DomainRow& row : SyntheticRows(500)) acc.Add(row);
  EXPECT_LE(acc.state_entries(), kStateBound);
  // 10x the rows over the same key sets: state stays under the
  // cardinality bound no matter the record count — it is
  // O(years x (registrars + countries)), never O(records).
  for (const DomainRow& row : SyntheticRows(5000)) acc.Add(row);
  EXPECT_LE(acc.state_entries(), kStateBound);
  EXPECT_EQ(acc.records(), 5500u);
}

TEST(SurveyAccumulatorTest, SerializeRoundTripsByteIdentically) {
  SurveyAccumulator acc({"Amazon", "Google"});
  for (const DomainRow& row : SyntheticRows(300)) acc.Add(row);
  const std::string blob = acc.Serialize();
  const SurveyAccumulator restored = SurveyAccumulator::Deserialize(blob);
  EXPECT_EQ(restored.Serialize(), blob);
  EXPECT_EQ(restored.records(), acc.records());
  ExpectSameTopK(restored.TopRegistrars(5), acc.TopRegistrars(5),
                 "restored registrars");
}

TEST(SurveyAccumulatorTest, DeserializeRejectsMalformedState) {
  SurveyAccumulator acc({"Amazon"});
  for (const DomainRow& row : SyntheticRows(50)) acc.Add(row);
  const std::string blob = acc.Serialize();

  EXPECT_THROW(SurveyAccumulator::Deserialize("not.a.header\nend\n"),
               std::runtime_error);
  // Truncation: the end marker is mandatory, so a blob cut anywhere fails.
  EXPECT_THROW(SurveyAccumulator::Deserialize(blob.substr(0, blob.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(SurveyAccumulator::Deserialize(blob + "trailing\n"),
               std::runtime_error);
}

// The satellite check from the scale-run harness: a multi-shard record
// store streamed through the parser feeds both survey paths; every
// aggregate must agree exactly, while the accumulator's state stays far
// below one entry per record.
TEST(SurveyAccumulatorTest, MultiShardStoreStreamMatchesInMemoryPath) {
  constexpr size_t kTrain = 120;
  constexpr size_t kCount = 360;
  datagen::TemporalCorpusOptions corpus_options;
  corpus_options.size = kCount;
  corpus_options.seed = 42;
  const datagen::TemporalCorpusGenerator generator(corpus_options);
  const whois::WhoisParser parser = TrainScaleParser(generator, kTrain);

  const std::string prefix = testing::TempDir() + "whoiscrf_survey_store_" +
                             std::to_string(getpid());
  whois::RecordStoreOptions store_options;
  store_options.records_per_shard = 100;  // force multiple shards
  {
    whois::RecordStoreWriter writer(prefix, store_options);
    for (size_t i = 0; i < kCount; ++i) {
      writer.Append(generator.Generate(i).thick.text);
    }
    writer.Finish();
  }

  const whois::RecordStoreReader store(prefix);
  const whois::StreamPipelineOptions pipeline;
  const SurveyNormalizer normalizer(generator.base().registrars());

  SurveyAccumulator acc;
  {
    whois::StoreRecordSource source(store);
    whois::ParseStream(parser, source, pipeline,
                       [&](uint64_t, const std::string&,
                           const whois::ParsedWhois& parsed) {
                         acc.Add(RowFromParse(parsed.domain_name, parsed,
                                              normalizer, /*on_dbl=*/false));
                       });
  }
  whois::StoreRecordSource source(store);
  const SurveyDatabase db = BuildDatabaseFromStream(
      source, parser, generator.base().registrars(), pipeline);

  ASSERT_GT(store.size(), store_options.records_per_shard);  // multi-shard
  EXPECT_EQ(acc.records(), kCount);
  ExpectAccumulatorMatchesDatabase(acc, db, {});
  // Bounded memory: replaying every row a second time doubles the record
  // count but adds zero state — the accumulator holds aggregates keyed by
  // the corpus's (year, registrar, country) cardinality, not rows.
  const size_t entries_after_one_pass = acc.state_entries();
  for (const DomainRow& row : db.rows()) acc.Add(row);
  EXPECT_EQ(acc.records(), 2 * kCount);
  EXPECT_EQ(acc.state_entries(), entries_after_one_pass);

  for (size_t s = 0; s < 8; ++s) {
    std::remove(whois::RecordStoreShardPath(prefix, s).c_str());
  }
}

}  // namespace
}  // namespace whoiscrf::survey
