// Survey layer: privacy detection, aggregations, and row normalization.
#include <gtest/gtest.h>

#include "survey/aggregates.h"
#include "survey/build.h"
#include "survey/database.h"

namespace whoiscrf::survey {
namespace {

SurveyDatabase MakeDb() {
  SurveyDatabase db;
  auto add = [&](std::string registrar, int year, std::string cc,
                 bool privacy, std::string service, bool dbl,
                 std::string org = "") {
    DomainRow row;
    row.domain = "d" + std::to_string(db.size()) + ".com";
    row.registrar = std::move(registrar);
    row.created_year = year;
    row.country_code = std::move(cc);
    row.privacy_protected = privacy;
    row.privacy_service = std::move(service);
    row.on_dbl = dbl;
    row.registrant_org = std::move(org);
    db.Add(std::move(row));
  };
  add("GoDaddy", 2014, "US", false, "", false);
  add("GoDaddy", 2014, "US", false, "", true);
  add("GoDaddy", 2014, "US", false, "", false);
  add("GoDaddy", 2013, "CN", false, "", false);
  add("eNom", 2014, "GB", false, "", true);
  add("eNom", 2014, "", false, "", false);          // unknown country
  add("HiChina", 2014, "CN", false, "", false, "Amazon");
  add("GoDaddy", 2014, "", true, "Domains By Proxy", false);
  add("eNom", 2012, "", true, "WhoisGuard", false);
  return db;
}

TEST(AggregatesTest, TopCountriesExcludesPrivacy) {
  const auto result = TopCountries(MakeDb(), 2);
  EXPECT_EQ(result.total, 7u);  // two privacy rows excluded
  ASSERT_GE(result.top.size(), 2u);
  EXPECT_EQ(result.top[0].key, "US");
  EXPECT_EQ(result.top[0].count, 3u);
  EXPECT_EQ(result.top[1].key, "CN");
  EXPECT_EQ(result.unknown_count, 1u);
  EXPECT_NEAR(result.top[0].share, 3.0 / 7.0, 1e-12);
}

TEST(AggregatesTest, TopCountriesYearFilter) {
  const auto result = TopCountries(MakeDb(), 3, 2014);
  EXPECT_EQ(result.total, 6u);
  EXPECT_EQ(result.top[0].key, "US");
}

TEST(AggregatesTest, TopRegistrars) {
  const auto result = TopRegistrars(MakeDb(), 1);
  EXPECT_EQ(result.top[0].key, "GoDaddy");
  EXPECT_EQ(result.top[0].count, 5u);
  EXPECT_EQ(result.other_count, 4u);  // eNom + HiChina rows beyond top-1
}

TEST(AggregatesTest, PrivacyAggregates) {
  const auto registrars = TopPrivacyRegistrars(MakeDb(), 5);
  EXPECT_EQ(registrars.total, 2u);
  const auto services = TopPrivacyServices(MakeDb(), 5);
  ASSERT_EQ(services.top.size(), 2u);
  EXPECT_EQ(services.top[0].count, 1u);
}

TEST(AggregatesTest, DblTables) {
  const auto countries = DblTopCountries(MakeDb(), 5, 2014);
  EXPECT_EQ(countries.total, 2u);
  const auto registrars = DblTopRegistrars(MakeDb(), 5, 2014);
  EXPECT_EQ(registrars.total, 2u);
}

TEST(AggregatesTest, BrandCounts) {
  const auto brands = BrandCounts(MakeDb(), {"Amazon", "Google"});
  ASSERT_EQ(brands.size(), 2u);
  EXPECT_EQ(brands[0].key, "Amazon");
  EXPECT_EQ(brands[0].count, 1u);
  EXPECT_EQ(brands[1].count, 0u);
}

TEST(AggregatesTest, CreationHistogram) {
  const auto hist = CreationHistogram(MakeDb());
  EXPECT_EQ(hist.at(2014), 7u);
  EXPECT_EQ(hist.at(2013), 1u);
  EXPECT_EQ(hist.at(2012), 1u);
}

TEST(AggregatesTest, CountryProportionsByYear) {
  const auto comps = CountryProportionsByYear(MakeDb(), {"US", "CN"}, 2012,
                                              2014);
  ASSERT_EQ(comps.size(), 3u);
  const auto& y2014 = comps.back();
  EXPECT_EQ(y2014.year, 2014);
  EXPECT_EQ(y2014.total, 7u);
  EXPECT_NEAR(y2014.shares.at("US"), 3.0 / 7.0, 1e-12);
  EXPECT_NEAR(y2014.shares.at("Private"), 1.0 / 7.0, 1e-12);
  EXPECT_NEAR(y2014.shares.at("Unknown"), 1.0 / 7.0, 1e-12);
  // GB is not in the tracked list, so its row lands in "Other".
  EXPECT_NEAR(y2014.shares.at("Other"), 1.0 / 7.0, 1e-12);
}

TEST(AggregatesTest, RegistrarCountryBreakdown) {
  const auto result = RegistrarCountryBreakdown(MakeDb(), "GoDaddy", 2);
  EXPECT_EQ(result.total, 4u);  // privacy row excluded
  EXPECT_EQ(result.top[0].key, "US");
}

TEST(PrivacyDetectionTest, CanonicalServices) {
  std::string service;
  EXPECT_TRUE(DetectPrivacyService("Domains By Proxy, LLC", "", &service));
  EXPECT_EQ(service, "Domains By Proxy");
  EXPECT_TRUE(DetectPrivacyService("", "WhoisGuard Protected", &service));
  EXPECT_EQ(service, "WhoisGuard");
}

TEST(PrivacyDetectionTest, GenericKeywords) {
  std::string service;
  EXPECT_TRUE(
      DetectPrivacyService("Private Registration", "Some Org", &service));
  EXPECT_TRUE(DetectPrivacyService("Identity Shield Inc", "", &service));
  EXPECT_FALSE(DetectPrivacyService("John Smith", "Acme LLC", &service));
}

TEST(RowFromParseTest, NormalizesFields) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrar = "GoDaddy.com, LLC";
  parsed.created = "02-Mar-2011";
  parsed.registrant.name = "John Smith";
  parsed.registrant.country = "United States";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, true);
  EXPECT_EQ(row.registrar, "GoDaddy");
  EXPECT_EQ(row.created_year, 2011);
  EXPECT_EQ(row.country_code, "US");
  EXPECT_TRUE(row.on_dbl);
  EXPECT_FALSE(row.privacy_protected);
}

TEST(RowFromParseTest, PrivacyHidesCountry) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrar = "eNom, Inc.";
  parsed.created = "2014-01-01";
  parsed.registrant.name = "Whois Privacy Protect";
  parsed.registrant.country = "US";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, false);
  EXPECT_TRUE(row.privacy_protected);
  EXPECT_EQ(row.privacy_service, "Whois Privacy Protect");
  EXPECT_TRUE(row.country_code.empty());
}

TEST(RowFromParseTest, CountryCodeAlreadyNormalized) {
  datagen::RegistrarTable registrars;
  whois::ParsedWhois parsed;
  parsed.registrant.country = "cn";
  const DomainRow row = RowFromParse("x.com", parsed, registrars, false);
  EXPECT_EQ(row.country_code, "CN");
}

}  // namespace
}  // namespace whoiscrf::survey
