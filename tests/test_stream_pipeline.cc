// Streaming corpus pipeline: record framing across chunk boundaries,
// bounded-queue backpressure, sharded record store round-trips, and
// ParseStream vs in-memory ParseBatch equivalence (byte-identical output,
// exact input order, every thread count).
//
// Like test_parse_batch.cc, run these in a -DWHOISCRF_TSAN=ON build tree:
// the pipeline's reader/worker/sink handoffs are exactly the kind of code
// ThreadSanitizer exists for.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "survey/build.h"
#include "util/bounded_queue.h"
#include "util/checkpoint.h"
#include "util/byte_scan.h"
#include "util/chunk_reader.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/record_store.h"
#include "whois/record_stream.h"
#include "whois/stream_checkpoint.h"
#include "whois/stream_pipeline.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {
namespace {

// ---------------------------------------------------------------------------
// Record framing

std::vector<std::string> ScanAll(std::string_view text, size_t chunk_bytes) {
  util::MemoryByteSource source(text, chunk_bytes);
  return ReadAllRecords(source);
}

TEST(RecordStreamTest, FramingIsChunkSizeInvariant) {
  const std::string text =
      "Domain Name: A.COM\nRegistrar: One\n%%\n"
      "Domain Name: B.COM\r\nRegistrar: Two\r\n%%\r\n"
      "Domain Name: C.COM\rRegistrar: Three\r%%\n";
  const std::vector<std::string> expected = {
      "Domain Name: A.COM\nRegistrar: One\n",
      "Domain Name: B.COM\nRegistrar: Two\n",
      "Domain Name: C.COM\nRegistrar: Three\n",
  };
  // Chunk size 1 puts a boundary at every byte, so every straddle case —
  // including "\r|\n" — is exercised; larger sizes cover interior fast
  // paths. Swept under every byte-scan tier this build supports: the
  // chunked newline kernels (util/byte_scan.h) must frame identically
  // whether they step one byte, 8 (SWAR), or 16/32 (SIMD) at a time.
  for (const util::scan::Mode mode :
       {util::scan::Mode::kScalar, util::scan::BestSupportedMode()}) {
    util::scan::ForceMode(mode);
    for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                         size_t{64}, size_t{1} << 20}) {
      EXPECT_EQ(ScanAll(text, chunk), expected)
          << "chunk=" << chunk
          << " scan=" << util::scan::ModeName(util::scan::ActiveMode());
    }
  }
  util::scan::ClearForcedMode();
}

TEST(RecordStreamTest, MissingTrailingSeparatorEmitsUnterminatedRecord) {
  const std::string text = "Domain Name: A.COM\n%%\nDomain Name: B.COM\n";
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{1} << 20}) {
    util::MemoryByteSource source(text, chunk);
    RecordStreamReader reader(source);
    StreamedRecord record;
    ASSERT_TRUE(reader.Next(record)) << "chunk=" << chunk;
    EXPECT_EQ(record.text, "Domain Name: A.COM\n");
    EXPECT_TRUE(record.terminated);
    ASSERT_TRUE(reader.Next(record)) << "chunk=" << chunk;
    EXPECT_EQ(record.text, "Domain Name: B.COM\n");
    EXPECT_FALSE(record.terminated);
    EXPECT_EQ(record.index, 1u);
    EXPECT_FALSE(reader.Next(record));
  }
}

TEST(RecordStreamTest, UnterminatedFinalLineKeepsItsBytes) {
  // No newline at all after the last line: the line still belongs to the
  // trailing record.
  const auto records = ScanAll("Domain Name: A.COM\nRegistrar: One", 3);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "Domain Name: A.COM\nRegistrar: One\n");
}

TEST(RecordStreamTest, EmptyBodiesAndTrailingBlanksProduceNoRecords) {
  // Consecutive separators, separators with surrounding whitespace, and
  // trailing blank lines must not produce ghost records.
  EXPECT_TRUE(ScanAll("", 4).empty());
  EXPECT_TRUE(ScanAll("%%\n%%\n  %% \n", 4).empty());
  EXPECT_TRUE(ScanAll("\n\n\n", 4).empty());
  const auto records = ScanAll("%%\nDomain Name: A.COM\n%%\n%%\n\n\n", 4);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "Domain Name: A.COM\n");
}

TEST(RecordStreamTest, FirstLineNumbersArePhysical) {
  const std::string text =
      "Domain Name: A.COM\nRegistrar: One\n%%\nDomain Name: B.COM\n%%\n";
  util::MemoryByteSource source(text, 1 << 20);
  RecordStreamReader reader(source);
  StreamedRecord record;
  ASSERT_TRUE(reader.Next(record));
  EXPECT_EQ(record.first_line, 1u);
  ASSERT_TRUE(reader.Next(record));
  EXPECT_EQ(record.first_line, 4u);
}

TEST(RecordStreamTest, MatchesGeneratedCorpusAtHostileChunkSizes) {
  datagen::CorpusOptions options;
  options.size = 30;
  options.seed = 5;
  const datagen::CorpusGenerator generator(options);
  std::vector<std::string> expected;
  std::string text;
  for (size_t i = 0; i < 30; ++i) {
    expected.push_back(generator.Generate(i).thick.text);
    text += expected.back();
    text += "%%\n";
  }
  for (size_t chunk : {size_t{1}, size_t{13}, size_t{1} << 20}) {
    EXPECT_EQ(ScanAll(text, chunk), expected) << "chunk=" << chunk;
  }
}

// ---------------------------------------------------------------------------
// Bounded queue

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  util::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));

  std::atomic<bool> third_pushed{false};
  double stalled = 0.0;
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3, &stalled));
    third_pushed = true;
  });
  // The producer must stay blocked while the queue is full. (A sleep can
  // only give a false pass here, never a false failure.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(queue.Size(), 2u);

  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GT(stalled, 0.0);
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::optional<int>(3));
}

TEST(BoundedQueueTest, CancelWakesBlockedProducersAndDiscardsItems) {
  util::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_FALSE(queue.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  producer.join();
  EXPECT_EQ(queue.Size(), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_FALSE(queue.Push(3));
}

TEST(BoundedQueueTest, CloseDrainsQueuedItemsThenEndsConsumers) {
  util::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  std::thread consumer([&] {
    EXPECT_EQ(queue.Pop(), std::optional<int>(1));
    EXPECT_EQ(queue.Pop(), std::optional<int>(2));
    EXPECT_EQ(queue.Pop(), std::nullopt);  // blocks until Close()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.Push(3));
}

// ---------------------------------------------------------------------------
// Sharded record store

std::string TempPrefix(const char* tag) {
  return testing::TempDir() + "whoiscrf_" + tag + "_" +
         std::to_string(::getpid());
}

void RemoveStore(const std::string& prefix) {
  for (size_t s = 0;; ++s) {
    const bool had_final =
        std::remove(RecordStoreShardPath(prefix, s).c_str()) == 0;
    const bool had_tmp =
        std::remove((RecordStoreShardPath(prefix, s) + ".tmp").c_str()) == 0;
    if (!had_final && !had_tmp) break;
  }
}

// Removes everything a checkpointed parse can leave behind: the store, its
// quarantine companion, and the checkpoint file.
void RemoveCheckpointedStore(const std::string& prefix) {
  RemoveStore(prefix);
  RemoveStore(prefix + "-quarantine");
  std::remove(StreamCheckpointPath(prefix).c_str());
}

std::string ReadFileBytes(const std::string& path) {
  std::string out;
  EXPECT_TRUE(util::ReadFileToString(path, out)) << path;
  return out;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// Asserts two stores (all shards) are byte-identical on disk.
void ExpectStoresIdentical(const std::string& a, const std::string& b) {
  for (size_t s = 0;; ++s) {
    const std::string path_a = RecordStoreShardPath(a, s);
    const std::string path_b = RecordStoreShardPath(b, s);
    const bool exists_a = FileExists(path_a);
    ASSERT_EQ(exists_a, FileExists(path_b)) << "shard " << s;
    if (!exists_a) break;
    EXPECT_EQ(ReadFileBytes(path_a), ReadFileBytes(path_b)) << "shard " << s;
  }
}

TEST(RecordStoreTest, MultiShardRoundTripWithRandomAccess) {
  const std::string prefix = TempPrefix("store");
  std::vector<std::string> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back("Domain Name: R" + std::to_string(i) +
                      ".COM\nRegistrar: Reg\n");
  }
  {
    RecordStoreOptions options;
    options.records_per_shard = 3;  // force 4 shards for 10 records
    RecordStoreWriter writer(prefix, options);
    for (const auto& r : records) writer.Append(r);
    writer.Finish();
    EXPECT_EQ(writer.record_count(), 10u);
    EXPECT_EQ(writer.shard_count(), 4u);
  }
  const RecordStoreReader reader(prefix);
  EXPECT_EQ(reader.size(), 10u);
  EXPECT_EQ(reader.shard_count(), 4u);
  // Random access, deliberately out of order and crossing shards.
  for (uint64_t i : {9u, 0u, 5u, 2u, 8u, 3u}) {
    EXPECT_EQ(reader.Get(i), records[i]) << "record " << i;
  }
  EXPECT_THROW(reader.Get(10), std::out_of_range);
  // Sequential scan sees every record in order.
  StoreRecordSource source(reader);
  std::string record;
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(source.Next(record)) << i;
    EXPECT_EQ(record, records[i]) << i;
  }
  EXPECT_FALSE(source.Next(record));
  RemoveStore(prefix);
}

TEST(RecordStoreTest, EmptyStoreRoundTrips) {
  const std::string prefix = TempPrefix("store_empty");
  {
    RecordStoreWriter writer(prefix);
    writer.Finish();
  }
  const RecordStoreReader reader(prefix);
  EXPECT_EQ(reader.size(), 0u);
  StoreRecordSource source(reader);
  std::string record;
  EXPECT_FALSE(source.Next(record));
  RemoveStore(prefix);
}

TEST(RecordStoreTest, MissingStoreThrows) {
  EXPECT_THROW(RecordStoreReader(TempPrefix("store_missing")),
               std::runtime_error);
}

TEST(RecordStoreTest, ShardsAreInvisibleUntilSealed) {
  const std::string prefix = TempPrefix("store_atomic");
  RecordStoreOptions options;
  options.records_per_shard = 100;
  {
    RecordStoreWriter writer(prefix, options);
    writer.Append("Domain Name: A.COM\n");
    // Mid-write the shard exists only under its .tmp name, so a reader
    // scanning for `.wrs` files can never observe a torn shard.
    EXPECT_FALSE(FileExists(RecordStoreShardPath(prefix, 0)));
    EXPECT_TRUE(FileExists(RecordStoreShardPath(prefix, 0) + ".tmp"));
    writer.Finish();
    EXPECT_TRUE(FileExists(RecordStoreShardPath(prefix, 0)));
    EXPECT_FALSE(FileExists(RecordStoreShardPath(prefix, 0) + ".tmp"));
  }
  const RecordStoreReader reader(prefix);
  EXPECT_EQ(reader.size(), 1u);
  RemoveStore(prefix);
}

TEST(RecordStoreTest, ResumeFromCursorReproducesUninterruptedStore) {
  std::vector<std::string> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back("Domain Name: R" + std::to_string(i) +
                      ".COM\nRegistrar: Reg\n");
  }
  RecordStoreOptions options;
  options.records_per_shard = 3;

  // Reference: one uninterrupted writer.
  const std::string ref = TempPrefix("store_resume_ref");
  {
    RecordStoreWriter writer(ref, options);
    for (const auto& r : records) writer.Append(r);
    writer.Finish();
  }

  // Interrupted run: append 5 records, sync, capture the cursor, then
  // "crash" — keep appending junk the checkpoint never covered and let
  // the destructor seal whatever it seals.
  const std::string prefix = TempPrefix("store_resume");
  StoreCursor cursor;
  {
    RecordStoreWriter writer(prefix, options);
    for (int i = 0; i < 5; ++i) writer.Append(records[static_cast<size_t>(i)]);
    writer.Sync();
    cursor = writer.cursor();
    writer.Append("JUNK RECORD PAST THE CHECKPOINT\n");
    writer.Append("MORE JUNK\n");
  }
  EXPECT_EQ(cursor.records, 5u);
  EXPECT_EQ(cursor.shard_index, 1u);   // record 5 lives in shard 1
  EXPECT_EQ(cursor.shard_records, 2u);

  // Resume: truncate back to the cursor and append the rest for real.
  {
    RecordStoreWriter writer(prefix, options, cursor);
    EXPECT_EQ(writer.record_count(), 5u);
    for (size_t i = 5; i < records.size(); ++i) writer.Append(records[i]);
    writer.Finish();
  }
  ExpectStoresIdentical(ref, prefix);

  // Resuming at a post-Finish cursor and finishing again is a no-op.
  {
    RecordStoreWriter writer(ref, options);
    for (const auto& r : records) writer.Append(r);
    writer.Finish();
    RecordStoreWriter again(prefix, options, writer.cursor());
    EXPECT_EQ(again.record_count(), 10u);
    again.Finish();
  }
  ExpectStoresIdentical(ref, prefix);

  RemoveStore(ref);
  RemoveStore(prefix);
}

// ---------------------------------------------------------------------------
// Streaming parse pipeline

class StreamPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 200;
    options.seed = 42;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new WhoisParser(WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }

  static std::vector<std::string> CorpusTexts(size_t begin, size_t count) {
    std::vector<std::string> out;
    out.reserve(count);
    for (size_t i = begin; i < begin + count; ++i) {
      out.push_back(generator_->Generate(i).thick.text);
    }
    return out;
  }

  static WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

WhoisParser* StreamPipelineTest::parser_ = nullptr;
datagen::CorpusGenerator* StreamPipelineTest::generator_ = nullptr;

TEST_F(StreamPipelineTest, StreamingMatchesInMemoryBatchByteForByte) {
  const std::vector<std::string> records = CorpusTexts(120, 60);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }

  util::ThreadPool pool(4);
  const std::vector<ParsedWhois> batch = parser_->ParseBatch(records, pool);

  // Tiny chunks, batches, and queues: maximum pressure on the framing and
  // the reorder logic. Output must still be the in-memory batch, byte for
  // byte, in exact input order.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    util::MemoryByteSource bytes(text, 37);
    TextRecordSource source(bytes);
    StreamPipelineOptions options;
    options.threads = threads;
    options.batch_records = 3;
    options.queue_capacity = 2;
    std::vector<std::string> seen_records;
    std::vector<std::string> seen_json;
    std::vector<uint64_t> seen_indices;
    const StreamPipelineStats stats = ParseStream(
        *parser_, source, options,
        [&](uint64_t index, const std::string& record,
            const ParsedWhois& parsed) {
          seen_indices.push_back(index);
          seen_records.push_back(record);
          seen_json.push_back(ToJson(parsed));
        });
    EXPECT_EQ(stats.records, records.size()) << threads << " threads";
    ASSERT_EQ(seen_records.size(), records.size()) << threads << " threads";
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(seen_indices[i], i) << threads << " threads";
      EXPECT_EQ(seen_records[i], records[i]) << threads << " threads";
      EXPECT_EQ(seen_json[i], ToJson(batch[i]))
          << threads << " threads, record " << i;
    }
  }
}

TEST_F(StreamPipelineTest, EmptySourceProducesNoSinkCalls) {
  util::MemoryByteSource bytes("", 8);
  TextRecordSource source(bytes);
  size_t calls = 0;
  const StreamPipelineStats stats =
      ParseStream(*parser_, source, {},
                  [&](uint64_t, const std::string&, const ParsedWhois&) {
                    ++calls;
                  });
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(calls, 0u);
}

TEST_F(StreamPipelineTest, SinkExceptionCancelsPipelineAndPropagates) {
  const std::vector<std::string> records = CorpusTexts(120, 40);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }
  util::MemoryByteSource bytes(text, 1 << 20);
  TextRecordSource source(bytes);
  StreamPipelineOptions options;
  options.threads = 2;
  options.batch_records = 2;
  options.queue_capacity = 2;
  EXPECT_THROW(
      ParseStream(*parser_, source, options,
                  [&](uint64_t index, const std::string&, const ParsedWhois&) {
                    if (index >= 4) throw std::runtime_error("sink failed");
                  }),
      std::runtime_error);
}

TEST_F(StreamPipelineTest, StoreSourceParsesIdenticallyToTextSource) {
  const std::vector<std::string> records = CorpusTexts(150, 30);
  const std::string prefix = TempPrefix("pipeline_store");
  {
    RecordStoreWriter writer(prefix);
    for (const auto& r : records) writer.Append(r);
  }  // destructor seals
  const RecordStoreReader reader(prefix);
  StoreRecordSource source(reader);
  std::vector<std::string> json;
  ParseStream(*parser_, source, {},
              [&](uint64_t, const std::string&, const ParsedWhois& parsed) {
                json.push_back(ToJson(parsed));
              });
  ASSERT_EQ(json.size(), records.size());
  ParseWorkspace ws;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(json[i], ToJson(parser_->Parse(records[i], ws))) << i;
  }
  RemoveStore(prefix);
}

TEST_F(StreamPipelineTest, BuildDatabaseFromStreamAssemblesRowsInOrder) {
  const std::vector<std::string> records = CorpusTexts(120, 25);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }
  util::MemoryByteSource bytes(text, 1 << 20);
  TextRecordSource source(bytes);
  StreamPipelineOptions options;
  options.threads = 2;
  const survey::SurveyDatabase db = survey::BuildDatabaseFromStream(
      source, *parser_, generator_->registrars(), options);
  ASSERT_EQ(db.size(), records.size());
  ParseWorkspace ws;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(db.rows()[i].domain, parser_->Parse(records[i], ws).domain_name)
        << i;
  }
}

// ---------------------------------------------------------------------------
// Crash safety: quarantine, watchdog, checkpoint/resume

constexpr char kPoisonMarker[] = "!!POISON!!";

// A RecordSource over an in-memory vector; cheap to rebuild for the
// replay-from-scratch half of resume tests.
class VectorRecordSource : public RecordSource {
 public:
  explicit VectorRecordSource(const std::vector<std::string>& records)
      : records_(records) {}
  bool Next(std::string& record) override {
    if (pos_ >= records_.size()) return false;
    record = records_[pos_++];
    return true;
  }

 private:
  const std::vector<std::string>& records_;
  size_t pos_ = 0;
};

// Parse hook that throws on marked records and otherwise defers to the
// real parser — the "hostile input" chaos monkey.
StreamPipelineOptions PoisonOptions(const WhoisParser& parser) {
  StreamPipelineOptions options;
  options.parse_override = [&parser](const std::string& record,
                                     ParseWorkspace& ws) {
    if (record.find(kPoisonMarker) != std::string::npos) {
      throw std::runtime_error("poisoned record");
    }
    return parser.Parse(record, ws);
  };
  return options;
}

TEST(QuarantineEntryTest, RoundTripsIndexReasonAndRawBytes) {
  const std::string record = "Domain Name: X.COM\n\x01\x02 binary \t bytes\n";
  const std::string entry =
      FormatQuarantineEntry(42, "segfault in featurizer\nline2", record);
  uint64_t index = 0;
  std::string reason;
  std::string raw;
  ParseQuarantineEntry(entry, index, reason, raw);
  EXPECT_EQ(index, 42u);
  EXPECT_EQ(reason, "segfault in featurizer line2");  // newline sanitized
  EXPECT_EQ(raw, record);                             // bytes untouched
  EXPECT_THROW(ParseQuarantineEntry("not a quarantine entry", index, reason,
                                    raw),
               std::runtime_error);
}

TEST(StreamCheckpointTest, FormatRoundTrips) {
  StreamCheckpoint cp;
  cp.complete = true;
  cp.consumed = 12345;
  cp.quarantined = 7;
  cp.input_id = "file:/data/corpus with spaces.txt";
  cp.store = {12338, 2, 50, 4096};
  cp.quarantine = {7, 0, 7, 900};
  const StreamCheckpoint back = ParseStreamCheckpoint(FormatStreamCheckpoint(cp));
  EXPECT_EQ(back.complete, cp.complete);
  EXPECT_EQ(back.consumed, cp.consumed);
  EXPECT_EQ(back.quarantined, cp.quarantined);
  EXPECT_EQ(back.input_id, cp.input_id);
  EXPECT_EQ(back.store.records, cp.store.records);
  EXPECT_EQ(back.store.shard_bytes, cp.store.shard_bytes);
  EXPECT_EQ(back.quarantine.records, cp.quarantine.records);
  EXPECT_THROW(ParseStreamCheckpoint("garbage\n"), std::runtime_error);
}

TEST_F(StreamPipelineTest, PoisonedRecordsAreQuarantinedNotFatal) {
  std::vector<std::string> records = CorpusTexts(120, 30);
  const std::vector<size_t> poison_at = {0, 7, 8, 19, 29};
  for (size_t i : poison_at) {
    records[i] = std::string(kPoisonMarker) + "\nDomain Name: BAD" +
                 std::to_string(i) + ".COM\n";
  }

  StreamPipelineOptions options = PoisonOptions(*parser_);
  options.threads = 4;
  options.batch_records = 3;
  options.queue_capacity = 2;
  std::vector<std::pair<uint64_t, std::string>> quarantined;
  options.on_quarantine = [&](uint64_t index, const std::string& record,
                              const std::string& reason) {
    quarantined.emplace_back(index, record);
    EXPECT_EQ(reason, "poisoned record");
  };

  std::vector<uint64_t> sink_indices;
  std::vector<std::string> sink_json;
  VectorRecordSource source(records);
  const StreamPipelineStats stats = ParseStream(
      *parser_, source, options,
      [&](uint64_t index, const std::string& record, const ParsedWhois& parsed) {
        EXPECT_EQ(record, records[index]);
        sink_indices.push_back(index);
        sink_json.push_back(ToJson(parsed));
      });

  // The run completed; exactly the poison records were diverted, in input
  // order, and every clean record reached the sink at its global index.
  EXPECT_EQ(stats.records, records.size() - poison_at.size());
  EXPECT_EQ(stats.quarantined, poison_at.size());
  ASSERT_EQ(quarantined.size(), poison_at.size());
  for (size_t q = 0; q < poison_at.size(); ++q) {
    EXPECT_EQ(quarantined[q].first, poison_at[q]);
    EXPECT_EQ(quarantined[q].second, records[poison_at[q]]);
  }
  ASSERT_EQ(sink_indices.size(), records.size() - poison_at.size());
  ParseWorkspace ws;
  size_t s = 0;
  for (size_t i = 0; i < records.size(); ++i) {
    if (std::find(poison_at.begin(), poison_at.end(), i) != poison_at.end()) {
      continue;
    }
    ASSERT_LT(s, sink_indices.size());
    EXPECT_EQ(sink_indices[s], i);
    EXPECT_EQ(sink_json[s], ToJson(parser_->Parse(records[i], ws))) << i;
    ++s;
  }
}

TEST_F(StreamPipelineTest, WorkerExceptionWithoutQuarantineStillAborts) {
  std::vector<std::string> records = CorpusTexts(120, 10);
  records[4] = std::string(kPoisonMarker) + "\n";
  StreamPipelineOptions options = PoisonOptions(*parser_);
  options.threads = 2;
  options.batch_records = 2;
  VectorRecordSource source(records);
  EXPECT_THROW(
      ParseStream(*parser_, source, options,
                  [](uint64_t, const std::string&, const ParsedWhois&) {}),
      std::runtime_error);
}

TEST_F(StreamPipelineTest, OversizedRecordsAreQuarantinedWithoutParsing) {
  std::vector<std::string> records = CorpusTexts(120, 6);
  records[3] = "Domain Name: HUGE.COM\n" + std::string(10000, 'x') + "\n";
  StreamPipelineOptions options;
  options.threads = 2;
  options.max_record_bytes = 4096;
  std::vector<uint64_t> quarantined;
  options.on_quarantine = [&](uint64_t index, const std::string&,
                              const std::string& reason) {
    quarantined.push_back(index);
    EXPECT_NE(reason.find("exceeds limit"), std::string::npos) << reason;
  };
  size_t sunk = 0;
  VectorRecordSource source(records);
  const StreamPipelineStats stats =
      ParseStream(*parser_, source, options,
                  [&](uint64_t, const std::string&, const ParsedWhois&) {
                    ++sunk;
                  });
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(sunk, records.size() - 1);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], 3u);
}

// A source that delivers a few records promptly, then wedges long enough
// for the watchdog to fire. The sleep is finite so thread joins always
// complete even on slow machines.
class StallingSource : public RecordSource {
 public:
  bool Next(std::string& record) override {
    if (served_ >= 3) {
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      return false;
    }
    record = "Domain Name: S" + std::to_string(served_++) + ".COM\n";
    return true;
  }

 private:
  size_t served_ = 0;
};

TEST_F(StreamPipelineTest, WatchdogFailsFastOnStalledStage) {
  StallingSource source;
  StreamPipelineOptions options;
  options.threads = 2;
  options.batch_records = 1;
  options.watchdog_timeout_ms = 60;
  try {
    ParseStream(*parser_, source, options,
                [](uint64_t, const std::string&, const ParsedWhois&) {});
    FAIL() << "expected StreamStallError";
  } catch (const StreamStallError& e) {
    // The diagnostic names the wedged stage and the queue depths.
    EXPECT_NE(std::string(e.what()).find("suspect stage"), std::string::npos)
        << e.what();
  }
}

TEST_F(StreamPipelineTest, WatchdogStaysQuietOnHealthyRun) {
  const std::vector<std::string> records = CorpusTexts(120, 20);
  VectorRecordSource source(records);
  StreamPipelineOptions options;
  options.threads = 2;
  options.watchdog_timeout_ms = 60'000;
  const StreamPipelineStats stats =
      ParseStream(*parser_, source, options,
                  [](uint64_t, const std::string&, const ParsedWhois&) {});
  EXPECT_EQ(stats.records, records.size());
}

TEST_F(StreamPipelineTest, KillResumeRoundTripIsByteIdentical) {
  std::vector<std::string> records = CorpusTexts(120, 40);
  const std::vector<size_t> poison_at = {5, 17, 29};
  for (size_t i : poison_at) {
    records[i] = std::string(kPoisonMarker) + "\nDomain Name: BAD" +
                 std::to_string(i) + ".COM\n";
  }

  CheckpointedParseOptions options;
  options.pipeline = PoisonOptions(*parser_);
  options.pipeline.threads = 2;
  options.pipeline.batch_records = 3;
  options.store.records_per_shard = 7;
  options.checkpoint_interval = 10;
  options.input_id = "test:kill_resume";

  // Reference: an uninterrupted run.
  const std::string ref = TempPrefix("ckpt_ref");
  {
    VectorRecordSource source(records);
    const CheckpointedParseResult result =
        ParseStreamToStore(*parser_, source, ref, options);
    EXPECT_EQ(result.records_stored, records.size() - poison_at.size());
    EXPECT_EQ(result.quarantined, poison_at.size());
    EXPECT_EQ(result.skipped, 0u);
  }

  // Interrupted run: the sink dies after 23 stored records (mid-corpus,
  // past several checkpoints), taking the process with it — modeled by
  // the exception unwinding through ParseStreamToStore.
  const std::string prefix = TempPrefix("ckpt_killed");
  {
    VectorRecordSource source(records);
    size_t stored = 0;
    EXPECT_THROW(
        ParseStreamToStore(*parser_, source, prefix, options,
                           [&](uint64_t, const std::string&,
                               const ParsedWhois&) {
                             if (++stored > 23) {
                               throw std::runtime_error("killed");
                             }
                           }),
        std::runtime_error);
  }

  // Resume: replay the same input with --resume semantics.
  {
    CheckpointedParseOptions resume_options = options;
    resume_options.resume = true;
    VectorRecordSource source(records);
    const CheckpointedParseResult result =
        ParseStreamToStore(*parser_, source, prefix, resume_options);
    EXPECT_GT(result.skipped, 0u);
    EXPECT_EQ(result.records_stored, records.size() - poison_at.size());
    EXPECT_EQ(result.quarantined, poison_at.size());
  }

  // Byte-identical to the uninterrupted run: main store AND quarantine.
  ExpectStoresIdentical(ref, prefix);
  ExpectStoresIdentical(ref + "-quarantine", prefix + "-quarantine");

  // The quarantine store holds exactly the poison records with reasons.
  {
    const RecordStoreReader reader(prefix + "-quarantine");
    ASSERT_EQ(reader.size(), poison_at.size());
    for (size_t q = 0; q < poison_at.size(); ++q) {
      uint64_t index = 0;
      std::string reason;
      std::string raw;
      ParseQuarantineEntry(reader.Get(q), index, reason, raw);
      EXPECT_EQ(index, poison_at[q]);
      EXPECT_EQ(reason, "poisoned record");
      EXPECT_EQ(raw, records[poison_at[q]]);
    }
  }

  // Resuming a complete run is an idempotent no-op: everything skips.
  {
    CheckpointedParseOptions resume_options = options;
    resume_options.resume = true;
    VectorRecordSource source(records);
    const CheckpointedParseResult result =
        ParseStreamToStore(*parser_, source, prefix, resume_options);
    EXPECT_EQ(result.skipped, records.size());
    EXPECT_EQ(result.stats.records, 0u);
    EXPECT_EQ(result.records_stored, records.size() - poison_at.size());
  }
  ExpectStoresIdentical(ref, prefix);

  // A checkpoint refuses to resume against a different input.
  {
    CheckpointedParseOptions resume_options = options;
    resume_options.resume = true;
    resume_options.input_id = "test:other_corpus";
    VectorRecordSource source(records);
    EXPECT_THROW(
        ParseStreamToStore(*parser_, source, prefix, resume_options),
        std::runtime_error);
  }

  RemoveCheckpointedStore(ref);
  RemoveCheckpointedStore(prefix);
}

TEST(StreamCheckpointTest, AuxPayloadRoundTripsArbitraryBytes) {
  StreamCheckpoint cp;
  cp.consumed = 99;
  cp.input_id = "test:aux";
  // The payload is length-prefixed, so newlines, checkpoint-keyword lines,
  // and binary bytes must all survive verbatim.
  cp.aux = "line one\nconsumed 7\nend\n\x01\x02 binary\n";
  const std::string text = FormatStreamCheckpoint(cp);
  const StreamCheckpoint back = ParseStreamCheckpoint(text);
  EXPECT_EQ(back.aux, cp.aux);
  EXPECT_EQ(back.consumed, cp.consumed);

  // Empty aux writes no aux section and reads back empty.
  cp.aux.clear();
  const std::string bare = FormatStreamCheckpoint(cp);
  EXPECT_EQ(bare.find("\naux "), std::string::npos);
  EXPECT_TRUE(ParseStreamCheckpoint(bare).aux.empty());

  // A truncated aux section (declared length past the end) is malformed,
  // not silently shortened.
  const size_t aux_at = text.find("aux ");
  ASSERT_NE(aux_at, std::string::npos);
  EXPECT_THROW(ParseStreamCheckpoint(text.substr(0, aux_at + 8)),
               std::runtime_error);
}

TEST(RecordStreamTest, SkipAdvancesPastRecordsWithoutParsing) {
  const std::vector<std::string> records = {"a\n", "b\n", "c\n", "d\n",
                                            "e\n"};
  VectorRecordSource source(records);
  EXPECT_EQ(source.Skip(3), 3u);
  std::string record;
  ASSERT_TRUE(source.Next(record));
  EXPECT_EQ(record, "d\n");
  // Skipping past the end reports how many records actually remained.
  EXPECT_EQ(source.Skip(10), 1u);
  EXPECT_FALSE(source.Next(record));
  EXPECT_EQ(source.Skip(1), 0u);
}

// Aux state (a sink-side record count here; the survey accumulator in
// production) rides inside the checkpoint, so a killed run restores it
// atomically with the cursor: no double-counting of skipped records, no
// lost tail.
TEST_F(StreamPipelineTest, AuxStateSurvivesKillAndResume) {
  const std::vector<std::string> records = CorpusTexts(120, 30);

  CheckpointedParseOptions options;
  options.pipeline.threads = 2;
  options.pipeline.batch_records = 3;
  options.checkpoint_interval = 8;
  options.input_id = "test:aux_resume";

  uint64_t count = 0;
  options.save_aux = [&count] { return std::to_string(count); };
  options.load_aux = [&count](const std::string& aux) {
    count = aux.empty() ? 0 : std::stoull(aux);
  };
  const auto counting_sink = [&count](uint64_t, const std::string&,
                                      const ParsedWhois&) { ++count; };

  // Reference: the uninterrupted count.
  const std::string ref = TempPrefix("aux_ref");
  {
    VectorRecordSource source(records);
    const CheckpointedParseResult result =
        ParseStreamToStore(*parser_, source, ref, options, counting_sink);
    EXPECT_EQ(count, records.size());
    EXPECT_GT(result.checkpoints, 0u);
    EXPECT_GE(result.checkpoint_seconds, 0.0);
  }
  const uint64_t ref_count = count;

  // Killed run: the sink dies mid-corpus, past several checkpoints.
  const std::string prefix = TempPrefix("aux_killed");
  count = 0;
  {
    VectorRecordSource source(records);
    uint64_t stored = 0;
    EXPECT_THROW(
        ParseStreamToStore(*parser_, source, prefix, options,
                           [&](uint64_t index, const std::string& record,
                               const ParsedWhois& parsed) {
                             if (++stored > 19) {
                               throw std::runtime_error("killed");
                             }
                             counting_sink(index, record, parsed);
                           }),
        std::runtime_error);
  }

  // Resume with a poisoned in-memory count: load_aux must overwrite it
  // with the durable snapshot, then the tail adds exactly the unskipped
  // records.
  count = 999999;
  {
    CheckpointedParseOptions resume_options = options;
    resume_options.resume = true;
    VectorRecordSource source(records);
    const CheckpointedParseResult result = ParseStreamToStore(
        *parser_, source, prefix, resume_options, counting_sink);
    EXPECT_GT(result.skipped, 0u);
  }
  EXPECT_EQ(count, ref_count);
  ExpectStoresIdentical(ref, prefix);

  RemoveCheckpointedStore(ref);
  RemoveCheckpointedStore(prefix);
}

// The checkpoint observer sees every durable checkpoint (cursor already
// saved), and a throwing observer aborts the run exactly like a sink
// throw — the seam the scale-run bench uses to inject mid-run kills.
TEST_F(StreamPipelineTest, CheckpointObserverSeesEveryDurableCheckpoint) {
  const std::vector<std::string> records = CorpusTexts(120, 20);

  CheckpointedParseOptions options;
  options.pipeline.threads = 2;
  options.checkpoint_interval = 6;
  options.input_id = "test:observer";

  const std::string prefix = TempPrefix("ckpt_observer");
  std::vector<uint64_t> seen;
  options.on_checkpoint = [&seen](const StreamCheckpoint& cp) {
    seen.push_back(cp.consumed);
  };
  {
    VectorRecordSource source(records);
    const CheckpointedParseResult result =
        ParseStreamToStore(*parser_, source, prefix, options);
    EXPECT_EQ(seen.size(), result.checkpoints);
    ASSERT_FALSE(seen.empty());
    EXPECT_EQ(seen.back(), records.size());  // the final complete snapshot
  }
  RemoveCheckpointedStore(prefix);

  const std::string kill_prefix = TempPrefix("ckpt_observer_kill");
  options.on_checkpoint = [](const StreamCheckpoint& cp) {
    if (cp.consumed >= 12) throw std::runtime_error("observer kill");
  };
  {
    VectorRecordSource source(records);
    EXPECT_THROW(
        ParseStreamToStore(*parser_, source, kill_prefix, options),
        std::runtime_error);
  }
  RemoveCheckpointedStore(kill_prefix);
}

}  // namespace
}  // namespace whoiscrf::whois
