// Streaming corpus pipeline: record framing across chunk boundaries,
// bounded-queue backpressure, sharded record store round-trips, and
// ParseStream vs in-memory ParseBatch equivalence (byte-identical output,
// exact input order, every thread count).
//
// Like test_parse_batch.cc, run these in a -DWHOISCRF_TSAN=ON build tree:
// the pipeline's reader/worker/sink handoffs are exactly the kind of code
// ThreadSanitizer exists for.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "survey/build.h"
#include "util/bounded_queue.h"
#include "util/chunk_reader.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/record_store.h"
#include "whois/record_stream.h"
#include "whois/stream_pipeline.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {
namespace {

// ---------------------------------------------------------------------------
// Record framing

std::vector<std::string> ScanAll(std::string_view text, size_t chunk_bytes) {
  util::MemoryByteSource source(text, chunk_bytes);
  return ReadAllRecords(source);
}

TEST(RecordStreamTest, FramingIsChunkSizeInvariant) {
  const std::string text =
      "Domain Name: A.COM\nRegistrar: One\n%%\n"
      "Domain Name: B.COM\r\nRegistrar: Two\r\n%%\r\n"
      "Domain Name: C.COM\rRegistrar: Three\r%%\n";
  const std::vector<std::string> expected = {
      "Domain Name: A.COM\nRegistrar: One\n",
      "Domain Name: B.COM\nRegistrar: Two\n",
      "Domain Name: C.COM\nRegistrar: Three\n",
  };
  // Chunk size 1 puts a boundary at every byte, so every straddle case —
  // including "\r|\n" — is exercised; larger sizes cover interior fast
  // paths. All must agree byte for byte.
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                       size_t{64}, size_t{1} << 20}) {
    EXPECT_EQ(ScanAll(text, chunk), expected) << "chunk=" << chunk;
  }
}

TEST(RecordStreamTest, MissingTrailingSeparatorEmitsUnterminatedRecord) {
  const std::string text = "Domain Name: A.COM\n%%\nDomain Name: B.COM\n";
  for (size_t chunk : {size_t{1}, size_t{5}, size_t{1} << 20}) {
    util::MemoryByteSource source(text, chunk);
    RecordStreamReader reader(source);
    StreamedRecord record;
    ASSERT_TRUE(reader.Next(record)) << "chunk=" << chunk;
    EXPECT_EQ(record.text, "Domain Name: A.COM\n");
    EXPECT_TRUE(record.terminated);
    ASSERT_TRUE(reader.Next(record)) << "chunk=" << chunk;
    EXPECT_EQ(record.text, "Domain Name: B.COM\n");
    EXPECT_FALSE(record.terminated);
    EXPECT_EQ(record.index, 1u);
    EXPECT_FALSE(reader.Next(record));
  }
}

TEST(RecordStreamTest, UnterminatedFinalLineKeepsItsBytes) {
  // No newline at all after the last line: the line still belongs to the
  // trailing record.
  const auto records = ScanAll("Domain Name: A.COM\nRegistrar: One", 3);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "Domain Name: A.COM\nRegistrar: One\n");
}

TEST(RecordStreamTest, EmptyBodiesAndTrailingBlanksProduceNoRecords) {
  // Consecutive separators, separators with surrounding whitespace, and
  // trailing blank lines must not produce ghost records.
  EXPECT_TRUE(ScanAll("", 4).empty());
  EXPECT_TRUE(ScanAll("%%\n%%\n  %% \n", 4).empty());
  EXPECT_TRUE(ScanAll("\n\n\n", 4).empty());
  const auto records = ScanAll("%%\nDomain Name: A.COM\n%%\n%%\n\n\n", 4);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "Domain Name: A.COM\n");
}

TEST(RecordStreamTest, FirstLineNumbersArePhysical) {
  const std::string text =
      "Domain Name: A.COM\nRegistrar: One\n%%\nDomain Name: B.COM\n%%\n";
  util::MemoryByteSource source(text, 1 << 20);
  RecordStreamReader reader(source);
  StreamedRecord record;
  ASSERT_TRUE(reader.Next(record));
  EXPECT_EQ(record.first_line, 1u);
  ASSERT_TRUE(reader.Next(record));
  EXPECT_EQ(record.first_line, 4u);
}

TEST(RecordStreamTest, MatchesGeneratedCorpusAtHostileChunkSizes) {
  datagen::CorpusOptions options;
  options.size = 30;
  options.seed = 5;
  const datagen::CorpusGenerator generator(options);
  std::vector<std::string> expected;
  std::string text;
  for (size_t i = 0; i < 30; ++i) {
    expected.push_back(generator.Generate(i).thick.text);
    text += expected.back();
    text += "%%\n";
  }
  for (size_t chunk : {size_t{1}, size_t{13}, size_t{1} << 20}) {
    EXPECT_EQ(ScanAll(text, chunk), expected) << "chunk=" << chunk;
  }
}

// ---------------------------------------------------------------------------
// Bounded queue

TEST(BoundedQueueTest, PushBlocksAtCapacityUntilPopped) {
  util::BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));

  std::atomic<bool> third_pushed{false};
  double stalled = 0.0;
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(3, &stalled));
    third_pushed = true;
  });
  // The producer must stay blocked while the queue is full. (A sleep can
  // only give a false pass here, never a false failure.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_EQ(queue.Size(), 2u);

  EXPECT_EQ(queue.Pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_GT(stalled, 0.0);
  EXPECT_EQ(queue.Pop(), std::optional<int>(2));
  EXPECT_EQ(queue.Pop(), std::optional<int>(3));
}

TEST(BoundedQueueTest, CancelWakesBlockedProducersAndDiscardsItems) {
  util::BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.Push(1));
  std::thread producer([&] { EXPECT_FALSE(queue.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Cancel();
  producer.join();
  EXPECT_EQ(queue.Size(), 0u);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_FALSE(queue.Push(3));
}

TEST(BoundedQueueTest, CloseDrainsQueuedItemsThenEndsConsumers) {
  util::BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.Push(1));
  EXPECT_TRUE(queue.Push(2));
  std::thread consumer([&] {
    EXPECT_EQ(queue.Pop(), std::optional<int>(1));
    EXPECT_EQ(queue.Pop(), std::optional<int>(2));
    EXPECT_EQ(queue.Pop(), std::nullopt);  // blocks until Close()
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_FALSE(queue.Push(3));
}

// ---------------------------------------------------------------------------
// Sharded record store

std::string TempPrefix(const char* tag) {
  return testing::TempDir() + "whoiscrf_" + tag + "_" +
         std::to_string(::getpid());
}

void RemoveStore(const std::string& prefix) {
  for (size_t s = 0;; ++s) {
    if (std::remove(RecordStoreShardPath(prefix, s).c_str()) != 0) break;
  }
}

TEST(RecordStoreTest, MultiShardRoundTripWithRandomAccess) {
  const std::string prefix = TempPrefix("store");
  std::vector<std::string> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back("Domain Name: R" + std::to_string(i) +
                      ".COM\nRegistrar: Reg\n");
  }
  {
    RecordStoreOptions options;
    options.records_per_shard = 3;  // force 4 shards for 10 records
    RecordStoreWriter writer(prefix, options);
    for (const auto& r : records) writer.Append(r);
    writer.Finish();
    EXPECT_EQ(writer.record_count(), 10u);
    EXPECT_EQ(writer.shard_count(), 4u);
  }
  const RecordStoreReader reader(prefix);
  EXPECT_EQ(reader.size(), 10u);
  EXPECT_EQ(reader.shard_count(), 4u);
  // Random access, deliberately out of order and crossing shards.
  for (uint64_t i : {9u, 0u, 5u, 2u, 8u, 3u}) {
    EXPECT_EQ(reader.Get(i), records[i]) << "record " << i;
  }
  EXPECT_THROW(reader.Get(10), std::out_of_range);
  // Sequential scan sees every record in order.
  StoreRecordSource source(reader);
  std::string record;
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_TRUE(source.Next(record)) << i;
    EXPECT_EQ(record, records[i]) << i;
  }
  EXPECT_FALSE(source.Next(record));
  RemoveStore(prefix);
}

TEST(RecordStoreTest, EmptyStoreRoundTrips) {
  const std::string prefix = TempPrefix("store_empty");
  {
    RecordStoreWriter writer(prefix);
    writer.Finish();
  }
  const RecordStoreReader reader(prefix);
  EXPECT_EQ(reader.size(), 0u);
  StoreRecordSource source(reader);
  std::string record;
  EXPECT_FALSE(source.Next(record));
  RemoveStore(prefix);
}

TEST(RecordStoreTest, MissingStoreThrows) {
  EXPECT_THROW(RecordStoreReader(TempPrefix("store_missing")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Streaming parse pipeline

class StreamPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 200;
    options.seed = 42;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new WhoisParser(WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }

  static std::vector<std::string> CorpusTexts(size_t begin, size_t count) {
    std::vector<std::string> out;
    out.reserve(count);
    for (size_t i = begin; i < begin + count; ++i) {
      out.push_back(generator_->Generate(i).thick.text);
    }
    return out;
  }

  static WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

WhoisParser* StreamPipelineTest::parser_ = nullptr;
datagen::CorpusGenerator* StreamPipelineTest::generator_ = nullptr;

TEST_F(StreamPipelineTest, StreamingMatchesInMemoryBatchByteForByte) {
  const std::vector<std::string> records = CorpusTexts(120, 60);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }

  util::ThreadPool pool(4);
  const std::vector<ParsedWhois> batch = parser_->ParseBatch(records, pool);

  // Tiny chunks, batches, and queues: maximum pressure on the framing and
  // the reorder logic. Output must still be the in-memory batch, byte for
  // byte, in exact input order.
  for (size_t threads : {size_t{1}, size_t{4}}) {
    util::MemoryByteSource bytes(text, 37);
    TextRecordSource source(bytes);
    StreamPipelineOptions options;
    options.threads = threads;
    options.batch_records = 3;
    options.queue_capacity = 2;
    std::vector<std::string> seen_records;
    std::vector<std::string> seen_json;
    std::vector<uint64_t> seen_indices;
    const StreamPipelineStats stats = ParseStream(
        *parser_, source, options,
        [&](uint64_t index, const std::string& record,
            const ParsedWhois& parsed) {
          seen_indices.push_back(index);
          seen_records.push_back(record);
          seen_json.push_back(ToJson(parsed));
        });
    EXPECT_EQ(stats.records, records.size()) << threads << " threads";
    ASSERT_EQ(seen_records.size(), records.size()) << threads << " threads";
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(seen_indices[i], i) << threads << " threads";
      EXPECT_EQ(seen_records[i], records[i]) << threads << " threads";
      EXPECT_EQ(seen_json[i], ToJson(batch[i]))
          << threads << " threads, record " << i;
    }
  }
}

TEST_F(StreamPipelineTest, EmptySourceProducesNoSinkCalls) {
  util::MemoryByteSource bytes("", 8);
  TextRecordSource source(bytes);
  size_t calls = 0;
  const StreamPipelineStats stats =
      ParseStream(*parser_, source, {},
                  [&](uint64_t, const std::string&, const ParsedWhois&) {
                    ++calls;
                  });
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(calls, 0u);
}

TEST_F(StreamPipelineTest, SinkExceptionCancelsPipelineAndPropagates) {
  const std::vector<std::string> records = CorpusTexts(120, 40);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }
  util::MemoryByteSource bytes(text, 1 << 20);
  TextRecordSource source(bytes);
  StreamPipelineOptions options;
  options.threads = 2;
  options.batch_records = 2;
  options.queue_capacity = 2;
  EXPECT_THROW(
      ParseStream(*parser_, source, options,
                  [&](uint64_t index, const std::string&, const ParsedWhois&) {
                    if (index >= 4) throw std::runtime_error("sink failed");
                  }),
      std::runtime_error);
}

TEST_F(StreamPipelineTest, StoreSourceParsesIdenticallyToTextSource) {
  const std::vector<std::string> records = CorpusTexts(150, 30);
  const std::string prefix = TempPrefix("pipeline_store");
  {
    RecordStoreWriter writer(prefix);
    for (const auto& r : records) writer.Append(r);
  }  // destructor seals
  const RecordStoreReader reader(prefix);
  StoreRecordSource source(reader);
  std::vector<std::string> json;
  ParseStream(*parser_, source, {},
              [&](uint64_t, const std::string&, const ParsedWhois& parsed) {
                json.push_back(ToJson(parsed));
              });
  ASSERT_EQ(json.size(), records.size());
  ParseWorkspace ws;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(json[i], ToJson(parser_->Parse(records[i], ws))) << i;
  }
  RemoveStore(prefix);
}

TEST_F(StreamPipelineTest, BuildDatabaseFromStreamAssemblesRowsInOrder) {
  const std::vector<std::string> records = CorpusTexts(120, 25);
  std::string text;
  for (const auto& r : records) {
    text += r;
    text += "%%\n";
  }
  util::MemoryByteSource bytes(text, 1 << 20);
  TextRecordSource source(bytes);
  StreamPipelineOptions options;
  options.threads = 2;
  const survey::SurveyDatabase db = survey::BuildDatabaseFromStream(
      source, *parser_, generator_->registrars(), options);
  ASSERT_EQ(db.size(), records.size());
  ParseWorkspace ws;
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(db.rows()[i].domain, parser_->Parse(records[i], ws).domain_name)
        << i;
  }
}

}  // namespace
}  // namespace whoiscrf::whois
