// Parse service: framing round trips, result-cache byte-identity with the
// offline parse path, admission control (busy fast-reject), deadline expiry
// under simulated time, graceful drain, and the TCP front end.
//
// Like test_stream_pipeline.cc, run these in a -DWHOISCRF_TSAN=ON build
// tree: the queue hand-offs, drain/shutdown joins, and cache sharding are
// exactly the kind of code ThreadSanitizer exists for.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "net/clock.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::serve {
namespace {

// ---------------------------------------------------------------------------
// Framing protocol

TEST(ServeProtocolTest, RequestFrameRoundTrip) {
  for (const std::string& payload :
       {std::string(), std::string("Domain Name: A.COM\n"),
        std::string(300, 'x'), std::string("\0\x01\xff binary \n", 12)}) {
    StringStream out;
    ASSERT_TRUE(WriteFrame(out, payload));
    StringStream in(out.output());
    std::string read_back;
    EXPECT_EQ(ReadFrame(in, read_back, kDefaultMaxFrameBytes),
              FrameRead::kFrame);
    EXPECT_EQ(read_back, payload);
    EXPECT_EQ(in.remaining(), 0u);
  }
}

TEST(ServeProtocolTest, ResponseFrameRoundTrip) {
  for (const Status status :
       {Status::kOk, Status::kBusy, Status::kDeadline, Status::kError}) {
    StringStream out;
    ASSERT_TRUE(WriteResponse(out, status, "{\"a\":1}"));
    StringStream in(out.output());
    Status got = Status::kOk;
    std::string body;
    EXPECT_EQ(ReadResponse(in, got, body, kDefaultMaxFrameBytes),
              FrameRead::kFrame);
    EXPECT_EQ(got, status);
    EXPECT_EQ(body, "{\"a\":1}");
  }
}

TEST(ServeProtocolTest, PipelinedFramesReadInOrder) {
  StringStream out;
  ASSERT_TRUE(WriteFrame(out, "first"));
  ASSERT_TRUE(WriteFrame(out, "second"));
  StringStream in(out.output());
  std::string payload;
  EXPECT_EQ(ReadFrame(in, payload, 1 << 10), FrameRead::kFrame);
  EXPECT_EQ(payload, "first");
  EXPECT_EQ(ReadFrame(in, payload, 1 << 10), FrameRead::kFrame);
  EXPECT_EQ(payload, "second");
  EXPECT_EQ(ReadFrame(in, payload, 1 << 10), FrameRead::kEof);
}

TEST(ServeProtocolTest, EofTruncationAndOversizeAreDistinguished) {
  std::string payload;
  StringStream empty;
  EXPECT_EQ(ReadFrame(empty, payload, 1 << 10), FrameRead::kEof);

  StringStream torn_prefix(std::string("\x05\x00", 2));
  EXPECT_EQ(ReadFrame(torn_prefix, payload, 1 << 10), FrameRead::kTruncated);

  StringStream torn_body(std::string("\x05\x00\x00\x00", 4) + "ab");
  EXPECT_EQ(ReadFrame(torn_body, payload, 1 << 10), FrameRead::kTruncated);

  StringStream framed;
  ASSERT_TRUE(WriteFrame(framed, std::string(100, 'x')));
  StringStream in(framed.output());
  EXPECT_EQ(ReadFrame(in, payload, 10), FrameRead::kTooLarge);

  // A response frame must carry at least the status byte.
  StringStream statusless(std::string("\x00\x00\x00\x00", 4));
  Status status = Status::kOk;
  EXPECT_EQ(ReadResponse(statusless, status, payload, 1 << 10),
            FrameRead::kTruncated);
}

// ---------------------------------------------------------------------------
// Result cache

TEST(ServeCacheTest, HitReturnsExactBytesAndMissFails) {
  ResultCache cache(/*max_entries=*/8, /*shards=*/1);
  EXPECT_EQ(cache.Put("key-a", "{\"a\":1}"), 0u);
  std::string value;
  ASSERT_TRUE(cache.Get("key-a", &value));
  EXPECT_EQ(value, "{\"a\":1}");
  EXPECT_FALSE(cache.Get("key-b", &value));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsedWithinCapacity) {
  ResultCache cache(/*max_entries=*/2, /*shards=*/1);
  cache.Put("a", "1");
  cache.Put("b", "2");
  std::string value;
  ASSERT_TRUE(cache.Get("a", &value));  // refresh a: b is now the oldest
  EXPECT_EQ(cache.Put("c", "3"), 1u);
  EXPECT_FALSE(cache.Get("b", &value));
  EXPECT_TRUE(cache.Get("a", &value));
  EXPECT_TRUE(cache.Get("c", &value));
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(ServeCacheTest, BytesTrackInsertOverwriteAndEviction) {
  ResultCache cache(/*max_entries=*/2, /*shards=*/1);
  cache.Put("aa", "1111");  // 6 bytes
  EXPECT_EQ(cache.bytes(), 6u);
  cache.Put("aa", "22");  // overwrite: 4 bytes, no eviction
  EXPECT_EQ(cache.bytes(), 4u);
  cache.Put("bb", "3333");    // 4 + 6
  EXPECT_EQ(cache.Put("cc", "4"), 1u);  // evicts aa (oldest)
  EXPECT_EQ(cache.bytes(), 9u);         // bb(6) + cc(3)
  EXPECT_EQ(cache.entries(), 2u);
}

// ---------------------------------------------------------------------------
// ParseService

// Blocks parse workers inside parse_override until opened, so tests can
// saturate the queue / advance the clock at a known pipeline state.
class Gate {
 public:
  whois::ParsedWhois Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
    return whois::ParsedWhois{};
  }
  void AwaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= n; });
  }
  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

class ServeServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 200;
    options.seed = 42;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<whois::LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new whois::WhoisParser(whois::WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }

  static std::string Record(size_t i) {
    return generator_->Generate(120 + i).thick.text;
  }
  static std::string OfflineJson(const std::string& record) {
    return whois::ToJson(parser_->Parse(record));
  }
  static uint64_t CounterNow(const char* name, const obs::Labels& labels = {}) {
    return obs::Registry::Global().CounterValue(name, labels);
  }

  static whois::WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

whois::WhoisParser* ServeServiceTest::parser_ = nullptr;
datagen::CorpusGenerator* ServeServiceTest::generator_ = nullptr;

TEST_F(ServeServiceTest, ServedJsonIsByteIdenticalToOfflineParse) {
  ParseServiceOptions options;
  options.threads = 2;
  ParseService service(*parser_, options);
  for (size_t i = 0; i < 20; ++i) {
    const std::string record = Record(i);
    const ServeResult result = service.Handle(record);
    ASSERT_EQ(result.status, Status::kOk);
    EXPECT_EQ(result.body, OfflineJson(record)) << "record " << i;
  }
}

TEST_F(ServeServiceTest, EmptyRecordServesLikeOfflineParse) {
  ParseService service(*parser_, {});
  const ServeResult result = service.Handle("");
  ASSERT_EQ(result.status, Status::kOk);
  EXPECT_EQ(result.body, OfflineJson(""));
}

TEST_F(ServeServiceTest, CacheHitServesIdenticalBytesAndCounts) {
  ParseServiceOptions options;
  options.threads = 1;
  ParseService service(*parser_, options);
  const std::string record = Record(0);
  const uint64_t hits_before = CounterNow("whoiscrf_serve_cache_hits_total");
  const uint64_t misses_before =
      CounterNow("whoiscrf_serve_cache_misses_total");

  const ServeResult cold = service.Handle(record);
  ASSERT_EQ(cold.status, Status::kOk);
  EXPECT_FALSE(cold.cache_hit);

  const ServeResult warm = service.Handle(record);
  ASSERT_EQ(warm.status, Status::kOk);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.body, cold.body);
  EXPECT_EQ(warm.body, OfflineJson(record));

  EXPECT_EQ(CounterNow("whoiscrf_serve_cache_hits_total"), hits_before + 1);
  EXPECT_EQ(CounterNow("whoiscrf_serve_cache_misses_total"),
            misses_before + 1);
}

TEST_F(ServeServiceTest, DisabledCacheNeverHits) {
  ParseServiceOptions options;
  options.threads = 1;
  options.cache_entries = 0;
  ParseService service(*parser_, options);
  const std::string record = Record(1);
  const std::string body = service.Handle(record).body;
  const ServeResult again = service.Handle(record);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(again.body, body);  // still deterministic, just re-parsed
}

TEST_F(ServeServiceTest, SaturatedQueueFastRejectsBusy) {
  Gate gate;
  ParseServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.cache_entries = 0;
  options.parse_override = [&](const std::string&, whois::ParseWorkspace&) {
    return gate.Enter();
  };
  ParseService service(*parser_, options);
  const uint64_t busy_before = CounterNow("whoiscrf_serve_requests_total",
                                          {{"status", "busy"}});

  std::future<ServeResult> in_flight = service.Submit(Record(0));
  gate.AwaitEntered(1);  // the worker holds request A; the queue is empty
  std::future<ServeResult> queued = service.Submit(Record(1));
  // Queue full: the reject must be immediate (the future is already ready),
  // not blocked behind the stuck worker.
  std::future<ServeResult> rejected = service.Submit(Record(2));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().status, Status::kBusy);
  EXPECT_EQ(CounterNow("whoiscrf_serve_requests_total", {{"status", "busy"}}),
            busy_before + 1);

  gate.Open();
  EXPECT_EQ(in_flight.get().status, Status::kOk);
  EXPECT_EQ(queued.get().status, Status::kOk);
}

TEST_F(ServeServiceTest, QueuedRequestPastDeadlineExpiresUnderSimClock) {
  Gate gate;
  net::SimClock clock;
  ParseServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  options.cache_entries = 0;
  options.deadline_ms = 50;
  options.clock = &clock;
  options.parse_override = [&](const std::string&, whois::ParseWorkspace&) {
    return gate.Enter();
  };
  ParseService service(*parser_, options);

  // A is picked up at t=0 (inside its deadline) and parks in the gate.
  std::future<ServeResult> a = service.Submit(Record(0));
  gate.AwaitEntered(1);
  // B is admitted at t=0 with deadline t=50, then time passes while it
  // waits in the queue.
  std::future<ServeResult> b = service.Submit(Record(1));
  clock.Advance(100);
  gate.Open();

  EXPECT_EQ(a.get().status, Status::kOk);
  const ServeResult expired = b.get();
  EXPECT_EQ(expired.status, Status::kDeadline);
  EXPECT_EQ(expired.body, "deadline exceeded");
  EXPECT_GE(CounterNow("whoiscrf_serve_requests_total",
                       {{"status", "deadline"}}),
            1u);
}

TEST_F(ServeServiceTest, GracefulDrainCompletesAdmittedRequests) {
  Gate gate;
  ParseServiceOptions options;
  options.threads = 1;
  options.queue_capacity = 4;
  options.cache_entries = 0;
  options.parse_override = [&](const std::string&, whois::ParseWorkspace&) {
    return gate.Enter();
  };
  ParseService service(*parser_, options);

  std::future<ServeResult> in_flight = service.Submit(Record(0));
  gate.AwaitEntered(1);
  std::future<ServeResult> queued_a = service.Submit(Record(1));
  std::future<ServeResult> queued_b = service.Submit(Record(2));

  std::thread drainer([&] { service.Drain(); });
  while (!service.draining()) std::this_thread::yield();
  // New work is refused the moment the drain starts...
  EXPECT_EQ(service.Submit(Record(3)).get().status, Status::kBusy);

  gate.Open();
  drainer.join();
  // ...but everything admitted before the drain still completed.
  EXPECT_EQ(in_flight.get().status, Status::kOk);
  EXPECT_EQ(queued_a.get().status, Status::kOk);
  EXPECT_EQ(queued_b.get().status, Status::kOk);
  EXPECT_EQ(service.Handle(Record(4)).status, Status::kBusy);
}

TEST_F(ServeServiceTest, OversizedRecordAnswersErrorWithoutQueueing) {
  ParseServiceOptions options;
  options.threads = 1;
  options.max_record_bytes = 8;
  ParseService service(*parser_, options);
  const ServeResult result = service.Handle(std::string(64, 'x'));
  EXPECT_EQ(result.status, Status::kError);
  EXPECT_EQ(result.body, "record too large");
}

TEST_F(ServeServiceTest, ParseFailureAnswersErrorAndServiceSurvives) {
  ParseServiceOptions options;
  options.threads = 1;
  options.cache_entries = 0;
  options.parse_override =
      [](const std::string& record,
         whois::ParseWorkspace& ws) -> whois::ParsedWhois {
    if (record == "poison") throw std::runtime_error("boom");
    return ServeServiceTest::parser_->Parse(record, ws);
  };
  ParseService service(*parser_, options);
  const ServeResult bad = service.Handle("poison");
  EXPECT_EQ(bad.status, Status::kError);
  EXPECT_NE(bad.body.find("parse failed"), std::string::npos);
  // The worker survives a throwing parse and keeps serving.
  const std::string record = Record(5);
  const ServeResult good = service.Handle(record);
  ASSERT_EQ(good.status, Status::kOk);
  EXPECT_EQ(good.body, OfflineJson(record));
}

// ---------------------------------------------------------------------------
// TCP front end

class ServeTcpTest : public ServeServiceTest {
 protected:
  static int Connect(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }
};

TEST_F(ServeTcpTest, RoundTripAndPipeliningMatchOfflineParse) {
  ParseServerOptions options;
  options.service.threads = 2;
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  FdStream stream(fd);
  const std::string r0 = Record(0);
  const std::string r1 = Record(1);
  // Pipelined: both requests on the wire before the first response is read.
  ASSERT_TRUE(WriteFrame(stream, r0));
  ASSERT_TRUE(WriteFrame(stream, r1));
  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(body, OfflineJson(r0));
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(body, OfflineJson(r1));
  ::close(fd);
  server.Shutdown();
}

TEST_F(ServeTcpTest, OversizedFrameDrawsErrorAndClosesConnection) {
  ParseServerOptions options;
  options.service.threads = 1;
  options.max_frame_bytes = 64;
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  FdStream stream(fd);
  ASSERT_TRUE(WriteFrame(stream, std::string(1024, 'x')));
  Status status = Status::kOk;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kError);
  EXPECT_EQ(body, "frame too large");
  // The server closed: the next read sees EOF.
  EXPECT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kEof);
  ::close(fd);
}

TEST_F(ServeTcpTest, ShutdownUnblocksIdleConnections) {
  ParseServerOptions options;
  options.service.threads = 1;
  auto server = std::make_unique<ParseServer>(*parser_, options);

  const int fd = Connect(server->port());
  FdStream stream(fd);
  const std::string record = Record(2);
  ASSERT_TRUE(WriteFrame(stream, record));
  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(body, OfflineJson(record));

  // The connection now idles waiting for its next frame; Shutdown must not
  // hang on it, and the client sees a clean close.
  server->Shutdown();
  EXPECT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kEof);
  ::close(fd);
  server.reset();
}

}  // namespace
}  // namespace whoiscrf::serve
