// JSON writer and WHOIS record export (plain + RDAP-flavored).
#include <gtest/gtest.h>

#include "util/json.h"
#include "whois/json_export.h"

namespace whoiscrf {
namespace {

TEST(JsonWriterTest, ObjectWithFields) {
  util::JsonWriter json;
  json.BeginObject()
      .Field("a", "x")
      .Key("b").Int(42)
      .Key("c").Bool(true)
      .Key("d").Null()
      .EndObject();
  EXPECT_EQ(json.str(), R"({"a":"x","b":42,"c":true,"d":null})");
}

TEST(JsonWriterTest, NestedStructures) {
  util::JsonWriter json;
  json.BeginObject()
      .Key("list").BeginArray().Int(1).Int(2).EndArray()
      .Key("obj").BeginObject().Field("k", "v").EndObject()
      .EndObject();
  EXPECT_EQ(json.str(), R"({"list":[1,2],"obj":{"k":"v"}})");
}

TEST(JsonWriterTest, EscapesSpecialCharacters) {
  EXPECT_EQ(util::JsonWriter::Escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(util::JsonWriter::Escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(util::JsonWriter::Escape("plain"), "plain");
}

TEST(JsonWriterTest, DoubleFormatting) {
  util::JsonWriter json;
  json.BeginArray().Double(0.5).Double(1e308 * 10).EndArray();
  EXPECT_EQ(json.str(), "[0.5,null]");  // inf -> null
}

TEST(JsonWriterTest, FieldIfNonEmptySkipsEmpty) {
  util::JsonWriter json;
  json.BeginObject()
      .FieldIfNonEmpty("keep", "value")
      .FieldIfNonEmpty("drop", "")
      .EndObject();
  EXPECT_EQ(json.str(), R"({"keep":"value"})");
}

whois::ParsedWhois SampleParse() {
  whois::ParsedWhois parsed;
  parsed.domain_name = "EXAMPLE.COM";
  parsed.registrar = "GoDaddy.com, LLC";
  parsed.created = "2010-04-01";
  parsed.expires = "2016-04-01";
  parsed.name_servers = {"ns1.example.com", "ns2.example.com"};
  parsed.statuses = {"clientTransferProhibited"};
  parsed.registrant.name = "John \"JJ\" Smith";
  parsed.registrant.country = "US";
  parsed.registrant.street = {"1 Main St"};
  parsed.log_prob = -0.01;
  return parsed;
}

TEST(JsonExportTest, PlainJsonContainsAllFields) {
  const std::string json = whois::ToJson(SampleParse());
  EXPECT_NE(json.find(R"("domainName":"EXAMPLE.COM")"), std::string::npos);
  EXPECT_NE(json.find(R"("registrar":"GoDaddy.com, LLC")"), std::string::npos);
  EXPECT_NE(json.find(R"("nameServers":["ns1.example.com","ns2.example.com"])"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"John \"JJ\" Smith")"), std::string::npos);
  EXPECT_NE(json.find(R"("parseLogProb")"), std::string::npos);
}

TEST(JsonExportTest, PlainJsonOmitsEmptyFields) {
  whois::ParsedWhois parsed;
  parsed.domain_name = "X.COM";
  const std::string json = whois::ToJson(parsed);
  EXPECT_EQ(json.find("registrar"), std::string::npos);
  EXPECT_EQ(json.find("registrant"), std::string::npos);
}

TEST(JsonExportTest, RdapShape) {
  const std::string json = whois::ToRdapJson(SampleParse());
  EXPECT_NE(json.find(R"("objectClassName":"domain")"), std::string::npos);
  EXPECT_NE(json.find(R"("eventAction":"registration")"), std::string::npos);
  EXPECT_NE(json.find(R"("eventAction":"expiration")"), std::string::npos);
  // No "last changed" event: updated is empty.
  EXPECT_EQ(json.find("last changed"), std::string::npos);
  EXPECT_NE(json.find(R"("roles":["registrar"])"), std::string::npos);
  EXPECT_NE(json.find(R"("roles":["registrant"])"), std::string::npos);
  EXPECT_NE(json.find(R"("ldhName":"ns1.example.com")"), std::string::npos);
}

}  // namespace
}  // namespace whoiscrf
