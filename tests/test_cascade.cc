// Parser cascade: dispatch-tier selection on crafted records, cascade-vs-
// pure-CRF field agreement on the labeled corpus, shadow-sample
// disagreement accounting, and fail-closed fallthrough (docs/cascade.md).
// The concurrency test is exercised by the -DWHOISCRF_TSAN=ON CI job.
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cascade/cascade.h"
#include "datagen/corpus_gen.h"
#include "obs/metrics.h"
#include "text/line_splitter.h"
#include "whois/record.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cascade {
namespace {

using whois::LabeledRecord;
using whois::Level1Label;
using whois::Level2Label;
using whois::ParsedWhois;

std::vector<LabeledRecord> MakeCorpus(size_t n, uint64_t seed,
                                      double drift) {
  datagen::CorpusOptions options;
  options.size = n;
  options.seed = seed;
  options.drift_fraction = drift;
  datagen::CorpusGenerator generator(options);
  std::vector<LabeledRecord> out;
  for (size_t i = 0; i < n; ++i) out.push_back(generator.Generate(i).thick);
  return out;
}

// Hand-crafted labeled record: every line of `lines` is labeled (all
// contain alphanumerics), with optional registrant subfields.
LabeledRecord MakeRecord(
    const std::vector<std::tuple<std::string, Level1Label,
                                 std::optional<Level2Label>>>& lines) {
  LabeledRecord record;
  for (const auto& [text, label, sub] : lines) {
    record.text += text;
    record.text += '\n';
    record.labels.push_back(label);
    record.sub_labels.push_back(sub);
  }
  record.Validate();
  return record;
}

// A tiny two-format corpus the dispatch tests control completely.
std::vector<LabeledRecord> HandCorpus() {
  std::vector<LabeledRecord> corpus;
  // Format alpha.
  corpus.push_back(MakeRecord({
      {"Domain Name: example.com", Level1Label::kDomain, std::nullopt},
      {"Registrar: Alpha Registrations", Level1Label::kRegistrar,
       std::nullopt},
      {"Creation Date: 2001-05-10", Level1Label::kDate, std::nullopt},
      {"Registrant Name: John Doe", Level1Label::kRegistrant,
       Level2Label::kName},
      {"Registrant Email: john@example.com", Level1Label::kRegistrant,
       Level2Label::kEmail},
  }));
  // Format beta: same information, disjoint schema.
  corpus.push_back(MakeRecord({
      {"domain: example.net", Level1Label::kDomain, std::nullopt},
      {"sponsor: Beta LLC", Level1Label::kRegistrar, std::nullopt},
      {"created: 2002-03-04", Level1Label::kDate, std::nullopt},
      {"owner-name: Jane Roe", Level1Label::kRegistrant,
       Level2Label::kName},
      {"owner-email: jane@example.net", Level1Label::kRegistrant,
       Level2Label::kEmail},
  }));
  return corpus;
}

// Gold key fields for accuracy scoring: extract with the record's own
// labels (the same field extractor every parser shares).
ParsedWhois GoldParse(const LabeledRecord& record) {
  const auto lines = text::SplitRecord(record.text);
  std::vector<Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == Level1Label::kRegistrant) {
      subs.push_back(record.sub_labels[i].value_or(Level2Label::kOther));
    }
  }
  ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const ParsedWhois& a, const ParsedWhois& b) {
  const auto va = KeyFieldValues(a);
  const auto vb = KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

class CascadeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new std::vector<LabeledRecord>(MakeCorpus(150, 99, 0.25));
    crf_ = new whois::WhoisParser(whois::WhoisParser::Train(*corpus_));
  }
  static void TearDownTestSuite() {
    delete crf_;
    delete corpus_;
    crf_ = nullptr;
    corpus_ = nullptr;
  }

  static std::vector<LabeledRecord>* corpus_;
  static whois::WhoisParser* crf_;
};

std::vector<LabeledRecord>* CascadeTest::corpus_ = nullptr;
whois::WhoisParser* CascadeTest::crf_ = nullptr;

TEST_F(CascadeTest, KeyFieldValuesShape) {
  ParsedWhois p;
  p.domain_name = "a.com";
  p.registrant.email = "x@y.z";
  const auto values = KeyFieldValues(p);
  ASSERT_EQ(values.size(), kNumKeyFields);
  EXPECT_EQ(values[0], "a.com");
  EXPECT_TRUE(KeyFieldsAgree(p, p));
  ParsedWhois q = p;
  q.registrar = "other";
  EXPECT_FALSE(KeyFieldsAgree(p, q));
}

TEST_F(CascadeTest, DispatchTierSelection) {
  const CascadeParser cascade(crf_, HandCorpus());
  whois::ParseWorkspace ws;

  // Exact known format (new values, same schema): template tier.
  const auto known = MakeRecord({
      {"Domain Name: fresh.com", Level1Label::kDomain, std::nullopt},
      {"Registrar: Alpha Registrations", Level1Label::kRegistrar,
       std::nullopt},
      {"Creation Date: 2011-11-11", Level1Label::kDate, std::nullopt},
      {"Registrant Name: Fresh Person", Level1Label::kRegistrant,
       Level2Label::kName},
      {"Registrant Email: fresh@fresh.com", Level1Label::kRegistrant,
       Level2Label::kEmail},
  });
  const CascadeResult hit = cascade.Parse(known.text, ws);
  EXPECT_EQ(hit.tier, Tier::kTemplate);
  EXPECT_EQ(hit.template_fallthrough, Fallthrough::kNone);
  EXPECT_EQ(hit.parsed.domain_name, "fresh.com");
  EXPECT_EQ(hit.parsed.registrant.name, "Fresh Person");
  EXPECT_EQ(hit.parsed.line_labels, known.labels);

  // Titles from two different templates: no single template matches, but
  // every title is known to the rule base -> rule tier.
  const CascadeResult mixed = cascade.Parse(
      "Domain Name: mixed.org\n"
      "sponsor: Beta LLC\n"
      "Creation Date: 2015-01-02\n"
      "owner-email: m@mixed.org\n",
      ws);
  EXPECT_EQ(mixed.tier, Tier::kRule);
  EXPECT_EQ(mixed.template_fallthrough, Fallthrough::kTemplateMiss);
  EXPECT_EQ(mixed.rule_fallthrough, Fallthrough::kNone);
  EXPECT_EQ(mixed.parsed.domain_name, "mixed.org");
  EXPECT_EQ(mixed.parsed.registrar, "Beta LLC");

  // A title no rule has ever seen: both cheap tiers fail closed.
  const CascadeResult unknown = cascade.Parse(
      "Domain Name: odd.net\n"
      "Flux Capacitor: enabled\n"
      "Creation Date: 2015-01-02\n",
      ws);
  EXPECT_EQ(unknown.tier, Tier::kCrf);
  EXPECT_EQ(unknown.template_fallthrough, Fallthrough::kTemplateMiss);
  EXPECT_EQ(unknown.rule_fallthrough, Fallthrough::kRuleUnknownTitles);

  // Mostly free text the rule base can only guess at: low learned
  // coverage -> CRF.
  const CascadeResult freeform = cascade.Parse(
      "Domain Name: prose.net\n"
      "this line is unstructured prose about nothing\n"
      "and so is this one with more words in it\n"
      "plus a third line of filler text here\n",
      ws);
  EXPECT_EQ(freeform.tier, Tier::kCrf);
  EXPECT_EQ(freeform.rule_fallthrough, Fallthrough::kRuleLowCoverage);
}

TEST_F(CascadeTest, TemplateMissFallsThroughFailClosed) {
  const CascadeParser cascade(crf_, HandCorpus());
  whois::ParseWorkspace ws;
  // A drifted schema (one renamed field) must never be claimed by the
  // template tier.
  const CascadeResult result = cascade.Parse(
      "Domain Name: renamed.com\n"
      "Registrar Of Record: Alpha Registrations\n"
      "Creation Date: 2011-11-11\n",
      ws);
  EXPECT_NE(result.tier, Tier::kTemplate);
  EXPECT_EQ(result.template_fallthrough, Fallthrough::kTemplateMiss);
}

TEST_F(CascadeTest, CascadeMatchesPureCrfAccuracy) {
  const CascadeParser cascade(crf_, *corpus_);
  whois::ParseWorkspace ws;

  size_t cheap = 0;
  size_t cascade_agree = 0, crf_agree = 0, total_fields = 0;
  for (const LabeledRecord& record : *corpus_) {
    const CascadeResult result = cascade.Parse(record.text, ws);
    if (result.tier != Tier::kCrf) ++cheap;
    const ParsedWhois pure = crf_->Parse(record.text, ws);
    const ParsedWhois gold = GoldParse(record);
    cascade_agree += CountAgreeingKeyFields(result.parsed, gold);
    crf_agree += CountAgreeingKeyFields(pure, gold);
    total_fields += kNumKeyFields;
  }
  // The cascade must actually divert records off the CRF path...
  EXPECT_GT(cheap, corpus_->size() / 2);
  // ...at equal field-level accuracy (cheap tiers built from the same
  // corpus label their own formats exactly; small slack for genuinely
  // ambiguous lines).
  const double cascade_acc =
      static_cast<double>(cascade_agree) / static_cast<double>(total_fields);
  const double crf_acc =
      static_cast<double>(crf_agree) / static_cast<double>(total_fields);
  EXPECT_GE(cascade_acc, crf_acc - 0.01);
}

TEST_F(CascadeTest, ShadowSamplingCountsDisagreements) {
  // Cheap tiers built from a *corrupted* corpus: every date line labeled
  // null, so the cheap path never extracts dates while the CRF (trained on
  // the correct corpus) does — guaranteed field disagreements on any
  // record with a date the CRF finds.
  std::vector<LabeledRecord> corrupted = *corpus_;
  for (LabeledRecord& record : corrupted) {
    for (Level1Label& label : record.labels) {
      if (label == Level1Label::kDate) label = Level1Label::kNull;
    }
  }
  CascadeOptions options;
  options.shadow_sample_rate = 1.0;  // shadow every cheap-path record
  const CascadeParser cascade(crf_, corrupted, options);
  whois::ParseWorkspace ws;

  size_t cheap = 0, sampled = 0, disagreed = 0;
  for (const LabeledRecord& record : *corpus_) {
    const CascadeResult result = cascade.Parse(record.text, ws);
    if (result.tier == Tier::kCrf) continue;
    ++cheap;
    if (result.shadow_sampled) ++sampled;
    if (result.shadow_disagreed) ++disagreed;
  }
  ASSERT_GT(cheap, 0u);
  EXPECT_EQ(sampled, cheap);  // rate 1.0: every cheap record is shadowed
  EXPECT_GT(disagreed, cheap / 2);

  // The per-registrar snapshot must account for exactly the same events.
  uint64_t snapshot_samples = 0, snapshot_disagreements = 0;
  for (const auto& [registrar, stats] : cascade.ShadowSnapshot()) {
    snapshot_samples += stats.samples;
    snapshot_disagreements += stats.disagreements;
  }
  EXPECT_EQ(snapshot_samples, sampled);
  EXPECT_EQ(snapshot_disagreements, disagreed);

  // And the registry counters can never lag the per-instance tallies.
  const auto& registry = obs::Registry::Global();
  uint64_t metric_samples = 0;
  for (const auto& [registrar, stats] : cascade.ShadowSnapshot()) {
    metric_samples += registry.CounterValue(
        "whoiscrf_cascade_shadow_samples_total", {{"registrar", registrar}});
  }
  EXPECT_GE(metric_samples, snapshot_samples);
}

TEST_F(CascadeTest, ShadowSamplingRateIsDeterministic) {
  CascadeOptions options;
  options.shadow_sample_rate = 0.25;  // every 4th cheap-path record
  const CascadeParser cascade(crf_, *corpus_, options);
  whois::ParseWorkspace ws;
  size_t cheap = 0, sampled = 0;
  for (const LabeledRecord& record : *corpus_) {
    const CascadeResult result = cascade.Parse(record.text, ws);
    if (result.tier == Tier::kCrf) continue;
    ++cheap;
    if (result.shadow_sampled) ++sampled;
  }
  ASSERT_GT(cheap, 4u);
  EXPECT_EQ(sampled, (cheap + 3) / 4);  // ticks 0, 4, 8, ...
}

TEST_F(CascadeTest, ConcurrentParseIsSafe) {
  CascadeOptions options;
  options.shadow_sample_rate = 0.5;  // exercise the shadow lock under TSan
  const CascadeParser cascade(crf_, *corpus_, options);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 30;
  std::vector<std::thread> threads;
  std::vector<size_t> cheap_counts(kThreads, 0);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      whois::ParseWorkspace ws;
      for (size_t i = 0; i < kPerThread; ++i) {
        const LabeledRecord& record = (*corpus_)[(t * kPerThread + i) %
                                                 corpus_->size()];
        const CascadeResult result = cascade.Parse(record.text, ws);
        if (result.tier != Tier::kCrf) ++cheap_counts[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  size_t cheap = 0;
  for (size_t c : cheap_counts) cheap += c;
  uint64_t snapshot_samples = 0;
  for (const auto& [registrar, stats] : cascade.ShadowSnapshot()) {
    snapshot_samples += stats.samples;
  }
  // Every 2nd cheap-path record across all threads was sampled.
  EXPECT_EQ(snapshot_samples, (cheap + 1) / 2);
}

}  // namespace
}  // namespace whoiscrf::cascade
