// Event-driven serving: the epoll front end's connection state machine
// under slow and hostile clients (one-byte trickle, mid-frame disconnect,
// write-queue overflow and backpressure, pipelined ordering with
// out-of-order completions), the consistent-hash ring, and the shard
// router (forwarding, affinity, shard death and recovery, drain).
//
// Like test_serve.cc, run these in the -DWHOISCRF_ASAN=ON and
// -DWHOISCRF_TSAN=ON trees: loop-thread hand-offs and the drain/watchdog
// paths are exactly what the sanitizers exist for.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::serve {
namespace {

// ---------------------------------------------------------------------------
// EventLoop

TEST(ServeEventLoopTest, PostedTasksRunInOrderOnTheLoopThread) {
  EventLoop loop;
  std::thread runner([&] { loop.Run(); });
  const std::thread::id runner_id = runner.get_id();
  std::vector<int> order;
  std::thread::id loop_thread;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  for (int i = 0; i < 5; ++i) {
    loop.Post([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      loop_thread = std::this_thread::get_id();
      if (i == 4) {
        done = true;
        cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return done; }));
  }
  loop.Stop();
  runner.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(loop_thread, runner_id);
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

TEST(ServeHashRingTest, OwnerIsDeterministicAndCoversAllShards) {
  const HashRing ring_a(4, 64);
  const HashRing ring_b(4, 64);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t hash = Fnv1a64("record-" + std::to_string(i));
    const int owner = ring_a.Owner(hash);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, 4);
    EXPECT_EQ(owner, ring_b.Owner(hash));
    seen.insert(owner);
  }
  EXPECT_EQ(seen.size(), 4u);  // every shard owns some keyspace
}

TEST(ServeHashRingTest, AddingAShardOnlyRemapsToTheNewShard) {
  const HashRing before(4, 64);
  const HashRing after(5, 64);
  int moved = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t hash = Fnv1a64("record-" + std::to_string(i));
    const int owner_before = before.Owner(hash);
    const int owner_after = after.Owner(hash);
    if (owner_after != owner_before) {
      // The minimal-remap property: a key only ever moves TO the added
      // shard, never between the old ones.
      EXPECT_EQ(owner_after, 4);
      ++moved;
    }
  }
  EXPECT_GT(moved, 0);            // the new shard took some keyspace...
  EXPECT_LT(moved, 2000 * 2 / 4);  // ...but nowhere near a full reshuffle
}

TEST(ServeHashRingTest, PickSkipsUnhealthyShardsAndFailsWhenAllAre) {
  const HashRing ring(3, 32);
  const uint64_t hash = Fnv1a64("some record");
  const int owner = ring.Owner(hash);
  const int fallback =
      ring.Pick(hash, [owner](size_t s) { return static_cast<int>(s) != owner; });
  ASSERT_GE(fallback, 0);
  EXPECT_NE(fallback, owner);
  EXPECT_EQ(ring.Pick(hash, [](size_t) { return false; }), -1);
}

// ---------------------------------------------------------------------------
// Shared fixture: a trained parser + TCP helpers.

class ServeEventTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 200;
    options.seed = 42;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<whois::LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new whois::WhoisParser(whois::WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }

  static std::string Record(size_t i) {
    return generator_->Generate(120 + i).thick.text;
  }
  static std::string OfflineJson(const std::string& record) {
    return whois::ToJson(parser_->Parse(record));
  }
  static uint64_t CounterNow(const char* name,
                             const obs::Labels& labels = {}) {
    return obs::Registry::Global().CounterValue(name, labels);
  }

  static int Connect(uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  // True when `fd` has readable bytes within `timeout_ms`.
  static bool Readable(int fd, int timeout_ms) {
    pollfd pfd{fd, POLLIN, 0};
    return ::poll(&pfd, 1, timeout_ms) > 0;
  }

  static whois::WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

whois::WhoisParser* ServeEventTest::parser_ = nullptr;
datagen::CorpusGenerator* ServeEventTest::generator_ = nullptr;

// ---------------------------------------------------------------------------
// Epoll front end

TEST_F(ServeEventTest, OneByteAtATimeTrickleStillParses) {
  ParseServerOptions options;
  options.service.threads = 1;
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  const std::string record = Record(0);
  std::string frame;
  {
    StringStream framed;
    ASSERT_TRUE(WriteFrame(framed, record));
    frame = framed.output();
  }
  // A frame dribbled one byte per write() must assemble incrementally
  // without blocking a thread or corrupting the stream.
  for (const char byte : frame) {
    ASSERT_EQ(::send(fd, &byte, 1, 0), 1);
  }
  FdStream stream(fd);
  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(body, OfflineJson(record));
  ::close(fd);
  server.Shutdown();
}

TEST_F(ServeEventTest, MidFrameDisconnectLeavesServerHealthy) {
  ParseServerOptions options;
  options.service.threads = 1;
  ParseServer server(*parser_, options);

  // A client that promises 100 bytes, delivers 10, and vanishes.
  const int torn = Connect(server.port());
  const std::string partial = std::string("\x64\x00\x00\x00", 4) + "0123456789";
  ASSERT_EQ(::send(torn, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));
  ::close(torn);

  // The server must shrug it off: a fresh connection round-trips.
  const int fd = Connect(server.port());
  FdStream stream(fd);
  const std::string record = Record(1);
  ASSERT_TRUE(WriteFrame(stream, record));
  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(body, OfflineJson(record));
  ::close(fd);
  server.Shutdown();
}

TEST_F(ServeEventTest, PipelinedResponsesStayInRequestOrder) {
  // Two workers, request A blocked in parse, request B fails fast: B's
  // completion lands first, but the wire must still answer A then B.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> blocked{0};
  const std::string slow = "SLOW\n";
  ParseServerOptions options;
  options.service.threads = 2;
  options.service.cache_entries = 0;
  options.service.parse_override =
      [&](const std::string& record, whois::ParseWorkspace&) {
        if (record == slow) {
          std::unique_lock<std::mutex> lock(mu);
          blocked.fetch_add(1);
          cv.notify_all();
          cv.wait(lock, [&] { return release; });
          return whois::ParsedWhois{};
        }
        throw std::runtime_error("fast lane");
      };
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  FdStream stream(fd);
  ASSERT_TRUE(WriteFrame(stream, slow));
  ASSERT_TRUE(WriteFrame(stream, "FAST\n"));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return blocked.load() >= 1; }));
  }
  // B has completed (kError) by now or shortly; either way nothing may be
  // written while A's slot is still open.
  EXPECT_FALSE(Readable(fd, 150));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);  // the slow request answers first
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kError);
  EXPECT_EQ(body, "parse failed: fast lane");
  ::close(fd);
  server.Shutdown();
}

TEST_F(ServeEventTest, WriteQueueOverflowPausesReadingUntilDrained) {
  ParseServerOptions options;
  options.service.threads = 1;
  options.service.queue_capacity = 1 << 16;
  options.write_queue_max_bytes = 16 * 1024;
  ParseServer server(*parser_, options);

  const uint64_t stalls_before =
      CounterNow("whoiscrf_serve_backpressure_stalls_total");

  // A small client receive window so responses back up on the server.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  const std::string record = Record(2);
  const std::string expected = OfflineJson(record);
  // Enough response bytes to overflow the kernel's autotuned send buffer
  // (tcp_wmem max is typically 4 MiB) so writes actually hit EAGAIN and
  // the user-space write queue fills past its 16 KiB bound.
  const size_t kRequests = (12u << 20) / (expected.size() + 5) + 1;
  // The writer must be a separate thread: once the server pauses reading,
  // the client's own blocking send backs up too.
  std::thread writer([&] {
    FdStream stream(fd);
    for (size_t i = 0; i < kRequests; ++i) {
      if (!WriteFrame(stream, record)) break;
    }
  });

  // The server answers from cache far faster than this client drains, so
  // the write queue must cross the bound and pause the connection.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (CounterNow("whoiscrf_serve_backpressure_stalls_total") ==
             stalls_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(CounterNow("whoiscrf_serve_backpressure_stalls_total"),
            stalls_before);

  // Now drain: every response must arrive, in order, byte-identical.
  FdStream stream(fd);
  for (size_t i = 0; i < kRequests; ++i) {
    Status status = Status::kError;
    std::string body;
    ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
              FrameRead::kFrame)
        << "response " << i;
    ASSERT_EQ(status, Status::kOk) << "response " << i;
    ASSERT_EQ(body, expected) << "response " << i;
  }
  writer.join();
  ::close(fd);
  server.Shutdown();
}

TEST_F(ServeEventTest, MultipleEventLoopsServeConcurrentConnections) {
  ParseServerOptions options;
  options.service.threads = 2;
  options.event_loops = 2;
  ParseServer server(*parser_, options);

  std::vector<int> fds;
  for (size_t i = 0; i < 6; ++i) fds.push_back(Connect(server.port()));
  for (size_t i = 0; i < fds.size(); ++i) {
    FdStream stream(fds[i]);
    const std::string record = Record(i);
    ASSERT_TRUE(WriteFrame(stream, record));
    Status status = Status::kError;
    std::string body;
    ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
              FrameRead::kFrame);
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(body, OfflineJson(record));
  }
  for (const int fd : fds) ::close(fd);
  server.Shutdown();
}

TEST_F(ServeEventTest, DrainCompletesAdmittedPipelinedRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> blocked{0};
  ParseServerOptions options;
  options.service.threads = 1;
  options.service.cache_entries = 0;
  options.service.parse_override =
      [&](const std::string&, whois::ParseWorkspace&) {
        std::unique_lock<std::mutex> lock(mu);
        blocked.fetch_add(1);
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
        return whois::ParsedWhois{};
      };
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  FdStream stream(fd);
  for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(WriteFrame(stream, Record(i)));
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                            [&] { return blocked.load() >= 1; }));
  }
  // Shutdown with one request mid-parse and two queued behind it: drain
  // must finish and deliver all three before the connection closes.
  std::thread shutdown([&] { server.Shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();

  const std::string expected = whois::ToJson(whois::ParsedWhois{});
  for (size_t i = 0; i < 3; ++i) {
    Status status = Status::kError;
    std::string body;
    ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
              FrameRead::kFrame)
        << "response " << i;
    EXPECT_EQ(status, Status::kOk);
    EXPECT_EQ(body, expected);
  }
  Status status = Status::kOk;
  std::string body;
  EXPECT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kEof);
  shutdown.join();
  ::close(fd);
}

TEST_F(ServeEventTest, ThreadsFrontendStillRoundTrips) {
  ParseServerOptions options;
  options.service.threads = 1;
  options.frontend = Frontend::kThreads;
  ParseServer server(*parser_, options);

  const int fd = Connect(server.port());
  FdStream stream(fd);
  const std::string record = Record(3);
  ASSERT_TRUE(WriteFrame(stream, record));
  Status status = Status::kError;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kOk);
  EXPECT_EQ(body, OfflineJson(record));
  ::close(fd);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Shard router

class ServeRouterTest : public ServeEventTest {
 protected:
  static std::unique_ptr<ParseServer> Backend(uint16_t port = 0) {
    ParseServerOptions options;
    options.port = port;
    options.service.threads = 1;
    return std::make_unique<ParseServer>(*parser_, options);
  }

  static ShardRouterOptions RouterOptions(
      const std::vector<const ParseServer*>& backends) {
    ShardRouterOptions options;
    for (const ParseServer* backend : backends) {
      options.backends.push_back(std::to_string(backend->port()));
    }
    options.health_interval_ms = 0;  // deterministic: no prober
    return options;
  }

  static uint64_t Forwarded(size_t shard) {
    return CounterNow("whoiscrf_router_forwarded_total",
                      {{"shard", std::to_string(shard)}});
  }
};

TEST_F(ServeRouterTest, TwoShardsRoundTripWithCacheAffinity) {
  auto backend_a = Backend();
  auto backend_b = Backend();
  ShardRouter router(RouterOptions({backend_a.get(), backend_b.get()}));

  const uint64_t fwd_before = Forwarded(0) + Forwarded(1);
  const uint64_t hits_before = CounterNow("whoiscrf_serve_cache_hits_total");

  const int fd = Connect(router.port());
  FdStream stream(fd);
  constexpr size_t kRecords = 40;
  for (size_t pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < kRecords; ++i) {
      const std::string record = Record(i);
      ASSERT_TRUE(WriteFrame(stream, record));
      Status status = Status::kError;
      std::string body;
      ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
                FrameRead::kFrame);
      ASSERT_EQ(status, Status::kOk);
      EXPECT_EQ(body, OfflineJson(record)) << "record " << i;
    }
  }
  ::close(fd);

  // Both shards took traffic, and the second pass hit the caches — the
  // consistent hash sent every repeat to the shard that parsed it first.
  EXPECT_GT(Forwarded(0), 0u);
  EXPECT_GT(Forwarded(1), 0u);
  EXPECT_EQ(Forwarded(0) + Forwarded(1) - fwd_before, 2 * kRecords);
  EXPECT_EQ(CounterNow("whoiscrf_serve_cache_hits_total") - hits_before,
            kRecords);

  router.Shutdown();
  backend_a->Shutdown();
  backend_b->Shutdown();
}

TEST_F(ServeRouterTest, PipelinedOrderingHoldsAcrossShards) {
  auto backend_a = Backend();
  auto backend_b = Backend();
  ShardRouter router(RouterOptions({backend_a.get(), backend_b.get()}));

  const int fd = Connect(router.port());
  FdStream stream(fd);
  constexpr size_t kRecords = 24;
  // All requests on the wire before any response is read: replies
  // interleave across shards upstream but must come back in order.
  for (size_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(WriteFrame(stream, Record(i)));
  }
  for (size_t i = 0; i < kRecords; ++i) {
    Status status = Status::kError;
    std::string body;
    ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
              FrameRead::kFrame)
        << "response " << i;
    ASSERT_EQ(status, Status::kOk);
    EXPECT_EQ(body, OfflineJson(Record(i))) << "response " << i;
  }
  ::close(fd);
  router.Shutdown();
  backend_a->Shutdown();
  backend_b->Shutdown();
}

TEST_F(ServeRouterTest, ShardDeathRecoversAndProbeReadmits) {
  auto backend_a = Backend();
  auto backend_b = Backend();
  const uint16_t port_b = backend_b->port();
  ShardRouterOptions options =
      RouterOptions({backend_a.get(), backend_b.get()});
  options.health_interval_ms = 25;
  options.health_timeout_ms = 250;
  ShardRouter router(options);

  const int fd = Connect(router.port());
  FdStream stream(fd);
  constexpr size_t kRecords = 16;
  const auto round_trip_all = [&] {
    for (size_t i = 0; i < kRecords; ++i) {
      const std::string record = Record(i);
      ASSERT_TRUE(WriteFrame(stream, record));
      Status status = Status::kError;
      std::string body;
      ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
                FrameRead::kFrame);
      ASSERT_EQ(status, Status::kOk) << body;
      EXPECT_EQ(body, OfflineJson(record));
    }
  };
  round_trip_all();

  // Kill shard 1. Requests it owned re-route to shard 0 — every request
  // still answers kOk — and the prober ejects it.
  backend_b->Shutdown();
  backend_b.reset();
  round_trip_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.ShardHealthy(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(router.ShardHealthy(1));

  // Restart it on the same port (SO_REUSEADDR): the prober re-admits and
  // traffic flows to both shards again.
  backend_b = Backend(port_b);
  while (!router.ShardHealthy(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(router.ShardHealthy(1));
  const uint64_t fwd_b_before = Forwarded(1);
  round_trip_all();
  EXPECT_GT(Forwarded(1), fwd_b_before);

  ::close(fd);
  router.Shutdown();
  backend_a->Shutdown();
  backend_b->Shutdown();
}

TEST_F(ServeRouterTest, NoReachableShardAnswersError) {
  // Reserve an ephemeral port, then free it: nothing listens there.
  uint16_t dead_port = 0;
  const int placeholder = CreateListener(0, 1, &dead_port);
  ::close(placeholder);

  ShardRouterOptions options;
  options.backends = {std::to_string(dead_port)};
  options.health_interval_ms = 0;
  ShardRouter router(options);

  const int fd = Connect(router.port());
  FdStream stream(fd);
  ASSERT_TRUE(WriteFrame(stream, Record(0)));
  Status status = Status::kOk;
  std::string body;
  ASSERT_EQ(ReadResponse(stream, status, body, kDefaultMaxFrameBytes),
            FrameRead::kFrame);
  EXPECT_EQ(status, Status::kError);
  const uint64_t unrouted = CounterNow("whoiscrf_router_unrouted_total");
  EXPECT_GT(unrouted, 0u);
  ::close(fd);
  router.Shutdown();
}

}  // namespace
}  // namespace whoiscrf::serve
