// Self-healing model lifecycle (docs/lifecycle.md): drift-detector
// hysteresis, the fail-closed retrain gate and quarantine, probation
// rollback, kill/resume durable state, reservoir-buffer determinism, RCU
// hot swap (ModelHost + versioned cache keys), and the router's jittered
// probe backoff.
//
// Run these in the -DWHOISCRF_ASAN=ON and -DWHOISCRF_TSAN=ON trees too:
// the swap-under-load and background-retrain tests are exactly the RCU
// object-lifetime races those builds exist to catch.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cascade/cascade.h"
#include "datagen/temporal.h"
#include "lifecycle/buffer.h"
#include "lifecycle/controller.h"
#include "lifecycle/drift.h"
#include "obs/metrics.h"
#include "serve/cache.h"
#include "serve/model_host.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "text/line_splitter.h"
#include "whois/json_export.h"
#include "whois/record.h"
#include "whois/record_store.h"
#include "whois/stream_checkpoint.h"
#include "whois/whois_parser.h"

namespace whoiscrf {
namespace {

using lifecycle::ControllerOptions;
using lifecycle::DriftDetector;
using lifecycle::DriftDetectorOptions;
using lifecycle::LifecycleController;
using lifecycle::Observation;
using lifecycle::RetrainBuffer;
using lifecycle::RetrainBufferOptions;
using lifecycle::RetrainOutcome;
using serve::ModelHost;
using serve::ProbeBackoff;
using serve::ResultCache;
using whois::LabeledRecord;

// ---------------------------------------------------------------------------
// Probe backoff (router satellite)

TEST(LifecycleBackoffTest, BackoffDoublesJittersCapsAndResetsOnSuccess) {
  ProbeBackoff backoff(/*base_ms=*/100, /*max_ms=*/1000, /*jitter_seed=*/7);
  EXPECT_EQ(backoff.current_ms(), 100u);
  // Success returns exactly the base cadence, un-jittered.
  EXPECT_EQ(backoff.Next(true), 100u);

  uint64_t expected = 100;
  for (int i = 0; i < 6; ++i) {
    const uint64_t delay = backoff.Next(false);
    expected = std::min<uint64_t>(expected * 2, 1000);
    EXPECT_EQ(backoff.current_ms(), expected) << "failure " << i;
    // Jitter scales by [0.75, 1.25), floored at base_ms.
    EXPECT_GE(delay, std::max<uint64_t>(100, expected - expected / 4));
    EXPECT_LE(delay, expected + expected / 4);
  }
  // The un-jittered schedule capped at max_ms.
  EXPECT_EQ(backoff.current_ms(), 1000u);
  // One success resets the whole schedule.
  EXPECT_EQ(backoff.Next(true), 100u);
  EXPECT_EQ(backoff.current_ms(), 100u);
}

TEST(LifecycleBackoffTest, JitterIsDeterministicPerSeedAndSpreadsAcrossSeeds) {
  ProbeBackoff a(100, 10000, 3), b(100, 10000, 3), c(100, 10000, 4);
  bool seeds_diverged = false;
  for (int i = 0; i < 8; ++i) {
    const uint64_t da = a.Next(false);
    EXPECT_EQ(da, b.Next(false));  // same seed, same schedule — testable
    if (da != c.Next(false)) seeds_diverged = true;
  }
  // Different routers (seeds) must not probe in lockstep.
  EXPECT_TRUE(seeds_diverged);
}

// ---------------------------------------------------------------------------
// Versioned cache keys

TEST(LifecycleCacheTest, VersionSuffixAppendStripRoundTrip) {
  std::string key = "Domain Name: A.COM\n";
  const std::string original = key;
  ResultCache::AppendVersionSuffix(key, 0x0102030405060708ULL);
  EXPECT_EQ(key.size(), original.size() + sizeof(uint64_t));
  EXPECT_EQ(key.compare(0, original.size(), original), 0);
  ResultCache::StripVersionSuffix(key);
  EXPECT_EQ(key, original);
}

TEST(LifecycleCacheTest, EvictVersionRemovesExactlyThatVersion) {
  ResultCache cache(/*max_entries=*/16, /*shards=*/2);
  const auto keyed = [](std::string record, uint64_t version) {
    ResultCache::AppendVersionSuffix(record, version);
    return record;
  };
  cache.Put(keyed("r1", 1), "v1-json-1");
  cache.Put(keyed("r2", 1), "v1-json-2");
  cache.Put(keyed("r1", 2), "v2-json-1");
  EXPECT_EQ(cache.entries(), 3u);

  EXPECT_EQ(cache.EvictVersion(1), 2u);
  EXPECT_EQ(cache.entries(), 1u);
  std::string value;
  EXPECT_FALSE(cache.Get(keyed("r1", 1), &value));
  EXPECT_FALSE(cache.Get(keyed("r2", 1), &value));
  ASSERT_TRUE(cache.Get(keyed("r1", 2), &value));
  EXPECT_EQ(value, "v2-json-1");
  // Evicting a version with no entries is a no-op.
  EXPECT_EQ(cache.EvictVersion(1), 0u);
  EXPECT_EQ(cache.EvictVersion(7), 0u);
}

// ---------------------------------------------------------------------------
// Shared fixture: a temporal corpus with one schema-change event, a stale
// model trained before the event, and a fresh model trained across it.

std::vector<LabeledRecord> Slice(const datagen::TemporalCorpusGenerator& gen,
                                 size_t begin, size_t end) {
  std::vector<LabeledRecord> out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(gen.Generate(i).thick);
  return out;
}

whois::WhoisParser TrainOn(const std::vector<LabeledRecord>& corpus) {
  whois::WhoisParserOptions options;
  options.trainer.lbfgs.max_iterations = 60;
  return whois::WhoisParser::Train(corpus, options);
}

// Gold key fields via the record's own labels — the same extractor every
// parser shares, so disagreement measures labeling errors only.
whois::ParsedWhois GoldParse(const LabeledRecord& record) {
  const auto lines = text::SplitRecord(record.text);
  std::vector<whois::Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == whois::Level1Label::kRegistrant) {
      subs.push_back(
          record.sub_labels[i].value_or(whois::Level2Label::kOther));
    }
  }
  whois::ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const whois::ParsedWhois& a,
                              const whois::ParsedWhois& b) {
  const auto va = cascade::KeyFieldValues(a);
  const auto vb = cascade::KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

std::string MakeTempDir() {
  std::string path = ::testing::TempDir() + "whoiscrf-lifecycle-XXXXXX";
  if (mkdtemp(path.data()) == nullptr) {
    throw std::runtime_error("mkdtemp failed for " + path);
  }
  return path;
}

class LifecycleModelsTest : public ::testing::Test {
 protected:
  static constexpr size_t kEventAt = 300;  // size * 1 / (events + 1)

  static void SetUpTestSuite() {
    datagen::TemporalCorpusOptions options;
    options.size = 600;
    options.seed = 42;
    options.events = 1;
    gen_ = new datagen::TemporalCorpusGenerator(options);
    ASSERT_EQ(gen_->events()[0].at_index, kEventAt);

    // Stale: has only ever seen the pre-drift schemas.
    stale_ = std::make_shared<const whois::WhoisParser>(
        TrainOn(Slice(*gen_, 0, 120)));
    // Fresh: trained across the event, covering the drifted schemas.
    std::vector<LabeledRecord> mixed = Slice(*gen_, 0, 60);
    std::vector<LabeledRecord> post = Slice(*gen_, kEventAt, kEventAt + 120);
    mixed.insert(mixed.end(), post.begin(), post.end());
    fresh_ = std::make_shared<const whois::WhoisParser>(TrainOn(mixed));

    // A post-drift record the two models provably parse to different JSON
    // (the drifted eras plant kNull decoys a stale model mislabels).
    for (size_t i = kEventAt + 120; i < 600; ++i) {
      const std::string text = gen_->Generate(i).thick.text;
      if (whois::ToJson(stale_->Parse(text)) !=
          whois::ToJson(fresh_->Parse(text))) {
        diff_record_ = new std::string(text);
        break;
      }
    }
    ASSERT_NE(diff_record_, nullptr)
        << "no post-drift record distinguishes the stale and fresh models";
  }

  static void TearDownTestSuite() {
    delete diff_record_;
    stale_.reset();
    fresh_.reset();
    delete gen_;
    diff_record_ = nullptr;
    gen_ = nullptr;
  }

  static std::string Json(const whois::WhoisParser& parser,
                          const std::string& record) {
    return whois::ToJson(parser.Parse(record));
  }

  static datagen::TemporalCorpusGenerator* gen_;
  static std::shared_ptr<const whois::WhoisParser> stale_;
  static std::shared_ptr<const whois::WhoisParser> fresh_;
  static std::string* diff_record_;
};

datagen::TemporalCorpusGenerator* LifecycleModelsTest::gen_ = nullptr;
std::shared_ptr<const whois::WhoisParser> LifecycleModelsTest::stale_;
std::shared_ptr<const whois::WhoisParser> LifecycleModelsTest::fresh_;
std::string* LifecycleModelsTest::diff_record_ = nullptr;

// ---------------------------------------------------------------------------
// Temporal drift scenarios (datagen)

TEST_F(LifecycleModelsTest, DriftEraInjectsNullDecoysDeterministically) {
  // Pre-drift records carry no decoys.
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(gen_->EpochOf(i), 0u);
    EXPECT_EQ(gen_->Generate(i).thick.text.find("Renewal"), std::string::npos);
  }
  EXPECT_EQ(gen_->EpochOf(kEventAt), 1u);

  // Some post-event record from a drifted schema carries both decoy lines,
  // and both are labeled null (field-shaped noise, not data).
  bool found = false;
  for (size_t i = kEventAt; i < kEventAt + 120 && !found; ++i) {
    const LabeledRecord record = gen_->Generate(i).thick;
    if (record.text.find("Renewal") == std::string::npos) continue;
    found = true;
    const auto lines = text::SplitRecord(record.text);
    ASSERT_EQ(lines.size(), record.labels.size());
    bool saw_renewal = false, saw_provider = false;
    for (size_t j = 0; j < lines.size(); ++j) {
      if (lines[j].text.find("Renewal") != std::string::npos) {
        saw_renewal = true;
        EXPECT_EQ(record.labels[j], whois::Level1Label::kNull)
            << lines[j].text;
      }
      if (lines[j].text.find("Notice") != std::string::npos ||
          lines[j].text.find("Partner") != std::string::npos) {
        saw_provider |= record.labels[j] == whois::Level1Label::kNull;
      }
    }
    EXPECT_TRUE(saw_renewal);
    EXPECT_TRUE(saw_provider);
  }
  ASSERT_TRUE(found) << "no drifted-era record in the scan window";

  // Generation is deterministic in (options, index): a second generator
  // reproduces the stream byte for byte.
  datagen::TemporalCorpusGenerator replay(gen_->options());
  for (size_t i : {0ul, 150ul, kEventAt, kEventAt + 77, 599ul}) {
    EXPECT_EQ(replay.Generate(i).thick.text, gen_->Generate(i).thick.text);
  }
}

// ---------------------------------------------------------------------------
// ModelHost (RCU hot swap)

TEST_F(LifecycleModelsTest, ModelHostSnapshotsSurviveSwapAndVersionsGrow) {
  ModelHost host(stale_);
  std::vector<std::pair<uint64_t, uint64_t>> swaps;
  const uint64_t sub = host.Subscribe(
      [&](uint64_t from, uint64_t to) { swaps.emplace_back(from, to); });

  const ModelHost::Snapshot before = host.Acquire();
  EXPECT_EQ(before.version, 1u);
  EXPECT_EQ(before.model.get(), stale_.get());

  EXPECT_EQ(host.Swap(fresh_), 2u);
  EXPECT_EQ(host.version(), 2u);
  EXPECT_EQ(host.Current().get(), fresh_.get());
  // The pre-swap snapshot is untouched and still parses — the RCU story.
  EXPECT_EQ(before.model.get(), stale_.get());
  EXPECT_EQ(Json(*before.model, *diff_record_), Json(*stale_, *diff_record_));
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0], std::make_pair(uint64_t{1}, uint64_t{2}));

  // Publish with an external version authority: forward only.
  host.Publish(stale_, 10);
  EXPECT_EQ(host.version(), 10u);
  EXPECT_THROW(host.Publish(fresh_, 5), std::invalid_argument);
  EXPECT_THROW(host.Publish(fresh_, 10), std::invalid_argument);
  EXPECT_EQ(obs::Registry::Global().GaugeValue("whoiscrf_serve_model_version"),
            10.0);

  host.Unsubscribe(sub);
  host.Swap(fresh_);
  EXPECT_EQ(swaps.size(), 2u);  // Publish notified; the post-unsubscribe
                                // Swap did not
}

TEST_F(LifecycleModelsTest, HotSwapNeverServesStaleCachedJson) {
  const std::string& record = *diff_record_;
  const std::string stale_json = Json(*stale_, record);
  const std::string fresh_json = Json(*fresh_, record);
  ASSERT_NE(stale_json, fresh_json);

  ModelHost host(stale_);
  serve::ParseServiceOptions options;
  options.threads = 1;
  serve::ParseService service(&host, options);

  const serve::ServeResult cold = service.Handle(record);
  ASSERT_EQ(cold.status, serve::Status::kOk);
  EXPECT_EQ(cold.body, stale_json);
  const serve::ServeResult warm = service.Handle(record);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.body, stale_json);

  host.Swap(fresh_);
  // Same record bytes, new version: the old JSON must be unreachable (key
  // inequality) — and the service evicted it eagerly anyway.
  const serve::ServeResult after = service.Handle(record);
  ASSERT_EQ(after.status, serve::Status::kOk);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(after.body, fresh_json);
  const serve::ServeResult cached = service.Handle(record);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_EQ(cached.body, fresh_json);
}

TEST_F(LifecycleModelsTest, SwapUnderPipelinedLoadIsByteExactPerVersion) {
  // Two pipelined bursts over one connection with a hot swap between
  // them. Every response must be kOk (zero request failures) and
  // byte-exact for its version: the pre-swap burst matches the stale
  // model's offline parse, the post-swap burst matches the fresh one —
  // repeated records included, so the versioned cache provably never
  // answers the new version with the old version's JSON.
  std::vector<std::string> records{*diff_record_};
  for (size_t i = 0; i < 3; ++i) {
    records.push_back(gen_->Generate(kEventAt + 200 + i).thick.text);
  }
  std::vector<std::string> stale_json, fresh_json;
  for (const std::string& record : records) {
    stale_json.push_back(Json(*stale_, record));
    fresh_json.push_back(Json(*fresh_, record));
  }

  ModelHost host(stale_);
  serve::ParseServerOptions options;
  options.service.threads = 2;
  serve::ParseServer server(&host, options);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  serve::FdStream stream(fd);

  constexpr size_t kBurst = 20;  // each record served (and cached) 5 times
  const auto burst = [&](const std::vector<std::string>& expected) {
    for (size_t i = 0; i < kBurst; ++i) {
      ASSERT_TRUE(serve::WriteFrame(stream, records[i % records.size()]));
    }
    for (size_t i = 0; i < kBurst; ++i) {
      serve::Status status = serve::Status::kError;
      std::string body;
      ASSERT_EQ(serve::ReadResponse(stream, status, body,
                                    serve::kDefaultMaxFrameBytes),
                serve::FrameRead::kFrame)
          << "request " << i;
      EXPECT_EQ(status, serve::Status::kOk) << "request " << i;
      EXPECT_EQ(body, expected[i % records.size()]) << "request " << i;
    }
  };

  burst(stale_json);
  host.Swap(fresh_);
  burst(fresh_json);  // same bytes, new version: cache hits impossible
  ::close(fd);
  server.Shutdown();
  ASSERT_NE(stale_json[0], fresh_json[0]);  // the bursts truly differed
}

// ---------------------------------------------------------------------------
// Drift detector hysteresis

TEST(LifecycleDriftTest, HysteresisTripsOnceHoldsInDeadBandAndClears) {
  DriftDetectorOptions options;
  options.window = 10;
  options.trip_threshold = 0.3;
  options.trip_windows = 2;
  options.clear_threshold = 0.1;
  options.clear_windows = 2;
  DriftDetector detector(options);
  const std::string reg = "Example Registrar, Inc.";

  // Feeds one full window with `bad` drift signals; returns true if any
  // observation tripped a new alarm.
  const auto window = [&](size_t bad) {
    bool tripped = false;
    for (size_t i = 0; i < options.window; ++i) {
      tripped |= detector.Observe(reg, i < bad);
    }
    return tripped;
  };

  // Dead band (20% > clear, < trip): never alarms, however long it lasts.
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(window(2));
  EXPECT_FALSE(detector.Alarmed(reg));

  // Two consecutive hot windows trip exactly one new alarm.
  EXPECT_FALSE(window(5));  // hot streak 1 of 2
  EXPECT_TRUE(window(5));
  EXPECT_TRUE(detector.Alarmed(reg));
  EXPECT_EQ(detector.State(reg).alarms_tripped, 1u);
  EXPECT_EQ(detector.AlarmedRegistrars(), std::vector<std::string>{reg});

  // Back in the dead band: the alarm holds (no flap) and does not re-trip.
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(window(2));
  EXPECT_TRUE(detector.Alarmed(reg));
  EXPECT_EQ(detector.State(reg).alarms_tripped, 1u);

  // One cool window is not enough; two consecutive clear it.
  EXPECT_FALSE(window(0));
  EXPECT_TRUE(detector.Alarmed(reg));
  EXPECT_FALSE(window(0));
  EXPECT_FALSE(detector.Alarmed(reg));

  // A fresh burst re-trips: lifetime alarm count reaches 2.
  EXPECT_FALSE(window(9));
  EXPECT_TRUE(window(9));
  EXPECT_EQ(detector.State(reg).alarms_tripped, 2u);

  // Registrars are independent buckets.
  EXPECT_FALSE(detector.Alarmed("Other Registrar LLC"));
}

// ---------------------------------------------------------------------------
// Controller: gate, quarantine, probation rollback, durable state

class LifecycleControllerTest : public LifecycleModelsTest {
 protected:
  static ControllerOptions Opts(const std::string& state_dir = "") {
    ControllerOptions options;
    options.drift.window = 8;
    options.buffer.capacity = 64;
    options.buffer.seed = 7;
    options.min_retrain_records = 8;
    options.holdout_fraction = 0.25;
    options.probation_window = 6;
    options.rollback_disagreement_rate = 0.5;
    options.trainer.trainer.lbfgs.max_iterations = 40;
    options.state_dir = state_dir;
    return options;
  }

  // Harvests `n` post-drift records into the controller's buffer via the
  // shadow-disagreement signal (the cascade-backed harvest path).
  static void Harvest(LifecycleController& controller, size_t n,
                      size_t from = kEventAt) {
    for (size_t i = from; i < from + n; ++i) {
      const LabeledRecord truth = gen_->Generate(i).thick;
      Observation obs;
      obs.registrar = truth.text.substr(0, 12);
      obs.shadow_sampled = true;
      obs.shadow_disagreed = true;
      controller.Observe(obs, &truth);
    }
  }
};

TEST_F(LifecycleControllerTest, RetrainWithEmptyBufferIsNoData) {
  LifecycleController controller(stale_, Slice(*gen_, 0, 60), Opts());
  const RetrainOutcome outcome = controller.RetrainNow();
  EXPECT_EQ(outcome.result, RetrainOutcome::Result::kNoData);
  EXPECT_EQ(outcome.version, 1u);
  EXPECT_EQ(controller.version(), 1u);
  EXPECT_EQ(lifecycle::RetrainResultName(outcome.result), "no_data");
}

TEST_F(LifecycleControllerTest, FailingGateQuarantinesCandidateFailClosed) {
  const std::string dir = MakeTempDir();
  ControllerOptions options = Opts(dir);
  // An impossible gate: candidate accuracy can never exceed incumbent + 2.
  options.gate_epsilon = -2.0;
  LifecycleController controller(stale_, Slice(*gen_, 0, 120), options);
  Harvest(controller, 12);
  EXPECT_EQ(controller.buffer_size(), 12u);

  const RetrainOutcome outcome = controller.RetrainNow();
  EXPECT_EQ(outcome.result, RetrainOutcome::Result::kRejected);
  EXPECT_NE(outcome.reason.find("gate failed"), std::string::npos);
  EXPECT_GT(outcome.gate.holdout_records, 0u);
  // Fail-closed: the live model and version are untouched.
  EXPECT_EQ(controller.version(), 1u);
  EXPECT_EQ(controller.Current().get(), stale_.get());
  // The buffer survives for the next attempt.
  EXPECT_EQ(controller.buffer_size(), 12u);

  // The rejected candidate is quarantined with its gate numbers and its
  // model binary, inspectable offline (`whoiscrf quarantine`).
  whois::RecordStoreReader quarantine(dir + "/models-quarantine");
  ASSERT_EQ(quarantine.size(), 1u);
  uint64_t index = 0;
  std::string reason, body;
  whois::ParseQuarantineEntry(quarantine.Get(0), index, reason, body);
  EXPECT_NE(reason.find("gate failed"), std::string::npos);
  EXPECT_NE(body.find("model_file\tquarantine-model-0.bin"),
            std::string::npos);
  struct stat st{};
  EXPECT_EQ(::stat((dir + "/quarantine-model-0.bin").c_str(), &st), 0);
}

TEST_F(LifecycleControllerTest, PromotionThenProbationSpikeRollsBack) {
  ControllerOptions options = Opts();
  options.gate_epsilon = 2.0;  // the gate always passes: isolate the
                               // probation watchdog
  LifecycleController controller(stale_, Slice(*gen_, 0, 120), options);
  std::vector<std::pair<uint64_t, uint64_t>> swaps;
  controller.set_on_swap([&](uint64_t from, uint64_t to,
                             std::shared_ptr<const whois::WhoisParser>) {
    swaps.emplace_back(from, to);
  });

  Harvest(controller, 12);
  const RetrainOutcome outcome = controller.RetrainNow();
  ASSERT_EQ(outcome.result, RetrainOutcome::Result::kPromoted);
  EXPECT_EQ(outcome.version, 2u);
  EXPECT_EQ(controller.version(), 2u);
  EXPECT_NE(controller.Current().get(), stale_.get());
  EXPECT_EQ(controller.buffer_size(), 0u);  // consumed by the retrain
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0], std::make_pair(uint64_t{1}, uint64_t{2}));

  // Probation: 6 shadow samples, all disagreeing — the promotion was bad.
  Observation bad;
  bad.registrar = "Example Registrar, Inc.";
  bad.shadow_sampled = true;
  bad.shadow_disagreed = true;
  for (int i = 0; i < 6; ++i) controller.Observe(bad);

  // Rolled back to the ORIGINAL model object, under a fresh version so
  // caches never confuse its second reign with its first.
  EXPECT_EQ(controller.version(), 3u);
  EXPECT_EQ(controller.Current().get(), stale_.get());
  ASSERT_EQ(swaps.size(), 2u);
  EXPECT_EQ(swaps[1], std::make_pair(uint64_t{2}, uint64_t{3}));
  // Only one step of history: nothing further to roll back to.
  EXPECT_FALSE(controller.Rollback("again"));
  EXPECT_EQ(controller.version(), 3u);
}

TEST_F(LifecycleControllerTest, BackgroundRetrainCancelsAndKeepsIncumbent) {
  ControllerOptions options = Opts();
  options.gate_epsilon = 2.0;
  LifecycleController controller(stale_, Slice(*gen_, 0, 120), options);
  Harvest(controller, 12);

  ASSERT_TRUE(controller.StartRetrain());
  EXPECT_FALSE(controller.StartRetrain());  // one retrain at a time
  controller.CancelRetrain();
  const RetrainOutcome outcome = controller.WaitRetrain();
  EXPECT_EQ(outcome.result, RetrainOutcome::Result::kCancelled);
  EXPECT_EQ(controller.version(), 1u);
  EXPECT_EQ(controller.Current().get(), stale_.get());
  EXPECT_FALSE(controller.retraining());
  // The outcome was consumed by WaitRetrain.
  EXPECT_FALSE(controller.PollOutcome().has_value());
}

TEST_F(LifecycleControllerTest, KillResumeRestoresVersionCursorAndBuffer) {
  const std::string dir = MakeTempDir();
  ControllerOptions options = Opts(dir);
  options.gate_epsilon = 2.0;
  const std::string probe = gen_->Generate(kEventAt + 50).thick.text;
  std::string promoted_json;
  uint64_t consumed = 0;

  {
    LifecycleController controller(stale_, Slice(*gen_, 0, 120), options);
    EXPECT_FALSE(controller.LoadState());  // nothing persisted yet
    controller.set_consumed(100);
    Harvest(controller, 12);
    ASSERT_EQ(controller.RetrainNow().result,
              RetrainOutcome::Result::kPromoted);
    Harvest(controller, 5, kEventAt + 20);  // post-promotion harvest
    controller.SaveState();
    promoted_json = whois::ToJson(controller.Current()->Parse(probe));
    consumed = controller.consumed();
    EXPECT_EQ(consumed, 117u);
  }  // "kill": the controller is destroyed with state on disk

  LifecycleController resumed(stale_, Slice(*gen_, 0, 120), options);
  ASSERT_TRUE(resumed.LoadState());
  EXPECT_EQ(resumed.version(), 2u);
  EXPECT_EQ(resumed.consumed(), consumed);
  EXPECT_EQ(resumed.buffer_size(), 5u);
  // The reloaded model file parses byte-identically to the promoted one.
  EXPECT_EQ(whois::ToJson(resumed.Current()->Parse(probe)), promoted_json);
}

TEST(LifecycleBufferTest, ReservoirIsDeterministicAcrossSaveLoad) {
  RetrainBufferOptions options;
  options.capacity = 8;
  options.seed = 9;
  const auto record_at = [](size_t i) {
    LabeledRecord record;
    record.text = "Domain Name: d" + std::to_string(i) + ".com\n";
    record.labels = {whois::Level1Label::kDomain};
    record.sub_labels = {std::nullopt};
    return record;
  };

  RetrainBuffer uninterrupted(options);
  for (size_t i = 0; i < 60; ++i) uninterrupted.Add(record_at(i));
  EXPECT_EQ(uninterrupted.size(), options.capacity);
  EXPECT_EQ(uninterrupted.seen(), 60u);

  // The same stream with a save/load in the middle lands on the exact
  // same reservoir — the keep/replace decision is a pure hash of
  // (seed, n), not process-local RNG state.
  const std::string prefix = MakeTempDir() + "/buffer";
  RetrainBuffer first_half(options);
  for (size_t i = 0; i < 30; ++i) first_half.Add(record_at(i));
  first_half.Save(prefix);
  RetrainBuffer second_half(options);
  ASSERT_TRUE(second_half.Load(prefix));
  EXPECT_EQ(second_half.seen(), 30u);
  for (size_t i = 30; i < 60; ++i) second_half.Add(record_at(i));

  ASSERT_EQ(second_half.size(), uninterrupted.size());
  for (size_t i = 0; i < uninterrupted.size(); ++i) {
    EXPECT_EQ(second_half.records()[i].text, uninterrupted.records()[i].text)
        << "reservoir slot " << i;
  }

  // Loading from a prefix that was never saved leaves the buffer empty.
  RetrainBuffer missing(options);
  EXPECT_FALSE(missing.Load(prefix + "-nonexistent"));
  EXPECT_EQ(missing.size(), 0u);
}

// The closed loop end to end at miniature scale: drift trips the alarm,
// the retrained candidate passes the gate, and the promoted model heals
// the post-drift accuracy a stale model lost. This is the acceptance
// criterion of docs/lifecycle.md in unit-test form (bench_lifecycle runs
// it at full scale).
TEST_F(LifecycleControllerTest, ClosedLoopRecoversPostDriftAccuracy) {
  ControllerOptions options = Opts();
  options.gate_epsilon = 0.01;
  options.drift.window = 6;  // small stream: trip within two short windows
  LifecycleController controller(stale_, Slice(*gen_, 0, 120), options);

  // Stream post-drift records; harvest the ones the stale model gets
  // wrong (truth-signal harvesting, as the retrain-loop driver does).
  whois::ParseWorkspace ws;
  const auto accuracy_over = [&](const whois::WhoisParser& parser,
                                 size_t begin, size_t end) {
    size_t agree = 0, total = 0;
    for (size_t i = begin; i < end; ++i) {
      const LabeledRecord record = gen_->Generate(i).thick;
      const whois::ParsedWhois gold = GoldParse(record);
      agree += CountAgreeingKeyFields(parser.Parse(record.text, ws), gold);
      total += cascade::kNumKeyFields;
    }
    return static_cast<double>(agree) / static_cast<double>(total);
  };

  bool alarmed = false;
  for (size_t i = kEventAt; i < kEventAt + 96; ++i) {
    const LabeledRecord record = gen_->Generate(i).thick;
    const whois::ParsedWhois gold = GoldParse(record);
    const bool wrong =
        CountAgreeingKeyFields(controller.Current()->Parse(record.text, ws),
                               gold) < cascade::kNumKeyFields;
    Observation obs;
    obs.registrar = gen_->Generate(i).facts.registrar_name;
    obs.shadow_sampled = true;
    obs.shadow_disagreed = wrong;
    alarmed |= controller.Observe(obs, wrong ? &record : nullptr);
  }
  ASSERT_TRUE(alarmed) << "drift never tripped an alarm";
  ASSERT_GE(controller.buffer_size(), options.min_retrain_records);

  // Score on records the loop never harvested from.
  const double before = accuracy_over(*controller.Current(), kEventAt + 96,
                                      kEventAt + 160);
  const RetrainOutcome outcome = controller.RetrainNow();
  ASSERT_EQ(outcome.result, RetrainOutcome::Result::kPromoted);
  const double after = accuracy_over(*controller.Current(), kEventAt + 96,
                                     kEventAt + 160);
  EXPECT_LT(before, 1.0);  // the stale model measurably degraded
  EXPECT_GT(after, before);
  // Within 0.01 of a model trained on post-drift data from the start.
  const double fresh_accuracy =
      accuracy_over(*fresh_, kEventAt + 96, kEventAt + 160);
  EXPECT_GE(after, fresh_accuracy - 0.01);
}

}  // namespace
}  // namespace whoiscrf
