// WHOIS domain layer: label spaces, labeled-record IO, year extraction,
// field extraction, and the two-level parser on a tiny corpus.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "whois/labels.h"
#include "whois/record.h"
#include "whois/training_data.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {
namespace {

TEST(LabelsTest, NamesRoundTrip) {
  for (int i = 0; i < kNumLevel1Labels; ++i) {
    const auto label = static_cast<Level1Label>(i);
    EXPECT_EQ(Level1FromName(Level1Name(label)), label);
  }
  for (int i = 0; i < kNumLevel2Labels; ++i) {
    const auto label = static_cast<Level2Label>(i);
    EXPECT_EQ(Level2FromName(Level2Name(label)), label);
  }
  EXPECT_FALSE(Level1FromName("bogus").has_value());
  EXPECT_FALSE(Level2FromName("bogus").has_value());
  EXPECT_EQ(Level1Names().size(), static_cast<size_t>(kNumLevel1Labels));
  EXPECT_EQ(Level2Names().size(), static_cast<size_t>(kNumLevel2Labels));
}

TEST(ExtractYearTest, CommonFormats) {
  EXPECT_EQ(ExtractYear("2014-03-02T18:11:03Z"), 2014);
  EXPECT_EQ(ExtractYear("02-Mar-2014"), 2014);
  EXPECT_EQ(ExtractYear("03/02/2014"), 2014);
  EXPECT_EQ(ExtractYear("1997/05/01"), 1997);
  EXPECT_EQ(ExtractYear("no year here"), std::nullopt);
  EXPECT_EQ(ExtractYear("12345"), std::nullopt);  // not a standalone year
  EXPECT_EQ(ExtractYear(""), std::nullopt);
}

LabeledRecord MakeSample() {
  LabeledRecord record;
  record.domain = "example.com";
  record.text =
      "Domain Name: EXAMPLE.COM\n"
      "Registrar: GoDaddy.com, LLC\n"
      "Creation Date: 2010-04-01T00:00:00Z\n"
      "\n"
      "Registrant Name: John Smith\n"
      "Registrant Country: US\n"
      "Admin Name: Jane Doe\n"
      "The data in this record is provided for information only.\n";
  record.labels = {Level1Label::kDomain,     Level1Label::kRegistrar,
                   Level1Label::kDate,       Level1Label::kRegistrant,
                   Level1Label::kRegistrant, Level1Label::kOther,
                   Level1Label::kNull};
  record.sub_labels = {std::nullopt,
                       std::nullopt,
                       std::nullopt,
                       Level2Label::kName,
                       Level2Label::kCountry,
                       std::nullopt,
                       std::nullopt};
  return record;
}

TEST(LabeledRecordTest, ValidateChecksAlignment) {
  LabeledRecord record = MakeSample();
  record.Validate();  // no throw
  record.labels.pop_back();
  record.sub_labels.pop_back();
  EXPECT_THROW(record.Validate(), std::invalid_argument);
}

TEST(TrainingDataIoTest, RoundTrip) {
  const std::vector<LabeledRecord> records = {MakeSample(), MakeSample()};
  std::stringstream ss;
  WriteLabeledRecords(ss, records);
  const auto loaded = ReadLabeledRecords(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].domain, "example.com");
  EXPECT_EQ(loaded[0].labels, records[0].labels);
  EXPECT_EQ(loaded[0].sub_labels, records[0].sub_labels);
  // The reconstructed text preserves every labeled line.
  EXPECT_NE(loaded[0].text.find("Registrant Name: John Smith"),
            std::string::npos);
}

TEST(TrainingDataIoTest, RejectsMalformedInput) {
  std::stringstream bad1("not a record\n");
  EXPECT_THROW(ReadLabeledRecords(bad1), std::runtime_error);
  std::stringstream bad2("@ x.com\nbogus-label\tDomain: x\n%%\n");
  EXPECT_THROW(ReadLabeledRecords(bad2), std::runtime_error);
  std::stringstream bad3("@ x.com\ndomain\tDomain: x\n");  // unterminated
  EXPECT_THROW(ReadLabeledRecords(bad3), std::runtime_error);
}

TEST(TrainingDataIoTest, InstanceConversion) {
  const text::Tokenizer tokenizer;
  const LabeledRecord record = MakeSample();
  const crf::Instance level1 = ToLevel1Instance(record, tokenizer);
  EXPECT_EQ(level1.lines.size(), 7u);
  EXPECT_EQ(level1.labels.size(), 7u);
  EXPECT_EQ(level1.labels[0], static_cast<int>(Level1Label::kDomain));

  const crf::Instance level2 = ToLevel2Instance(record, tokenizer);
  EXPECT_EQ(level2.lines.size(), 2u);
  EXPECT_EQ(level2.labels[0], static_cast<int>(Level2Label::kName));
  EXPECT_EQ(level2.labels[1], static_cast<int>(Level2Label::kCountry));
}

TEST(ExtractFieldsTest, RoutesValuesBySlotAndKeyword) {
  const LabeledRecord record = MakeSample();
  const auto lines = text::SplitRecord(record.text);
  ParsedWhois parsed;
  std::vector<Level2Label> subs = {Level2Label::kName, Level2Label::kCountry};
  ExtractFields(lines, record.labels, subs, parsed);
  EXPECT_EQ(parsed.domain_name, "EXAMPLE.COM");
  EXPECT_EQ(parsed.registrar, "GoDaddy.com, LLC");
  EXPECT_EQ(parsed.created, "2010-04-01T00:00:00Z");
  EXPECT_EQ(parsed.registrant.name, "John Smith");
  EXPECT_EQ(parsed.registrant.country, "US");
}

class WhoisParserSmallCorpusTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 120;
    options.seed = 99;
    datagen::CorpusGenerator generator(options);
    std::vector<LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator.Generate(i).thick);
    }
    parser_ = new WhoisParser(WhoisParser::Train(train));
    generator_ = new datagen::CorpusGenerator(options);
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }
  static WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

WhoisParser* WhoisParserSmallCorpusTest::parser_ = nullptr;
datagen::CorpusGenerator* WhoisParserSmallCorpusTest::generator_ = nullptr;

TEST_F(WhoisParserSmallCorpusTest, HighLineAccuracyOnHeldOut) {
  size_t wrong = 0;
  size_t total = 0;
  for (size_t i = 1000; i < 1080; ++i) {
    const auto domain = generator_->Generate(i);
    const auto labels = parser_->LabelLines(domain.thick.text);
    ASSERT_EQ(labels.size(), domain.thick.labels.size());
    for (size_t t = 0; t < labels.size(); ++t) {
      ++total;
      if (labels[t] != domain.thick.labels[t]) ++wrong;
    }
  }
  EXPECT_LT(static_cast<double>(wrong) / static_cast<double>(total), 0.03)
      << wrong << "/" << total;
}

TEST_F(WhoisParserSmallCorpusTest, ExtractsRegistrantFields) {
  size_t name_hits = 0;
  size_t email_hits = 0;
  size_t checked = 0;
  for (size_t i = 2000; i < 2060; ++i) {
    const auto domain = generator_->Generate(i);
    const ParsedWhois parsed = parser_->Parse(domain.thick.text);
    ++checked;
    if (parsed.registrant.name == domain.facts.registrant.name) ++name_hits;
    if (parsed.registrant.email == domain.facts.registrant.email ||
        domain.facts.registrant.email.empty()) {
      ++email_hits;
    }
  }
  EXPECT_GT(static_cast<double>(name_hits) / checked, 0.85);
  EXPECT_GT(static_cast<double>(email_hits) / checked, 0.85);
}

TEST_F(WhoisParserSmallCorpusTest, ParseConfidenceIsFiniteLogProb) {
  const auto domain = generator_->Generate(5000);
  const ParsedWhois parsed = parser_->Parse(domain.thick.text);
  EXPECT_LE(parsed.log_prob, 1e-9);
  EXPECT_TRUE(std::isfinite(parsed.log_prob));
}

TEST_F(WhoisParserSmallCorpusTest, SaveLoadPreservesBehavior) {
  std::stringstream ss;
  parser_->Save(ss);
  const WhoisParser loaded = WhoisParser::Load(ss);
  for (size_t i = 3000; i < 3010; ++i) {
    const auto domain = generator_->Generate(i);
    EXPECT_EQ(loaded.LabelLines(domain.thick.text),
              parser_->LabelLines(domain.thick.text));
  }
}

TEST_F(WhoisParserSmallCorpusTest, LabelRegistrantLinesRefinesSubfields) {
  // Hand the level-2 tagger a registrant block and check field routing.
  const std::vector<std::string> block = {
      "Registrant Name: Carol Baker",
      "Registrant Street: 12 Oak Ave",
      "Registrant City: Denver",
      "Registrant Postal Code: 80201",
      "Registrant Country: US",
      "Registrant Email: carol@example.org",
  };
  const auto subs = parser_->LabelRegistrantLines(block);
  ASSERT_EQ(subs.size(), block.size());
  EXPECT_EQ(subs[0], Level2Label::kName);
  EXPECT_EQ(subs[1], Level2Label::kStreet);
  EXPECT_EQ(subs[2], Level2Label::kCity);
  EXPECT_EQ(subs[3], Level2Label::kPostcode);
  EXPECT_EQ(subs[4], Level2Label::kCountry);
  EXPECT_EQ(subs[5], Level2Label::kEmail);
}

TEST_F(WhoisParserSmallCorpusTest, ExtractsOtherContactAsProxy) {
  // A record whose registrant block is absent: the admin contact serves as
  // the registrant proxy (§3.2).
  const std::string record =
      "Domain Name: PROXYLESS.COM\n"
      "Registrar: GoDaddy.com, LLC\n"
      "Creation Date: 2012-02-02T00:00:00Z\n"
      "Admin Name: Alice Proxy\n"
      "Admin Phone: +1.8585550000\n"
      "Admin Email: alice@example.com\n";
  const ParsedWhois parsed = parser_->Parse(record);
  EXPECT_TRUE(parsed.registrant.Empty());
  EXPECT_EQ(parsed.other_contact.name, "Alice Proxy");
  EXPECT_EQ(parsed.other_contact.email, "alice@example.com");
  EXPECT_EQ(parsed.BestRegistrantProxy().name, "Alice Proxy");
}

TEST_F(WhoisParserSmallCorpusTest, OtherContactDoesNotShadowRegistrant) {
  const auto domain = generator_->Generate(4242);
  const ParsedWhois parsed = parser_->Parse(domain.thick.text);
  if (!parsed.registrant.Empty()) {
    EXPECT_EQ(&parsed.BestRegistrantProxy(), &parsed.registrant);
  }
}

TEST_F(WhoisParserSmallCorpusTest, EmptyRecordYieldsEmptyParse) {
  const ParsedWhois parsed = parser_->Parse("");
  EXPECT_TRUE(parsed.line_labels.empty());
  EXPECT_TRUE(parsed.registrant.Empty());
}

}  // namespace
}  // namespace whoiscrf::whois
