// Data generator: determinism, label correctness by construction, template
// rendering, drift, distributions, and the new-TLD templates.
#include <set>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "datagen/country_data.h"
#include "datagen/privacy.h"
#include "datagen/registrar_profiles.h"
#include "datagen/template_engine.h"
#include "datagen/template_library.h"
#include "util/string_util.h"

namespace whoiscrf::datagen {
namespace {

TEST(CountryDataTest, WeightsInterpolateByYear) {
  const auto w1998 = CountryWeightsForYear(1998);
  const auto w2014 = CountryWeightsForYear(2014);
  const int us = CountryIndex("US");
  const int cn = CountryIndex("CN");
  ASSERT_GE(us, 0);
  ASSERT_GE(cn, 0);
  // US share declines over time; China's rises (Figure 4b trends).
  EXPECT_GT(w1998[static_cast<size_t>(us)], w2014[static_cast<size_t>(us)]);
  EXPECT_LT(w1998[static_cast<size_t>(cn)], w2014[static_cast<size_t>(cn)]);
  // Clamped outside the range.
  EXPECT_EQ(CountryWeightsForYear(1980), CountryWeightsForYear(1998));
  EXPECT_EQ(CountryWeightsForYear(2020), CountryWeightsForYear(2014));
}

TEST(CountryDataTest, LookupAndNames) {
  EXPECT_EQ(CountryDisplayName("US"), "United States");
  EXPECT_EQ(CountryIndex("XX"), -1);
  EXPECT_GE(CountryIndex(""), 0);  // the unknown entry exists
}

TEST(RegistrarTableTest, SharesShiftOverTime) {
  RegistrarTable table;
  const int hichina = table.IndexOf("HiChina");
  const int netsol = table.IndexOf("Network Solutions");
  ASSERT_GE(hichina, 0);
  ASSERT_GE(netsol, 0);
  const auto early = table.WeightsForYear(1998);
  const auto late = table.WeightsForYear(2014);
  EXPECT_LT(early[static_cast<size_t>(hichina)],
            late[static_cast<size_t>(hichina)]);
  EXPECT_GT(early[static_cast<size_t>(netsol)],
            late[static_cast<size_t>(netsol)]);
}

TEST(RegistrarTableTest, EveryRegistrarHasAKnownTemplateFamily) {
  RegistrarTable table;
  TemplateLibrary library;
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_TRUE(library.Has(table.info(i).family))
        << table.info(i).short_name << " -> " << table.info(i).family;
  }
}

TEST(TemplateEngineTest, RenderProducesValidatedLabels) {
  TemplateLibrary library;
  TemplateEngine engine;
  EntityGenerator entities;
  util::Rng rng(7);

  DomainFacts facts;
  facts.domain = "example.com";
  facts.tld = "com";
  facts.registrar_name = "GoDaddy.com, LLC";
  facts.registrar_url = "http://www.godaddy.com";
  facts.whois_server = "whois.godaddy.com";
  facts.iana_id = "146";
  facts.created = "2010-04-01T00:00:00Z";
  facts.updated = "2014-05-01T00:00:00Z";
  facts.expires = "2016-04-01T00:00:00Z";
  facts.name_servers = {"ns1.example.com", "ns2.example.com"};
  facts.statuses = {"clientTransferProhibited"};
  facts.registrant = entities.MakeContact(rng, "US");
  facts.admin = facts.registrant;
  facts.tech = facts.registrant;

  for (const std::string& family : library.Families()) {
    for (int version = 0; version < 2; ++version) {
      const whois::LabeledRecord record =
          engine.Render(library.Get(family, version), facts);
      record.Validate();  // labels align with labeled lines by construction
      EXPECT_FALSE(record.labels.empty()) << family;
      // Every record must carry registrant information (thick record).
      bool has_registrant = false;
      for (auto label : record.labels) {
        if (label == whois::Level1Label::kRegistrant) has_registrant = true;
      }
      EXPECT_TRUE(has_registrant) << family << " v" << version;
    }
  }
}

TEST(TemplateEngineTest, DateFormatting) {
  EXPECT_EQ(TemplateEngine::FormatDate("2014-03-02T18:11:03Z",
                                       DateStyle::kDMonY),
            "02-Mar-2014");
  EXPECT_EQ(TemplateEngine::FormatDate("2014-03-02", DateStyle::kSlashes),
            "2014/03/02");
  EXPECT_EQ(TemplateEngine::FormatDate("2014-03-02", DateStyle::kUsSlashes),
            "03/02/2014");
  EXPECT_EQ(TemplateEngine::FormatDate("garbage", DateStyle::kDMonY),
            "garbage");
}

TEST(TemplateEngineTest, ThinRecordHasReferralAndNoRegistrant) {
  TemplateEngine engine;
  DomainFacts facts;
  facts.domain = "example.com";
  facts.registrar_name = "GoDaddy.com, LLC";
  facts.whois_server = "whois.godaddy.com";
  facts.registrar_url = "http://www.godaddy.com";
  facts.iana_id = "146";
  facts.created = "2010-04-01";
  facts.updated = "2014-05-01";
  facts.expires = "2016-04-01";
  facts.name_servers = {"ns1.example.com"};
  facts.statuses = {"ok"};
  const whois::LabeledRecord thin = engine.RenderThin(facts);
  thin.Validate();
  EXPECT_NE(thin.text.find("Whois Server: whois.godaddy.com"),
            std::string::npos);
  for (auto label : thin.labels) {
    EXPECT_NE(label, whois::Level1Label::kRegistrant);
  }
}

TEST(DriftTest, ChangesScheamButKeepsLabels) {
  TemplateLibrary library;
  const TemplateSpec& v0 = library.Get("godaddy", 0);
  const TemplateSpec& v1 = library.Get("godaddy", 1);
  // Drift renames at least one title.
  std::set<std::string> titles0;
  std::set<std::string> titles1;
  for (const auto& e : v0.elements) titles0.insert(e.title);
  for (const auto& e : v1.elements) titles1.insert(e.title);
  EXPECT_NE(titles0, titles1);
  // Drift is deterministic.
  const TemplateSpec again = DriftSpec(v0);
  std::set<std::string> titles_again;
  for (const auto& e : again.elements) titles_again.insert(e.title);
  EXPECT_EQ(titles1, titles_again);
}

TEST(SynthesizedFamiliesTest, DistinctAndDeterministic) {
  const TemplateSpec a1 = SynthesizeSpec("tail/1", 1001);
  const TemplateSpec a2 = SynthesizeSpec("tail/1", 1001);
  const TemplateSpec b = SynthesizeSpec("tail/2", 1002);
  EXPECT_EQ(a1.elements.size(), a2.elements.size());
  EXPECT_EQ(a1.separator, a2.separator);
  // Different seeds should (generically) differ in some knob.
  bool differs = a1.elements.size() != b.elements.size() ||
                 a1.separator != b.separator ||
                 a1.date_style != b.date_style;
  for (size_t i = 0; !differs && i < std::min(a1.elements.size(),
                                              b.elements.size());
       ++i) {
    differs = a1.elements[i].title != b.elements[i].title;
  }
  EXPECT_TRUE(differs);
}

TEST(CorpusGeneratorTest, DeterministicPerIndex) {
  CorpusOptions options;
  options.seed = 5;
  CorpusGenerator g1(options);
  CorpusGenerator g2(options);
  for (size_t i : {0u, 17u, 999u}) {
    const auto a = g1.Generate(i);
    const auto b = g2.Generate(i);
    EXPECT_EQ(a.facts.domain, b.facts.domain);
    EXPECT_EQ(a.thick.text, b.thick.text);
    EXPECT_EQ(a.template_id, b.template_id);
  }
  // Different indices give different domains.
  EXPECT_NE(g1.Generate(1).facts.domain, g1.Generate(2).facts.domain);
}

TEST(CorpusGeneratorTest, AllRecordsValidate) {
  CorpusOptions options;
  options.size = 300;
  options.seed = 11;
  CorpusGenerator generator(options);
  for (size_t i = 0; i < 300; ++i) {
    const auto domain = generator.Generate(i);
    domain.thick.Validate();
    EXPECT_FALSE(domain.facts.registrar_name.empty());
    EXPECT_GE(domain.facts.created_year, options.min_year);
    EXPECT_LE(domain.facts.created_year, options.max_year);
  }
}

TEST(CorpusGeneratorTest, DistributionsRoughlyMatchPaper) {
  CorpusOptions options;
  options.size = 6000;
  options.seed = 13;
  CorpusGenerator generator(options);
  size_t godaddy = 0;
  size_t privacy = 0;
  size_t us = 0;
  size_t non_privacy = 0;
  for (size_t i = 0; i < options.size; ++i) {
    const auto d = generator.Generate(i);
    if (d.facts.registrar_name.find("GoDaddy") != std::string::npos) {
      ++godaddy;
    }
    if (d.facts.privacy_protected) {
      ++privacy;
    } else {
      ++non_privacy;
      if (d.facts.registrant.country_code == "US") ++us;
    }
  }
  const double n = static_cast<double>(options.size);
  EXPECT_NEAR(godaddy / n, 0.34, 0.05);        // Table 5
  EXPECT_NEAR(privacy / n, 0.17, 0.06);        // ~20% overall (§6.3)
  EXPECT_NEAR(us / static_cast<double>(non_privacy), 0.48, 0.08);  // Table 3
}

TEST(CorpusGeneratorTest, DriftFractionControlsVersions) {
  CorpusOptions no_drift;
  no_drift.size = 200;
  no_drift.drift_fraction = 0.0;
  CorpusGenerator g0(no_drift);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(g0.Generate(i).template_id.find("/drift"), std::string::npos);
  }
  CorpusOptions all_drift = no_drift;
  all_drift.drift_fraction = 1.0;
  CorpusGenerator g1(all_drift);
  size_t drifted = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (g1.Generate(i).template_id.find("/drift") != std::string::npos) {
      ++drifted;
    }
  }
  EXPECT_EQ(drifted, 200u);
}

TEST(NewTldTest, AllTwelveTldsRender) {
  CorpusGenerator generator;
  for (const std::string& tld : TemplateLibrary::NewTldNames()) {
    const auto domain = generator.GenerateNewTld(tld, 1);
    domain.thick.Validate();
    EXPECT_EQ(domain.facts.tld, tld);
    EXPECT_NE(domain.facts.domain.find("." + tld), std::string::npos);
  }
  EXPECT_EQ(TemplateLibrary::NewTldNames().size(), 12u);
}

TEST(CorpusGeneratorTest, ThinRecordRefersToThickServer) {
  CorpusOptions options;
  options.size = 40;
  options.seed = 23;
  CorpusGenerator generator(options);
  for (size_t i = 0; i < 40; ++i) {
    const auto domain = generator.Generate(i);
    const auto thin = generator.RenderThin(domain.facts);
    thin.Validate();
    EXPECT_NE(thin.text.find("Whois Server: " + domain.facts.whois_server),
              std::string::npos)
        << domain.facts.domain;
    EXPECT_NE(
        thin.text.find(util::ToUpper(domain.facts.domain)),
        std::string::npos);
  }
}

TEST(CorpusGeneratorTest, FallbackCountryWeightsNormalized) {
  CorpusGenerator generator;
  for (int year : {1990, 1998, 2006, 2014}) {
    const auto& weights = generator.FallbackCountryWeights(year);
    ASSERT_EQ(weights.size(), Countries().size());
    double total = 0.0;
    for (double w : weights) {
      EXPECT_GE(w, 0.0);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "year " << year;
  }
}

TEST(CorpusGeneratorTest, YearWeightsGrowTowardPresent) {
  CorpusGenerator generator;
  const auto weights = generator.YearWeights();
  ASSERT_GT(weights.size(), 10u);
  // 2014 is the biggest cohort (Figure 4a), and growth is monotone over
  // the last decade.
  for (size_t i = weights.size() - 10; i + 1 < weights.size(); ++i) {
    EXPECT_LT(weights[i], weights[i + 1]);
  }
}

TEST(CorpusNoiseTest, NoiseKeepsLabelsAligned) {
  CorpusOptions options;
  options.size = 200;
  options.seed = 31;
  options.noise_fraction = 1.0;  // every record perturbed
  CorpusGenerator generator(options);
  for (size_t i = 0; i < 200; ++i) {
    // Validate() inside the generator (and here) guards the invariant that
    // noise edits never desynchronize labels from labeled lines.
    generator.Generate(i).thick.Validate();
  }
}

TEST(CorpusNoiseTest, NoiseChangesRecords) {
  CorpusOptions clean_options;
  clean_options.size = 50;
  clean_options.seed = 32;
  CorpusOptions noisy_options = clean_options;
  noisy_options.noise_fraction = 1.0;
  CorpusGenerator clean(clean_options);
  CorpusGenerator noisy(noisy_options);
  size_t changed = 0;
  for (size_t i = 0; i < 50; ++i) {
    if (clean.Generate(i).thick.text != noisy.Generate(i).thick.text) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 40u);  // nearly every record perturbed
}

TEST(CorpusNoiseTest, NoiseIsDeterministic) {
  CorpusOptions options;
  options.size = 20;
  options.seed = 33;
  options.noise_fraction = 0.5;
  CorpusGenerator g1(options);
  CorpusGenerator g2(options);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(g1.Generate(i).thick.text, g2.Generate(i).thick.text);
  }
}

TEST(PrivacyTest, RateRisesOverTime) {
  EXPECT_EQ(PrivacyRateForYear(1999), 0.0);
  EXPECT_GT(PrivacyRateForYear(2014), 0.2);
  EXPECT_GT(PrivacyRateForYear(2014), PrivacyRateForYear(2008));
}

TEST(PrivacyTest, ServiceSharesSumNearOne) {
  double total = 0.0;
  for (const auto& s : PrivacyServices()) total += s.share;
  EXPECT_NEAR(total, 1.0, 0.05);
}

TEST(PrivacyTest, HouseServicePreferred) {
  util::Rng rng(21);
  size_t house = 0;
  for (int i = 0; i < 1000; ++i) {
    if (SamplePrivacyService(rng, "Domains By Proxy") == "Domains By Proxy") {
      ++house;
    }
  }
  EXPECT_GT(house, 800u);
}

}  // namespace
}  // namespace whoiscrf::datagen
