// CRF inference correctness: the dynamic programs of the paper's appendix
// are validated against brute-force enumeration, and the analytic gradient
// of the log-likelihood against finite differences.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "crf/inference.h"
#include "crf/likelihood.h"
#include "crf/model.h"
#include "crf/tagger.h"
#include "crf/viterbi.h"
#include "util/random.h"

namespace whoiscrf::crf {
namespace {

// Builds a small random model over `num_labels` labels and `num_attrs`
// attributes, with every attribute transition-eligible.
CrfModel RandomModel(int num_labels, int num_attrs, uint64_t seed) {
  text::Vocabulary vocab;
  for (int a = 0; a < num_attrs; ++a) {
    vocab.Count("attr" + std::to_string(a));
  }
  vocab.Freeze(1);
  std::vector<int> slots;
  for (int a = 0; a < num_attrs; ++a) slots.push_back(a);
  std::vector<std::string> labels;
  for (int l = 0; l < num_labels; ++l) {
    labels.push_back("L" + std::to_string(l));
  }
  CrfModel model(labels, std::move(vocab), slots);
  util::Rng rng(seed);
  for (double& w : model.weights()) w = rng.Gaussian() * 0.7;
  return model;
}

// Random compiled sequence over the model's attributes.
CompiledSequence RandomSequence(const CrfModel& model, int length,
                                uint64_t seed) {
  util::Rng rng(seed);
  CompiledSequence seq;
  const int num_attrs = static_cast<int>(model.vocab().size());
  for (int t = 0; t < length; ++t) {
    CompiledItem item;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n; ++i) {
      const int attr = static_cast<int>(rng.UniformInt(0, num_attrs - 1));
      item.attrs.push_back(attr);
      if (rng.Bernoulli(0.5)) item.trans_slots.push_back(attr);
    }
    seq.push_back(std::move(item));
  }
  return seq;
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  const double v[] = {0.5, -1.0, 2.0, 0.0};
  const double direct =
      std::log(std::exp(0.5) + std::exp(-1.0) + std::exp(2.0) + std::exp(0.0));
  EXPECT_NEAR(LogSumExp(v, 4), direct, 1e-12);
}

TEST(LogSumExpTest, StableForLargeValues) {
  const double v[] = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(v, 2), 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, AllNegativeInfinity) {
  const double inf = std::numeric_limits<double>::infinity();
  const double v[] = {-inf, -inf};
  EXPECT_TRUE(std::isinf(LogSumExp(v, 2)));
  EXPECT_LT(LogSumExp(v, 2), 0);
}

class InferenceBruteForceTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(InferenceBruteForceTest, LogPartitionMatchesEnumeration) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 1);
  const auto scores = model.ComputeScores(seq);
  EXPECT_NEAR(LogPartition(scores), LogPartitionBruteForce(scores), 1e-8);
}

TEST_P(InferenceBruteForceTest, ViterbiMatchesEnumeration) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 2);
  const auto scores = model.ComputeScores(seq);
  const ViterbiResult fast = Decode(scores);
  const ViterbiResult slow = DecodeBruteForce(scores);
  EXPECT_NEAR(fast.score, slow.score, 1e-9);
  EXPECT_EQ(fast.labels, slow.labels);
}

TEST_P(InferenceBruteForceTest, NodeMarginalsSumToOne) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 3);
  const Posteriors post = ForwardBackward(model.ComputeScores(seq));
  for (int t = 0; t < post.T; ++t) {
    double sum = 0.0;
    for (int j = 0; j < post.L; ++j) sum += post.node[t * post.L + j];
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST_P(InferenceBruteForceTest, EdgeMarginalsConsistentWithNodes) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 4);
  const Posteriors post = ForwardBackward(model.ComputeScores(seq));
  const int L = post.L;
  for (int t = 1; t < post.T; ++t) {
    for (int j = 0; j < L; ++j) {
      double sum = 0.0;
      for (int i = 0; i < L; ++i) sum += post.edge[t * L * L + i * L + j];
      EXPECT_NEAR(sum, post.node[t * L + j], 1e-9) << "t=" << t << " j=" << j;
    }
    for (int i = 0; i < L; ++i) {
      double sum = 0.0;
      for (int j = 0; j < L; ++j) sum += post.edge[t * L * L + i * L + j];
      EXPECT_NEAR(sum, post.node[(t - 1) * L + i], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallModels, InferenceBruteForceTest,
    ::testing::Values(std::make_tuple(2, 1, 7u), std::make_tuple(2, 4, 11u),
                      std::make_tuple(3, 3, 13u), std::make_tuple(3, 6, 17u),
                      std::make_tuple(4, 5, 19u), std::make_tuple(5, 4, 23u),
                      std::make_tuple(6, 3, 29u), std::make_tuple(2, 8, 31u)));

TEST(SequenceLogProbTest, NormalizesOverAllPaths) {
  CrfModel model = RandomModel(3, 4, 99);
  const CompiledSequence seq = RandomSequence(model, 4, 100);
  const auto scores = model.ComputeScores(seq);
  // Sum of exp(log-prob) over all 3^4 paths must be 1.
  double total = 0.0;
  std::vector<int> labels(4, 0);
  while (true) {
    total += std::exp(SequenceLogProb(scores, labels));
    int pos = 0;
    while (pos < 4) {
      if (++labels[static_cast<size_t>(pos)] < 3) break;
      labels[static_cast<size_t>(pos)] = 0;
      ++pos;
    }
    if (pos == 4) break;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(GradientCheckTest, AnalyticMatchesFiniteDifference) {
  CrfModel model = RandomModel(3, 6, 123);
  Dataset data;
  util::Rng rng(321);
  for (int r = 0; r < 4; ++r) {
    const CompiledSequence seq = RandomSequence(model, 5, 400 + r);
    std::vector<int> gold;
    for (size_t t = 0; t < seq.size(); ++t) {
      gold.push_back(static_cast<int>(rng.UniformInt(0, 2)));
    }
    data.sequences.push_back(seq);
    data.labels.push_back(gold);
  }
  LogLikelihood objective(model, data, /*l2_sigma=*/2.0);

  std::vector<double> w = model.weights();
  std::vector<double> grad;
  const double f0 = objective.Evaluate(w, grad);
  ASSERT_TRUE(std::isfinite(f0));

  util::Rng pick(555);
  const double eps = 1e-6;
  for (int trial = 0; trial < 25; ++trial) {
    const size_t k = static_cast<size_t>(
        pick.UniformInt(0, static_cast<int64_t>(w.size()) - 1));
    std::vector<double> w_plus = w;
    std::vector<double> w_minus = w;
    w_plus[k] += eps;
    w_minus[k] -= eps;
    std::vector<double> scratch;
    const double f_plus = objective.Evaluate(w_plus, scratch);
    const double f_minus = objective.Evaluate(w_minus, scratch);
    const double numeric = (f_plus - f_minus) / (2 * eps);
    EXPECT_NEAR(grad[k], numeric, 1e-4)
        << "weight index " << k << " of " << w.size();
  }
}

TEST(GradientCheckTest, ZeroGradientAtOptimumOfSingleLabelProblem) {
  // With no regularization and a dataset where every line has the same
  // label, pushing that label's weights to +inf maximizes likelihood; the
  // gradient at w=0 must point toward the gold label (negative component).
  CrfModel model = RandomModel(2, 2, 1);
  for (double& w : model.weights()) w = 0.0;
  Dataset data;
  CompiledSequence seq(3);
  for (auto& item : seq) item.attrs = {0};
  data.sequences.push_back(seq);
  data.labels.push_back({0, 0, 0});
  LogLikelihood objective(model, data, /*l2_sigma=*/0.0);
  std::vector<double> grad;
  objective.Evaluate(model.weights(), grad);
  EXPECT_LT(grad[model.UnigramIndex(0, 0)], 0.0);
  EXPECT_GT(grad[model.UnigramIndex(0, 1)], 0.0);
}

TEST(ModelSerializationTest, RoundTripsExactly) {
  CrfModel model = RandomModel(4, 7, 77);
  std::stringstream ss;
  model.Save(ss);
  const CrfModel loaded = CrfModel::Load(ss);
  EXPECT_EQ(loaded.num_labels(), model.num_labels());
  EXPECT_EQ(loaded.label_names(), model.label_names());
  EXPECT_EQ(loaded.num_weights(), model.num_weights());
  EXPECT_EQ(loaded.weights(), model.weights());
  EXPECT_EQ(loaded.num_transition_slots(), model.num_transition_slots());
  // Decoding behavior identical.
  const CompiledSequence seq = RandomSequence(model, 6, 78);
  EXPECT_EQ(Decode(model.ComputeScores(seq)).labels,
            Decode(loaded.ComputeScores(seq)).labels);
}

TEST(ModelSerializationTest, RejectsCorruptStream) {
  std::stringstream ss;
  ss << "not a model";
  EXPECT_THROW(CrfModel::Load(ss), std::runtime_error);
}

TEST(ModelSerializationTest, TransitionSupportRoundTrips) {
  CrfModel model = RandomModel(3, 4, 91);
  std::vector<uint8_t> support(9, 0);
  support[0 * 3 + 1] = 1;
  support[1 * 3 + 2] = 1;
  support[2 * 3 + 0] = 1;
  model.set_transition_support(support);
  std::stringstream ss;
  model.Save(ss);
  const CrfModel loaded = CrfModel::Load(ss);
  EXPECT_EQ(loaded.transition_support(), support);
  EXPECT_NE(loaded.transition_support_mask(), nullptr);
}

TEST(ModelSerializationTest, RejectsWrongSizeSupport) {
  CrfModel model = RandomModel(3, 4, 92);
  EXPECT_THROW(model.set_transition_support(std::vector<uint8_t>(5, 1)),
               std::invalid_argument);
  model.set_transition_support({});  // empty = unknown, always accepted
  EXPECT_EQ(model.transition_support_mask(), nullptr);
}

TEST(ModelSerializationTest, LoadsVersion1StreamsWithoutSupport) {
  // A v1 stream is a v2 stream with the version field rewound and the
  // trailing support block (u32 size + bytes) cut off.
  CrfModel model = RandomModel(4, 7, 93);
  std::vector<uint8_t> support(16, 1);
  model.set_transition_support(support);
  std::stringstream ss;
  model.Save(ss);
  std::string bytes = ss.str();
  bytes[4] = 1;  // version u32 (little-endian) follows the 4-byte magic
  bytes.resize(bytes.size() - (4 + support.size()));
  std::stringstream v1(bytes);
  const CrfModel loaded = CrfModel::Load(v1);
  EXPECT_TRUE(loaded.transition_support().empty());
  EXPECT_EQ(loaded.transition_support_mask(), nullptr);
  EXPECT_EQ(loaded.weights(), model.weights());
}

class DecodeBeamTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(DecodeBeamTest, ExactWhenBeamCoversAllLabels) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 21);
  const auto scores = model.ComputeScores(seq);
  const ViterbiResult exact = Decode(scores);
  for (int width : {num_labels, num_labels + 3}) {
    const ViterbiResult beam = DecodeBeam(scores, width);
    EXPECT_EQ(beam.labels, exact.labels) << "width=" << width;
    // Bit-identical, not just close: the beam performs Decode's additions
    // and comparisons in Decode's order when it covers every label.
    EXPECT_EQ(beam.score, exact.score) << "width=" << width;
  }
}

TEST_P(DecodeBeamTest, NarrowBeamReturnsConsistentPath) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 22);
  const auto scores = model.ComputeScores(seq);
  const ViterbiResult exact = Decode(scores);
  for (int width = 1; width <= num_labels; ++width) {
    const ViterbiResult beam = DecodeBeam(scores, width);
    ASSERT_EQ(beam.labels.size(), static_cast<size_t>(length));
    // The reported score is the actual score of the returned path...
    double rescore = 0.0;
    for (int t = 0; t < length; ++t) {
      rescore += scores.unary[static_cast<size_t>(t) * num_labels +
                              beam.labels[static_cast<size_t>(t)]];
      if (t >= 1) {
        rescore += scores.PairRow(t)[beam.labels[static_cast<size_t>(t - 1)] *
                                         num_labels +
                                     beam.labels[static_cast<size_t>(t)]];
      }
    }
    EXPECT_NEAR(beam.score, rescore, 1e-9) << "width=" << width;
    // ...and pruning can only lose score, never gain it.
    EXPECT_LE(beam.score, exact.score + 1e-9) << "width=" << width;
  }
}

TEST_P(DecodeBeamTest, FullSupportMaskChangesNothing) {
  const auto [num_labels, length, seed] = GetParam();
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 23);
  const auto scores = model.ComputeScores(seq);
  const std::vector<uint8_t> all(
      static_cast<size_t>(num_labels) * num_labels, 1);
  const ViterbiResult exact = Decode(scores);
  const ViterbiResult beam = DecodeBeam(scores, num_labels, all.data());
  EXPECT_EQ(beam.labels, exact.labels);
  EXPECT_EQ(beam.score, exact.score);
}

TEST_P(DecodeBeamTest, EmptySupportRowFallsBackToUnprunedBeam) {
  const auto [num_labels, length, seed] = GetParam();
  if (length < 2) return;
  CrfModel model = RandomModel(num_labels, 5, seed);
  const CompiledSequence seq = RandomSequence(model, length, seed + 24);
  const auto scores = model.ComputeScores(seq);
  // No supported predecessor for ANY label: every row must fall back, so
  // the result matches the unpruned beam exactly.
  const std::vector<uint8_t> none(
      static_cast<size_t>(num_labels) * num_labels, 0);
  const ViterbiResult pruned = DecodeBeam(scores, num_labels, none.data());
  const ViterbiResult open = DecodeBeam(scores, num_labels);
  EXPECT_EQ(pruned.labels, open.labels);
  EXPECT_EQ(pruned.score, open.score);
}

TEST(DecodeBeamTest, RejectsDegenerateArguments) {
  CrfModel model = RandomModel(3, 3, 8);
  const CompiledSequence seq = RandomSequence(model, 4, 9);
  const auto scores = model.ComputeScores(seq);
  EXPECT_THROW(DecodeBeam(scores, 0), std::invalid_argument);
  const CrfModel::Scores empty{};
  EXPECT_THROW(DecodeBeam(empty, 2), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    SmallModels, DecodeBeamTest,
    ::testing::Values(std::make_tuple(2, 1, 7u), std::make_tuple(2, 5, 11u),
                      std::make_tuple(3, 4, 13u), std::make_tuple(4, 8, 17u),
                      std::make_tuple(6, 12, 19u),
                      std::make_tuple(12, 9, 23u)));

TEST(InferenceEdgeCases, SingleLineSequence) {
  CrfModel model = RandomModel(3, 3, 5);
  CompiledSequence seq(1);
  seq[0].attrs = {0, 1};
  const auto scores = model.ComputeScores(seq);
  const Posteriors post = ForwardBackward(scores);
  double sum = 0.0;
  for (int j = 0; j < 3; ++j) sum += post.node[static_cast<size_t>(j)];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(Decode(scores).labels.size(), 1u);
}

TEST(InferenceEdgeCases, EmptySequenceThrows) {
  CrfModel model = RandomModel(3, 3, 6);
  const CrfModel::Scores empty{};
  EXPECT_THROW(ForwardBackward(empty), std::invalid_argument);
  EXPECT_THROW(Decode(empty), std::invalid_argument);
  EXPECT_THROW(LogPartition(empty), std::invalid_argument);
}

TEST(InferenceEdgeCases, ParallelEvaluationMatchesSerial) {
  CrfModel model = RandomModel(4, 8, 42);
  Dataset data;
  util::Rng rng(43);
  for (int r = 0; r < 12; ++r) {
    const CompiledSequence seq = RandomSequence(model, 7, 500 + r);
    std::vector<int> gold;
    for (size_t t = 0; t < seq.size(); ++t) {
      gold.push_back(static_cast<int>(rng.UniformInt(0, 3)));
    }
    data.sequences.push_back(seq);
    data.labels.push_back(gold);
  }
  std::vector<double> grad_serial;
  std::vector<double> grad_parallel;
  CrfModel model2 = model;
  LogLikelihood serial(model, data, 1.5, nullptr);
  util::ThreadPool pool(4);
  LogLikelihood parallel(model2, data, 1.5, &pool);
  const double f1 = serial.Evaluate(model.weights(), grad_serial);
  const double f2 = parallel.Evaluate(model2.weights(), grad_parallel);
  EXPECT_NEAR(f1, f2, 1e-9);
  ASSERT_EQ(grad_serial.size(), grad_parallel.size());
  for (size_t k = 0; k < grad_serial.size(); ++k) {
    ASSERT_NEAR(grad_serial[k], grad_parallel[k], 1e-9) << "k=" << k;
  }
}

}  // namespace
}  // namespace whoiscrf::crf
