// Tier-equivalence suite for the byte-scanning hot path (util/byte_scan.h):
// every scan primitive, and every text-layer consumer of one, must produce
// identical output on the scalar, SWAR, and SIMD tiers. Inputs sweep all
// byte values (including >= 0x80), all alignments and tail lengths around
// the 8/16/32-byte chunk sizes, and all `from` offsets — the places where
// chunked kernels classically diverge from the per-byte reference.
//
// Tiers beyond BestSupportedMode() are skipped (ForceMode clamps anyway),
// so this file passes unchanged on the portable WHOISCRF_DISABLE_SIMD
// build, where it degenerates to scalar-vs-SWAR.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "text/line_splitter.h"
#include "text/separator.h"
#include "text/tokenizer.h"
#include "text/word_classes.h"
#include "util/byte_scan.h"
#include "util/json.h"
#include "util/random.h"

namespace whoiscrf::util::scan {
namespace {

constexpr size_t npos = std::string_view::npos;

// Pins a tier for one scope; never leaks into other tests.
class ForcedMode {
 public:
  explicit ForcedMode(Mode mode) { ForceMode(mode); }
  ~ForcedMode() { ClearForcedMode(); }
};

std::vector<Mode> TestableModes() {
  std::vector<Mode> modes = {Mode::kScalar};
  if (BestSupportedMode() >= Mode::kSwar) modes.push_back(Mode::kSwar);
  if (BestSupportedMode() >= Mode::kSimd) modes.push_back(Mode::kSimd);
  return modes;
}

// Per-byte ground truth straight off the classification table; tier-free.
size_t RefFindClass(std::string_view s, uint8_t mask, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (InClass(s[i], mask)) return i;
  }
  return npos;
}

size_t RefSkipSpace(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (!InClass(s[i], kSpace)) return i;
  }
  return npos;
}

// Inputs engineered to stress chunked kernels: every length crossing the
// 8/16/32-byte boundaries, matches at every position, long clean runs, and
// full 0..255 byte coverage.
std::vector<std::string> AdversarialInputs() {
  std::vector<std::string> inputs;
  inputs.emplace_back();  // empty
  // All 256 byte values, in order and reversed.
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  inputs.push_back(all);
  inputs.emplace_back(all.rbegin(), all.rend());
  // Clean runs (no class bytes) of every length 1..72: tails of every
  // residue mod 8/16/32.
  for (size_t n = 1; n <= 72; ++n) inputs.emplace_back(n, 'x');
  // A single interesting byte at every position of a 40-byte clean run.
  for (const char c : {'\n', '\r', ' ', '\t', ':', '=', '"', '\\', '\x01',
                       '0', 'Z', 'a', '\x7f', '\x80', '\xff'}) {
    for (size_t pos = 0; pos < 40; ++pos) {
      std::string s(40, 'q');
      s[pos] = c;
      inputs.push_back(std::move(s));
    }
  }
  // Random byte soup, plus random mostly-text with sprinkled specials.
  util::Rng rng(20260808);
  for (int r = 0; r < 200; ++r) {
    std::string soup;
    const size_t n = rng.UniformInt(0, 130);
    for (size_t i = 0; i < n; ++i) {
      soup.push_back(static_cast<char>(rng.UniformInt(0, 255)));
    }
    inputs.push_back(std::move(soup));
  }
  const std::string_view specials = "\n\r\t :=.\"\\\x01\x80\xff";
  for (int r = 0; r < 200; ++r) {
    std::string text;
    const size_t n = rng.UniformInt(0, 130);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.15)) {
        text.push_back(
            specials[rng.UniformInt(0, specials.size() - 1)]);
      } else {
        text.push_back(static_cast<char>(rng.UniformInt('a', 'z')));
      }
    }
    inputs.push_back(std::move(text));
  }
  return inputs;
}

// `from` offsets worth probing for a string of length n: every small
// offset, chunk-boundary straddles, and past-the-end.
std::vector<size_t> FromOffsets(size_t n) {
  std::vector<size_t> from = {0};
  for (size_t f = 1; f <= n + 2; f = f < 40 ? f + 1 : f + 7) from.push_back(f);
  return from;
}

TEST(ByteScanEquivalence, DedicatedKernelsMatchScalarReference) {
  const auto inputs = AdversarialInputs();
  for (Mode mode : TestableModes()) {
    ForcedMode forced(mode);
    ASSERT_EQ(ActiveMode(), mode);
    for (const std::string& s : inputs) {
      for (size_t from : FromOffsets(s.size())) {
        EXPECT_EQ(FindNewline(s, from), RefFindClass(s, kNewline, from))
            << ModeName(mode) << " len=" << s.size() << " from=" << from;
        EXPECT_EQ(FindSpace(s, from), RefFindClass(s, kSpace, from))
            << ModeName(mode) << " len=" << s.size() << " from=" << from;
        EXPECT_EQ(SkipSpace(s, from), RefSkipSpace(s, from))
            << ModeName(mode) << " len=" << s.size() << " from=" << from;
        EXPECT_EQ(FindJsonEscape(s, from),
                  RefFindClass(s, kJsonEscape, from))
            << ModeName(mode) << " len=" << s.size() << " from=" << from;
        EXPECT_EQ(FindSepTrigger(s, from),
                  RefFindClass(s, kSepTrigger, from))
            << ModeName(mode) << " len=" << s.size() << " from=" << from;
      }
    }
  }
}

TEST(ByteScanEquivalence, FindClassMatchesReferenceForEveryMask) {
  const auto inputs = AdversarialInputs();
  const uint8_t masks[] = {kSpace,      kDigit,     kUpper,  kLower,
                           kNewline,    kJsonEscape, kEdgePunct,
                           kSepTrigger, kAlpha,     kAlnum};
  for (Mode mode : TestableModes()) {
    ForcedMode forced(mode);
    for (const std::string& s : inputs) {
      for (const uint8_t mask : masks) {
        for (size_t from : {size_t{0}, size_t{3}, s.size() / 2, s.size()}) {
          EXPECT_EQ(FindClass(s, mask, from), RefFindClass(s, mask, from))
              << ModeName(mode) << " mask=" << int(mask) << " from=" << from;
        }
      }
    }
  }
}

TEST(ByteScanEquivalence, PredicatesAndLowercasingMatchScalarReference) {
  const auto inputs = AdversarialInputs();
  for (Mode mode : TestableModes()) {
    ForcedMode forced(mode);
    for (const std::string& s : inputs) {
      EXPECT_EQ(HasAlnum(s), RefFindClass(s, kAlnum, 0) != npos)
          << ModeName(mode) << " len=" << s.size();
      bool all_digits = !s.empty();
      for (const char c : s) all_digits = all_digits && InClass(c, kDigit);
      EXPECT_EQ(AllDigits(s), all_digits)
          << ModeName(mode) << " len=" << s.size();

      std::string lowered(s.size(), '\0');
      AsciiLower(s.data(), s.size(), lowered.data());
      for (size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const char want =
            c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
        ASSERT_EQ(lowered[i], want)
            << ModeName(mode) << " len=" << s.size() << " i=" << i;
      }
      // In-place overload (in == out is part of the contract).
      std::string inplace = s;
      AsciiLower(inplace.data(), inplace.size(), inplace.data());
      EXPECT_EQ(inplace, lowered) << ModeName(mode);
    }
  }
}

TEST(ByteScanEquivalence, UnalignedViewsMatchAlignedResults) {
  // The same logical bytes reached through every possible misalignment:
  // substrings of a shared buffer shift the data pointer one byte at a
  // time, so SIMD/SWAR loads hit every alignment class.
  std::string buffer = "pad";
  buffer += "Domain Name: EXAMPLE.COM\r\n  Registrar:\tGoDaddy \"quoted\"\\";
  buffer += std::string(37, 'y');
  buffer += "\n trailing  words  here";
  for (Mode mode : TestableModes()) {
    ForcedMode forced(mode);
    for (size_t shift = 0; shift < 24 && shift < buffer.size(); ++shift) {
      const std::string_view v(buffer.data() + shift, buffer.size() - shift);
      EXPECT_EQ(FindNewline(v), RefFindClass(v, kNewline, 0))
          << ModeName(mode) << " shift=" << shift;
      EXPECT_EQ(FindSpace(v), RefFindClass(v, kSpace, 0))
          << ModeName(mode) << " shift=" << shift;
      EXPECT_EQ(SkipSpace(v), RefSkipSpace(v, 0))
          << ModeName(mode) << " shift=" << shift;
      EXPECT_EQ(FindJsonEscape(v), RefFindClass(v, kJsonEscape, 0))
          << ModeName(mode) << " shift=" << shift;
      EXPECT_EQ(FindSepTrigger(v), RefFindClass(v, kSepTrigger, 0))
          << ModeName(mode) << " shift=" << shift;
    }
  }
}

// --- Text-layer consumers ---------------------------------------------------
//
// The scan tier must be invisible one level up: line splitting, separator
// detection, tokenization, word classes, and JSON escaping produce the
// same bytes on every tier. Outputs are captured under forced kScalar and
// compared against each faster tier.

std::vector<std::string> SampleRecords() {
  return {
      "Domain Name: EXAMPLE.COM\nRegistrar: GoDaddy.com, LLC\n"
      "Creation Date: 2010-04-01T00:00:00Z\n\n"
      "Registrant Name: John Smith\nRegistrant Country: US\n",
      "   indented: value\n\ttabbed\tline\nempty:\n%% frame\n>>> symbols\n",
      "no separators here just words\r\nmixed\rnewlines\nhere\n",
      "key = value = twice\ndots.in.the.title: v\n a b c d e f g\n",
      std::string("binary \x01\x02 bytes: \x80\xff\n") + "last line",
      "",
  };
}

TEST(TextLayerEquivalence, SplitAndSeparatorIdenticalAcrossTiers) {
  for (const std::string& record : SampleRecords()) {
    std::vector<std::vector<std::string>> lines_by_mode;
    std::vector<std::vector<std::string>> splits_by_mode;
    for (Mode mode : TestableModes()) {
      ForcedMode forced(mode);
      auto& lines = lines_by_mode.emplace_back();
      auto& splits = splits_by_mode.emplace_back();
      for (const text::Line& line : text::SplitRecord(record)) {
        lines.push_back(line.text);
        const auto sep = text::FindSeparator(line.text);
        splits.push_back(sep.has_value()
                             ? std::string(sep->title) + "\x1f" +
                                   std::string(sep->value)
                             : std::string("<none>"));
      }
    }
    for (size_t m = 1; m < lines_by_mode.size(); ++m) {
      EXPECT_EQ(lines_by_mode[m], lines_by_mode[0]);
      EXPECT_EQ(splits_by_mode[m], splits_by_mode[0]);
    }
  }
}

TEST(TextLayerEquivalence, TokenizerAttributesIdenticalAcrossTiers) {
  const text::Tokenizer tokenizer;
  for (const std::string& record : SampleRecords()) {
    std::vector<std::vector<std::string>> attrs_by_mode;
    for (Mode mode : TestableModes()) {
      ForcedMode forced(mode);
      auto& attrs = attrs_by_mode.emplace_back();
      for (const text::Line& line : text::SplitRecord(record)) {
        for (const std::string& a : tokenizer.Extract(line).attrs) {
          attrs.push_back(a);
        }
        // The frozen classic path runs the same scans; keep it honest too.
        for (const std::string& a : tokenizer.ExtractClassic(line).attrs) {
          attrs.push_back("classic:" + a);
        }
      }
    }
    for (size_t m = 1; m < attrs_by_mode.size(); ++m) {
      EXPECT_EQ(attrs_by_mode[m], attrs_by_mode[0]);
    }
  }
}

TEST(TextLayerEquivalence, WordClassesAndJsonEscapeIdenticalAcrossTiers) {
  const std::vector<std::string> words = {
      "2010",      "EXAMPLE.COM", "a@b.com",  "12345",   "US",
      "+1.555",    "\"quoted\"",  "normal",   "MiXeD",   "\x80\xffhi",
      "2010-04-01T00:00:00Z",     std::string(64, '7'),
  };
  std::vector<std::vector<std::string>> out_by_mode;
  for (Mode mode : TestableModes()) {
    ForcedMode forced(mode);
    auto& out = out_by_mode.emplace_back();
    for (const std::string& w : words) {
      for (const text::WordClass cls : text::ClassifyWord(w)) {
        out.push_back(std::string(text::WordClassName(cls)));
      }
      out.push_back(util::JsonWriter::Escape(w));
    }
    out.push_back(util::JsonWriter::Escape(
        std::string("\x01\x02\x03 escape \"all\" the \\ things\r\n\t")));
  }
  for (size_t m = 1; m < out_by_mode.size(); ++m) {
    EXPECT_EQ(out_by_mode[m], out_by_mode[0]);
  }
}

}  // namespace
}  // namespace whoiscrf::util::scan
