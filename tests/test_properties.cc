// Property-style parameterized suites:
//   * per-template-family invariants of the generator and parser,
//   * rate-limiter behavior across policy sweeps,
//   * CRF inference invariants across state-space sizes.
#include <gtest/gtest.h>

#include "crf/inference.h"
#include "crf/viterbi.h"
#include "crf/tagger.h"
#include "crf/trainer.h"
#include "datagen/corpus_gen.h"
#include "net/rate_limiter.h"
#include "text/line_splitter.h"
#include "whois/whois_parser.h"

namespace whoiscrf {
namespace {

// ---------------------------------------------------------------------
// Per-family properties: every template family renders consistently
// labeled records, and a parser trained across families labels in-family
// records accurately.
class TemplateFamilyTest : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 600;
    options.seed = 4242;
    generator_ = new datagen::CorpusGenerator(options);
    std::vector<whois::LabeledRecord> train;
    for (size_t i = 0; i < 350; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new whois::WhoisParser(whois::WhoisParser::Train(train));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete parser_;
  }
  static datagen::CorpusGenerator* generator_;
  static whois::WhoisParser* parser_;
};

datagen::CorpusGenerator* TemplateFamilyTest::generator_ = nullptr;
whois::WhoisParser* TemplateFamilyTest::parser_ = nullptr;

TEST_P(TemplateFamilyTest, RendersBothVersionsWithValidLabels) {
  const std::string& family = GetParam();
  const datagen::TemplateLibrary& library = generator_->templates();
  datagen::TemplateEngine engine;
  util::Rng rng(1);
  datagen::EntityGenerator entities;

  datagen::DomainFacts facts;
  facts.domain = "proptest.com";
  facts.registrar_name = "Prop Registrar";
  facts.registrar_url = "http://example.com";
  facts.whois_server = "whois.example.com";
  facts.iana_id = "999";
  facts.created = "2012-01-02T03:04:05Z";
  facts.updated = "2014-01-02T03:04:05Z";
  facts.expires = "2016-01-02T03:04:05Z";
  facts.name_servers = {"ns1.proptest.com"};
  facts.statuses = {"ok"};
  facts.registrant = entities.MakeContact(rng, "US");
  facts.admin = facts.registrant;
  facts.tech = facts.registrant;

  for (int version = 0; version < 2; ++version) {
    const auto record = engine.Render(library.Get(family, version), facts);
    record.Validate();
    // Registrant data must be present and placed on registrant lines.
    bool found_name = false;
    const auto lines = text::SplitRecord(record.text);
    for (size_t t = 0; t < lines.size(); ++t) {
      if (lines[t].text.find(facts.registrant.name) != std::string::npos &&
          record.labels[t] == whois::Level1Label::kRegistrant) {
        found_name = true;
      }
    }
    EXPECT_TRUE(found_name) << family << " v" << version;
  }
}

TEST_P(TemplateFamilyTest, TrainedParserHandlesFamily) {
  const std::string& family = GetParam();
  // Scan held-out records of this family and demand high line accuracy.
  size_t lines = 0;
  size_t wrong = 0;
  size_t records_seen = 0;
  for (size_t i = 350; i < 600 && records_seen < 8; ++i) {
    const auto domain = generator_->Generate(i);
    const auto& actual_family =
        generator_->registrars()
            .info(static_cast<size_t>(domain.facts.registrar_index))
            .family;
    if (actual_family != family) continue;
    ++records_seen;
    const auto labels = parser_->LabelLines(domain.thick.text);
    for (size_t t = 0; t < labels.size(); ++t) {
      ++lines;
      if (labels[t] != domain.thick.labels[t]) ++wrong;
    }
  }
  if (lines == 0) GTEST_SKIP() << "family not drawn in held-out range";
  EXPECT_LE(static_cast<double>(wrong) / static_cast<double>(lines), 0.08)
      << family << ": " << wrong << "/" << lines;
}

INSTANTIATE_TEST_SUITE_P(
    NamedFamilies, TemplateFamilyTest,
    ::testing::Values("godaddy", "wildwest", "enom", "netsol", "oneand1",
                      "hichina", "xinnet", "pdr", "register", "fastdomain",
                      "gmo", "melbourne", "tucows", "moniker", "namecom",
                      "bizcn", "dreamhost", "namecheap", "ovh", "gandi"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Rate limiter sweeps.
struct PolicyCase {
  uint32_t max_queries;
  uint64_t window_ms;
  uint64_t penalty_ms;
};

class RateLimiterSweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(RateLimiterSweep, AllowsExactlyBudgetPerWindow) {
  const PolicyCase param = GetParam();
  net::RateLimiter limiter(
      {param.max_queries, param.window_ms, param.penalty_ms});
  uint64_t now = 0;
  uint32_t allowed = 0;
  // Burst: exactly max_queries pass, the next is denied.
  for (uint32_t i = 0; i <= param.max_queries; ++i) {
    if (limiter.Allow("src", now)) ++allowed;
    ++now;
  }
  EXPECT_EQ(allowed, param.max_queries);
  EXPECT_TRUE(limiter.InPenalty("src", now));
  // After the penalty AND window pass, the budget refreshes fully.
  now += param.penalty_ms + param.window_ms + 1;
  allowed = 0;
  for (uint32_t i = 0; i < param.max_queries; ++i) {
    if (limiter.Allow("src", now)) ++allowed;
  }
  EXPECT_EQ(allowed, param.max_queries);
}

TEST_P(RateLimiterSweep, SteadySlowRateNeverTrips) {
  const PolicyCase param = GetParam();
  net::RateLimiter limiter(
      {param.max_queries, param.window_ms, param.penalty_ms});
  // One query per (window / max) * 1.5 never exceeds the budget.
  const uint64_t gap = (param.window_ms / param.max_queries) * 3 / 2 + 1;
  uint64_t now = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(limiter.Allow("src", now)) << "query " << i;
    now += gap;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RateLimiterSweep,
    ::testing::Values(PolicyCase{1, 1000, 500}, PolicyCase{5, 1000, 2000},
                      PolicyCase{30, 60'000, 120'000},
                      PolicyCase{100, 10'000, 10'000}),
    [](const auto& info) {
      return "q" + std::to_string(info.param.max_queries) + "_w" +
             std::to_string(info.param.window_ms);
    });

// ---------------------------------------------------------------------
// CRF invariants across label-space sizes (matches the two real models:
// 6 level-1 states, 12 level-2 states).
class CrfStateSpaceTest : public ::testing::TestWithParam<int> {};

TEST_P(CrfStateSpaceTest, ViterbiPathHasMaximalProbability) {
  const int L = GetParam();
  text::Vocabulary vocab;
  for (int a = 0; a < 4; ++a) vocab.Count("a" + std::to_string(a));
  vocab.Freeze(1);
  std::vector<std::string> names;
  for (int l = 0; l < L; ++l) names.push_back("s" + std::to_string(l));
  crf::CrfModel model(names, std::move(vocab), {0, 1});
  util::Rng rng(static_cast<uint64_t>(L) * 31 + 7);
  for (double& w : model.weights()) w = rng.Gaussian();

  crf::CompiledSequence seq(5);
  for (auto& item : seq) {
    item.attrs = {static_cast<int>(rng.UniformInt(0, 3))};
    if (rng.Bernoulli(0.5)) item.trans_slots = {0};
  }
  const auto scores = model.ComputeScores(seq);
  const auto best = crf::Decode(scores);
  const double best_log_prob = crf::SequenceLogProb(scores, best.labels);

  // 50 random paths: none may beat Viterbi.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> labels;
    for (int t = 0; t < 5; ++t) {
      labels.push_back(static_cast<int>(rng.UniformInt(0, L - 1)));
    }
    EXPECT_LE(crf::SequenceLogProb(scores, labels), best_log_prob + 1e-9);
  }
  EXPECT_LE(best_log_prob, 1e-9);  // it's a probability
}

INSTANTIATE_TEST_SUITE_P(StateSpaces, CrfStateSpaceTest,
                         ::testing::Values(2, 3, 6, 12));

}  // namespace
}  // namespace whoiscrf
