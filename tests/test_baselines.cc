// Baseline parsers: the rule-based parser labels its own development corpus
// perfectly and degrades gracefully when rolled back; the template parser
// is exact on known formats and fails closed on drifted ones (§2.3, §5.1).
#include <gtest/gtest.h>

#include "baselines/rule_parser.h"
#include "baselines/template_parser.h"
#include "datagen/corpus_gen.h"

namespace whoiscrf::baselines {
namespace {

std::vector<whois::LabeledRecord> MakeCorpus(size_t n, uint64_t seed,
                                             double drift) {
  datagen::CorpusOptions options;
  options.size = n;
  options.seed = seed;
  options.drift_fraction = drift;
  datagen::CorpusGenerator generator(options);
  std::vector<whois::LabeledRecord> out;
  for (size_t i = 0; i < n; ++i) out.push_back(generator.Generate(i).thick);
  return out;
}

double LineErrorRate(
    const std::vector<whois::Level1Label>& gold,
    const std::vector<whois::Level1Label>& predicted) {
  EXPECT_EQ(gold.size(), predicted.size());
  size_t wrong = 0;
  for (size_t i = 0; i < gold.size(); ++i) {
    if (predicted[i] != gold[i]) ++wrong;
  }
  return gold.empty() ? 0.0
                      : static_cast<double>(wrong) /
                            static_cast<double>(gold.size());
}

TEST(RuleParserTest, NormalizeTitle) {
  EXPECT_EQ(RuleBasedParser::NormalizeTitle("Registrant  Name"),
            "registrant name");
  EXPECT_EQ(RuleBasedParser::NormalizeTitle("[Registrant]"), "registrant");
  EXPECT_EQ(RuleBasedParser::NormalizeTitle("OWNER_NAME"), "owner name");
  EXPECT_EQ(RuleBasedParser::NormalizeTitle("  ..  "), "");
}

TEST(RuleParserTest, NearPerfectOnDevelopmentCorpus) {
  const auto corpus = MakeCorpus(250, 3, 0.25);
  const RuleBasedParser parser = RuleBasedParser::Build(corpus);
  double total_error = 0;
  for (const auto& record : corpus) {
    total_error += LineErrorRate(record.labels, parser.LabelLines(record.text));
  }
  // §4.2: the full rule base labels its own development corpus essentially
  // perfectly (we allow a small slack for genuinely ambiguous lines).
  EXPECT_LT(total_error / static_cast<double>(corpus.size()), 0.02);
}

TEST(RuleParserTest, RollBackLosesCoverage) {
  const auto full_corpus = MakeCorpus(400, 5, 0.25);
  const auto tiny_subset = MakeCorpus(5, 6, 0.0);
  const RuleBasedParser full = RuleBasedParser::Build(full_corpus);
  const RuleBasedParser reduced = full.RollBack(tiny_subset);
  EXPECT_LT(reduced.num_title_rules(), full.num_title_rules());

  // Evaluate both on held-out data: the rolled-back parser must be no
  // better, and typically worse.
  const auto test = MakeCorpus(120, 7, 0.25);
  double err_full = 0;
  double err_reduced = 0;
  for (const auto& record : test) {
    err_full += LineErrorRate(record.labels, full.LabelLines(record.text));
    err_reduced +=
        LineErrorRate(record.labels, reduced.LabelLines(record.text));
  }
  EXPECT_LE(err_full, err_reduced + 1e-12);
  EXPECT_GT(err_reduced, 0.0);
}

TEST(RuleParserTest, BlockContextInheritance) {
  // eNom-style contextual block: untitled lines inherit the header label.
  whois::LabeledRecord record;
  record.domain = "x.com";
  record.text =
      "Registrant Contact:\n"
      "   John Smith\n"
      "   1 Main St\n"
      "\n"
      "Creation date: 01-Jan-2010\n";
  using L = whois::Level1Label;
  record.labels = {L::kRegistrant, L::kRegistrant, L::kRegistrant, L::kDate};
  record.sub_labels = {std::nullopt, whois::Level2Label::kName,
                       whois::Level2Label::kStreet, std::nullopt};
  const RuleBasedParser parser = RuleBasedParser::Build({record});
  const auto labels = parser.LabelLines(record.text);
  EXPECT_EQ(labels, record.labels);
}

TEST(RuleParserTest, PatternRulesSurviveRollBackToNothing) {
  const auto corpus = MakeCorpus(100, 9, 0.0);
  const RuleBasedParser full = RuleBasedParser::Build(corpus);
  // Roll back against an empty set: only built-in pattern rules remain.
  const RuleBasedParser bare = full.RollBack({});
  EXPECT_EQ(bare.num_title_rules(), 0u);
  // Keyword fallbacks still label the obvious lines.
  const auto labels =
      bare.LabelLines("Registrant Name: John\nCreation Date: 2010-01-01\n");
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], whois::Level1Label::kRegistrant);
  EXPECT_EQ(labels[1], whois::Level1Label::kDate);
}

TEST(RuleParserTest, ParseExtractsRegistrant) {
  const auto corpus = MakeCorpus(200, 11, 0.0);
  const RuleBasedParser parser = RuleBasedParser::Build(corpus);
  datagen::CorpusOptions options;
  options.size = 200;
  options.seed = 11;
  datagen::CorpusGenerator generator(options);
  size_t name_hits = 0;
  for (size_t i = 0; i < 60; ++i) {
    const auto domain = generator.Generate(i);
    const auto parsed = parser.Parse(domain.thick.text);
    if (parsed.registrant.name == domain.facts.registrant.name) ++name_hits;
  }
  EXPECT_GT(name_hits, 40u);  // development data: rules mostly fit
}

TEST(TemplateParserTest, ExactOnTrainingFormats) {
  const auto corpus = MakeCorpus(300, 13, 0.0);
  const TemplateBasedParser parser = TemplateBasedParser::Build(corpus);
  EXPECT_GT(parser.num_templates(), 10u);
  size_t matched = 0;
  size_t perfect = 0;
  for (const auto& record : corpus) {
    const auto result = parser.Parse(record.text);
    if (!result.matched) continue;
    ++matched;
    std::vector<whois::Level1Label> gold = record.labels;
    if (result.labels == gold) ++perfect;
  }
  EXPECT_GT(matched, corpus.size() * 9 / 10);
  EXPECT_GT(perfect, matched * 9 / 10);
}

TEST(TemplateParserTest, FailsClosedOnDriftedSchema) {
  // Built on v0 formats only; drifted records must mostly fail to match —
  // the fragility the paper demonstrates with deft-whois.
  const auto v0_corpus = MakeCorpus(300, 17, 0.0);
  const TemplateBasedParser parser = TemplateBasedParser::Build(v0_corpus);

  datagen::CorpusOptions options;
  options.size = 100;
  options.seed = 18;
  options.drift_fraction = 1.0;  // every record drifted
  datagen::CorpusGenerator generator(options);
  size_t matched = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (parser.Parse(generator.Generate(i).thick.text).matched) ++matched;
  }
  EXPECT_LT(matched, 35u);
}

TEST(TemplateParserTest, UnknownFormatFails) {
  const auto corpus = MakeCorpus(50, 19, 0.0);
  const TemplateBasedParser parser = TemplateBasedParser::Build(corpus);
  const auto result =
      parser.Parse("totally-unknown-key!!: value\nanother: thing\n");
  EXPECT_FALSE(result.matched);
}

}  // namespace
}  // namespace whoiscrf::baselines
