// Utility layer: string helpers, deterministic RNG, tables, thread pool.
#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "util/env.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace whoiscrf::util {
namespace {

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\r\n x \t"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(TrimLeft("  a "), "a ");
  EXPECT_EQ(TrimRight("  a "), "  a");
}

TEST(StringUtilTest, Case) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("aBc"), "ABC");
}

TEST(StringUtilTest, Split) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitWhitespace) {
  const auto parts = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, SplitLines) {
  const auto lines = SplitLines("a\nb\r\nc\rd");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
  EXPECT_EQ(lines[3], "d");
}

TEST(StringUtilTest, JoinAndReplace) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b"}, ", "), "a, b");
  EXPECT_EQ(ReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, CaseInsensitiveSearch) {
  EXPECT_TRUE(ContainsIgnoreCase("Whois Server: X", "whois server"));
  EXPECT_FALSE(ContainsIgnoreCase("abc", "abd"));
  EXPECT_TRUE(EqualsIgnoreCase("GoDaddy", "godaddy"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, Predicates) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(EndsWith("abcdef", "def"));
  EXPECT_TRUE(IsDigits("12345"));
  EXPECT_FALSE(IsDigits("12a"));
  EXPECT_FALSE(IsDigits(""));
  EXPECT_TRUE(HasAlnum(" a "));
  EXPECT_FALSE(HasAlnum("---"));
}

TEST(StringUtilTest, WithCommasAndFormat) {
  EXPECT_EQ(WithCommas(0), "0");
  EXPECT_EQ(WithCommas(999), "999");
  EXPECT_EQ(WithCommas(1234567), "1,234,567");
  EXPECT_EQ(WithCommas(-1234), "-1,234");
  EXPECT_EQ(Format("%d-%s", 5, "x"), "5-x");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
  Rng c(43);
  EXPECT_NE(Rng(42).NextU64(), c.NextU64());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value hit
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_THROW(rng.UniformInt(7, 3), std::invalid_argument);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(3);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
  EXPECT_THROW(rng.WeightedIndex(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.WeightedIndex(std::vector<double>{-1.0, 2.0}),
               std::invalid_argument);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(4);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfIsDecreasing) {
  Rng rng(5);
  std::vector<size_t> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(6);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(7);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, GaussianMoments) {
  Rng rng(8);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"Country", "Number", "(% All)"});
  table.AddRow({"United States", "34,236,575", "(47.6)"});
  table.AddRow({"China", "6,908,865", "(9.6)"});
  table.AddSeparator();
  table.AddRow({"Total", "71,865,317", "(100.0)"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("United States"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Right alignment: the numbers line up at the right edge.
  EXPECT_NE(out.find("  6,908,865"), std::string::npos);
}

TEST(TextTableTest, RejectsBadRows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.AddRow({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelChunksPartitionExactly) {
  ThreadPool pool(3);
  std::atomic<size_t> total{0};
  pool.ParallelChunks(10, [&](size_t begin, size_t end, size_t) {
    total += end - begin;
  });
  EXPECT_EQ(total.load(), 10u);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   4, [](size_t i) {
                     if (i == 2) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(EnvTest, ScaledAppliesFloor) {
  // Without WHOISCRF_SCALE set, Scaled is identity (with floor).
  EXPECT_EQ(Scaled(100), 100u);
  EXPECT_EQ(Scaled(0, 5), 5u);
  EXPECT_EQ(EnvInt("WHOISCRF_NONEXISTENT_VAR", 7), 7);
  EXPECT_EQ(EnvString("WHOISCRF_NONEXISTENT_VAR", "x"), "x");
}

}  // namespace
}  // namespace whoiscrf::util
