// Text layer: line chunking with layout markers, separator detection,
// word classes, attribute extraction, and vocabulary trimming.
#include <sstream>

#include <gtest/gtest.h>

#include "text/line_splitter.h"
#include "text/separator.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"
#include "text/word_classes.h"

namespace whoiscrf::text {
namespace {

TEST(LineSplitterTest, SkipsBlankAndSymbolOnlyLines) {
  const auto lines = SplitRecord("Domain Name: X.COM\n\n---\nRegistrar: R\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "Domain Name: X.COM");
  EXPECT_EQ(lines[1].text, "Registrar: R");
  EXPECT_FALSE(lines[0].preceded_by_blank);
  EXPECT_TRUE(lines[1].preceded_by_blank);  // blank + rule line above
}

TEST(LineSplitterTest, TracksIndentShifts) {
  const auto lines = SplitRecord("Registrant:\n   John Smith\n   1 Main St\nCreated: 2014\n");
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_FALSE(lines[0].shift_left);
  EXPECT_TRUE(lines[1].shift_right);
  EXPECT_FALSE(lines[2].shift_right);
  EXPECT_TRUE(lines[3].shift_left);
}

TEST(LineSplitterTest, MarksSymbolLines) {
  const auto lines = SplitRecord("% terms of use\n# notice\nDomain: x\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_TRUE(lines[0].starts_with_symbol);
  EXPECT_TRUE(lines[1].starts_with_symbol);
  EXPECT_FALSE(lines[2].starts_with_symbol);
}

TEST(LineSplitterTest, HandlesCrlfAndCr) {
  const auto lines = SplitRecord("a: 1\r\nb: 2\rc: 3\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "a: 1");
  EXPECT_EQ(lines[1].text, "b: 2");
  EXPECT_EQ(lines[2].text, "c: 3");
}

TEST(LineSplitterTest, EmptyRecord) {
  EXPECT_TRUE(SplitRecord("").empty());
  EXPECT_TRUE(SplitRecord("\n\n\n").empty());
}

TEST(SeparatorTest, FindsColon) {
  const auto sep = FindSeparator("Registrant Name: John Smith");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kColon);
  EXPECT_EQ(sep->title, "Registrant Name");
  EXPECT_EQ(sep->value, "John Smith");
}

TEST(SeparatorTest, EmptyValueHeader) {
  const auto sep = FindSeparator("Registrant:");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->title, "Registrant");
  EXPECT_TRUE(sep->value.empty());
}

TEST(SeparatorTest, IgnoresUrlSchemeColon) {
  const auto sep = FindSeparator("Referral URL: http://www.godaddy.com");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->title, "Referral URL");
  EXPECT_EQ(sep->value, "http://www.godaddy.com");
  // A line that is only a URL has no separator.
  EXPECT_FALSE(FindSeparator("http://www.example.com").has_value());
}

TEST(SeparatorTest, DottedLeaders) {
  const auto sep = FindSeparator("Registrant Name......: John");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kEllipsis);
  EXPECT_EQ(sep->title, "Registrant Name");
  EXPECT_EQ(sep->value, "John");
}

TEST(SeparatorTest, TabSeparator) {
  const auto sep = FindSeparator("Name\tJohn Smith");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kTab);
  EXPECT_EQ(sep->title, "Name");
  EXPECT_EQ(sep->value, "John Smith");
}

TEST(SeparatorTest, EqualsSeparator) {
  const auto sep = FindSeparator("OWNER_NAME=Jane Roe");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kEquals);
  EXPECT_EQ(sep->title, "OWNER_NAME");
  EXPECT_EQ(sep->value, "Jane Roe");
}

TEST(SeparatorTest, BracketSeparator) {
  const auto sep = FindSeparator("[Domain Name] EXAMPLE.COM");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kBracket);
  EXPECT_EQ(sep->title, "Domain Name");
  EXPECT_EQ(sep->value, "EXAMPLE.COM");
  // A bare bracketed header has an empty value.
  const auto header = FindSeparator("[Registrant]");
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->title, "Registrant");
  EXPECT_TRUE(header->value.empty());
}

TEST(SeparatorTest, WideSpaceSeparator) {
  const auto sep = FindSeparator("Created    2014-01-01");
  ASSERT_TRUE(sep.has_value());
  EXPECT_EQ(sep->kind, SeparatorKind::kWideSpace);
  EXPECT_EQ(sep->title, "Created");
  EXPECT_EQ(sep->value, "2014-01-01");
}

TEST(SeparatorTest, NoSeparator) {
  EXPECT_FALSE(FindSeparator("John Smith").has_value());
  EXPECT_FALSE(FindSeparator("").has_value());
}

TEST(WordClassTest, FiveDigit) {
  EXPECT_TRUE(IsFiveDigit("92093"));
  EXPECT_FALSE(IsFiveDigit("9209"));
  EXPECT_FALSE(IsFiveDigit("920933"));
  EXPECT_FALSE(IsFiveDigit("9209a"));
}

TEST(WordClassTest, Email) {
  EXPECT_TRUE(IsEmail("john.smith@gmail.com"));
  EXPECT_TRUE(IsEmail("a@b.co"));
  EXPECT_FALSE(IsEmail("john.smith"));
  EXPECT_FALSE(IsEmail("@gmail.com"));
  EXPECT_FALSE(IsEmail("a@b@c.com"));
}

TEST(WordClassTest, PhoneLike) {
  EXPECT_TRUE(IsPhoneLike("+1.8585551212"));
  EXPECT_TRUE(IsPhoneLike("858-555-1212"));
  EXPECT_TRUE(IsPhoneLike("(858) 555-1212"));
  EXPECT_FALSE(IsPhoneLike("12345"));        // too few digits
  EXPECT_FALSE(IsPhoneLike("hello"));
}

TEST(WordClassTest, DateLike) {
  EXPECT_TRUE(IsDateLike("2014-03-02"));
  EXPECT_TRUE(IsDateLike("02-Mar-2014"));
  EXPECT_TRUE(IsDateLike("2014/03/02"));
  EXPECT_FALSE(IsDateLike("03-02"));
  EXPECT_FALSE(IsDateLike("2014-03-02-04"));
}

TEST(WordClassTest, DomainAndUrl) {
  EXPECT_TRUE(IsDomainName("example.com"));
  EXPECT_TRUE(IsDomainName("ns1.example.co.uk"));
  EXPECT_FALSE(IsDomainName("example"));
  EXPECT_FALSE(IsDomainName("192.168.0.1"));  // IP, not domain
  EXPECT_TRUE(IsUrl("http://example.com"));
  EXPECT_TRUE(IsUrl("www.example.com"));
  EXPECT_FALSE(IsUrl("example.com"));
}

TEST(WordClassTest, Ipv4) {
  EXPECT_TRUE(IsIpv4("192.168.0.1"));
  EXPECT_FALSE(IsIpv4("192.168.0.256"));
  EXPECT_FALSE(IsIpv4("192.168.0"));
}

TEST(WordClassTest, YearAndCountryCode) {
  EXPECT_TRUE(IsYear("2014"));
  EXPECT_TRUE(IsYear("1998"));
  EXPECT_FALSE(IsYear("3014"));
  EXPECT_TRUE(IsCountryCode("US"));
  EXPECT_FALSE(IsCountryCode("us"));
  EXPECT_FALSE(IsCountryCode("USA"));
}

TEST(WordClassTest, Punycode) {
  EXPECT_TRUE(IsPunycode("xn--bcher-kva"));
  EXPECT_TRUE(IsPunycode("shop.xn--p1ai"));
  EXPECT_FALSE(IsPunycode("example.com"));
}

TEST(TokenizerTest, TitleValueSuffixes) {
  Tokenizer tokenizer;
  Line line;
  line.text = "Registrant Name: John Smith";
  const LineAttributes attrs = tokenizer.Extract(line);
  auto has = [&](const std::string& a) {
    return std::find(attrs.attrs.begin(), attrs.attrs.end(), a) !=
           attrs.attrs.end();
  };
  EXPECT_TRUE(has("registrant@T"));
  EXPECT_TRUE(has("name@T"));
  EXPECT_TRUE(has("john@V"));
  EXPECT_TRUE(has("smith@V"));
  EXPECT_TRUE(has("SEP"));
  EXPECT_FALSE(has("john@T"));
}

TEST(TokenizerTest, NoSeparatorMeansAllValue) {
  Tokenizer tokenizer;
  Line line;
  line.text = "John Smith";
  const LineAttributes attrs = tokenizer.Extract(line);
  for (const auto& a : attrs.attrs) {
    if (a.find("@T") != std::string::npos) {
      FAIL() << "unexpected title attr " << a;
    }
  }
}

TEST(TokenizerTest, LayoutMarkers) {
  Tokenizer tokenizer;
  Line line;
  line.text = "   John Smith";
  line.preceded_by_blank = true;
  line.shift_right = true;
  const LineAttributes attrs = tokenizer.Extract(line);
  auto has = [&](const std::string& a) {
    return std::find(attrs.attrs.begin(), attrs.attrs.end(), a) !=
           attrs.attrs.end();
  };
  EXPECT_TRUE(has("NL"));
  EXPECT_TRUE(has("SHR"));
}

TEST(TokenizerTest, MarkersAreTransitionEligible) {
  Tokenizer tokenizer;
  Line line;
  line.text = "Created: 2014-01-01";
  line.preceded_by_blank = true;
  const LineAttributes attrs = tokenizer.Extract(line);
  for (size_t i = 0; i < attrs.attrs.size(); ++i) {
    if (attrs.attrs[i] == "NL") {
      EXPECT_TRUE(attrs.transition[i]);
    }
    if (attrs.attrs[i] == "created@T") {
      EXPECT_TRUE(attrs.transition[i]);
    }
    if (attrs.attrs[i] == "2014-01-01@V") {
      EXPECT_FALSE(attrs.transition[i]);
    }
  }
}

TEST(TokenizerTest, WordClassAttributes) {
  Tokenizer tokenizer;
  Line line;
  line.text = "Registrant Postal Code: 92093";
  const LineAttributes attrs = tokenizer.Extract(line);
  auto has = [&](const std::string& a) {
    return std::find(attrs.attrs.begin(), attrs.attrs.end(), a) !=
           attrs.attrs.end();
  };
  EXPECT_TRUE(has("CLS_5DIGIT@V"));  // the eq. 7 example feature
  EXPECT_TRUE(has("CLS_NUMBER@V"));
}

TEST(TokenizerTest, NormalizeWordStripsEdgePunctAndLowercases) {
  Tokenizer tokenizer;
  EXPECT_EQ(tokenizer.NormalizeWord("(John,"), "john");
  EXPECT_EQ(tokenizer.NormalizeWord("SMITH."), "smith");
  EXPECT_EQ(tokenizer.NormalizeWord("..."), "");
  EXPECT_EQ(tokenizer.NormalizeWord("john@example.com"), "john@example.com");
}

TEST(TokenizerTest, TruncatesVeryLongWords) {
  TokenizerOptions options;
  options.max_word_length = 8;
  Tokenizer tokenizer(options);
  EXPECT_EQ(tokenizer.NormalizeWord("abcdefghijklmnop"), "abcdefgh");
}

TEST(TokenizerTest, DeduplicatesAttributes) {
  Tokenizer tokenizer;
  Line line;
  line.text = "test test test";
  const LineAttributes attrs = tokenizer.Extract(line);
  int count = 0;
  for (const auto& a : attrs.attrs) {
    if (a == "test@V") ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(VocabularyTest, FreezeAssignsStableIds) {
  Vocabulary vocab;
  vocab.Count("b");
  vocab.Count("a");
  vocab.Count("b");
  vocab.Freeze(1);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.Lookup("b"), 0);  // first-seen order
  EXPECT_EQ(vocab.Lookup("a"), 1);
  EXPECT_EQ(vocab.Lookup("c"), Vocabulary::kNotFound);
  EXPECT_EQ(vocab.Name(0), "b");
}

TEST(VocabularyTest, MinCountTrims) {
  Vocabulary vocab;
  for (int i = 0; i < 5; ++i) vocab.Count("common");
  vocab.Count("rare");
  vocab.Freeze(2);
  EXPECT_EQ(vocab.size(), 1u);
  EXPECT_EQ(vocab.Lookup("rare"), Vocabulary::kNotFound);
  EXPECT_EQ(vocab.counted_size(), 2u);
}

TEST(VocabularyTest, LifecycleEnforced) {
  Vocabulary vocab;
  vocab.Count("x");
  EXPECT_THROW(vocab.Lookup("x"), std::logic_error);
  vocab.Freeze(1);
  EXPECT_THROW(vocab.Count("y"), std::logic_error);
  EXPECT_THROW(vocab.Freeze(1), std::logic_error);
}

TEST(VocabularyTest, SerializationRoundTrip) {
  Vocabulary vocab;
  vocab.Count("alpha");
  vocab.Count("beta");
  vocab.Count("gamma");
  vocab.Freeze(1);
  std::stringstream ss;
  vocab.Save(ss);
  const Vocabulary loaded = Vocabulary::Load(ss);
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.Lookup("alpha"), vocab.Lookup("alpha"));
  EXPECT_EQ(loaded.Lookup("gamma"), vocab.Lookup("gamma"));
  EXPECT_EQ(loaded.Lookup("delta"), Vocabulary::kNotFound);
}

}  // namespace
}  // namespace whoiscrf::text
