// Failure injection: the crawler's retry and validity logic against flaky
// servers and dropped connections (the real-world noise behind the paper's
// 7.5% failure rate, §4.1), latency/hang faults in simulated time, and the
// crash/resume crawl journal.
#include <unistd.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "net/crawl_journal.h"
#include "net/crawler.h"
#include "net/flaky.h"
#include "net/simulation.h"
#include "util/checkpoint.h"

namespace whoiscrf::net {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions corpus_options;
    corpus_options.size = 80;
    corpus_options.seed = 2024;
    generator_ = std::make_unique<datagen::CorpusGenerator>(corpus_options);
    SimulationOptions options;
    options.num_domains = 80;
    options.missing_fraction = 0.0;
    // Generous limits so only injected faults cause failures.
    options.registry_policy = {.max_queries = 100000,
                               .window_ms = 60'000,
                               .penalty_ms = 1000};
    options.registrar_policy = options.registry_policy;
    sim_ = BuildSimulatedInternet(*generator_, options);
  }

  std::unique_ptr<datagen::CorpusGenerator> generator_;
  SimulatedInternet sim_;
  SimClock clock_;
};

TEST_F(FailureInjectionTest, FlakyHandlerInjectsFaults) {
  auto store = std::make_shared<RecordStore>();
  store->Add("x.com", "Domain Name: X.COM\nRegistrar: R\n");
  ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 100000, .window_ms = 1000,
                         .penalty_ms = 1};
  FaultPolicy policy;
  policy.drop_probability = 1.0;
  FlakyHandler always_drop(
      std::make_shared<RegistrarHandler>(store, behavior), policy, 1);
  EXPECT_TRUE(always_drop.HandleQuery("x.com", "ip", 0).empty());
  EXPECT_EQ(always_drop.faults_injected(), 1u);

  FaultPolicy garble;
  garble.garble_probability = 1.0;
  FlakyHandler always_garble(
      std::make_shared<RegistrarHandler>(store, behavior), garble, 2);
  const std::string body = always_garble.HandleQuery("x.com", "ip", 0);
  EXPECT_NE(body.find("ERROR"), std::string::npos);
}

TEST_F(FailureInjectionTest, CrawlerRetriesThroughConnectionFailures) {
  // 30% of connections fail outright; three retry attempts across source
  // rotation should still fetch the vast majority of domains.
  FlakyNetwork flaky(*sim_.network, 0.30, 7);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(flaky, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);

  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) ++ok;
  }
  EXPECT_GT(flaky.connections_failed(), 0u);
  EXPECT_GE(ok, sim_.zone_domains.size() * 85 / 100)
      << "crawler should absorb a 30% connection-failure rate";
}

TEST_F(FailureInjectionTest, TotalConnectionFailureFailsEveryDomain) {
  FlakyNetwork dead(*sim_.network, 1.0, 9);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(dead, clock_, options);
  const auto result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_EQ(result.status, CrawlResult::Status::kFailed);
}

TEST_F(FailureInjectionTest, GarbledRegistrarBodiesYieldThinOnly) {
  // The registrar tier garbles every response; the registry is clean. The
  // crawler should classify those domains as thin-only, not crash or hang.
  class SelectiveGarble final : public Network {
   public:
    SelectiveGarble(Network& inner, std::string registry)
        : inner_(inner), registry_(std::move(registry)) {}
    QueryResult Query(const std::string& server, std::string_view query,
                      const std::string& source_ip, uint64_t now_ms) override {
      QueryResult result = inner_.Query(server, query, source_ip, now_ms);
      if (server != registry_ && result.connected) {
        result.body = "%% rate limit exceeded, try again later\n";
      }
      return result;
    }
    Network& inner_;
    std::string registry_;
  };

  SelectiveGarble garbled(*sim_.network, sim_.registry_server);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(garbled, clock_, options);
  const auto result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_EQ(result.status, CrawlResult::Status::kThinOnly);
  EXPECT_FALSE(result.thin.empty());
  EXPECT_TRUE(result.thick.empty());
}

TEST_F(FailureInjectionTest, DropsAreRecoveredByServerSideRetry) {
  // Probabilistic empty responses look identical to rate limiting from the
  // client's perspective; the crawler rotates sources and backs off, and
  // because drops are probabilistic it eventually succeeds.
  class ProbabilisticDrop final : public Network {
   public:
    ProbabilisticDrop(Network& inner, double p, uint64_t seed)
        : inner_(inner), p_(p), rng_(seed) {}
    QueryResult Query(const std::string& server, std::string_view query,
                      const std::string& source_ip, uint64_t now_ms) override {
      QueryResult result = inner_.Query(server, query, source_ip, now_ms);
      if (result.connected && rng_.Bernoulli(p_)) result.body.clear();
      return result;
    }
    Network& inner_;
    double p_;
    util::Rng rng_;
  };

  ProbabilisticDrop dropping(*sim_.network, 0.4, 11);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  options.source_cooldown_ms = 1000;  // short back-off keeps the test fast
  Crawler crawler(dropping, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);
  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) ++ok;
  }
  EXPECT_GE(ok, sim_.zone_domains.size() * 6 / 10);
  EXPECT_GT(crawler.stats().limit_hits, 0u);
}

TEST_F(FailureInjectionTest, LatencyFaultsAdvanceSimulatedTime) {
  FaultPolicy policy;
  policy.delay_probability = 1.0;
  policy.delay_ms = 2500;
  FlakyNetwork slow(*sim_.network, policy, 13, &clock_);
  const uint64_t before = clock_.NowMs();
  const QueryResult result =
      slow.Query(sim_.registry_server, sim_.zone_domains.front(),
                 "198.51.100.1", before);
  EXPECT_TRUE(result.connected);
  EXPECT_EQ(slow.delays_injected(), 1u);
  // The delay burned simulated (not wall-clock) time.
  EXPECT_GE(clock_.NowMs() - before, 2500u);
}

TEST_F(FailureInjectionTest, HangsBurnClientTimeoutAndFail) {
  FaultPolicy policy;
  policy.hang_probability = 1.0;
  policy.client_timeout_ms = 5000;
  FlakyNetwork hung(*sim_.network, policy, 17, &clock_);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(hung, clock_, options);

  const uint64_t before = clock_.NowMs();
  const CrawlResult result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_EQ(result.status, CrawlResult::Status::kFailed);
  EXPECT_EQ(hung.hangs_injected(), 3u);  // one per retry attempt
  // Every attempt burned the full client timeout in simulated time.
  EXPECT_GE(clock_.NowMs() - before, 3u * 5000u);
}

TEST_F(FailureInjectionTest, IntermittentHangsAreAbsorbedByRetries) {
  FaultPolicy policy;
  policy.hang_probability = 0.25;
  policy.client_timeout_ms = 30'000;
  FlakyNetwork flaky(*sim_.network, policy, 19, &clock_);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(flaky, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);
  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) ++ok;
  }
  EXPECT_GT(flaky.hangs_injected(), 0u);
  EXPECT_GE(ok, sim_.zone_domains.size() * 85 / 100)
      << "source rotation should absorb a 25% hang rate";
}

// ---------------------------------------------------------------------------
// Crawl journal: crash/resume for the crawler

std::string TempJournalPath(const char* tag) {
  return testing::TempDir() + "whoiscrf_" + tag + "_" +
         std::to_string(::getpid()) + ".journal";
}

TEST_F(FailureInjectionTest, JournalReplaySkipsCompletedDomainsExactly) {
  const std::string path = TempJournalPath("journal_replay");
  std::remove(path.c_str());

  // First run: crawl half the zone with a journal attached.
  const size_t half = sim_.zone_domains.size() / 2;
  {
    CrawlJournal journal(path);
    CrawlerOptions options;
    options.registry_server = sim_.registry_server;
    Crawler crawler(*sim_.network, clock_, options);
    crawler.SetJournal(&journal);
    for (size_t i = 0; i < half; ++i) {
      crawler.CrawlDomain(sim_.zone_domains[i]);
    }
  }  // "crash": journal closed with half the zone recorded

  const CrawlJournal::Replay replay = CrawlJournal::Load(path);
  EXPECT_EQ(replay.domains.size(), half);
  for (size_t i = 0; i < half; ++i) {
    EXPECT_EQ(replay.domains.count(sim_.zone_domains[i]), 1u) << i;
  }
  for (size_t i = half; i < sim_.zone_domains.size(); ++i) {
    EXPECT_EQ(replay.domains.count(sim_.zone_domains[i]), 0u) << i;
  }
}

TEST_F(FailureInjectionTest, JournalToleratesTornFinalLine) {
  const std::string path = TempJournalPath("journal_torn");
  {
    CrawlJournal journal(path);
    journal.RecordDomain("a.com", CrawlResult::Status::kOk, 1);
    journal.RecordLimit("whois.example.com", 120);
    journal.RecordDomain("b.com", CrawlResult::Status::kFailed, 3);
  }
  // Simulate a crash mid-append: chop bytes off the final line.
  std::string text;
  ASSERT_TRUE(util::ReadFileToString(path, text));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size() - 5, f);
    std::fclose(f);
  }
  const CrawlJournal::Replay replay = CrawlJournal::Load(path);
  EXPECT_EQ(replay.domains.size(), 1u);  // b.com's torn line is ignored
  EXPECT_EQ(replay.domains.at("a.com"), CrawlResult::Status::kOk);
  EXPECT_EQ(replay.limits.at("whois.example.com"), 120u);

  // Re-opening for append truncates the torn tail, then appends cleanly.
  {
    CrawlJournal journal(path);
    journal.RecordDomain("c.com", CrawlResult::Status::kThinOnly, 2);
  }
  const CrawlJournal::Replay after = CrawlJournal::Load(path);
  EXPECT_EQ(after.domains.size(), 2u);
  EXPECT_EQ(after.domains.at("c.com"), CrawlResult::Status::kThinOnly);
  std::remove(path.c_str());
}

TEST_F(FailureInjectionTest, ReplayedLimitsPaceTheResumedCrawler) {
  const std::string path = TempJournalPath("journal_limits");
  std::remove(path.c_str());
  {
    CrawlJournal journal(path);
    journal.RecordLimit(sim_.registry_server, 40);
    journal.RecordLimit(sim_.registry_server, 25);  // lower wins on replay
  }
  const CrawlJournal::Replay replay = CrawlJournal::Load(path);
  ASSERT_EQ(replay.limits.at(sim_.registry_server), 25u);

  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  options.initial_limits = replay.limits;
  Crawler crawler(*sim_.network, clock_, options);
  const auto result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_NE(result.status, CrawlResult::Status::kFailed);
  // The replayed limit is reported back out through stats().
  EXPECT_EQ(crawler.stats().inferred_limits.at(sim_.registry_server), 25u);
  std::remove(path.c_str());
}

TEST_F(FailureInjectionTest, CrawlStatusNamesRoundTrip) {
  for (CrawlResult::Status status :
       {CrawlResult::Status::kOk, CrawlResult::Status::kNoMatch,
        CrawlResult::Status::kThinOnly, CrawlResult::Status::kFailed}) {
    CrawlResult::Status back;
    ASSERT_TRUE(ParseCrawlStatus(CrawlStatusName(status), back));
    EXPECT_EQ(back, status);
  }
  CrawlResult::Status unused;
  EXPECT_FALSE(ParseCrawlStatus("bogus", unused));
}

}  // namespace
}  // namespace whoiscrf::net
