// Failure injection: the crawler's retry and validity logic against flaky
// servers and dropped connections (the real-world noise behind the paper's
// 7.5% failure rate, §4.1).
#include <gtest/gtest.h>

#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/flaky.h"
#include "net/simulation.h"

namespace whoiscrf::net {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CorpusOptions corpus_options;
    corpus_options.size = 80;
    corpus_options.seed = 2024;
    generator_ = std::make_unique<datagen::CorpusGenerator>(corpus_options);
    SimulationOptions options;
    options.num_domains = 80;
    options.missing_fraction = 0.0;
    // Generous limits so only injected faults cause failures.
    options.registry_policy = {.max_queries = 100000,
                               .window_ms = 60'000,
                               .penalty_ms = 1000};
    options.registrar_policy = options.registry_policy;
    sim_ = BuildSimulatedInternet(*generator_, options);
  }

  std::unique_ptr<datagen::CorpusGenerator> generator_;
  SimulatedInternet sim_;
  SimClock clock_;
};

TEST_F(FailureInjectionTest, FlakyHandlerInjectsFaults) {
  auto store = std::make_shared<RecordStore>();
  store->Add("x.com", "Domain Name: X.COM\nRegistrar: R\n");
  ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 100000, .window_ms = 1000,
                         .penalty_ms = 1};
  FaultPolicy policy;
  policy.drop_probability = 1.0;
  FlakyHandler always_drop(
      std::make_shared<RegistrarHandler>(store, behavior), policy, 1);
  EXPECT_TRUE(always_drop.HandleQuery("x.com", "ip", 0).empty());
  EXPECT_EQ(always_drop.faults_injected(), 1u);

  FaultPolicy garble;
  garble.garble_probability = 1.0;
  FlakyHandler always_garble(
      std::make_shared<RegistrarHandler>(store, behavior), garble, 2);
  const std::string body = always_garble.HandleQuery("x.com", "ip", 0);
  EXPECT_NE(body.find("ERROR"), std::string::npos);
}

TEST_F(FailureInjectionTest, CrawlerRetriesThroughConnectionFailures) {
  // 30% of connections fail outright; three retry attempts across source
  // rotation should still fetch the vast majority of domains.
  FlakyNetwork flaky(*sim_.network, 0.30, 7);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(flaky, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);

  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) ++ok;
  }
  EXPECT_GT(flaky.connections_failed(), 0u);
  EXPECT_GE(ok, sim_.zone_domains.size() * 85 / 100)
      << "crawler should absorb a 30% connection-failure rate";
}

TEST_F(FailureInjectionTest, TotalConnectionFailureFailsEveryDomain) {
  FlakyNetwork dead(*sim_.network, 1.0, 9);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(dead, clock_, options);
  const auto result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_EQ(result.status, CrawlResult::Status::kFailed);
}

TEST_F(FailureInjectionTest, GarbledRegistrarBodiesYieldThinOnly) {
  // The registrar tier garbles every response; the registry is clean. The
  // crawler should classify those domains as thin-only, not crash or hang.
  class SelectiveGarble final : public Network {
   public:
    SelectiveGarble(Network& inner, std::string registry)
        : inner_(inner), registry_(std::move(registry)) {}
    QueryResult Query(const std::string& server, std::string_view query,
                      const std::string& source_ip, uint64_t now_ms) override {
      QueryResult result = inner_.Query(server, query, source_ip, now_ms);
      if (server != registry_ && result.connected) {
        result.body = "%% rate limit exceeded, try again later\n";
      }
      return result;
    }
    Network& inner_;
    std::string registry_;
  };

  SelectiveGarble garbled(*sim_.network, sim_.registry_server);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  Crawler crawler(garbled, clock_, options);
  const auto result = crawler.CrawlDomain(sim_.zone_domains.front());
  EXPECT_EQ(result.status, CrawlResult::Status::kThinOnly);
  EXPECT_FALSE(result.thin.empty());
  EXPECT_TRUE(result.thick.empty());
}

TEST_F(FailureInjectionTest, DropsAreRecoveredByServerSideRetry) {
  // Probabilistic empty responses look identical to rate limiting from the
  // client's perspective; the crawler rotates sources and backs off, and
  // because drops are probabilistic it eventually succeeds.
  class ProbabilisticDrop final : public Network {
   public:
    ProbabilisticDrop(Network& inner, double p, uint64_t seed)
        : inner_(inner), p_(p), rng_(seed) {}
    QueryResult Query(const std::string& server, std::string_view query,
                      const std::string& source_ip, uint64_t now_ms) override {
      QueryResult result = inner_.Query(server, query, source_ip, now_ms);
      if (result.connected && rng_.Bernoulli(p_)) result.body.clear();
      return result;
    }
    Network& inner_;
    double p_;
    util::Rng rng_;
  };

  ProbabilisticDrop dropping(*sim_.network, 0.4, 11);
  CrawlerOptions options;
  options.registry_server = sim_.registry_server;
  options.source_cooldown_ms = 1000;  // short back-off keeps the test fast
  Crawler crawler(dropping, clock_, options);
  const auto results = crawler.CrawlAll(sim_.zone_domains);
  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == CrawlResult::Status::kOk) ++ok;
  }
  EXPECT_GE(ok, sim_.zone_domains.size() * 6 / 10);
  EXPECT_GT(crawler.stats().limit_hits, 0u);
}

}  // namespace
}  // namespace whoiscrf::net
