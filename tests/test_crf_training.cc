// Training behavior: both optimizers learn separable toy problems; the
// trainer builds sensible feature spaces; adaptation warm-starts correctly;
// evaluation metrics count as defined in §5.1.
#include <cmath>

#include <gtest/gtest.h>

#include "crf/evaluation.h"
#include "crf/lbfgs.h"
#include "crf/tagger.h"
#include "crf/trainer.h"
#include "util/random.h"

namespace whoiscrf::crf {
namespace {

// A toy sequence task: lines containing "alpha" are label 0, "beta" label 1,
// and "gamma" lines copy the previous label (only transitions can solve
// them).
Instance MakeToyInstance(util::Rng& rng, int length) {
  Instance inst;
  int prev = 0;
  for (int t = 0; t < length; ++t) {
    text::LineAttributes line;
    const int kind = static_cast<int>(rng.UniformInt(0, 2));
    if (kind == 0) {
      line.attrs = {"alpha"};
      line.transition = {true};
      inst.labels.push_back(0);
      prev = 0;
    } else if (kind == 1) {
      line.attrs = {"beta"};
      line.transition = {true};
      inst.labels.push_back(1);
      prev = 1;
    } else if (t > 0) {
      // Transition-eligible: only eq. 8 features (attr-conditioned
      // transitions) can express "gamma copies the previous label".
      line.attrs = {"gamma"};
      line.transition = {true};
      inst.labels.push_back(prev);
    } else {
      line.attrs = {"alpha"};
      line.transition = {true};
      inst.labels.push_back(0);
      prev = 0;
    }
    inst.lines.push_back(std::move(line));
  }
  return inst;
}

std::vector<Instance> MakeToyData(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Instance> data;
  for (size_t i = 0; i < n; ++i) {
    data.push_back(MakeToyInstance(rng, 8));
  }
  return data;
}

double ToyAccuracy(const CrfModel& model, const std::vector<Instance>& test) {
  const Tagger tagger(model);
  size_t correct = 0;
  size_t total = 0;
  for (const Instance& inst : test) {
    const auto predicted = tagger.Tag(inst.lines);
    for (size_t t = 0; t < predicted.size(); ++t) {
      ++total;
      if (predicted[t] == inst.labels[t]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(total);
}

TEST(TrainerTest, LbfgsLearnsToyTaskIncludingTransitions) {
  const auto train = MakeToyData(60, 1);
  const auto test = MakeToyData(30, 2);
  TrainerOptions options;
  options.threads = 2;
  Trainer trainer(options);
  TrainStats stats;
  const CrfModel model = trainer.Train({"A", "B"}, train, &stats);
  EXPECT_GT(stats.num_features, 0u);
  EXPECT_GT(stats.iterations, 0);
  // "gamma" lines are only solvable through transition weights.
  EXPECT_GT(ToyAccuracy(model, test), 0.99);
}

TEST(TrainerTest, SgdLearnsToyTask) {
  const auto train = MakeToyData(60, 3);
  const auto test = MakeToyData(30, 4);
  TrainerOptions options;
  options.algorithm = Algorithm::kSgd;
  options.sgd.epochs = 25;
  Trainer trainer(options);
  const CrfModel model = trainer.Train({"A", "B"}, train);
  EXPECT_GT(ToyAccuracy(model, test), 0.98);
}

TEST(TrainerTest, SgdAndLbfgsAgreeOnPredictions) {
  const auto train = MakeToyData(50, 5);
  const auto test = MakeToyData(20, 6);
  TrainerOptions lbfgs_options;
  TrainerOptions sgd_options;
  sgd_options.algorithm = Algorithm::kSgd;
  sgd_options.sgd.epochs = 30;
  const CrfModel m1 = Trainer(lbfgs_options).Train({"A", "B"}, train);
  const CrfModel m2 = Trainer(sgd_options).Train({"A", "B"}, train);
  EXPECT_NEAR(ToyAccuracy(m1, test), ToyAccuracy(m2, test), 0.02);
}

TEST(TrainerTest, SgdReachesNearLbfgsObjective) {
  // Both optimizers minimize the same convex penalized NLL; SGD's lazy L2
  // bookkeeping must land near the L-BFGS optimum, not at some other
  // stationary point (this guards the trickiest code path in sgd.cc).
  const auto train = MakeToyData(40, 21);
  TrainerOptions base;
  base.l2_sigma = 2.0;
  base.threads = 1;

  Trainer lbfgs_trainer(base);
  CrfModel lbfgs_model = lbfgs_trainer.Train({"A", "B"}, train);

  TrainerOptions sgd_options = base;
  sgd_options.algorithm = Algorithm::kSgd;
  sgd_options.sgd.epochs = 60;
  CrfModel sgd_model = Trainer(sgd_options).Train({"A", "B"}, train);

  // Evaluate the penalized objective at both solutions using the same
  // feature space (the vocabularies are identical by construction).
  const Dataset dataset = Trainer::Compile(lbfgs_model, train);
  CrfModel scratch = lbfgs_model;
  LogLikelihood objective(scratch, dataset, base.l2_sigma);
  std::vector<double> grad;
  const double f_lbfgs = objective.Evaluate(lbfgs_model.weights(), grad);
  const double f_sgd = objective.Evaluate(sgd_model.weights(), grad);
  EXPECT_GE(f_sgd, f_lbfgs - 1e-6);        // L-BFGS found the optimum
  EXPECT_LT(f_sgd, f_lbfgs * 1.10 + 1.0);  // SGD is close to it
}

TEST(TrainerTest, MinAttrCountTrimsDictionary) {
  auto train = MakeToyData(20, 7);
  // Inject one rare attribute.
  text::LineAttributes rare;
  rare.attrs = {"alpha", "hapax-legomenon"};
  rare.transition = {false, false};
  train[0].lines[0] = rare;
  train[0].labels[0] = 0;

  TrainerOptions keep_all;
  keep_all.min_attr_count = 1;
  TrainerOptions trim;
  trim.min_attr_count = 2;
  const CrfModel full = Trainer(keep_all).Train({"A", "B"}, train);
  const CrfModel trimmed = Trainer(trim).Train({"A", "B"}, train);
  EXPECT_EQ(full.vocab().Lookup("hapax-legomenon") !=
                text::Vocabulary::kNotFound,
            true);
  EXPECT_EQ(trimmed.vocab().Lookup("hapax-legomenon"),
            text::Vocabulary::kNotFound);
  EXPECT_LT(trimmed.num_weights(), full.num_weights());
}

TEST(TrainerTest, RejectsBadLabels) {
  auto data = MakeToyData(3, 8);
  data[0].labels[0] = 7;  // out of range for 2 labels
  EXPECT_THROW(Trainer().Train({"A", "B"}, data), std::invalid_argument);
}

TEST(TrainerTest, RejectsEmptyData) {
  EXPECT_THROW(Trainer().Train({"A", "B"}, {}), std::invalid_argument);
}

TEST(TrainerTest, AdaptImprovesOnNewPattern) {
  // Base model never saw "delta" lines (label 1).
  const auto base_data = MakeToyData(40, 9);
  const CrfModel base = Trainer().Train({"A", "B"}, base_data);

  Instance novel;
  for (int t = 0; t < 6; ++t) {
    text::LineAttributes line;
    line.attrs = {"delta"};
    line.transition = {false};
    novel.lines.push_back(line);
    novel.labels.push_back(1);
  }
  // Adaptation set: original data plus a handful of the new pattern (§5.3).
  auto adapted_data = base_data;
  adapted_data.push_back(novel);
  const CrfModel adapted = Trainer().Adapt(base, adapted_data);

  const Tagger tagger(adapted);
  const auto predicted = tagger.Tag(novel.lines);
  for (int label : predicted) EXPECT_EQ(label, 1);
  // Old task still works.
  EXPECT_GT(ToyAccuracy(adapted, MakeToyData(20, 10)), 0.98);
}

TEST(LbfgsTest, MinimizesQuadratic) {
  // f(w) = 0.5 * sum (w_i - i)^2, minimum at w_i = i.
  LbfgsOptimizer optimizer;
  std::vector<double> w(10, 0.0);
  const auto result = optimizer.Minimize(
      [](const std::vector<double>& x, std::vector<double>& g) {
        double f = 0.0;
        g.resize(x.size());
        for (size_t i = 0; i < x.size(); ++i) {
          const double d = x[i] - static_cast<double>(i);
          f += 0.5 * d * d;
          g[i] = d;
        }
        return f;
      },
      w);
  EXPECT_TRUE(result.converged);
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], static_cast<double>(i), 1e-4);
  }
}

TEST(LbfgsTest, MinimizesRosenbrock) {
  LbfgsOptimizer::Options options;
  options.max_iterations = 2000;
  options.grad_tolerance = 1e-6;
  options.value_rel_tolerance = 0;  // run to gradient convergence
  LbfgsOptimizer optimizer(options);
  std::vector<double> w = {-1.2, 1.0};
  const auto result = optimizer.Minimize(
      [](const std::vector<double>& x, std::vector<double>& g) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        g = {-2 * a - 400 * x[0] * b, 200 * b};
        return a * a + 100 * b * b;
      },
      w);
  EXPECT_NEAR(w[0], 1.0, 1e-3);
  EXPECT_NEAR(w[1], 1.0, 1e-3);
  EXPECT_LT(result.value, 1e-7);
}

TEST(EvaluatorTest, CountsLineAndDocumentErrors) {
  Evaluator eval(3);
  eval.AddDocument({0, 1, 2}, {0, 1, 2});  // perfect
  eval.AddDocument({0, 1, 2}, {0, 2, 2});  // one wrong line
  eval.AddDocument({1, 1}, {0, 0});        // all wrong
  EXPECT_EQ(eval.result().total_lines, 8u);
  EXPECT_EQ(eval.result().wrong_lines, 3u);
  EXPECT_EQ(eval.result().total_documents, 3u);
  EXPECT_EQ(eval.result().wrong_documents, 2u);
  EXPECT_NEAR(eval.result().LineErrorRate(), 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(eval.result().DocumentErrorRate(), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(eval.confusion(1, 2), 1u);
  EXPECT_EQ(eval.confusion(1, 0), 2u);
  EXPECT_NEAR(eval.Recall(2), 1.0, 1e-12);
  EXPECT_NEAR(eval.Precision(2), 2.0 / 3.0, 1e-12);
}

TEST(EvaluatorTest, RejectsMismatchedLengths) {
  Evaluator eval(2);
  EXPECT_THROW(eval.AddDocument({0, 1}, {0}), std::invalid_argument);
}

TEST(TaggerTest, ConfidencesAreProbabilities) {
  const auto train = MakeToyData(40, 11);
  const CrfModel model = Trainer().Train({"A", "B"}, train);
  const Tagger tagger(model);
  const Instance probe = MakeToyData(1, 12)[0];
  const TagResult result = tagger.TagWithConfidence(probe.lines);
  ASSERT_EQ(result.labels.size(), probe.lines.size());
  for (double c : result.confidences) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
  EXPECT_LE(result.sequence_log_prob, 1e-9);
  // A well-trained model should be confident on in-distribution data.
  for (double c : result.confidences) EXPECT_GT(c, 0.5);
}

}  // namespace
}  // namespace whoiscrf::crf
