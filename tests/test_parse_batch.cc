// Batch parsing engine: fused tokenize+compile equivalence, fast-vs-naive
// Parse equivalence, ParseBatch-vs-sequential equivalence across thread
// counts, parser options round-trip, and legacy model-stream loading.
//
// These tests are the guardrail for the inference fast path: every
// workspace shortcut must be *exactly* the classic pipeline, down to
// log_prob. Run them in a -DWHOISCRF_TSAN=ON build tree to check the
// parallel path under ThreadSanitizer.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crf/workspace.h"
#include "datagen/corpus_gen.h"
#include "text/line_splitter.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {
namespace {

class ParseBatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 120;
    options.seed = 99;
    datagen::CorpusGenerator generator(options);
    std::vector<LabeledRecord> train;
    for (size_t i = 0; i < 120; ++i) {
      train.push_back(generator.Generate(i).thick);
    }
    parser_ = new WhoisParser(WhoisParser::Train(train));
    generator_ = new datagen::CorpusGenerator(options);
  }
  static void TearDownTestSuite() {
    delete parser_;
    delete generator_;
    parser_ = nullptr;
    generator_ = nullptr;
  }

  static std::vector<std::string> CorpusTexts(size_t begin, size_t count) {
    std::vector<std::string> out;
    out.reserve(count);
    for (size_t i = begin; i < begin + count; ++i) {
      out.push_back(generator_->Generate(i).thick.text);
    }
    return out;
  }

  static WhoisParser* parser_;
  static datagen::CorpusGenerator* generator_;
};

WhoisParser* ParseBatchTest::parser_ = nullptr;
datagen::CorpusGenerator* ParseBatchTest::generator_ = nullptr;

TEST_F(ParseBatchTest, FusedCompileMatchesExtractCompile) {
  const text::Tokenizer tokenizer(parser_->options().tokenizer);
  crf::Workspace ws;
  for (const std::string& text : CorpusTexts(300, 20)) {
    const auto lines = text::SplitRecord(text);
    std::vector<text::LineAttributes> attrs;
    attrs.reserve(lines.size());
    for (const auto& line : lines) attrs.push_back(tokenizer.Extract(line));

    // The frozen classic extraction and the streaming path must agree
    // attribute-for-attribute (same values, order, transition flags).
    for (const auto& line : lines) {
      const text::LineAttributes classic_attrs = tokenizer.ExtractClassic(line);
      const text::LineAttributes fast_attrs = tokenizer.Extract(line);
      EXPECT_EQ(fast_attrs.attrs, classic_attrs.attrs);
      EXPECT_EQ(fast_attrs.transition, classic_attrs.transition);
    }

    std::vector<const text::Line*> line_ptrs;
    for (const auto& line : lines) line_ptrs.push_back(&line);

    for (const crf::CrfModel* model :
         {&parser_->level1_model(), &parser_->level2_model()}) {
      const crf::CompiledSequence classic = model->Compile(attrs);
      model->CompileInto(tokenizer, lines, ws);
      ASSERT_EQ(ws.seq.size(), classic.size());
      for (size_t t = 0; t < classic.size(); ++t) {
        EXPECT_EQ(ws.seq[t].attrs, classic[t].attrs) << "line " << t;
        EXPECT_EQ(ws.seq[t].trans_slots, classic[t].trans_slots)
            << "line " << t;
      }
      // The pointer-span overload (scattered line subsets) must agree too.
      model->CompileInto(
          tokenizer, std::span<const text::Line* const>(line_ptrs), ws);
      ASSERT_EQ(ws.seq.size(), classic.size());
      for (size_t t = 0; t < classic.size(); ++t) {
        EXPECT_EQ(ws.seq[t].attrs, classic[t].attrs) << "ptr line " << t;
      }
      // CompileLineMulti against this single model matches as well.
      crf::CompiledItem item;
      crf::CompiledItem* items[1] = {&item};
      const crf::CrfModel* models[1] = {model};
      for (size_t t = 0; t < lines.size(); ++t) {
        crf::CrfModel::CompileLineMulti(tokenizer, lines[t], models, items,
                                        ws.token_scratch);
        EXPECT_EQ(item.attrs, classic[t].attrs) << "multi line " << t;
        EXPECT_EQ(item.trans_slots, classic[t].trans_slots)
            << "multi line " << t;
      }
    }
  }
}

TEST_F(ParseBatchTest, FastParseMatchesNaive) {
  ParseWorkspace ws;
  for (const std::string& text : CorpusTexts(500, 40)) {
    const ParsedWhois naive = parser_->ParseNaive(text);
    const ParsedWhois fast = parser_->Parse(text, ws);
    EXPECT_EQ(ToJson(fast), ToJson(naive));
    EXPECT_EQ(fast.line_labels, naive.line_labels);
    EXPECT_DOUBLE_EQ(fast.log_prob, naive.log_prob);
  }
}

TEST_F(ParseBatchTest, BatchMatchesSequentialAcrossThreadCounts) {
  const std::vector<std::string> records = CorpusTexts(700, 60);
  std::vector<ParsedWhois> sequential;
  sequential.reserve(records.size());
  ParseWorkspace ws;
  for (const std::string& r : records) {
    sequential.push_back(parser_->Parse(r, ws));
  }

  for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    util::ThreadPool pool(threads);
    const std::vector<ParsedWhois> batch = parser_->ParseBatch(records, pool);
    ASSERT_EQ(batch.size(), sequential.size()) << threads << " threads";
    for (size_t r = 0; r < batch.size(); ++r) {
      EXPECT_EQ(ToJson(batch[r]), ToJson(sequential[r]))
          << threads << " threads, record " << r;
      EXPECT_EQ(batch[r].log_prob, sequential[r].log_prob)
          << threads << " threads, record " << r;
    }
  }
}

TEST_F(ParseBatchTest, BeamParseAgreesWithExactDecoding) {
  // A beam covering every label still prunes to the transition support
  // recorded at training; on in-distribution records the exact path should
  // almost never leave that support, so labels agree near-perfectly — and
  // the reported log_prob can only drop (log Z stays exact, the path score
  // cannot beat the unconstrained argmax).
  ParseWorkspace exact_ws;
  ParseWorkspace beam_ws;
  beam_ws.beam_width = parser_->level1_model().num_labels() +
                       parser_->level2_model().num_labels();
  size_t agree = 0;
  size_t total = 0;
  for (const std::string& text : CorpusTexts(900, 40)) {
    const ParsedWhois exact = parser_->Parse(text, exact_ws);
    const ParsedWhois beam = parser_->Parse(text, beam_ws);
    ASSERT_EQ(beam.line_labels.size(), exact.line_labels.size());
    for (size_t t = 0; t < exact.line_labels.size(); ++t) {
      ++total;
      if (beam.line_labels[t] == exact.line_labels[t]) ++agree;
    }
    EXPECT_LE(beam.log_prob, exact.log_prob + 1e-9);
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.99)
      << agree << "/" << total;
}

TEST_F(ParseBatchTest, BeamParseBatchMatchesSequentialBeamParse) {
  const std::vector<std::string> records = CorpusTexts(960, 30);
  const int beam_width = 3;
  std::vector<ParsedWhois> sequential;
  sequential.reserve(records.size());
  ParseWorkspace ws;
  ws.beam_width = beam_width;
  for (const std::string& r : records) {
    sequential.push_back(parser_->Parse(r, ws));
  }
  util::ThreadPool pool(4);
  const auto batch = parser_->ParseBatch(records, pool, beam_width);
  ASSERT_EQ(batch.size(), sequential.size());
  for (size_t r = 0; r < batch.size(); ++r) {
    EXPECT_EQ(ToJson(batch[r]), ToJson(sequential[r])) << "record " << r;
    EXPECT_EQ(batch[r].log_prob, sequential[r].log_prob) << "record " << r;
  }
}

TEST_F(ParseBatchTest, TrainedModelsCarryTransitionSupport) {
  // Trainer records observed label bigrams; a trained parser's models must
  // expose a well-formed support mask in which self-transitions of labels
  // that occur in the data are present.
  for (const crf::CrfModel* model :
       {&parser_->level1_model(), &parser_->level2_model()}) {
    const size_t L = static_cast<size_t>(model->num_labels());
    ASSERT_EQ(model->transition_support().size(), L * L);
    size_t supported = 0;
    for (uint8_t bit : model->transition_support()) supported += bit;
    EXPECT_GT(supported, 0u);
    EXPECT_LE(supported, L * L);
  }
  // And it survives parser save/load (model format v2).
  std::stringstream ss;
  parser_->Save(ss);
  const WhoisParser loaded = WhoisParser::Load(ss);
  EXPECT_EQ(loaded.level1_model().transition_support(),
            parser_->level1_model().transition_support());
  EXPECT_EQ(loaded.level2_model().transition_support(),
            parser_->level2_model().transition_support());
}

TEST_F(ParseBatchTest, ParseBatchHandlesEmptyAndDegenerateRecords) {
  util::ThreadPool pool(2);
  EXPECT_TRUE(parser_->ParseBatch({}, pool).empty());

  const std::vector<std::string> records = {
      "", "\n\n\n", "%%%%%\n-----\n", generator_->Generate(900).thick.text};
  const auto batch = parser_->ParseBatch(records, pool);
  ASSERT_EQ(batch.size(), records.size());
  for (size_t r = 0; r < records.size(); ++r) {
    EXPECT_EQ(ToJson(batch[r]), ToJson(parser_->ParseNaive(records[r])))
        << "record " << r;
  }
}

TEST(ParserOptionsTest, SaveLoadRoundTripsOptions) {
  datagen::CorpusOptions corpus;
  corpus.size = 60;
  corpus.seed = 7;
  datagen::CorpusGenerator generator(corpus);
  std::vector<LabeledRecord> train;
  for (size_t i = 0; i < 60; ++i) {
    train.push_back(generator.Generate(i).thick);
  }

  WhoisParserOptions options;
  options.tokenizer.max_word_length = 10;
  options.tokenizer.word_classes = false;
  options.trainer.min_attr_count = 2;
  options.trainer.l2_sigma = 3.5;
  const WhoisParser trained = WhoisParser::Train(train, options);

  std::stringstream ss;
  trained.Save(ss);
  const WhoisParser loaded = WhoisParser::Load(ss);

  EXPECT_EQ(loaded.options().tokenizer.max_word_length, 10u);
  EXPECT_FALSE(loaded.options().tokenizer.word_classes);
  EXPECT_TRUE(loaded.options().tokenizer.layout_markers);
  EXPECT_TRUE(loaded.options().tokenizer.separator_markers);
  EXPECT_EQ(loaded.options().trainer.min_attr_count, 2u);
  EXPECT_DOUBLE_EQ(loaded.options().trainer.l2_sigma, 3.5);

  // With the tokenizer options restored, the reloaded parser must produce
  // identical parses — this is the bug the header fixes: options used to
  // be silently dropped, so a non-default tokenizer mis-tokenized after
  // reload.
  for (size_t i = 100; i < 120; ++i) {
    const std::string text = generator.Generate(i).thick.text;
    EXPECT_EQ(ToJson(loaded.Parse(text)), ToJson(trained.Parse(text)));
  }
}

TEST_F(ParseBatchTest, WorkspaceReusedAcrossParsersStaysCorrect) {
  // A workspace's line cache is keyed to one parser instance; handing the
  // workspace to a different parser (different vocabulary AND different
  // tokenizer options) must not leak stale compiled lines.
  datagen::CorpusOptions corpus;
  corpus.size = 40;
  corpus.seed = 11;
  datagen::CorpusGenerator generator(corpus);
  std::vector<LabeledRecord> train;
  for (size_t i = 0; i < 40; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  WhoisParserOptions options;
  options.tokenizer.max_word_length = 12;
  const WhoisParser other = WhoisParser::Train(train, options);

  ParseWorkspace ws;
  const std::string text = generator_->Generate(910).thick.text;
  const ParsedWhois first = parser_->Parse(text, ws);
  const ParsedWhois crossed = other.Parse(text, ws);
  const ParsedWhois again = parser_->Parse(text, ws);

  EXPECT_EQ(ToJson(first), ToJson(parser_->ParseNaive(text)));
  EXPECT_EQ(ToJson(crossed), ToJson(other.ParseNaive(text)));
  EXPECT_EQ(ToJson(again), ToJson(first));
  EXPECT_EQ(again.log_prob, first.log_prob);
}

TEST_F(ParseBatchTest, LoadsLegacyStreamsWithoutParserHeader) {
  // Pre-header streams are just the two CrfModels back to back.
  std::stringstream ss;
  parser_->level1_model().Save(ss);
  parser_->level2_model().Save(ss);
  const WhoisParser loaded = WhoisParser::Load(ss);

  EXPECT_EQ(loaded.options().tokenizer.max_word_length,
            text::TokenizerOptions{}.max_word_length);
  for (size_t i = 950; i < 960; ++i) {
    const std::string text = generator_->Generate(i).thick.text;
    EXPECT_EQ(ToJson(loaded.Parse(text)), ToJson(parser_->Parse(text)));
  }
}

TEST(AnnotateLinesTest, MatchesJoinThenSplitRecord) {
  const std::vector<std::string> raw_lines = {
      "Registrant Name: John Smith",
      "",
      "   Registrant Street: 1 Main St",
      "\tRegistrant City: Springfield",
      "-----",
      "Registrant Country: US",
  };
  const auto annotated = text::AnnotateLines(raw_lines);
  const auto split = text::SplitRecord(util::Join(raw_lines, "\n"));
  ASSERT_EQ(annotated.size(), split.size());
  for (size_t i = 0; i < split.size(); ++i) {
    EXPECT_EQ(annotated[i].text, split[i].text);
    EXPECT_EQ(annotated[i].index, split[i].index);
    EXPECT_EQ(annotated[i].raw_index, split[i].raw_index);
    EXPECT_EQ(annotated[i].preceded_by_blank, split[i].preceded_by_blank);
    EXPECT_EQ(annotated[i].shift_left, split[i].shift_left);
    EXPECT_EQ(annotated[i].shift_right, split[i].shift_right);
    EXPECT_EQ(annotated[i].starts_with_symbol, split[i].starts_with_symbol);
    EXPECT_EQ(annotated[i].has_tab, split[i].has_tab);
    EXPECT_EQ(annotated[i].indent, split[i].indent);
  }
}

TEST(SplitRecordIntoTest, ReusesBufferAcrossRecords) {
  std::vector<text::Line> reused;
  const std::string first =
      "Domain Name: EXAMPLE.COM\nRegistrar: Example Registrar\n"
      "\n   Name Server: NS1.EXAMPLE.COM\n";
  const std::string second = "Status: ok\n";
  for (const std::string* record : {&first, &second, &first}) {
    text::SplitRecordInto(*record, reused);
    const auto fresh = text::SplitRecord(*record);
    ASSERT_EQ(reused.size(), fresh.size());
    for (size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(reused[i].text, fresh[i].text);
      EXPECT_EQ(reused[i].preceded_by_blank, fresh[i].preceded_by_blank);
      EXPECT_EQ(reused[i].shift_right, fresh[i].shift_right);
      EXPECT_EQ(reused[i].indent, fresh[i].indent);
    }
  }
}

}  // namespace
}  // namespace whoiscrf::whois
