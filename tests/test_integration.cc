// End-to-end integration: the full pipeline of the paper — generate corpus,
// train the two-level parser, evaluate against the baselines, adapt to new
// TLDs, crawl the simulated internet and survey the results.
#include <gtest/gtest.h>

#include "baselines/rule_parser.h"
#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "survey/aggregates.h"
#include "survey/build.h"
#include "whois/whois_parser.h"

namespace whoiscrf {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::CorpusOptions options;
    options.size = 5000;
    options.seed = 2015;
    generator_ = new datagen::CorpusGenerator(options);

    std::vector<whois::LabeledRecord> train;
    for (size_t i = 0; i < 300; ++i) {
      train.push_back(generator_->Generate(i).thick);
    }
    parser_ = new whois::WhoisParser(whois::WhoisParser::Train(train));
    rule_parser_ = new baselines::RuleBasedParser(
        baselines::RuleBasedParser::Build(train));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete parser_;
    delete rule_parser_;
  }

  static datagen::CorpusGenerator* generator_;
  static whois::WhoisParser* parser_;
  static baselines::RuleBasedParser* rule_parser_;
};

datagen::CorpusGenerator* PipelineTest::generator_ = nullptr;
whois::WhoisParser* PipelineTest::parser_ = nullptr;
baselines::RuleBasedParser* PipelineTest::rule_parser_ = nullptr;

TEST_F(PipelineTest, StatisticalBeatsRuleBasedOnHeldOut) {
  size_t stat_wrong = 0;
  size_t rule_wrong = 0;
  size_t total = 0;
  for (size_t i = 3000; i < 3200; ++i) {
    const auto domain = generator_->Generate(i);
    const auto stat = parser_->LabelLines(domain.thick.text);
    const auto rule = rule_parser_->LabelLines(domain.thick.text);
    for (size_t t = 0; t < domain.thick.labels.size(); ++t) {
      ++total;
      if (stat[t] != domain.thick.labels[t]) ++stat_wrong;
      if (rule[t] != domain.thick.labels[t]) ++rule_wrong;
    }
  }
  const double stat_err = static_cast<double>(stat_wrong) / total;
  const double rule_err = static_cast<double>(rule_wrong) / total;
  // §5.1: the statistical parser dominates at comparable training exposure
  // and reaches very high accuracy with a few hundred examples.
  EXPECT_LT(stat_err, 0.02) << stat_wrong << "/" << total;
  EXPECT_LE(stat_err, rule_err + 1e-12);
}

TEST_F(PipelineTest, AdaptationFixesNewTld) {
  // Pick a TLD the com-trained parser struggles with, add ONE labeled
  // example, retrain, and require zero errors on further records — the
  // §5.3 maintainability claim.
  const std::string tld = "travel";
  const auto sample = generator_->GenerateNewTld(tld, 1);
  const auto before = parser_->LabelLines(sample.thick.text);
  size_t errors_before = 0;
  for (size_t t = 0; t < before.size(); ++t) {
    if (before[t] != sample.thick.labels[t]) ++errors_before;
  }

  std::vector<whois::LabeledRecord> adapted_set;
  for (size_t i = 0; i < 300; ++i) {
    adapted_set.push_back(generator_->Generate(i).thick);
  }
  adapted_set.push_back(sample.thick);  // one additional labeled example
  const whois::WhoisParser adapted = parser_->Adapt(adapted_set);

  size_t errors_after = 0;
  size_t lines = 0;
  for (uint64_t salt = 2; salt < 8; ++salt) {
    const auto probe = generator_->GenerateNewTld(tld, salt);
    const auto labels = adapted.LabelLines(probe.thick.text);
    for (size_t t = 0; t < labels.size(); ++t) {
      ++lines;
      if (labels[t] != probe.thick.labels[t]) ++errors_after;
    }
  }
  EXPECT_EQ(errors_after, 0u) << "of " << lines << " lines";
  EXPECT_LE(errors_after, errors_before);
}

TEST_F(PipelineTest, CrawlParseSurveyRoundTrip) {
  net::SimulationOptions sim_options;
  sim_options.num_domains = 150;
  sim_options.missing_fraction = 0.05;
  auto sim = net::BuildSimulatedInternet(*generator_, sim_options);

  net::SimClock clock;
  net::CrawlerOptions crawl_options;
  crawl_options.registry_server = sim.registry_server;
  net::Crawler crawler(*sim.network, clock, crawl_options);

  survey::SurveyDatabase db;
  for (const auto& result : crawler.CrawlAll(sim.zone_domains)) {
    if (result.status != net::CrawlResult::Status::kOk) continue;
    const auto parsed = parser_->Parse(result.thick);
    const auto& truth = sim.truth.at(result.domain);
    db.Add(survey::RowFromParse(result.domain, parsed,
                                generator_->registrars(),
                                truth.facts.on_dbl));
  }
  ASSERT_EQ(db.size(), sim.truth.size());

  // Registrar normalization should recover the short names for most rows.
  const auto registrars = survey::TopRegistrars(db, 3);
  ASSERT_FALSE(registrars.top.empty());
  EXPECT_EQ(registrars.top[0].key, "GoDaddy");

  // Parsed creation years should match the generated facts almost always.
  size_t year_hits = 0;
  for (const auto& row : db.rows()) {
    if (row.created_year == sim.truth.at(row.domain).facts.created_year) {
      ++year_hits;
    }
  }
  EXPECT_GT(static_cast<double>(year_hits) / db.size(), 0.9);
}

TEST_F(PipelineTest, PrivacyDetectionMatchesGeneratedTruth) {
  size_t agree = 0;
  size_t total = 0;
  for (size_t i = 4000; i < 4300; ++i) {
    const auto domain = generator_->Generate(i);
    const auto parsed = parser_->Parse(domain.thick.text);
    const auto row = survey::RowFromParse(
        domain.facts.domain, parsed, generator_->registrars(), false);
    ++total;
    if (row.privacy_protected == domain.facts.privacy_protected) ++agree;
  }
  EXPECT_GT(static_cast<double>(agree) / total, 0.93) << agree << "/" << total;
}

}  // namespace
}  // namespace whoiscrf
