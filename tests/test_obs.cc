// Tests for the observability layer: metric semantics, sharded-counter
// aggregation under a thread pool, exporter golden outputs, trace spans,
// and the run-report / metrics-file contract from docs/observability.md.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace whoiscrf::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- counters

TEST(CounterTest, IncAndValue) {
  Registry reg;
  Counter* c = reg.GetCounter("test_counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, GetOrCreateReturnsSameInstance) {
  Registry reg;
  Counter* a = reg.GetCounter("test_counter");
  Counter* b = reg.GetCounter("test_counter");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(reg.CounterValue("test_counter"), 1u);
}

TEST(CounterTest, LabelsSelectDistinctInstances) {
  Registry reg;
  Counter* ok = reg.GetCounter("test_results", "", {{"status", "ok"}});
  Counter* failed = reg.GetCounter("test_results", "", {{"status", "failed"}});
  EXPECT_NE(ok, failed);
  ok->Inc(3);
  failed->Inc();
  EXPECT_EQ(reg.CounterValue("test_results", {{"status", "ok"}}), 3u);
  EXPECT_EQ(reg.CounterValue("test_results", {{"status", "failed"}}), 1u);
  // Label order is irrelevant: the registry keys by the sorted set.
  Counter* ok2 = reg.GetCounter("test_results", "",
                                {{"status", "ok"}});
  EXPECT_EQ(ok, ok2);
}

TEST(CounterTest, ShardedAggregationUnderThreadPool) {
  Registry reg;
  Counter* c = reg.GetCounter("test_parallel");
  util::ThreadPool pool(8);
  constexpr size_t kIncrements = 100000;
  pool.ParallelFor(kIncrements, [&](size_t i) { c->Inc(i % 3 + 1); });
  uint64_t expected = 0;
  for (size_t i = 0; i < kIncrements; ++i) expected += i % 3 + 1;
  // The shards must not lose or double-count a single add.
  EXPECT_EQ(c->Value(), expected);
}

TEST(RegistryTest, KindMismatchThrows) {
  Registry reg;
  reg.GetCounter("test_metric");
  EXPECT_THROW(reg.GetGauge("test_metric"), std::invalid_argument);
  EXPECT_THROW(reg.GetHistogram("test_metric", "", {1.0}),
               std::invalid_argument);
}

TEST(RegistryTest, InvalidNameThrows) {
  Registry reg;
  EXPECT_THROW(reg.GetCounter(""), std::invalid_argument);
  EXPECT_THROW(reg.GetCounter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.GetCounter("has-dash"), std::invalid_argument);
  EXPECT_THROW(reg.GetCounter("9starts_with_digit"), std::invalid_argument);
}

TEST(RegistryTest, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter* c = reg.GetCounter("test_counter");
  Gauge* g = reg.GetGauge("test_gauge");
  Histogram* h = reg.GetHistogram("test_hist", "", {1.0, 2.0});
  c->Inc(5);
  g->Set(2.5);
  h->Observe(1.5);
  reg.Reset();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0.0);
  // The same pointers keep working after Reset.
  c->Inc();
  EXPECT_EQ(reg.CounterValue("test_counter"), 1u);
}

// ------------------------------------------------------------------ gauges

TEST(GaugeTest, SetAddValue) {
  Registry reg;
  Gauge* g = reg.GetGauge("test_gauge");
  EXPECT_EQ(g->Value(), 0.0);
  g->Set(1.5);
  EXPECT_EQ(g->Value(), 1.5);
  g->Add(0.25);
  g->Add(-0.5);
  EXPECT_DOUBLE_EQ(g->Value(), 1.25);
}

TEST(GaugeTest, ConcurrentAddLosesNothing) {
  Registry reg;
  Gauge* g = reg.GetGauge("test_gauge");
  util::ThreadPool pool(8);
  constexpr size_t kAdds = 10000;
  pool.ParallelFor(kAdds, [&](size_t) { g->Add(1.0); });
  EXPECT_DOUBLE_EQ(g->Value(), static_cast<double>(kAdds));
}

// -------------------------------------------------------------- histograms

TEST(HistogramTest, PrometheusLeBucketSemantics) {
  Registry reg;
  Histogram* h = reg.GetHistogram("test_hist", "", {1.0, 5.0, 10.0});
  h->Observe(0.5);   // <= 1
  h->Observe(1.0);   // == bound -> inclusive, still bucket le=1
  h->Observe(3.0);   // <= 5
  h->Observe(10.0);  // == bound -> bucket le=10
  h->Observe(11.0);  // overflow -> +Inf
  const std::vector<uint64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 1u);  // 3.0
  EXPECT_EQ(counts[2], 1u);  // 10.0
  EXPECT_EQ(counts[3], 1u);  // 11.0
  EXPECT_EQ(h->Count(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 25.5);
}

TEST(HistogramTest, NonIncreasingBoundsThrow) {
  Registry reg;
  EXPECT_THROW(reg.GetHistogram("test_bad1", "", {2.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(reg.GetHistogram("test_bad2", "", {1.0, 1.0}),
               std::invalid_argument);
}

TEST(HistogramTest, FamilySharesFirstBounds) {
  Registry reg;
  Histogram* a =
      reg.GetHistogram("test_hist", "", {1.0, 2.0}, {{"k", "a"}});
  // Later bounds are ignored; the family layout is fixed.
  Histogram* b =
      reg.GetHistogram("test_hist", "", {9.0, 99.0}, {{"k", "b"}});
  EXPECT_EQ(a->bounds(), b->bounds());
}

// --------------------------------------------------------------- exporters

TEST(ExporterTest, PrometheusGolden) {
  Registry reg;
  reg.GetCounter("test_requests_total", "Total requests")->Inc(3);
  reg.GetGauge("test_temperature", "Current temperature")->Set(21.5);
  Histogram* h =
      reg.GetHistogram("test_latency_ms", "Request latency", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  const std::string expected =
      "# HELP test_latency_ms Request latency\n"
      "# TYPE test_latency_ms histogram\n"
      "test_latency_ms_bucket{le=\"1\"} 1\n"
      "test_latency_ms_bucket{le=\"10\"} 2\n"
      "test_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "test_latency_ms_sum 55.5\n"
      "test_latency_ms_count 3\n"
      "# HELP test_requests_total Total requests\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total 3\n"
      "# HELP test_temperature Current temperature\n"
      "# TYPE test_temperature gauge\n"
      "test_temperature 21.5\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(ExporterTest, PrometheusLabelsGolden) {
  Registry reg;
  reg.GetCounter("test_results", "", {{"status", "ok"}})->Inc(2);
  reg.GetCounter("test_results", "", {{"status", "failed"}})->Inc();
  const std::string expected =
      "# TYPE test_results counter\n"
      "test_results{status=\"failed\"} 1\n"
      "test_results{status=\"ok\"} 2\n";
  EXPECT_EQ(reg.RenderPrometheus(), expected);
}

TEST(ExporterTest, JsonGolden) {
  Registry reg;
  reg.GetCounter("test_count")->Inc(7);
  reg.GetGauge("test_gauge")->Set(1.5);
  Histogram* h = reg.GetHistogram("test_hist", "", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(3.0);
  const std::string expected =
      "{\"counters\":[{\"name\":\"test_count\",\"value\":7}],"
      "\"gauges\":[{\"name\":\"test_gauge\",\"value\":1.5}],"
      "\"histograms\":[{\"name\":\"test_hist\",\"bounds\":[1,2],"
      "\"counts\":[1,0,1],\"count\":2,\"sum\":3.5}]}";
  EXPECT_EQ(reg.RenderJson(), expected);
}

// ------------------------------------------------------------------ traces

TEST(TraceTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  { ScopedSpan span(tracer, "test.span"); }
  EXPECT_EQ(tracer.EventCount(), 0u);
}

TEST(TraceTest, EnabledTracerRecordsSpans) {
  Tracer tracer;
  tracer.Enable();
  { ScopedSpan span(tracer, "test.outer"); }
  tracer.Record("test.manual", 100, 50);
  EXPECT_EQ(tracer.EventCount(), 2u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"test.manual\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, SpansFromWorkerThreadsAllRecorded) {
  Tracer tracer;
  tracer.Enable();
  util::ThreadPool pool(4);
  constexpr size_t kSpans = 1000;
  pool.ParallelFor(kSpans, [&](size_t) { ScopedSpan span(tracer, "test.w"); });
  EXPECT_EQ(tracer.EventCount(), kSpans);
  tracer.Clear();
  EXPECT_EQ(tracer.EventCount(), 0u);
}

// -------------------------------------------------------------- run report

TEST(ReportTest, RunReportSchemaAndDerived) {
  Registry reg;
  reg.GetCounter("whoiscrf_parse_records_total")->Inc(100);
  reg.GetCounter("whoiscrf_compile_cache_hits_total")->Inc(75);
  reg.GetCounter("whoiscrf_compile_cache_misses_total")->Inc(25);
  RunInfo info;
  info.command = "parse";
  info.exit_code = 0;
  info.wall_seconds = 2.0;
  const std::string report = RenderRunReport(reg, info);
  EXPECT_NE(report.find("\"schema\":\"whoiscrf.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(report.find("\"command\":\"parse\""), std::string::npos);
  EXPECT_NE(report.find("\"exit_code\":0"), std::string::npos);
  EXPECT_NE(report.find("\"parse_records_per_sec\":50"), std::string::npos);
  EXPECT_NE(report.find("\"compile_cache_hit_rate\":0.75"),
            std::string::npos);
  // No crawl metrics registered -> no crawl keys in `derived`.
  EXPECT_EQ(report.find("crawl_success_rate"), std::string::npos);
}

TEST(ReportTest, MetricsFileExtensionSelectsFormat) {
  Registry reg;
  reg.GetCounter("whoiscrf_parse_records_total", "Parsed records")->Inc(5);
  RunInfo info;
  info.command = "parse";
  info.wall_seconds = 1.0;

  const std::string prom = ::testing::TempDir() + "test_obs_metrics.prom";
  WriteMetricsFile(prom, reg, info);
  const std::string prom_text = ReadFile(prom);
  EXPECT_NE(prom_text.find("# TYPE whoiscrf_parse_records_total counter"),
            std::string::npos);
  EXPECT_NE(prom_text.find("whoiscrf_parse_records_total 5"),
            std::string::npos);

  const std::string jsonl = ::testing::TempDir() + "test_obs_metrics.jsonl";
  std::remove(jsonl.c_str());
  WriteMetricsFile(jsonl, reg, info);
  info.command = "eval";
  WriteMetricsFile(jsonl, reg, info);  // .jsonl appends
  std::ifstream is(jsonl);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"command\":\"parse\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"command\":\"eval\""), std::string::npos);

  EXPECT_THROW(WriteMetricsFile("/nonexistent-dir/x.json", reg, info),
               std::runtime_error);
}

// The global registry picks up the parser fast-path metrics; this is what
// the docs cross-check script and the CLI --metrics-out flag rely on.
TEST(ReportTest, GlobalRegistryIsSingleton) {
  Registry& a = Registry::Global();
  Registry& b = Registry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace whoiscrf::obs
