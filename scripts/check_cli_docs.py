#!/usr/bin/env python3
"""Cross-checks the CLI <-> docs contract: every flag the `whoiscrf`
binary's per-command --help tables emit must be mentioned (as `--flag`)
somewhere in README.md or docs/*.md — a flag nobody documented is a flag
nobody will find. Run from anywhere:

    python3 scripts/check_cli_docs.py [repo_root]            # source mode
    python3 scripts/check_cli_docs.py --binary PATH [root]   # binary mode

Source mode parses src/cli/help.cc (the single source of truth the binary
prints), so the lint CI job can run it without building. Binary mode runs
`PATH <command> --help` for every command and parses the live output; it
is wired into CTest as `cli_docs_check`, so the two modes cross-check each
other: help.cc drift fails lint, and a flag added to the binary without a
help entry never reaches either mode — which is exactly why RunCommand
routes --help through CommandHelp() rather than a second table.

The check is one-directional on purpose: docs may mention flags in prose
that discuss removed or hypothetical options, but every *real* flag must
be documented.
"""
import pathlib
import re
import subprocess
import sys

# A flag line in a help table: two spaces, the flag, optional metavar.
HELP_FLAG = re.compile(r"^\s{2}(--[A-Za-z0-9-]+)", re.MULTILINE)
# Commands registered in help.cc:  add("gen", kGenHelp);
# (names may be hyphenated, e.g. "shard-router")
HELP_ADD = re.compile(r'add\("([a-z][a-z-]*)",\s*k\w+Help\)')


def flags_from_source(root: pathlib.Path) -> dict:
    source = (root / "src" / "cli" / "help.cc").read_text()
    commands = HELP_ADD.findall(source)
    if not commands:
        raise RuntimeError("no add(\"<cmd>\", k...Help) lines in help.cc")
    # Source mode cannot easily split per command, and does not need to:
    # the contract is flag -> documented, so attribute every flag found in
    # any help table (including kGlobalFlags) to the file as a whole.
    return {"help.cc": sorted(set(HELP_FLAG.findall(source)))}


def flags_from_binary(binary: str, root: pathlib.Path) -> dict:
    source = (root / "src" / "cli" / "help.cc").read_text()
    commands = HELP_ADD.findall(source)
    out: dict = {}
    for command in commands:
        proc = subprocess.run(
            [binary, command, "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"`{binary} {command} --help` exited {proc.returncode}: "
                f"{proc.stderr.strip()}"
            )
        flags = sorted(set(HELP_FLAG.findall(proc.stdout)))
        if not flags:
            raise RuntimeError(
                f"`{binary} {command} --help` printed no flag table"
            )
        out[command] = flags
    return out


def documented_flags(root: pathlib.Path) -> set:
    mentioned: set = set()
    paths = [root / "README.md"]
    paths.extend(sorted((root / "docs").glob("*.md")))
    for path in paths:
        mentioned.update(
            re.findall(r"--[A-Za-z0-9-]+", path.read_text())
        )
    return mentioned


def main(argv: list) -> int:
    args = argv[1:]
    binary = None
    if "--binary" in args:
        i = args.index("--binary")
        binary = args[i + 1]
        del args[i : i + 2]
    root = pathlib.Path(args[0] if args else ".").resolve()

    if binary is not None:
        per_command = flags_from_binary(binary, root)
    else:
        per_command = flags_from_source(root)
    documented = documented_flags(root)

    missing: list = []
    total = 0
    for command, flags in sorted(per_command.items()):
        total += len(flags)
        for flag in flags:
            if flag not in documented:
                missing.append((command, flag))

    if missing:
        print(
            "CLI flags emitted by --help but mentioned nowhere in "
            "README.md or docs/*.md:",
            file=sys.stderr,
        )
        for command, flag in missing:
            print(f"  [{command}] {flag}", file=sys.stderr)
        return 1
    mode = "binary" if binary is not None else "source"
    print(
        f"ok: {total} help-table flags across {len(per_command)} "
        f"{'commands' if binary else 'file(s)'} all documented "
        f"({mode} mode)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
