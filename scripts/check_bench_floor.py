#!/usr/bin/env python3
"""Perf-regression guard: compares a BENCH_parse_throughput.json artifact
against the checked-in floors in bench/bench_floor.json and fails when a
reading regresses more than the configured tolerance below a floor.

    python3 scripts/check_bench_floor.py BENCH_parse_throughput.json \
        [bench/bench_floor.json]

Run by the bench-smoke CI job after the smoke suite, so a change that
quietly degenerates the fast path (or breaks its bit-identity with the
naive parser) fails CI instead of only shifting a number nobody reads.

Checks, in order:
  * checksums_match must be true — the fast path must stay bit-identical
    to the naive parser; an approximate "speedup" is a correctness bug.
  * fast_rps >= fast_rps_floor * (1 - tolerance) — absolute catastrophic
    floor; conservative because smoke runs are single-pass on shared
    runners.
  * fast_vs_naive_speedup >= fast_vs_naive_speedup_floor * (1 - tolerance)
    — the load-independent guard: both sides of the ratio come from the
    same run, so a slow machine cancels out and only a real regression of
    the fast path relative to the naive loop trips it.
"""
import json
import pathlib
import sys


def main(argv: list[str]) -> int:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    bench_path = pathlib.Path(argv[1])
    floor_path = pathlib.Path(
        argv[2]
        if len(argv) == 3
        else pathlib.Path(__file__).resolve().parent.parent
        / "bench"
        / "bench_floor.json"
    )
    bench = json.loads(bench_path.read_text())
    floors = json.loads(floor_path.read_text())
    tolerance = float(floors["tolerance"])

    failures: list[str] = []
    if bench.get("checksums_match") is not True:
        failures.append(
            "checksums_match is not true: the fast path no longer "
            "reproduces the naive parser bit-for-bit"
        )

    def check(metric: str, floor_key: str) -> None:
        value = float(bench[metric])
        floor = float(floors[floor_key])
        cutoff = floor * (1.0 - tolerance)
        verdict = "ok" if value >= cutoff else "FAIL"
        print(
            f"{metric}: {value:.2f} (floor {floor:.2f}, "
            f"cutoff {cutoff:.2f}) {verdict}"
        )
        if value < cutoff:
            failures.append(
                f"{metric} {value:.2f} is below cutoff {cutoff:.2f} "
                f"(floor {floor:.2f} - {tolerance:.0%} tolerance)"
            )

    check("fast_rps", "fast_rps_floor")
    check("fast_vs_naive_speedup", "fast_vs_naive_speedup_floor")

    if failures:
        print("\nbench floor check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
