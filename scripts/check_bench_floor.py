#!/usr/bin/env python3
"""Perf-regression guard: compares BENCH_*.json artifacts against the
checked-in bounds in bench/bench_floor.json and fails when a reading
strays more than the configured tolerance past its bound.

    python3 scripts/check_bench_floor.py BENCH_a.json [BENCH_b.json ...] \
        [--floors bench/bench_floor.json]

Run by the bench-smoke CI job after the smoke suite, so a change that
quietly degenerates a guarded path (the workspace fast path toward the
naive loop, the cascade toward the pure CRF, either toward wrong answers)
fails CI instead of only shifting a number nobody reads.

Each artifact names itself via its "bench" field; the floors file holds
one section per bench name. Within a section:
  * keys ending `_floor`   — value >= floor * (1 - tolerance)
  * keys ending `_ceiling` — value <= ceiling * (1 + tolerance)
  * `require_checksums_match: true` — the artifact's checksums_match must
    be true (bit-identity checks: an approximate "speedup" is a
    correctness bug, not a win)
Artifacts whose bench name has no section are skipped with a notice, so
adding a bench does not force adding floors for it.
"""
import json
import pathlib
import sys


def check_artifact(bench: dict, section: dict, tolerance: float,
                   failures: list) -> None:
    name = bench.get("bench", "?")
    if section.get("require_checksums_match"):
        if bench.get("checksums_match") is not True:
            failures.append(
                f"[{name}] checksums_match is not true: the guarded path "
                "no longer reproduces its reference bit-for-bit"
            )
    for key, bound in section.items():
        if key.endswith("_floor"):
            metric, is_floor = key[: -len("_floor")], True
        elif key.endswith("_ceiling"):
            metric, is_floor = key[: -len("_ceiling")], False
        else:
            continue
        if metric not in bench:
            failures.append(f"[{name}] artifact has no metric '{metric}'")
            continue
        value = float(bench[metric])
        bound = float(bound)
        if is_floor:
            cutoff = bound * (1.0 - tolerance)
            ok = value >= cutoff
            kind = "floor"
        else:
            cutoff = bound * (1.0 + tolerance)
            ok = value <= cutoff
            kind = "ceiling"
        print(
            f"[{name}] {metric}: {value:.4f} ({kind} {bound:.4f}, "
            f"cutoff {cutoff:.4f}) {'ok' if ok else 'FAIL'}"
        )
        if not ok:
            failures.append(
                f"[{name}] {metric} {value:.4f} is past cutoff "
                f"{cutoff:.4f} ({kind} {bound:.4f}, "
                f"{tolerance:.0%} tolerance)"
            )


def main(argv: list) -> int:
    args = argv[1:]
    floor_path = (
        pathlib.Path(__file__).resolve().parent.parent
        / "bench"
        / "bench_floor.json"
    )
    if "--floors" in args:
        i = args.index("--floors")
        floor_path = pathlib.Path(args[i + 1])
        del args[i : i + 2]
    # Legacy positional form: last arg is the floors file itself.
    if len(args) >= 2 and pathlib.Path(args[-1]).name == "bench_floor.json":
        floor_path = pathlib.Path(args[-1])
        args = args[:-1]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2

    floors = json.loads(floor_path.read_text())
    tolerance = float(floors["tolerance"])

    failures: list = []
    checked = 0
    for bench_arg in args:
        bench = json.loads(pathlib.Path(bench_arg).read_text())
        name = bench.get("bench")
        section = floors.get(name) if isinstance(name, str) else None
        if not isinstance(section, dict):
            print(f"(no floors for bench '{name}', skipping {bench_arg})")
            continue
        checked += 1
        check_artifact(bench, section, tolerance, failures)

    if checked == 0:
        print("no artifact matched a floors section", file=sys.stderr)
        return 2
    if failures:
        print("\nbench floor check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench floor check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
