#!/usr/bin/env python3
"""Cross-checks the telemetry contract: every metric registered in code
must be documented in docs/observability.md, and every documented
whoiscrf_* metric must still exist in code. Run from anywhere:

    python3 scripts/check_metrics_docs.py [repo_root]

Wired into CTest as `metrics_docs_check`, so a new metric without docs
(or stale docs after a rename) fails the build's test suite.
"""
import pathlib
import re
import sys

REGISTRATION = re.compile(
    r'(?:GetCounter|GetGauge|GetHistogram)\(\s*"(whoiscrf_[A-Za-z0-9_]+)"'
)
DOC_NAME = re.compile(r"`(whoiscrf_[A-Za-z0-9_]+)`")


def registered_metrics(root: pathlib.Path) -> set[str]:
    names: set[str] = set()
    for tree in ("src", "bench"):
        for pattern in ("*.cc", "*.h"):  # header-only code registers too
            for path in sorted((root / tree).rglob(pattern)):
                names.update(REGISTRATION.findall(path.read_text()))
    return names


def documented_metrics(doc: pathlib.Path) -> set[str]:
    return set(DOC_NAME.findall(doc.read_text()))


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    doc_path = root / "docs" / "observability.md"
    if not doc_path.is_file():
        print(f"error: {doc_path} not found", file=sys.stderr)
        return 2

    registered = registered_metrics(root)
    documented = documented_metrics(doc_path)
    if not registered:
        print("error: no metric registrations found under src/ or bench/ "
              "(did the registration pattern change?)", file=sys.stderr)
        return 2

    undocumented = sorted(registered - documented)
    stale = sorted(documented - registered)
    ok = True
    if undocumented:
        ok = False
        print("metrics registered in code but missing from "
              "docs/observability.md:", file=sys.stderr)
        for name in undocumented:
            print(f"  {name}", file=sys.stderr)
    if stale:
        ok = False
        print("metrics documented in docs/observability.md but no longer "
              "registered in code:", file=sys.stderr)
        for name in stale:
            print(f"  {name}", file=sys.stderr)
    if ok:
        print(f"ok: {len(registered)} metrics registered, all documented")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
