// Active-learning maintenance loop (extension of paper §5.3): operate the
// parser over a stream of records containing unfamiliar formats, let parse
// confidence decide which records a human should label, and watch the
// labeling budget stay tiny.
#include <cstdio>

#include "datagen/corpus_gen.h"
#include "whois/active_learning.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;

  datagen::CorpusOptions corpus_options;
  corpus_options.size = 500;
  corpus_options.seed = 61;
  const datagen::CorpusGenerator generator(corpus_options);

  std::vector<whois::LabeledRecord> train;
  for (size_t i = 0; i < 250; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  std::printf("training base parser on %zu .com records...\n", train.size());
  const whois::WhoisParser base = whois::WhoisParser::Train(train);

  // The "incoming stream": mostly familiar .com records, with records from
  // three unfamiliar registries mixed in.
  std::vector<std::string> pool;
  std::vector<whois::LabeledRecord> truth;
  for (size_t i = 300; i < 330; ++i) {
    const auto domain = generator.Generate(i);
    pool.push_back(domain.thick.text);
    truth.push_back(domain.thick);
  }
  for (const std::string tld : {"coop", "travel", "us"}) {
    for (uint64_t salt = 1; salt <= 2; ++salt) {
      const auto domain = generator.GenerateNewTld(tld, salt);
      pool.push_back(domain.thick.text);
      truth.push_back(domain.thick);
    }
  }
  std::printf("pool: %zu records (%zu from unfamiliar registries)\n\n",
              pool.size(), size_t{6});

  whois::ActiveAdaptOptions options;
  options.batch_size = 2;
  options.max_rounds = 6;
  const auto result = whois::ActiveAdapt(
      base, train, pool,
      [&](size_t index) {
        std::printf("  [human labels record %zu]\n", index);
        return truth[index];
      },
      options);

  std::printf("\nrounds:\n");
  for (const auto& round : result.rounds) {
    std::printf("  round %zu: worst per-line confidence %.4f, "
                "%zu labeled so far\n",
                round.round, round.worst_confidence, round.labeled_so_far);
  }
  std::printf("total labeled: %zu of %zu (%.0f%%)\n", result.total_labeled,
              pool.size(),
              100.0 * static_cast<double>(result.total_labeled) /
                  static_cast<double>(pool.size()));

  // Verify the adapted parser on fresh records of the three new formats.
  size_t errors = 0;
  size_t lines = 0;
  for (const std::string tld : {"coop", "travel", "us"}) {
    for (uint64_t salt = 5; salt <= 7; ++salt) {
      const auto probe = generator.GenerateNewTld(tld, salt);
      const auto labels = result.parser->LabelLines(probe.thick.text);
      for (size_t t = 0; t < labels.size(); ++t) {
        ++lines;
        if (labels[t] != probe.thick.labels[t]) ++errors;
      }
    }
  }
  std::printf("fresh records of the new formats: %zu/%zu lines mislabeled\n",
              errors, lines);
  return 0;
}
