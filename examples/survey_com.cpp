// Survey pipeline (paper §6): crawl a simulated .com, parse every thick
// record with the trained statistical parser, load the fields into the
// survey database, and print the registrant / registrar / privacy views.
#include <cstdio>

#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "survey/aggregates.h"
#include "survey/build.h"
#include "util/string_util.h"
#include "util/table.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;

  datagen::CorpusOptions corpus_options;
  corpus_options.size = 3000;
  corpus_options.seed = 2015;
  corpus_options.dbl_boost = 25.0;
  const datagen::CorpusGenerator generator(corpus_options);

  // Train the parser on a small labeled sample (§5.1 shows a few hundred
  // examples already reach >99% line accuracy).
  std::vector<whois::LabeledRecord> train;
  for (size_t i = 0; i < 300; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  std::printf("training parser on %zu labeled records...\n", train.size());
  const whois::WhoisParser parser = whois::WhoisParser::Train(train);

  // Crawl the simulated registry + registrars.
  net::SimulationOptions sim_options;
  sim_options.num_domains = corpus_options.size;
  auto sim = net::BuildSimulatedInternet(generator, sim_options);
  net::SimClock clock;
  net::CrawlerOptions crawl_options;
  crawl_options.registry_server = sim.registry_server;
  net::Crawler crawler(*sim.network, clock, crawl_options);
  std::printf("crawling %zu domains...\n", sim.zone_domains.size());

  survey::SurveyDatabase db;
  for (const auto& result : crawler.CrawlAll(sim.zone_domains)) {
    if (result.status != net::CrawlResult::Status::kOk) continue;
    const auto parsed = parser.Parse(result.thick);
    const auto& truth = sim.truth.at(result.domain);
    auto row = survey::RowFromParse(result.domain, parsed,
                                    generator.registrars(),
                                    truth.facts.on_dbl);
    if (row.registrar.empty()) {
      row.registrar = truth.facts.registrar_name;  // thin-record fallback
    }
    db.Add(std::move(row));
  }
  std::printf("parsed %zu records into the survey database "
              "(crawl: %zu ok, %zu no-match, %zu failed)\n\n",
              db.size(), crawler.stats().ok, crawler.stats().no_match,
              crawler.stats().failed);

  auto print_topk = [](const char* title, const survey::TopKResult& result) {
    std::printf("%s\n", title);
    util::TextTable table({"", "count", "share"});
    for (const auto& row : result.top) {
      table.AddRow({row.key, std::to_string(row.count),
                    util::Format("%.1f%%", 100.0 * row.share)});
    }
    std::printf("%s\n", table.Render().c_str());
  };

  print_topk("Top registrant countries:", survey::TopCountries(db, 5));
  print_topk("Top registrars:", survey::TopRegistrars(db, 5));
  print_topk("Top privacy services:", survey::TopPrivacyServices(db, 5));

  const auto hist = survey::CreationHistogram(db);
  std::printf("registrations by creation year (last 8 years):\n");
  int shown = 0;
  for (auto it = hist.rbegin(); it != hist.rend() && shown < 8; ++it, ++shown) {
    std::printf("  %d: %zu\n", it->first, it->second);
  }
  return 0;
}
