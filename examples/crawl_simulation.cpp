// Crawl simulation: the paper's data-collection pipeline (§4.1) end to end.
//
// Builds a simulated WHOIS internet — a thin Verisign-style registry plus
// one thick server per registrar, all rate-limited — and crawls it with the
// two-step thin->thick resolution and dynamic rate-limit inference. Pass
// --tcp to run the same crawl over real loopback TCP sockets (RFC 3912).
#include <cstdio>
#include <cstring>
#include <memory>

#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "net/tcp.h"

namespace {

using namespace whoiscrf;

int RunInProcess() {
  datagen::CorpusOptions corpus_options;
  corpus_options.size = 400;
  corpus_options.seed = 11;
  const datagen::CorpusGenerator generator(corpus_options);

  net::SimulationOptions options;
  options.num_domains = 400;
  options.missing_fraction = 0.05;
  options.registrar_policy = {.max_queries = 10,
                              .window_ms = 60'000,
                              .penalty_ms = 120'000};
  auto sim = net::BuildSimulatedInternet(generator, options);
  std::printf("simulated internet: 1 registry + per-registrar servers, "
              "%zu domains in the zone file\n",
              sim.zone_domains.size());

  net::SimClock clock;  // virtual time: penalties pass instantly
  net::CrawlerOptions crawl_options;
  crawl_options.registry_server = sim.registry_server;
  net::Crawler crawler(*sim.network, clock, crawl_options);

  const auto results = crawler.CrawlAll(sim.zone_domains);
  size_t verified = 0;
  for (const auto& result : results) {
    if (result.status != net::CrawlResult::Status::kOk) continue;
    if (sim.truth.at(result.domain).thick.text == result.thick) ++verified;
  }

  const auto& stats = crawler.stats();
  std::printf("\ncrawl finished in %.1f virtual minutes\n",
              static_cast<double>(clock.NowMs()) / 60000.0);
  std::printf("  ok: %zu   no-match: %zu   thin-only: %zu   failed: %zu\n",
              stats.ok, stats.no_match, stats.thin_only, stats.failed);
  std::printf("  queries sent: %zu, rate-limit hits: %zu\n",
              stats.queries_sent, stats.limit_hits);
  std::printf("  thick records byte-identical to ground truth: %zu/%zu\n",
              verified, stats.ok);
  std::printf("  inferred per-server limits (paper §4.1's dynamic "
              "inference):\n");
  size_t shown = 0;
  for (const auto& [server, limit] : stats.inferred_limits) {
    std::printf("    %-32s %u queries/window\n", server.c_str(), limit);
    if (++shown >= 8) {
      std::printf("    ... (%zu more)\n", stats.inferred_limits.size() - 8);
      break;
    }
  }
  return 0;
}

int RunTcp() {
  // A small live deployment on loopback sockets.
  datagen::CorpusOptions corpus_options;
  corpus_options.size = 30;
  corpus_options.seed = 12;
  const datagen::CorpusGenerator generator(corpus_options);

  auto registry_store = std::make_shared<net::RecordStore>();
  std::map<std::string, std::shared_ptr<net::RecordStore>> registrar_stores;
  std::vector<std::string> domains;
  for (size_t i = 0; i < 30; ++i) {
    const auto domain = generator.Generate(i);
    domains.push_back(domain.facts.domain);
    registry_store->Add(domain.facts.domain,
                        generator.RenderThin(domain.facts).text);
    auto& store = registrar_stores[domain.facts.whois_server];
    if (store == nullptr) store = std::make_shared<net::RecordStore>();
    store->Add(domain.facts.domain, domain.thick.text);
  }

  net::ServerBehavior behavior;
  behavior.rate_limit = {.max_queries = 1000, .window_ms = 1000,
                         .penalty_ms = 1000};
  net::TcpNetwork network;
  std::vector<std::unique_ptr<net::TcpWhoisServer>> servers;
  servers.push_back(std::make_unique<net::TcpWhoisServer>(
      std::make_shared<net::RegistryHandler>(registry_store, behavior)));
  network.Register("whois.verisign-grs.com", servers.back()->port());
  std::printf("registry listening on 127.0.0.1:%u\n", servers.back()->port());
  for (const auto& [host, store] : registrar_stores) {
    servers.push_back(std::make_unique<net::TcpWhoisServer>(
        std::make_shared<net::RegistrarHandler>(store, behavior)));
    network.Register(host, servers.back()->port());
  }
  std::printf("%zu registrar servers listening\n", servers.size() - 1);

  net::RealClock clock;
  net::Crawler crawler(network, clock, net::CrawlerOptions{});
  const auto results = crawler.CrawlAll(domains);
  size_t ok = 0;
  for (const auto& result : results) {
    if (result.status == net::CrawlResult::Status::kOk) ++ok;
  }
  std::printf("crawled %zu/%zu domains over real TCP sockets\n", ok,
              domains.size());
  for (auto& server : servers) server->Stop();
  return ok == domains.size() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool tcp = argc > 1 && std::strcmp(argv[1], "--tcp") == 0;
  return tcp ? RunTcp() : RunInProcess();
}
