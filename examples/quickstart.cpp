// Quickstart: train a WHOIS parser from labeled records, parse a record,
// inspect the structured output, and persist the model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "datagen/corpus_gen.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;

  // 1. Get labeled training data. Here we draw it from the bundled
  //    synthetic .com corpus; in production you would load your own with
  //    whois::ReadLabeledRecordsFile("train.txt").
  datagen::CorpusOptions corpus_options;
  corpus_options.size = 400;
  corpus_options.seed = 7;
  const datagen::CorpusGenerator generator(corpus_options);
  std::vector<whois::LabeledRecord> train;
  for (size_t i = 0; i < 200; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  std::printf("training on %zu labeled records...\n", train.size());

  // 2. Train the two-level CRF parser (paper §3).
  const whois::WhoisParser parser = whois::WhoisParser::Train(train);
  std::printf("level-1 model: %zu features; level-2 model: %zu features\n",
              parser.level1_model().num_weights(),
              parser.level2_model().num_weights());

  // 3. Parse a record the parser has never seen.
  const auto unseen = generator.Generate(333);
  std::printf("\n----- raw record (%s, format %s) -----\n%s",
              unseen.facts.domain.c_str(), unseen.template_id.c_str(),
              unseen.thick.text.c_str());

  const whois::ParsedWhois parsed = parser.Parse(unseen.thick.text);
  std::printf("----- structured output -----\n");
  std::printf("domain:      %s\n", parsed.domain_name.c_str());
  std::printf("registrar:   %s\n", parsed.registrar.c_str());
  std::printf("created:     %s\n", parsed.created.c_str());
  std::printf("expires:     %s\n", parsed.expires.c_str());
  std::printf("registrant:  %s\n", parsed.registrant.name.c_str());
  std::printf("  org:       %s\n", parsed.registrant.org.c_str());
  std::printf("  city:      %s\n", parsed.registrant.city.c_str());
  std::printf("  country:   %s\n", parsed.registrant.country.c_str());
  std::printf("  email:     %s\n", parsed.registrant.email.c_str());
  std::printf("parse confidence (log-prob of labeling): %.4f\n",
              parsed.log_prob);

  // 4. Persist and reload the model.
  parser.SaveFile("/tmp/whoiscrf_quickstart.model");
  const auto reloaded =
      whois::WhoisParser::LoadFile("/tmp/whoiscrf_quickstart.model");
  const auto again = reloaded.Parse(unseen.thick.text);
  std::printf("\nreloaded model agrees: %s\n",
              again.registrant.name == parsed.registrant.name ? "yes" : "no");
  return 0;
}
