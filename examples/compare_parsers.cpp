// Three-way comparison on held-out records: template-based vs rule-based vs
// statistical (the paper's §2.3/§5 framing in one program).
#include <cstdio>

#include "baselines/rule_parser.h"
#include "baselines/template_parser.h"
#include "datagen/corpus_gen.h"
#include "util/string_util.h"
#include "util/table.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;

  datagen::CorpusOptions corpus_options;
  corpus_options.size = 1200;
  corpus_options.seed = 31;
  corpus_options.drift_fraction = 0.25;
  const datagen::CorpusGenerator generator(corpus_options);

  std::vector<whois::LabeledRecord> train;
  for (size_t i = 0; i < 400; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  std::printf("building all three parsers from the same %zu labeled "
              "records...\n",
              train.size());
  const auto template_parser = baselines::TemplateBasedParser::Build(train);
  const auto rule_parser = baselines::RuleBasedParser::Build(train);
  const auto statistical = whois::WhoisParser::Train(train);

  size_t lines = 0;
  size_t docs = 0;
  size_t template_wrong = 0, template_failed_docs = 0;
  size_t rule_wrong = 0;
  size_t stat_wrong = 0;
  for (size_t i = 600; i < 1200; ++i) {
    const auto domain = generator.Generate(i);
    const auto& gold = domain.thick.labels;
    ++docs;
    lines += gold.size();

    const auto template_result = template_parser.Parse(domain.thick.text);
    if (!template_result.matched) {
      ++template_failed_docs;
      template_wrong += gold.size();  // failed records yield nothing
    } else {
      for (size_t t = 0; t < gold.size(); ++t) {
        if (template_result.labels[t] != gold[t]) ++template_wrong;
      }
    }
    const auto rule_labels = rule_parser.LabelLines(domain.thick.text);
    const auto stat_labels = statistical.LabelLines(domain.thick.text);
    for (size_t t = 0; t < gold.size(); ++t) {
      if (rule_labels[t] != gold[t]) ++rule_wrong;
      if (stat_labels[t] != gold[t]) ++stat_wrong;
    }
  }

  util::TextTable table({"parser", "line error rate", "notes"});
  auto rate = [&](size_t wrong) {
    return util::Format("%.3f%%", 100.0 * static_cast<double>(wrong) /
                                      static_cast<double>(lines));
  };
  table.AddRow({"template-based", rate(template_wrong),
                util::Format("failed outright on %zu/%zu records",
                             template_failed_docs, docs)});
  table.AddRow({"rule-based", rate(rule_wrong), "keyword fallbacks help"});
  table.AddRow({"statistical (CRF)", rate(stat_wrong),
                "generalizes across formats"});
  std::printf("\nheld-out evaluation over %zu records / %zu lines:\n%s\n",
              docs, lines, table.Render().c_str());
  return 0;
}
