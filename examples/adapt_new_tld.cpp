// Adaptation workflow (paper §5.3): when the parser meets an unfamiliar
// format, label ONE example, append it to the training set, and retrain —
// no rule surgery required. Also demonstrates the labeled-record text
// format used for training-set files.
#include <cstdio>

#include "datagen/corpus_gen.h"
#include "whois/training_data.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;

  datagen::CorpusOptions corpus_options;
  corpus_options.size = 400;
  corpus_options.seed = 21;
  const datagen::CorpusGenerator generator(corpus_options);

  std::vector<whois::LabeledRecord> train;
  for (size_t i = 0; i < 300; ++i) {
    train.push_back(generator.Generate(i).thick);
  }
  std::printf("training base parser on %zu .com records...\n", train.size());
  const whois::WhoisParser base = whois::WhoisParser::Train(train);

  // Meet a new TLD with an unfamiliar single-registry format.
  const std::string tld = "travel";
  const auto sample = generator.GenerateNewTld(tld, 1);
  auto count_errors = [&](const whois::WhoisParser& parser,
                          const whois::LabeledRecord& record) {
    const auto labels = parser.LabelLines(record.text);
    size_t errors = 0;
    for (size_t t = 0; t < labels.size(); ++t) {
      if (labels[t] != record.labels[t]) ++errors;
    }
    return errors;
  };
  std::printf("base parser on a .%s record: %zu/%zu lines mislabeled\n",
              tld.c_str(), count_errors(base, sample.thick),
              sample.thick.labels.size());

  // "Label" the failing record (ground truth plays the human here) and
  // round-trip it through the on-disk training format.
  const std::string path = "/tmp/whoiscrf_new_tld_example.txt";
  whois::WriteLabeledRecordsFile(path, {sample.thick});
  std::printf("wrote corrected example to %s:\n", path.c_str());
  const auto corrected = whois::ReadLabeledRecordsFile(path);

  auto adapted_set = train;
  adapted_set.push_back(corrected.front());
  std::printf("retraining with %zu + 1 records...\n", train.size());
  const whois::WhoisParser adapted = base.Adapt(adapted_set);

  size_t total_errors = 0;
  size_t total_lines = 0;
  for (uint64_t salt = 2; salt < 8; ++salt) {
    const auto probe = generator.GenerateNewTld(tld, salt);
    total_errors += count_errors(adapted, probe.thick);
    total_lines += probe.thick.labels.size();
  }
  std::printf("adapted parser on six fresh .%s records: %zu/%zu lines "
              "mislabeled\n",
              tld.c_str(), total_errors, total_lines);
  std::printf("(paper §5.3: one labeled example per new format suffices)\n");
  return total_errors == 0 ? 0 : 1;
}
