// Streaming pipeline vs in-memory batch: records/sec and peak RSS at
// corpus sizes where the difference matters. Writes
// BENCH_stream_pipeline.json (override with WHOISCRF_BENCH_OUT).
//
// The point of the streaming path is bounded memory, so phase order is
// load-bearing: ru_maxrss is a process-lifetime high-water mark, and the
// in-memory mode materializes the whole corpus. Both streaming phases
// (small, then 10x large) therefore run BEFORE anything materializes the
// large corpus — if streaming memory really is flat, the two peaks match
// to within the pipeline's bounded queues, and the in-memory phase then
// pushes the high-water mark up by roughly the corpus size.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "survey/build.h"
#include "util/chunk_reader.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "whois/record_store.h"
#include "whois/record_stream.h"
#include "whois/stream_checkpoint.h"
#include "whois/stream_pipeline.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Folds a parse into a checksum so the optimizer cannot drop the work.
// Summed in input order in every mode, so cross-mode sums are exactly
// equal (same doubles, same order), not approximately.
double Checksum(const whois::ParsedWhois& parsed) {
  return parsed.log_prob + static_cast<double>(parsed.line_labels.size());
}

// Process-lifetime high-water mark, KiB (Linux ru_maxrss unit).
long PeakRssKb() {
  struct rusage ru = {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

// Current resident set, KiB, from /proc/self/status (0 if unavailable).
long CurrentRssKb() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::atol(line.c_str() + 6);
    }
  }
  return 0;
}

struct PhaseResult {
  uint64_t records = 0;
  double seconds = 0.0;
  double records_per_sec = 0.0;
  double checksum = 0.0;
  long peak_rss_kb = 0;     // high-water mark after the phase
  long current_rss_kb = 0;  // resident set right after the phase
};

void FinishPhase(PhaseResult& r, Clock::time_point start) {
  r.seconds = SecondsSince(start);
  r.records_per_sec =
      r.seconds > 0.0 ? static_cast<double>(r.records) / r.seconds : 0.0;
  r.peak_rss_kb = PeakRssKb();
  r.current_rss_kb = CurrentRssKb();
}

// Writes records [begin, begin+count) of the corpus as a %%-delimited text
// file, one record at a time — the corpus is never resident.
void WriteCorpusFile(const datagen::CorpusGenerator& generator, size_t begin,
                     size_t count, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  for (size_t i = begin; i < begin + count; ++i) {
    os << generator.Generate(i).thick.text << "%%\n";
  }
}

PhaseResult StreamFile(const whois::WhoisParser& parser,
                       const std::string& path,
                       const whois::StreamPipelineOptions& options,
                       whois::StreamPipelineStats* stats_out) {
  PhaseResult r;
  const auto start = Clock::now();
  util::FileByteSource bytes(path);
  whois::TextRecordSource source(bytes);
  const whois::StreamPipelineStats stats = whois::ParseStream(
      parser, source, options,
      [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
        r.checksum += Checksum(parsed);
        ++r.records;
      });
  FinishPhase(r, start);
  if (stats_out != nullptr) *stats_out = stats;
  return r;
}

// Removes every artifact a checkpointed store run can leave: shards,
// unsealed .tmp shards, the quarantine store, and the checkpoint file.
void RemoveStoreArtifacts(const std::string& prefix) {
  for (const std::string& p : {prefix, prefix + "-quarantine"}) {
    for (size_t s = 0; s < 1000; ++s) {
      const std::string shard = whois::RecordStoreShardPath(p, s);
      const bool had_final = std::remove(shard.c_str()) == 0;
      const bool had_tmp = std::remove((shard + ".tmp").c_str()) == 0;
      if (!had_final && !had_tmp) break;
    }
  }
  std::remove(whois::StreamCheckpointPath(prefix).c_str());
}

void PrintPhase(const char* name, const PhaseResult& r) {
  std::printf("%-28s %9llu rec %8.2fs %10.0f rec/s  peak %ld KiB (rss %ld)\n",
              name, static_cast<unsigned long long>(r.records), r.seconds,
              r.records_per_sec, r.peak_rss_kb, r.current_rss_kb);
}

void WritePhaseJson(std::ofstream& os, const char* key, const PhaseResult& r,
                    bool trailing_comma) {
  os << "  \"" << key << "\": {\"records\": " << r.records
     << ", \"seconds\": " << r.seconds << ", \"rps\": " << r.records_per_sec
     << ", \"checksum\": " << util::Format("%.17g", r.checksum)
     << ", \"peak_rss_kb\": " << r.peak_rss_kb
     << ", \"current_rss_kb\": " << r.current_rss_kb << "}"
     << (trailing_comma ? ",\n" : "\n");
}

int Main() {
  const size_t train_count = util::Scaled(300, 100);
  const size_t small_count = util::Scaled(10000, 1000);
  const size_t large_count = util::Scaled(100000, 10000);

  PrintHeader("stream_pipeline",
              "streaming vs in-memory parse: throughput and peak RSS");

  const auto generator =
      MakeEvalGenerator(train_count + small_count + large_count);
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);

  util::ThreadPool pool(0);  // hardware concurrency
  whois::StreamPipelineOptions options;
  options.threads = pool.size();  // equal thread count across modes

  const std::string tmp_prefix =
      util::Format("/tmp/whoiscrf_stream_bench_%d", static_cast<int>(getpid()));
  const std::string small_path = tmp_prefix + "_small.txt";
  const std::string large_path = tmp_prefix + "_large.txt";
  const std::string store_prefix = tmp_prefix + "_store";
  WriteCorpusFile(generator, train_count, small_count, small_path);
  WriteCorpusFile(generator, train_count + small_count, large_count,
                  large_path);

  // Warm-up: one parse so lazy initialization is off the clock.
  {
    whois::ParseWorkspace ws;
    (void)parser.Parse(generator.Generate(train_count).thick.text, ws);
  }

  // Streaming phases first — see the header comment for why order matters.
  whois::StreamPipelineStats small_stats, large_stats;
  const PhaseResult stream_small =
      StreamFile(parser, small_path, options, &small_stats);
  const PhaseResult stream_large =
      StreamFile(parser, large_path, options, &large_stats);

  // Streaming survey build over the small corpus: rows assembled straight
  // off the pipeline, corpus never resident.
  PhaseResult survey_stream;
  {
    const auto start = Clock::now();
    util::FileByteSource bytes(small_path);
    whois::TextRecordSource source(bytes);
    const survey::SurveyDatabase db = survey::BuildDatabaseFromStream(
        source, parser, generator.registrars(), options);
    survey_stream.records = db.size();
    survey_stream.checksum = static_cast<double>(db.size());
    FinishPhase(survey_stream, start);
  }

  // Pack the small corpus into a sharded store and stream-parse it back,
  // so the binary path gets the same crash coverage as the text path.
  PhaseResult store_roundtrip;
  {
    const auto start = Clock::now();
    {
      util::FileByteSource bytes(small_path);
      whois::TextRecordSource source(bytes);
      whois::RecordStoreWriter writer(store_prefix);
      std::string record;
      while (source.Next(record)) writer.Append(record);
      writer.Finish();
    }
    const whois::RecordStoreReader store(store_prefix);
    whois::StoreRecordSource source(store);
    whois::ParseStream(
        parser, source, options,
        [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
          store_roundtrip.checksum += Checksum(parsed);
          ++store_roundtrip.records;
        });
    FinishPhase(store_roundtrip, start);
  }

  // Checkpoint overhead: stream the small corpus into a store twice —
  // once with a bare writer (no durability), once through
  // ParseStreamToStore with its fsync-every-interval checkpoint
  // discipline. The rps ratio is the price of crash safety (target: the
  // default interval costs <=3%).
  const std::string plain_store_prefix = tmp_prefix + "_store_plain";
  const std::string ckpt_store_prefix = tmp_prefix + "_store_ckpt";
  PhaseResult store_plain;
  {
    const auto start = Clock::now();
    util::FileByteSource bytes(small_path);
    whois::TextRecordSource source(bytes);
    whois::RecordStoreWriter writer(plain_store_prefix);
    whois::ParseStream(
        parser, source, options,
        [&](uint64_t, const std::string& record,
            const whois::ParsedWhois& parsed) {
          writer.Append(record);
          store_plain.checksum += Checksum(parsed);
          ++store_plain.records;
        });
    writer.Finish();
    FinishPhase(store_plain, start);
  }
  PhaseResult store_ckpt;
  {
    const auto start = Clock::now();
    util::FileByteSource bytes(small_path);
    whois::TextRecordSource source(bytes);
    whois::CheckpointedParseOptions ckpt_options;
    ckpt_options.pipeline = options;
    ckpt_options.checkpoint_interval = 1024;
    ckpt_options.input_id = "file:" + small_path;
    whois::ParseStreamToStore(
        parser, source, ckpt_store_prefix, ckpt_options,
        [&](uint64_t, const std::string&, const whois::ParsedWhois& parsed) {
          store_ckpt.checksum += Checksum(parsed);
          ++store_ckpt.records;
        });
    FinishPhase(store_ckpt, start);
  }

  // In-memory batch over the large corpus, last: it hoists the high-water
  // mark by the whole materialized corpus.
  PhaseResult inmem_large;
  {
    const auto start = Clock::now();
    const std::vector<std::string> records =
        whois::ReadAllRecords(large_path);
    const std::vector<whois::ParsedWhois> parses =
        parser.ParseBatch(records, pool);
    for (const auto& parsed : parses) {
      inmem_large.checksum += Checksum(parsed);
    }
    inmem_large.records = records.size();
    FinishPhase(inmem_large, start);
  }

  std::printf("threads: %zu   records: %zu / %zu (small/large)\n\n",
              options.threads, small_count, large_count);
  PrintPhase("stream small", stream_small);
  PrintPhase("stream large", stream_large);
  PrintPhase("stream survey build", survey_stream);
  PrintPhase("store pack+scan (small)", store_roundtrip);
  PrintPhase("store write plain", store_plain);
  PrintPhase("store write ckpt", store_ckpt);
  PrintPhase("in-memory batch large", inmem_large);

  const bool checksums_match =
      stream_large.checksum == inmem_large.checksum &&
      stream_small.checksum == store_roundtrip.checksum &&
      stream_small.checksum == store_plain.checksum &&
      stream_small.checksum == store_ckpt.checksum;
  const double ckpt_overhead_pct =
      store_plain.records_per_sec > 0.0
          ? (1.0 - store_ckpt.records_per_sec / store_plain.records_per_sec) *
                100.0
          : 0.0;
  const double stream_vs_inmem =
      inmem_large.records_per_sec > 0.0
          ? stream_large.records_per_sec / inmem_large.records_per_sec
          : 0.0;
  const long stream_peak_delta_kb =
      stream_large.peak_rss_kb - stream_small.peak_rss_kb;
  std::printf(
      "\nstreaming vs in-memory: %.2fx   checksums %s\n"
      "streaming peak RSS delta small->large (10x records): %ld KiB\n"
      "checkpoint overhead (interval 1024): %.2f%% rps (target <= 3%%)\n",
      stream_vs_inmem, checksums_match ? "match" : "MISMATCH",
      stream_peak_delta_kb, ckpt_overhead_pct);

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_stream_pipeline.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"stream_pipeline\",\n";
  os << "  \"records_small\": " << small_count << ",\n";
  os << "  \"records_large\": " << large_count << ",\n";
  os << "  \"threads\": " << options.threads << ",\n";
  WritePhaseJson(os, "stream_small", stream_small, true);
  WritePhaseJson(os, "stream_large", stream_large, true);
  WritePhaseJson(os, "stream_survey_build", survey_stream, true);
  WritePhaseJson(os, "store_roundtrip", store_roundtrip, true);
  WritePhaseJson(os, "store_write_plain", store_plain, true);
  WritePhaseJson(os, "store_write_ckpt", store_ckpt, true);
  WritePhaseJson(os, "inmem_large", inmem_large, true);
  os << "  \"stream_vs_inmem_ratio\": " << stream_vs_inmem << ",\n";
  os << "  \"checkpoint_overhead_pct\": " << ckpt_overhead_pct << ",\n";
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"stream_peak_rss_delta_kb\": " << stream_peak_delta_kb << ",\n";
  os << "  \"stream_large_stalls\": {\"reader_s\": "
     << large_stats.reader_stall_seconds
     << ", \"worker_s\": " << large_stats.worker_stall_seconds
     << ", \"sink_s\": " << large_stats.sink_stall_seconds
     << ", \"batches\": " << large_stats.batches << "},\n";
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  std::remove(small_path.c_str());
  std::remove(large_path.c_str());
  RemoveStoreArtifacts(store_prefix);
  RemoveStoreArtifacts(plain_store_prefix);
  RemoveStoreArtifacts(ckpt_store_prefix);
  return checksums_match ? 0 : 1;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
