// §2.3's motivating numbers: template coverage vs. actual parse success
// under schema drift (deft-whois: 94% of test data covered by templates,
// yet most records fail), and rule-based registrant-identification accuracy
// (pythonwhois: 59%).
#include <cstdio>
#include <set>

#include "baselines/rule_parser.h"
#include "baselines/template_parser.h"
#include "bench_common.h"
#include "util/env.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Section 2.3",
                     "baseline coverage and fragility under drift");

  // "When the templates were written": a v0-only snapshot, and a *partial*
  // one — template libraries never cover every registrar (deft-whois had
  // templates for 94% of the paper's test data).
  const size_t n = util::Scaled(2000, 400);
  const size_t snapshot = n / 5;
  datagen::CorpusOptions then_options;
  then_options.size = n;
  then_options.seed = bench::kCorpusSeed;
  then_options.drift_fraction = 0.0;
  const datagen::CorpusGenerator then_gen(then_options);
  const auto then_records = bench::TakeRecords(then_gen, 0, snapshot);
  const auto template_parser =
      baselines::TemplateBasedParser::Build(then_records);

  // The pythonwhois analogue: generic pattern rules plus only the handful
  // of title tables its authors happened to write (modeled by rolling the
  // full rule base back to a small development sample).
  const auto full_rules = baselines::RuleBasedParser::Build(then_records);
  const auto rule_parser =
      full_rules.RollBack(bench::TakeRecords(then_gen, 0, 30));

  // Which registrar families did the template snapshot cover?
  std::set<std::string> covered_families;
  for (size_t i = 0; i < snapshot; ++i) {
    covered_families.insert(
        then_gen.registrars()
            .info(static_cast<size_t>(then_gen.Generate(i).facts
                                          .registrar_index))
            .family);
  }

  // "Today": the drifted corpus the measurement actually runs on.
  const auto now_gen = bench::MakeEvalGenerator(n);
  size_t covered = 0;
  size_t matched = 0;
  size_t drifted = 0;
  size_t drifted_matched = 0;
  size_t rule_registrant_ok = 0;
  size_t with_registrant = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto domain = now_gen.Generate(i);
    const auto& family =
        now_gen.registrars()
            .info(static_cast<size_t>(domain.facts.registrar_index))
            .family;
    if (covered_families.count(family)) ++covered;
    const bool is_drifted =
        domain.template_id.find("/drift") != std::string::npos;
    const bool ok = template_parser.Parse(domain.thick.text).matched;
    if (ok) ++matched;
    if (is_drifted) {
      ++drifted;
      if (ok) ++drifted_matched;
    }

    if (!domain.facts.registrant.name.empty()) {
      ++with_registrant;
      const auto parsed = rule_parser.Parse(domain.thick.text);
      if (parsed.registrant.name == domain.facts.registrant.name) {
        ++rule_registrant_ok;
      }
    }
  }

  std::printf("\ntemplate-based parser (deft-whois analogue):\n");
  std::printf("  templates:             %zu\n",
              template_parser.num_templates());
  std::printf("  registrar coverage:    %.1f%%   (paper: 94%% of test data)\n",
              100.0 * static_cast<double>(covered) / static_cast<double>(n));
  std::printf("  records parsed OK:     %.1f%% overall, %.1f%% of records\n"
              "                         whose schema changed since the\n"
              "                         templates were written (paper: the\n"
              "                         vast majority fail after drift)\n",
              100.0 * static_cast<double>(matched) / static_cast<double>(n),
              drifted == 0 ? 0.0
                           : 100.0 * static_cast<double>(drifted_matched) /
                                 static_cast<double>(drifted));

  std::printf("\nrule-based parser (pythonwhois analogue):\n");
  std::printf("  registrant identified: %.1f%%   (paper: 59%%)\n",
              100.0 * static_cast<double>(rule_registrant_ok) /
                  static_cast<double>(with_registrant));
  std::printf(
      "\nPaper shape: high nominal template coverage but drift breaks the\n"
      "exact matching; rule-based extraction of the registrant is far from\n"
      "reliable.\n");
  return 0;
}
