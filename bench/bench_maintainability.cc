// §5.3 maintainability: fix the statistical parser's new-TLD failures by
// adding ONE labeled example per failing TLD and retraining; the paper
// reports zero remaining errors after four additional examples.
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Section 5.3",
                     "maintainability: adapt with a handful of examples");

  const size_t train_count = util::Scaled(1200, 300);
  const auto generator = bench::MakeEvalGenerator(train_count + 16);
  auto train = bench::TakeRecords(generator, 0, train_count);
  const whois::WhoisParser base = bench::TrainParser(train);

  // Identify failing TLDs on the Table 2 sample records.
  std::vector<std::string> failing;
  for (const std::string& tld : datagen::TemplateLibrary::NewTldNames()) {
    const auto domain = generator.GenerateNewTld(tld, 1);
    const auto labels = base.LabelLines(domain.thick.text);
    for (size_t t = 0; t < labels.size(); ++t) {
      if (labels[t] != domain.thick.labels[t]) {
        failing.push_back(tld);
        break;
      }
    }
  }
  std::printf("TLDs with errors before adaptation: %zu (paper: 4)\n",
              failing.size());

  // Add exactly one labeled example per failing TLD and retrain.
  for (const std::string& tld : failing) {
    train.push_back(generator.GenerateNewTld(tld, 1).thick);
  }
  const whois::WhoisParser adapted = base.Adapt(train);

  size_t remaining_errors = 0;
  size_t remaining_lines = 0;
  for (const std::string& tld : datagen::TemplateLibrary::NewTldNames()) {
    // Evaluate on FRESH records of every TLD (salts != the adapted one).
    for (uint64_t salt = 2; salt < 5; ++salt) {
      const auto domain = generator.GenerateNewTld(tld, salt);
      const auto labels = adapted.LabelLines(domain.thick.text);
      for (size_t t = 0; t < labels.size(); ++t) {
        ++remaining_lines;
        if (labels[t] != domain.thick.labels[t]) ++remaining_errors;
      }
    }
  }
  std::printf(
      "after adding %zu labeled examples and retraining: %zu mislabeled\n"
      "lines out of %zu across all 12 TLDs (paper: 0)\n",
      failing.size(), remaining_errors, remaining_lines);
  std::printf(
      "\nPaper shape: the rule-based parser would need a human to revise\n"
      "rules for each failing TLD; the statistical parser is fixed by\n"
      "labeling one example per format and retraining automatically.\n");
  return 0;
}
