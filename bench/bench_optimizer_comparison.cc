// Optimizer comparison: the paper implemented both L-BFGS and stochastic
// gradient descent (§3.3: "optimization routines such as stochastic
// gradient descent" alongside "a well-known implementation of the
// limited-memory BFGS algorithm ... run in parallel"). This bench compares
// the two on the same training sets: final accuracy and wall-clock.
#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"
#include "whois/whois_parser.h"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Optimizers", "L-BFGS vs SGD on identical training sets");

  const size_t test_count = util::Scaled(800, 200);
  const auto generator = bench::MakeEvalGenerator(1000 + test_count);
  const auto test = bench::TakeRecords(generator, 1000, test_count);

  util::TextTable table(
      {"train size", "optimizer", "line err", "doc err", "train sec"});
  for (size_t train_size : {100u, 400u}) {
    const auto train = bench::TakeRecords(generator, 0, train_size);
    for (const bool sgd : {false, true}) {
      whois::WhoisParserOptions options;
      options.trainer.l2_sigma = 10.0;
      if (sgd) {
        options.trainer.algorithm = crf::Algorithm::kSgd;
        options.trainer.sgd.epochs = 30;
      } else {
        options.trainer.lbfgs.max_iterations = 150;
      }
      const double start = Now();
      const whois::WhoisParser parser =
          whois::WhoisParser::Train(train, options);
      const double elapsed = Now() - start;
      const bench::ErrorRates rates = bench::EvaluateStatistical(parser, test);
      table.AddRow({std::to_string(train_size), sgd ? "SGD" : "L-BFGS",
                    util::Format("%.5f", rates.line),
                    util::Format("%.4f", rates.document),
                    util::Format("%.2f", elapsed)});
    }
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Expected shape: both optimizers reach comparable accuracy; L-BFGS\n"
      "converges to a slightly better optimum (it is exact batch\n"
      "optimization of a convex objective), SGD trades a little accuracy\n"
      "for simpler scaling.\n");
  return 0;
}
