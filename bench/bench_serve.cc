// Parse-service throughput: an in-process load generator drives
// serve::ParseService through its public Submit/Handle path — admission
// queue, worker pool, result cache, metrics — and reports rps plus
// p50/p99 request latency across thread counts and cache-hit ratios.
// Writes BENCH_serve.json (override with WHOISCRF_BENCH_OUT).
//
// The scoreboard question: how much does serving cost on top of parsing?
// Each scenario therefore also measures parser.ParseBatch over the same
// records with the same thread count; `serve_vs_batch` near 1.0 on a cold
// cache means the queue/promise/cache machinery is out of the way, and the
// warm-cache rows show what the LRU buys when traffic repeats (real WHOIS
// traffic re-queries popular domains constantly).
//
// Every served body is compared against the offline
// `whois::ToJson(parser.Parse(record))` bytes — the service's core
// contract — so a drift between the two paths fails loudly here too.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int BenchPasses() {
  static const int passes = [] {
    const char* e = std::getenv("WHOISCRF_BENCH_PASSES");
    const int n = e != nullptr ? std::atoi(e) : 3;
    return n > 0 ? n : 1;
  }();
  return passes;
}

double Percentile(std::vector<double>& sorted_or_not, double q) {
  if (sorted_or_not.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_or_not.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_or_not.size())));
  std::nth_element(sorted_or_not.begin(), sorted_or_not.begin() + rank,
                   sorted_or_not.end());
  return sorted_or_not[rank];
}

struct ScenarioResult {
  size_t threads = 0;
  double target_hit_ratio = 0.0;
  double observed_hit_ratio = 0.0;
  double rps = 0.0;        // best pass
  double p50_us = 0.0;     // of the best pass
  double p99_us = 0.0;
  double batch_rps = 0.0;  // ParseBatch over the same records/threads
  size_t mismatches = 0;   // served body != offline ToJson(Parse(record))
  size_t not_ok = 0;       // any non-kOk status (should be zero)
};

// Outstanding requests each load-generator thread keeps in flight. A
// synchronous request-per-Handle client would serialize every request
// behind a worker wake-up (a full scheduler round trip per record on a
// busy box); real clients pipeline, and a small window keeps the parse
// workers hot so the bench measures service throughput, not condvar
// latency. Client-side p50/p99 therefore include queue wait — the number
// a caller of a loaded service actually sees.
constexpr size_t kClientWindow = 32;
// When the window fills, the client waits for the request in the middle
// and then collects that half in one sweep. Waiting on the *front* future
// would wake the client on every single completion (responses finish
// roughly in submit order), costing two scheduler switches per request
// when clients and workers share cores; one wake per half-window
// amortizes that while keeping the other half in flight.
constexpr size_t kDrainBatch = kClientWindow / 2;

// One timed pass: `threads` client threads each pump a contiguous slice
// of the request sequence through Submit() with kClientWindow requests
// outstanding, recording per-request latency (submit -> future ready).
// Request strings are materialized before the clock starts (a real client
// already owns the bytes it hands over — Submit takes ownership by move).
// Each served body is checked against the offline JSON as it drains — a
// single memcmp — and then dropped, so response buffers are recycled by
// the allocator instead of piling up ~1MB of live heap per pass, which
// would evict the parser's working set from cache mid-measurement.
struct PassOutcome {
  double seconds = 0.0;
  double hit_ratio = 0.0;
  std::vector<double> latencies_us;
  size_t mismatches = 0;
  size_t not_ok = 0;
};

PassOutcome RunPass(serve::ParseService& service, size_t threads,
                    const std::vector<const std::string*>& requests,
                    const std::vector<std::string>& expected_bodies,
                    const std::vector<size_t>& expected_index) {
  // Each Submit transfers ownership of a string; build them up front.
  std::vector<std::string> payloads;
  payloads.reserve(requests.size());
  for (const std::string* r : requests) payloads.push_back(*r);

  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> client_hits(threads, 0);
  std::vector<size_t> client_mismatches(threads, 0);
  std::vector<size_t> client_not_ok(threads, 0);

  const size_t per_client =
      (requests.size() + threads - 1) / threads;
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const size_t begin = c * per_client;
      const size_t end = std::min(requests.size(), begin + per_client);
      latencies[c].reserve(end > begin ? end - begin : 0);
      struct Pending {
        std::future<serve::ServeResult> future;
        Clock::time_point submitted;
        size_t index;
      };
      std::deque<Pending> window;
      const auto drain_one = [&] {
        Pending pending = std::move(window.front());
        window.pop_front();
        const serve::ServeResult result = pending.future.get();
        latencies[c].push_back(SecondsSince(pending.submitted) * 1e6);
        if (result.status != serve::Status::kOk) {
          ++client_not_ok[c];
        } else if (result.body !=
                   expected_bodies[expected_index[pending.index]]) {
          ++client_mismatches[c];
        }
        if (result.cache_hit) ++client_hits[c];
      };
      for (size_t i = begin; i < end; ++i) {
        if (window.size() >= kClientWindow) {
          window[kDrainBatch - 1].future.wait();
          for (size_t k = 0; k < kDrainBatch; ++k) drain_one();
        }
        window.push_back(
            Pending{service.Submit(std::move(payloads[i])), Clock::now(), i});
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& t : clients) t.join();

  PassOutcome outcome;
  outcome.seconds = SecondsSince(start);
  size_t hits = 0;
  for (size_t c = 0; c < threads; ++c) {
    hits += client_hits[c];
    outcome.mismatches += client_mismatches[c];
    outcome.not_ok += client_not_ok[c];
  }
  outcome.hit_ratio = requests.empty()
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(requests.size());
  for (size_t c = 0; c < threads; ++c) {
    outcome.latencies_us.insert(outcome.latencies_us.end(),
                                latencies[c].begin(), latencies[c].end());
  }
  return outcome;
}

int Main() {
  const size_t train_count = util::Scaled(300, 100);
  const size_t request_count = util::Scaled(2000, 400);
  const size_t passes = static_cast<size_t>(BenchPasses());

  PrintHeader("serve", "parse service rps + p50/p99 by threads, hit ratio");

  // Fresh distinct records per pass (like bench_parse_throughput) so a
  // "cold cache" scenario stays cold on every pass.
  const auto generator =
      MakeEvalGenerator(train_count + passes * request_count);
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);

  std::vector<std::vector<std::string>> slices(passes);
  for (size_t p = 0; p < passes; ++p) {
    slices[p].reserve(request_count);
    for (size_t i = 0; i < request_count; ++i) {
      slices[p].push_back(
          generator.Generate(train_count + p * request_count + i).thick.text);
    }
  }

  // Offline ground truth, one JSON string per distinct record per pass —
  // what `parse --format json` would emit. Serving must match it byte for
  // byte.
  std::vector<std::vector<std::string>> offline(passes);
  {
    whois::ParseWorkspace ws;
    for (size_t p = 0; p < passes; ++p) {
      offline[p].reserve(request_count);
      for (const std::string& r : slices[p]) {
        offline[p].push_back(whois::ToJson(parser.Parse(r, ws)));
      }
    }
  }

  // Single-thread workspace fast path, the same baseline and methodology
  // as bench_parse_throughput's "fast (workspace)": one workspace warm
  // across passes, best pass kept.
  double fast_rps = 0.0;
  {
    whois::ParseWorkspace ws;
    (void)parser.Parse(slices.front().front(), ws);  // warm-up
    for (size_t p = 0; p < passes; ++p) {
      const auto start = Clock::now();
      size_t lines = 0;
      for (const std::string& r : slices[p]) {
        lines += parser.Parse(r, ws).line_labels.size();
      }
      const double seconds = SecondsSince(start);
      if (seconds > 0.0 && lines > 0) {
        fast_rps = std::max(
            fast_rps, static_cast<double>(slices[p].size()) / seconds);
      }
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool sweep_wide = util::EnvInt("WHOISCRF_BENCH_OVERSUBSCRIBE", 0) != 0;
  std::vector<size_t> thread_counts;
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (sweep_wide || n <= hw) thread_counts.push_back(n);
  }
  if (thread_counts.back() < hw) thread_counts.push_back(hw);

  const double hit_ratios[] = {0.0, 0.5, 0.9};

  std::vector<ScenarioResult> results;
  for (const size_t threads : thread_counts) {
    for (const double ratio : hit_ratios) {
      ScenarioResult scenario;
      scenario.threads = threads;
      scenario.target_hit_ratio = ratio;

      // One service per scenario, shared across passes — a real server is
      // long-lived, so its workers' workspaces (and their line caches)
      // stay warm, exactly like the fast-path baseline's single
      // workspace. Passes use disjoint record sets, so the *result*
      // cache never carries hits from one pass into the next.
      serve::ParseServiceOptions service_options;
      service_options.threads = threads;
      service_options.queue_capacity = 256;  // clients <= threads: no rejects
      service_options.cache_entries = request_count;
      serve::ParseService service(parser, service_options);

      // Untimed warm-up, the counterpart of the fast path's warm-up parse:
      // pump the *training* records through once so every worker's
      // workspace (line cache, buffers) reaches steady state. Train
      // records are disjoint from the request records, so this cannot
      // seed result-cache hits — cold scenarios stay cold. Submitted as
      // one burst so the records spread across all workers.
      {
        std::deque<std::future<serve::ServeResult>> warmup;
        for (const whois::LabeledRecord& w : train) {
          if (warmup.size() >= kClientWindow) {
            warmup.front().get();
            warmup.pop_front();
          }
          warmup.push_back(service.Submit(w.text));
        }
        while (!warmup.empty()) {
          warmup.front().get();
          warmup.pop_front();
        }
      }

      for (size_t p = 0; p < passes; ++p) {
        // A hit ratio of r means only (1-r) of the requests are distinct:
        // cycle a pool of that many records, so the first lap misses and
        // every later lap hits.
        const size_t distinct = std::max(
            size_t{1},
            static_cast<size_t>(static_cast<double>(request_count) *
                                (1.0 - ratio)));
        std::vector<const std::string*> requests(request_count);
        std::vector<size_t> expected_index(request_count);
        for (size_t i = 0; i < request_count; ++i) {
          requests[i] = &slices[p][i % distinct];
          expected_index[i] = i % distinct;
        }

        PassOutcome pass =
            RunPass(service, threads, requests, offline[p], expected_index);
        scenario.mismatches += pass.mismatches;
        scenario.not_ok += pass.not_ok;
        const double rps =
            pass.seconds > 0.0
                ? static_cast<double>(request_count) / pass.seconds
                : 0.0;
        if (p == 0 || rps > scenario.rps) {
          scenario.rps = rps;
          scenario.observed_hit_ratio = pass.hit_ratio;
          scenario.p50_us = Percentile(pass.latencies_us, 0.50);
          scenario.p99_us = Percentile(pass.latencies_us, 0.99);
        }
      }

      // The apples-to-apples parse-only baseline: the same distinct
      // records, parsed with ParseBatch on the same thread count (repeats
      // excluded — the batch path has no cache, so cycling the pool would
      // just re-parse).
      {
        util::ThreadPool pool(threads);
        const size_t distinct = std::max(
            size_t{1},
            static_cast<size_t>(static_cast<double>(request_count) *
                                (1.0 - ratio)));
        std::vector<std::string> batch_records(
            slices[0].begin(),
            slices[0].begin() + static_cast<ptrdiff_t>(distinct));
        const auto start = Clock::now();
        const auto parsed = parser.ParseBatch(batch_records, pool);
        const double seconds = SecondsSince(start);
        if (seconds > 0.0 && !parsed.empty()) {
          scenario.batch_rps = static_cast<double>(distinct) / seconds;
        }
      }
      results.push_back(std::move(scenario));
    }
  }

  std::printf(
      "requests: %zu x %zu passes   hardware threads: %u   "
      "fast path (1 thread): %.0f rps\n\n",
      request_count, passes, hw, fast_rps);
  std::printf("%8s %6s %8s %12s %10s %10s %10s\n", "threads", "hit%",
              "obs hit%", "serve rps", "p50 us", "p99 us", "vs batch");
  size_t total_mismatches = 0;
  size_t total_not_ok = 0;
  for (const ScenarioResult& s : results) {
    std::printf("%8zu %5.0f%% %7.1f%% %12.0f %10.0f %10.0f %9.2fx\n",
                s.threads, s.target_hit_ratio * 100.0,
                s.observed_hit_ratio * 100.0, s.rps, s.p50_us, s.p99_us,
                s.batch_rps > 0.0 ? s.rps / s.batch_rps : 0.0);
    total_mismatches += s.mismatches;
    total_not_ok += s.not_ok;
  }
  if (total_mismatches > 0 || total_not_ok > 0) {
    std::printf(
        "\nWARNING: %zu served bodies differed from offline parse, "
        "%zu requests not ok\n",
        total_mismatches, total_not_ok);
  }

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_serve.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"serve\",\n";
  os << "  \"requests\": " << request_count << ",\n";
  os << "  \"passes\": " << passes << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"fast_rps\": " << fast_rps << ",\n";
  os << "  \"bodies_match_offline\": "
     << (total_mismatches == 0 ? "true" : "false") << ",\n";
  os << "  \"all_ok\": " << (total_not_ok == 0 ? "true" : "false") << ",\n";
  os << "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& s = results[i];
    os << "    {\"threads\": " << s.threads
       << ", \"target_hit_ratio\": " << s.target_hit_ratio
       << ", \"observed_hit_ratio\": " << s.observed_hit_ratio
       << ", \"rps\": " << s.rps << ", \"p50_us\": " << s.p50_us
       << ", \"p99_us\": " << s.p99_us << ", \"batch_rps\": " << s.batch_rps
       << ", \"serve_vs_batch\": "
       << (s.batch_rps > 0.0 ? s.rps / s.batch_rps : 0.0) << "}";
    os << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  // Registry snapshot: whoiscrf_serve_* counters/histograms accumulated
  // over every scenario, so the artifact shows cache + latency internals.
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return total_mismatches == 0 && total_not_ok == 0 ? 0 : 1;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
