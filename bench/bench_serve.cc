// Parse-service throughput: an in-process load generator drives
// serve::ParseService through its public Submit/Handle path — admission
// queue, worker pool, result cache, metrics — and reports rps plus
// p50/p99 request latency across thread counts and cache-hit ratios.
// Writes BENCH_serve.json (override with WHOISCRF_BENCH_OUT).
//
// The scoreboard question: how much does serving cost on top of parsing?
// Each scenario therefore also measures parser.ParseBatch over the same
// records with the same thread count; `serve_vs_batch` near 1.0 on a cold
// cache means the queue/promise/cache machinery is out of the way, and the
// warm-cache rows show what the LRU buys when traffic repeats (real WHOIS
// traffic re-queries popular domains constantly).
//
// Every served body is compared against the offline
// `whois::ToJson(parser.Parse(record))` bytes — the service's core
// contract — so a drift between the two paths fails loudly here too.
//
// Two TCP scenarios ride on top of the in-process scoreboard:
//   * a connection-scaling sweep driving both front ends (epoll and
//     thread-per-connection) with hundreds-to-thousands of pipelined
//     clients from a poll()-based load generator — the
//     `epoll_vs_threads_*` ratios gated by bench/bench_floor.json;
//   * a shard-router scenario (`whoiscrf shard-router` in-process):
//     the same cyclic traffic against 1..N backend shards whose result
//     caches are individually too small for the working set — the
//     consistent hash splits the key space so the aggregate cache
//     suddenly fits, which is the router's reason to exist
//     (`router_4shard_vs_single`).
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int BenchPasses() {
  static const int passes = [] {
    const char* e = std::getenv("WHOISCRF_BENCH_PASSES");
    const int n = e != nullptr ? std::atoi(e) : 3;
    return n > 0 ? n : 1;
  }();
  return passes;
}

double Percentile(std::vector<double>& sorted_or_not, double q) {
  if (sorted_or_not.empty()) return 0.0;
  const size_t rank = std::min(
      sorted_or_not.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_or_not.size())));
  std::nth_element(sorted_or_not.begin(), sorted_or_not.begin() + rank,
                   sorted_or_not.end());
  return sorted_or_not[rank];
}

struct ScenarioResult {
  size_t threads = 0;
  double target_hit_ratio = 0.0;
  double observed_hit_ratio = 0.0;
  double rps = 0.0;        // best pass
  double p50_us = 0.0;     // of the best pass
  double p99_us = 0.0;
  double batch_rps = 0.0;  // ParseBatch over the same records/threads
  size_t mismatches = 0;   // served body != offline ToJson(Parse(record))
  size_t not_ok = 0;       // any non-kOk status (should be zero)
};

// Outstanding requests each load-generator thread keeps in flight. A
// synchronous request-per-Handle client would serialize every request
// behind a worker wake-up (a full scheduler round trip per record on a
// busy box); real clients pipeline, and a small window keeps the parse
// workers hot so the bench measures service throughput, not condvar
// latency. Client-side p50/p99 therefore include queue wait — the number
// a caller of a loaded service actually sees.
constexpr size_t kClientWindow = 32;
// When the window fills, the client waits for the request in the middle
// and then collects that half in one sweep. Waiting on the *front* future
// would wake the client on every single completion (responses finish
// roughly in submit order), costing two scheduler switches per request
// when clients and workers share cores; one wake per half-window
// amortizes that while keeping the other half in flight.
constexpr size_t kDrainBatch = kClientWindow / 2;

// One timed pass: `threads` client threads each pump a contiguous slice
// of the request sequence through Submit() with kClientWindow requests
// outstanding, recording per-request latency (submit -> future ready).
// Request strings are materialized before the clock starts (a real client
// already owns the bytes it hands over — Submit takes ownership by move).
// Each served body is checked against the offline JSON as it drains — a
// single memcmp — and then dropped, so response buffers are recycled by
// the allocator instead of piling up ~1MB of live heap per pass, which
// would evict the parser's working set from cache mid-measurement.
struct PassOutcome {
  double seconds = 0.0;
  double hit_ratio = 0.0;
  std::vector<double> latencies_us;
  size_t mismatches = 0;
  size_t not_ok = 0;
};

PassOutcome RunPass(serve::ParseService& service, size_t threads,
                    const std::vector<const std::string*>& requests,
                    const std::vector<std::string>& expected_bodies,
                    const std::vector<size_t>& expected_index) {
  // Each Submit transfers ownership of a string; build them up front.
  std::vector<std::string> payloads;
  payloads.reserve(requests.size());
  for (const std::string* r : requests) payloads.push_back(*r);

  std::vector<std::vector<double>> latencies(threads);
  std::vector<size_t> client_hits(threads, 0);
  std::vector<size_t> client_mismatches(threads, 0);
  std::vector<size_t> client_not_ok(threads, 0);

  const size_t per_client =
      (requests.size() + threads - 1) / threads;
  const auto start = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      const size_t begin = c * per_client;
      const size_t end = std::min(requests.size(), begin + per_client);
      latencies[c].reserve(end > begin ? end - begin : 0);
      struct Pending {
        std::future<serve::ServeResult> future;
        Clock::time_point submitted;
        size_t index;
      };
      std::deque<Pending> window;
      const auto drain_one = [&] {
        Pending pending = std::move(window.front());
        window.pop_front();
        const serve::ServeResult result = pending.future.get();
        latencies[c].push_back(SecondsSince(pending.submitted) * 1e6);
        if (result.status != serve::Status::kOk) {
          ++client_not_ok[c];
        } else if (result.body !=
                   expected_bodies[expected_index[pending.index]]) {
          ++client_mismatches[c];
        }
        if (result.cache_hit) ++client_hits[c];
      };
      for (size_t i = begin; i < end; ++i) {
        if (window.size() >= kClientWindow) {
          window[kDrainBatch - 1].future.wait();
          for (size_t k = 0; k < kDrainBatch; ++k) drain_one();
        }
        window.push_back(
            Pending{service.Submit(std::move(payloads[i])), Clock::now(), i});
      }
      while (!window.empty()) drain_one();
    });
  }
  for (std::thread& t : clients) t.join();

  PassOutcome outcome;
  outcome.seconds = SecondsSince(start);
  size_t hits = 0;
  for (size_t c = 0; c < threads; ++c) {
    hits += client_hits[c];
    outcome.mismatches += client_mismatches[c];
    outcome.not_ok += client_not_ok[c];
  }
  outcome.hit_ratio = requests.empty()
                          ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(requests.size());
  for (size_t c = 0; c < threads; ++c) {
    outcome.latencies_us.insert(outcome.latencies_us.end(),
                                latencies[c].begin(), latencies[c].end());
  }
  return outcome;
}

// ---------------------------------------------------------------------------
// TCP load generator: nonblocking sockets pumped by poll(), so a handful
// of driver threads can hold thousands of pipelined connections open —
// which is the whole point of the sweep; a thread-per-connection *client*
// would hit the same wall the sweep measures on the server.

void RaiseFdLimit(uint64_t need) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0) return;
  if (rl.rlim_cur != RLIM_INFINITY && rl.rlim_cur < need) {
    rl.rlim_cur = rl.rlim_max == RLIM_INFINITY
                      ? need
                      : std::min<rlim_t>(rl.rlim_max, need);
    setrlimit(RLIMIT_NOFILE, &rl);
  }
}

int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  return fd;
}

std::string FramedRequest(const std::string& record) {
  std::string frame(4, '\0');
  const auto len = static_cast<uint32_t>(record.size());
  frame[0] = static_cast<char>(len & 0xff);
  frame[1] = static_cast<char>((len >> 8) & 0xff);
  frame[2] = static_cast<char>((len >> 16) & 0xff);
  frame[3] = static_cast<char>((len >> 24) & 0xff);
  frame += record;
  return frame;
}

// One pipelined connection: the whole request quota is pre-serialized
// into `out`, responses accumulate in `in` and are verified in order
// against `expected` as they complete.
struct WireConn {
  int fd = -1;
  std::string out;
  size_t out_off = 0;
  std::string in;
  size_t in_off = 0;
  std::vector<const std::string*> expected;
  size_t received = 0;
  bool done = false;
  size_t mismatches = 0;
  size_t not_ok = 0;
};

void DrainResponses(WireConn& conn) {
  while (!conn.done && conn.in.size() - conn.in_off >= 4) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(conn.in.data() + conn.in_off);
    const uint32_t len = static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24;
    if (len == 0) {  // a response carries at least the status byte
      ++conn.not_ok;
      conn.done = true;
      break;
    }
    if (conn.in.size() - conn.in_off < 4u + len) break;
    const char status = conn.in[conn.in_off + 4];
    const std::string_view body(conn.in.data() + conn.in_off + 5, len - 1);
    if (status != 'O') {
      ++conn.not_ok;
    } else if (body != *conn.expected[conn.received]) {
      ++conn.mismatches;
    }
    conn.in_off += 4u + len;
    if (++conn.received == conn.expected.size()) conn.done = true;
  }
  if (conn.in_off == conn.in.size()) {
    conn.in.clear();
    conn.in_off = 0;
  } else if (conn.in_off >= (64u << 10)) {
    conn.in.erase(0, conn.in_off);
    conn.in_off = 0;
  }
}

// Drives conns[begin..end) to completion with a single poll() loop.
void PumpConns(std::vector<WireConn>& conns, size_t begin, size_t end) {
  size_t open = 0;
  for (size_t i = begin; i < end; ++i) {
    if (conns[i].fd < 0) {
      conns[i].not_ok += conns[i].expected.size();
      conns[i].done = true;
    } else {
      ++open;
    }
  }
  std::vector<pollfd> pfds;
  std::vector<size_t> index;
  char buf[64 << 10];
  while (open > 0) {
    pfds.clear();
    index.clear();
    for (size_t i = begin; i < end; ++i) {
      WireConn& conn = conns[i];
      if (conn.done) continue;
      short events = POLLIN;
      if (conn.out_off < conn.out.size()) events |= POLLOUT;
      pfds.push_back(pollfd{conn.fd, events, 0});
      index.push_back(i);
    }
    if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 10000) < 0 &&
        errno != EINTR) {
      break;
    }
    for (size_t k = 0; k < pfds.size(); ++k) {
      if (pfds[k].revents == 0) continue;
      WireConn& conn = conns[index[k]];
      if ((pfds[k].revents & POLLOUT) != 0) {
        while (conn.out_off < conn.out.size()) {
          const ssize_t n =
              ::send(conn.fd, conn.out.data() + conn.out_off,
                     conn.out.size() - conn.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            conn.out_off += static_cast<size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else if (n < 0 && errno == EINTR) {
            continue;
          } else {
            conn.not_ok += conn.expected.size() - conn.received;
            conn.done = true;
            break;
          }
        }
      }
      if (!conn.done &&
          (pfds[k].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
        for (;;) {
          const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn.in.append(buf, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof(buf)) break;
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else if (n < 0 && errno == EINTR) {
            continue;
          } else {  // EOF or hard error before the quota completed
            conn.not_ok += conn.expected.size() - conn.received;
            conn.done = true;
            break;
          }
        }
        DrainResponses(conn);
      }
      if (conn.done && conn.fd >= 0) {
        ::close(conn.fd);
        conn.fd = -1;
        --open;
      }
    }
  }
}

// Untimed: prime a server's result cache with every pool record through
// one blocking connection, so the timed sweep measures front-end
// mechanics (sockets, framing, wake-ups) rather than parse cost.
bool WarmPool(uint16_t port, const std::vector<std::string>& pool,
              const std::vector<std::string>& bodies) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return false;
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) & ~O_NONBLOCK);
  serve::FdStream stream(fd);
  bool ok = true;
  for (size_t i = 0; i < pool.size() && ok; ++i) {
    ok = serve::WriteFrame(stream, pool[i]);
    serve::Status status = serve::Status::kError;
    std::string body;
    ok = ok &&
         serve::ReadResponse(stream, status, body,
                             serve::kDefaultMaxFrameBytes) ==
             serve::FrameRead::kFrame &&
         status == serve::Status::kOk && body == bodies[i];
  }
  ::close(fd);
  return ok;
}

struct SweepRow {
  size_t clients = 0;
  std::string frontend;
  double rps = 0.0;
  double seconds = 0.0;
  size_t mismatches = 0;
  size_t not_ok = 0;
};

// `clients` pipelined connections, `per_client` requests each, against
// whichever front end listens on `port`. The timed region spans connect
// through last response: accepting (and, for the threads front end,
// spawning) N connections is exactly the cost the sweep exists to show.
SweepRow RunConnectionSweep(uint16_t port, std::string frontend,
                            size_t clients, size_t per_client,
                            const std::vector<std::string>& frames,
                            const std::vector<std::string>& bodies) {
  SweepRow row;
  row.clients = clients;
  row.frontend = std::move(frontend);

  std::vector<WireConn> conns(clients);
  for (size_t c = 0; c < clients; ++c) {
    conns[c].out.reserve(per_client * frames[0].size());
    for (size_t k = 0; k < per_client; ++k) {
      const size_t idx = (c + k) % frames.size();
      conns[c].out += frames[idx];
      conns[c].expected.push_back(&bodies[idx]);
    }
  }

  const size_t drivers = clients >= 1024 ? 2 : 1;
  const auto start = Clock::now();
  for (WireConn& conn : conns) conn.fd = ConnectLoopback(port);
  std::vector<std::thread> pumps;
  const size_t per_driver = (clients + drivers - 1) / drivers;
  for (size_t d = 0; d < drivers; ++d) {
    const size_t begin = d * per_driver;
    const size_t end = std::min(clients, begin + per_driver);
    pumps.emplace_back([&conns, begin, end] { PumpConns(conns, begin, end); });
  }
  for (std::thread& t : pumps) t.join();
  row.seconds = SecondsSince(start);

  for (const WireConn& conn : conns) {
    row.mismatches += conn.mismatches;
    row.not_ok += conn.not_ok;
  }
  if (row.seconds > 0.0) {
    row.rps = static_cast<double>(clients * per_client) / row.seconds;
  }
  return row;
}

struct RouterRow {
  size_t shards = 0;
  double rps = 0.0;
  double seconds = 0.0;
  double hit_ratio = 0.0;
  size_t mismatches = 0;
  size_t not_ok = 0;
};

// `laps` cyclic passes over a pool whose size exceeds one shard's result
// cache: a single shard LRU-thrashes (every lap re-parses everything),
// while enough shards split the keys so each slice fits its shard's
// cache and laps 2..N are pure hits — the aggregate-cache win that
// consistent-hash routing buys.
RouterRow RunRouterScenario(const whois::WhoisParser& parser, size_t shards,
                            size_t cache_entries, size_t laps,
                            const std::vector<std::string>& frames,
                            const std::vector<std::string>& bodies) {
  RouterRow row;
  row.shards = shards;

  std::vector<std::unique_ptr<serve::ParseServer>> backends;
  serve::ShardRouterOptions router_options;
  for (size_t s = 0; s < shards; ++s) {
    serve::ParseServerOptions options;
    options.service.threads = 1;
    options.service.queue_capacity = 1 << 12;
    options.service.cache_entries = cache_entries;
    backends.push_back(std::make_unique<serve::ParseServer>(parser, options));
    router_options.backends.push_back(
        std::to_string(backends.back()->port()));
  }
  router_options.health_interval_ms = 0;  // deterministic: no prober
  serve::ShardRouter router(router_options);

  const auto& registry = obs::Registry::Global();
  const uint64_t hits_before =
      registry.CounterValue("whoiscrf_serve_cache_hits_total");

  std::vector<WireConn> conns(1);
  WireConn& conn = conns[0];
  for (size_t lap = 0; lap < laps; ++lap) {
    for (size_t i = 0; i < frames.size(); ++i) {
      conn.out += frames[i];
      conn.expected.push_back(&bodies[i]);
    }
  }
  const auto start = Clock::now();
  conn.fd = ConnectLoopback(router.port());
  PumpConns(conns, 0, 1);
  row.seconds = SecondsSince(start);

  const size_t total = laps * frames.size();
  if (row.seconds > 0.0) {
    row.rps = static_cast<double>(total) / row.seconds;
  }
  row.hit_ratio =
      static_cast<double>(
          registry.CounterValue("whoiscrf_serve_cache_hits_total") -
          hits_before) /
      static_cast<double>(total);
  row.mismatches = conn.mismatches;
  row.not_ok = conn.not_ok;

  router.Shutdown();
  for (auto& backend : backends) backend->Shutdown();
  return row;
}

int Main() {
  const size_t train_count = util::Scaled(300, 100);
  const size_t request_count = util::Scaled(2000, 400);
  const size_t passes = static_cast<size_t>(BenchPasses());

  PrintHeader("serve", "parse service rps + p50/p99 by threads, hit ratio");

  // Record pools for the TCP scenarios, drawn from generator indices past
  // the in-process slices. Sweep pool: small and pre-warmed, so the
  // connection sweep measures front-end mechanics at ~100% cache hits.
  // Router pool: deliberately larger than one shard's result cache.
  const size_t sweep_pool_count = 32;
  const size_t router_pool_count = util::BenchSmoke() ? 192 : 384;
  // 3/4 of the pool: one shard's LRU cannot hold the cyclic working set
  // (every lap re-parses), while a quarter of the pool per shard fits
  // with room for the cache's internal 16-way sharding.
  const size_t router_cache_entries = router_pool_count * 3 / 4;
  const size_t router_laps = 8;
  // Router records are `router_concat` generated records glued together:
  // the scenario contrasts parse cost against cache-hit cost, so the
  // parse must dominate the two framing hops even at smoke scale.
  const size_t router_concat = 16;

  // Fresh distinct records per pass (like bench_parse_throughput) so a
  // "cold cache" scenario stays cold on every pass.
  const auto generator = MakeEvalGenerator(
      train_count + passes * request_count + sweep_pool_count +
      router_pool_count * router_concat);
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);

  std::vector<std::vector<std::string>> slices(passes);
  for (size_t p = 0; p < passes; ++p) {
    slices[p].reserve(request_count);
    for (size_t i = 0; i < request_count; ++i) {
      slices[p].push_back(
          generator.Generate(train_count + p * request_count + i).thick.text);
    }
  }

  // Offline ground truth, one JSON string per distinct record per pass —
  // what `parse --format json` would emit. Serving must match it byte for
  // byte.
  std::vector<std::vector<std::string>> offline(passes);
  {
    whois::ParseWorkspace ws;
    for (size_t p = 0; p < passes; ++p) {
      offline[p].reserve(request_count);
      for (const std::string& r : slices[p]) {
        offline[p].push_back(whois::ToJson(parser.Parse(r, ws)));
      }
    }
  }

  // Single-thread workspace fast path, the same baseline and methodology
  // as bench_parse_throughput's "fast (workspace)": one workspace warm
  // across passes, best pass kept.
  double fast_rps = 0.0;
  {
    whois::ParseWorkspace ws;
    (void)parser.Parse(slices.front().front(), ws);  // warm-up
    for (size_t p = 0; p < passes; ++p) {
      const auto start = Clock::now();
      size_t lines = 0;
      for (const std::string& r : slices[p]) {
        lines += parser.Parse(r, ws).line_labels.size();
      }
      const double seconds = SecondsSince(start);
      if (seconds > 0.0 && lines > 0) {
        fast_rps = std::max(
            fast_rps, static_cast<double>(slices[p].size()) / seconds);
      }
    }
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool sweep_wide = util::EnvInt("WHOISCRF_BENCH_OVERSUBSCRIBE", 0) != 0;
  std::vector<size_t> thread_counts;
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (sweep_wide || n <= hw) thread_counts.push_back(n);
  }
  if (thread_counts.back() < hw) thread_counts.push_back(hw);

  const double hit_ratios[] = {0.0, 0.5, 0.9};

  std::vector<ScenarioResult> results;
  for (const size_t threads : thread_counts) {
    for (const double ratio : hit_ratios) {
      ScenarioResult scenario;
      scenario.threads = threads;
      scenario.target_hit_ratio = ratio;

      // One service per scenario, shared across passes — a real server is
      // long-lived, so its workers' workspaces (and their line caches)
      // stay warm, exactly like the fast-path baseline's single
      // workspace. Passes use disjoint record sets, so the *result*
      // cache never carries hits from one pass into the next.
      serve::ParseServiceOptions service_options;
      service_options.threads = threads;
      service_options.queue_capacity = 256;  // clients <= threads: no rejects
      service_options.cache_entries = request_count;
      serve::ParseService service(parser, service_options);

      // Untimed warm-up, the counterpart of the fast path's warm-up parse:
      // pump the *training* records through once so every worker's
      // workspace (line cache, buffers) reaches steady state. Train
      // records are disjoint from the request records, so this cannot
      // seed result-cache hits — cold scenarios stay cold. Submitted as
      // one burst so the records spread across all workers.
      {
        std::deque<std::future<serve::ServeResult>> warmup;
        for (const whois::LabeledRecord& w : train) {
          if (warmup.size() >= kClientWindow) {
            warmup.front().get();
            warmup.pop_front();
          }
          warmup.push_back(service.Submit(w.text));
        }
        while (!warmup.empty()) {
          warmup.front().get();
          warmup.pop_front();
        }
      }

      for (size_t p = 0; p < passes; ++p) {
        // A hit ratio of r means only (1-r) of the requests are distinct:
        // cycle a pool of that many records, so the first lap misses and
        // every later lap hits.
        const size_t distinct = std::max(
            size_t{1},
            static_cast<size_t>(static_cast<double>(request_count) *
                                (1.0 - ratio)));
        std::vector<const std::string*> requests(request_count);
        std::vector<size_t> expected_index(request_count);
        for (size_t i = 0; i < request_count; ++i) {
          requests[i] = &slices[p][i % distinct];
          expected_index[i] = i % distinct;
        }

        PassOutcome pass =
            RunPass(service, threads, requests, offline[p], expected_index);
        scenario.mismatches += pass.mismatches;
        scenario.not_ok += pass.not_ok;
        const double rps =
            pass.seconds > 0.0
                ? static_cast<double>(request_count) / pass.seconds
                : 0.0;
        if (p == 0 || rps > scenario.rps) {
          scenario.rps = rps;
          scenario.observed_hit_ratio = pass.hit_ratio;
          scenario.p50_us = Percentile(pass.latencies_us, 0.50);
          scenario.p99_us = Percentile(pass.latencies_us, 0.99);
        }
      }

      // The apples-to-apples parse-only baseline: the same distinct
      // records, parsed with ParseBatch on the same thread count (repeats
      // excluded — the batch path has no cache, so cycling the pool would
      // just re-parse).
      {
        util::ThreadPool pool(threads);
        const size_t distinct = std::max(
            size_t{1},
            static_cast<size_t>(static_cast<double>(request_count) *
                                (1.0 - ratio)));
        std::vector<std::string> batch_records(
            slices[0].begin(),
            slices[0].begin() + static_cast<ptrdiff_t>(distinct));
        const auto start = Clock::now();
        const auto parsed = parser.ParseBatch(batch_records, pool);
        const double seconds = SecondsSince(start);
        if (seconds > 0.0 && !parsed.empty()) {
          scenario.batch_rps = static_cast<double>(distinct) / seconds;
        }
      }
      results.push_back(std::move(scenario));
    }
  }

  std::printf(
      "requests: %zu x %zu passes   hardware threads: %u   "
      "fast path (1 thread): %.0f rps\n\n",
      request_count, passes, hw, fast_rps);
  std::printf("%8s %6s %8s %12s %10s %10s %10s\n", "threads", "hit%",
              "obs hit%", "serve rps", "p50 us", "p99 us", "vs batch");
  size_t total_mismatches = 0;
  size_t total_not_ok = 0;
  for (const ScenarioResult& s : results) {
    std::printf("%8zu %5.0f%% %7.1f%% %12.0f %10.0f %10.0f %9.2fx\n",
                s.threads, s.target_hit_ratio * 100.0,
                s.observed_hit_ratio * 100.0, s.rps, s.p50_us, s.p99_us,
                s.batch_rps > 0.0 ? s.rps / s.batch_rps : 0.0);
    total_mismatches += s.mismatches;
    total_not_ok += s.not_ok;
  }
  if (total_mismatches > 0 || total_not_ok > 0) {
    std::printf(
        "\nWARNING: %zu served bodies differed from offline parse, "
        "%zu requests not ok\n",
        total_mismatches, total_not_ok);
  }

  // -------------------------------------------------------------------
  // Connection-scaling sweep: both TCP front ends under pipelined load.
  const size_t base = train_count + passes * request_count;
  std::vector<std::string> sweep_pool;
  std::vector<std::string> sweep_frames;
  std::vector<std::string> sweep_bodies;
  {
    whois::ParseWorkspace ws;
    for (size_t i = 0; i < sweep_pool_count; ++i) {
      sweep_pool.push_back(generator.Generate(base + i).thick.text);
      sweep_frames.push_back(FramedRequest(sweep_pool.back()));
      sweep_bodies.push_back(whois::ToJson(parser.Parse(sweep_pool.back(), ws)));
    }
  }

  // Per-row request budget: a fixed total (not per-client) so low
  // connection counts still run long enough to measure — at 64 clients a
  // handful of requests each finishes in milliseconds of scheduler noise.
  const size_t sweep_budget = util::BenchSmoke() ? (1u << 15) : (1u << 16);
  const auto per_client_for = [&](size_t clients) {
    return std::max<size_t>(8, sweep_budget / clients);
  };
  std::vector<size_t> client_counts =
      util::BenchSmoke() ? std::vector<size_t>{64, 4096}
                         : std::vector<size_t>{64, 512, 4096};
  RaiseFdLimit(12000);

  std::printf("\nconnection sweep: ~%zu pipelined requests per row, "
              "warm result cache\n",
              sweep_budget);
  std::printf("%8s %10s %8s %12s %10s\n", "clients", "frontend", "reqs/c",
              "rps", "seconds");
  std::vector<SweepRow> sweep_rows;
  size_t tcp_mismatches = 0;
  size_t tcp_not_ok = 0;
  const auto run_sweep_row = [&](size_t clients, bool epoll) {
    serve::ParseServerOptions options;
    options.service.queue_capacity = 1 << 16;  // never fast-reject here
    options.service.cache_entries = sweep_pool_count;
    options.frontend =
        epoll ? serve::Frontend::kEpoll : serve::Frontend::kThreads;
    serve::ParseServer server(parser, options);
    if (!WarmPool(server.port(), sweep_pool, sweep_bodies)) {
      std::printf("WARNING: cache warm-up failed\n");
    }
    const size_t per_client = per_client_for(clients);
    // Best-of-2 for quick rows; the many-connection rows run long enough
    // (and cost enough) that one pass is both stable and affordable.
    const size_t row_passes = clients >= 1024 ? 1 : 2;
    SweepRow row;
    size_t row_mismatches = 0;
    size_t row_not_ok = 0;
    for (size_t p = 0; p < row_passes; ++p) {
      SweepRow pass =
          RunConnectionSweep(server.port(), epoll ? "epoll" : "threads",
                             clients, per_client, sweep_frames, sweep_bodies);
      row_mismatches += pass.mismatches;
      row_not_ok += pass.not_ok;
      if (p == 0 || pass.rps > row.rps) row = std::move(pass);
    }
    row.mismatches = row_mismatches;
    row.not_ok = row_not_ok;
    server.Shutdown();
    std::printf("%8zu %10s %8zu %12.0f %10.3f\n", row.clients,
                row.frontend.c_str(), per_client, row.rps, row.seconds);
    tcp_mismatches += row.mismatches;
    tcp_not_ok += row.not_ok;
    sweep_rows.push_back(std::move(row));
  };
  for (const size_t clients : client_counts) {
    for (const bool epoll : {true, false}) run_sweep_row(clients, epoll);
  }
  // Full runs push the epoll reactor alone past the thread front end's
  // practical range; smoke skips it for time.
  if (!util::BenchSmoke()) run_sweep_row(10000, true);

  const auto sweep_ratio = [&](size_t clients) {
    double epoll_rps = 0.0;
    double threads_rps = 0.0;
    for (const SweepRow& row : sweep_rows) {
      if (row.clients != clients) continue;
      if (row.frontend == "epoll") epoll_rps = row.rps;
      if (row.frontend == "threads") threads_rps = row.rps;
    }
    return threads_rps > 0.0 ? epoll_rps / threads_rps : 0.0;
  };
  const size_t low_clients = client_counts.front();
  const size_t high_clients = client_counts.back();
  const double epoll_vs_threads_low = sweep_ratio(low_clients);
  const double epoll_vs_threads_high = sweep_ratio(high_clients);
  std::printf("epoll vs threads: %.2fx at %zu clients, %.2fx at %zu\n",
              epoll_vs_threads_low, low_clients, epoll_vs_threads_high,
              high_clients);

  // -------------------------------------------------------------------
  // Shard-router scenario: aggregate cache across shards.
  std::vector<std::string> router_frames;
  std::vector<std::string> router_bodies;
  {
    whois::ParseWorkspace ws;
    for (size_t i = 0; i < router_pool_count; ++i) {
      std::string record;
      for (size_t k = 0; k < router_concat; ++k) {
        record += generator
                      .Generate(base + sweep_pool_count +
                                i * router_concat + k)
                      .thick.text;
        record += '\n';
      }
      router_frames.push_back(FramedRequest(record));
      router_bodies.push_back(whois::ToJson(parser.Parse(record, ws)));
    }
  }

  const std::vector<size_t> shard_counts =
      util::BenchSmoke() ? std::vector<size_t>{1, 4}
                         : std::vector<size_t>{1, 2, 4, 8};
  std::printf("\nshard router: %zu distinct records x %zu laps, "
              "%zu cache entries per shard\n",
              router_pool_count, router_laps, router_cache_entries);
  std::printf("%8s %12s %10s %10s\n", "shards", "rps", "seconds", "hit%");
  std::vector<RouterRow> router_rows;
  for (const size_t shards : shard_counts) {
    RouterRow row =
        RunRouterScenario(parser, shards, router_cache_entries, router_laps,
                          router_frames, router_bodies);
    std::printf("%8zu %12.0f %10.3f %9.1f%%\n", row.shards, row.rps,
                row.seconds, row.hit_ratio * 100.0);
    tcp_mismatches += row.mismatches;
    tcp_not_ok += row.not_ok;
    router_rows.push_back(std::move(row));
  }
  double router_4shard_vs_single = 0.0;
  {
    double single = 0.0;
    double four = 0.0;
    for (const RouterRow& row : router_rows) {
      if (row.shards == 1) single = row.rps;
      if (row.shards == 4) four = row.rps;
    }
    if (single > 0.0) router_4shard_vs_single = four / single;
  }
  std::printf("4 shards vs 1: %.2fx\n", router_4shard_vs_single);
  if (tcp_mismatches > 0 || tcp_not_ok > 0) {
    std::printf(
        "\nWARNING: TCP scenarios saw %zu body mismatches, %zu not-ok "
        "responses\n",
        tcp_mismatches, tcp_not_ok);
  }
  const bool checksums_match =
      total_mismatches == 0 && total_not_ok == 0 && tcp_mismatches == 0 &&
      tcp_not_ok == 0;

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_serve.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"serve\",\n";
  os << "  \"requests\": " << request_count << ",\n";
  os << "  \"passes\": " << passes << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"fast_rps\": " << fast_rps << ",\n";
  os << "  \"bodies_match_offline\": "
     << (total_mismatches == 0 ? "true" : "false") << ",\n";
  os << "  \"all_ok\": " << (total_not_ok == 0 ? "true" : "false") << ",\n";
  // Bit-identity across every path exercised (in-process, both TCP front
  // ends, the router): the `require_checksums_match` hook in
  // bench/bench_floor.json.
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"epoll_vs_threads_low\": " << epoll_vs_threads_low << ",\n";
  os << "  \"epoll_vs_threads_low_clients\": " << low_clients << ",\n";
  os << "  \"epoll_vs_threads_high\": " << epoll_vs_threads_high << ",\n";
  os << "  \"epoll_vs_threads_high_clients\": " << high_clients << ",\n";
  os << "  \"router_4shard_vs_single\": " << router_4shard_vs_single
     << ",\n";
  os << "  \"connection_sweep\": [\n";
  for (size_t i = 0; i < sweep_rows.size(); ++i) {
    const SweepRow& row = sweep_rows[i];
    os << "    {\"clients\": " << row.clients << ", \"frontend\": \""
       << row.frontend
       << "\", \"requests_per_client\": " << per_client_for(row.clients)
       << ", \"rps\": " << row.rps << ", \"seconds\": " << row.seconds
       << "}" << (i + 1 < sweep_rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"router_sweep\": [\n";
  for (size_t i = 0; i < router_rows.size(); ++i) {
    const RouterRow& row = router_rows[i];
    os << "    {\"shards\": " << row.shards
       << ", \"pool\": " << router_pool_count
       << ", \"cache_entries\": " << router_cache_entries
       << ", \"laps\": " << router_laps << ", \"rps\": " << row.rps
       << ", \"hit_ratio\": " << row.hit_ratio << "}"
       << (i + 1 < router_rows.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& s = results[i];
    os << "    {\"threads\": " << s.threads
       << ", \"target_hit_ratio\": " << s.target_hit_ratio
       << ", \"observed_hit_ratio\": " << s.observed_hit_ratio
       << ", \"rps\": " << s.rps << ", \"p50_us\": " << s.p50_us
       << ", \"p99_us\": " << s.p99_us << ", \"batch_rps\": " << s.batch_rps
       << ", \"serve_vs_batch\": "
       << (s.batch_rps > 0.0 ? s.rps / s.batch_rps : 0.0) << "}";
    os << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  // Registry snapshot: whoiscrf_serve_* counters/histograms accumulated
  // over every scenario, so the artifact shows cache + latency internals.
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  // The ratio floors are enforced by scripts/check_bench_floor.py in the
  // bench-smoke CI job, not here: this exit code is a correctness gate
  // only, so `ctest -L bench_smoke` stays meaningful on slow shared boxes.
  return checksums_match ? 0 : 1;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
