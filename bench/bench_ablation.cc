// Ablation study over the feature classes of §3.3 (DESIGN.md's design
// choices): how much do separator tagging (@T/@V), layout markers
// (NL/SHL/SYM), word classes (eq. 7), and observed transitions (eq. 8)
// each contribute, measured at the paper's headline operating point of 100
// labeled training examples?
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Ablation",
                     "feature-class contributions at 100 training examples");

  const size_t train_count = 100;
  const size_t test_count = util::Scaled(800, 200);
  const auto generator = bench::MakeEvalGenerator(train_count + test_count);
  const auto train = bench::TakeRecords(generator, 0, train_count);
  const auto test = bench::TakeRecords(generator, train_count, test_count);

  struct Variant {
    const char* name;
    bool word_classes;
    bool layout_markers;
    bool separator_markers;
    bool observed_transitions;
  };
  const Variant variants[] = {
      {"full model (paper)", true, true, true, true},
      {"- word classes (eq. 7)", false, true, true, true},
      {"- layout markers (NL/SHL/SYM)", true, false, true, true},
      {"- separator markers (SEP)", true, true, false, true},
      {"- observed transitions (eq. 8)", true, true, true, false},
      {"words only (no classes/markers)", false, false, false, false},
  };

  util::TextTable table({"variant", "line err", "doc err", "features"});
  for (const Variant& variant : variants) {
    whois::WhoisParserOptions options;
    options.tokenizer.word_classes = variant.word_classes;
    options.tokenizer.layout_markers = variant.layout_markers;
    options.tokenizer.separator_markers = variant.separator_markers;
    options.trainer.use_observed_transitions = variant.observed_transitions;
    options.trainer.l2_sigma = 10.0;
    options.trainer.lbfgs.max_iterations = 150;
    const whois::WhoisParser parser = whois::WhoisParser::Train(train, options);
    const bench::ErrorRates rates = bench::EvaluateStatistical(parser, test);
    table.AddRow({variant.name, util::Format("%.5f", rates.line),
                  util::Format("%.4f", rates.document),
                  std::to_string(parser.level1_model().num_weights())});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Observed shape: word classes (eq. 7) carry the most generalization\n"
      "power — removing them roughly triples the line error — because they\n"
      "are what recognizes values (emails, dates, ZIPs) never seen in\n"
      "training. Marker and observed-transition features add parameters\n"
      "that can mildly overfit at this tiny training size on the synthetic\n"
      "corpus (whose layouts are more regular than real WHOIS data); their\n"
      "value shows on block-style formats and unfamiliar TLDs (Table 2).\n");
  return 0;
}
