// Table 7: top 10 privacy protection services (§6.3), identified by keyword
// matching on the parsed registrant name/organization fields.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 7", "privacy protection services");

  const auto db = bench::SharedSurveyDatabase();
  std::printf("\n%s\n",
              bench::RenderTopK("Protection Service",
                                survey::TopPrivacyServices(db, 10))
                  .c_str());
  std::printf(
      "Paper shape: Domains By Proxy ~36%% of protected domains; a long\n"
      "tail of services including generic names (Private Registration,\n"
      "Hidden by Whois Privacy Protection Service) that do not correspond\n"
      "to identifiable organizations.\n");
  return 0;
}
