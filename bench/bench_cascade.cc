// Cascade throughput: records/sec of the confidence-gated parser cascade
// against the pure-CRF fast path measured in the same run, plus the
// field-level accuracy of both against gold labels — the cascade is only
// worth shipping if it is faster at EQUAL accuracy, so this bench reports
// the ratio and the accuracy delta side by side. Writes BENCH_cascade.json
// (override with WHOISCRF_BENCH_OUT); the bench-smoke CI job gates
// cascade_vs_crf_speedup and field_accuracy_delta against
// bench/bench_floor.json.
//
// The corpus is the standard mixed eval corpus (25% drifted records), so
// the dispatch mix is honest: most records hit the cheap tiers, drifted
// ones fall through to the CRF, and the shadow guard re-parses a sampled
// fraction of the cheap path (WHOISCRF_BENCH_SHADOW_RATE, default 0.02 —
// the cost of the correctness guard is part of the cascade's price).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cascade/cascade.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Folds a parse into a checksum so the optimizer cannot drop the work.
// (The cheap tiers do not produce a log_prob, so the fold is over label
// count and extracted-field bytes rather than the CRF score.)
double Checksum(const whois::ParsedWhois& parsed) {
  return static_cast<double>(parsed.line_labels.size()) +
         static_cast<double>(parsed.domain_name.size() +
                             parsed.registrar.size());
}

int BenchPasses() {
  static const int passes = [] {
    // Smoke runs under a parallel ctest alongside two dozen other bench
    // smokes; two passes (fastest wins) keep the speedup ratio stable
    // under that contention.
    const char* e = std::getenv("WHOISCRF_BENCH_PASSES");
    const int n =
        e != nullptr ? std::atoi(e) : (util::BenchSmoke() ? 2 : 3);
    return n > 0 ? n : 1;
  }();
  return passes;
}

struct Measurement {
  double seconds = 0.0;  // best (fastest) pass
  double records_per_sec = 0.0;
};

// Runs `run` over one slice of fresh records per pass and keeps the
// fastest pass (same protocol as bench_parse_throughput: fresh records
// per pass, warm workspace across passes, minimum defeats machine noise).
template <typename Fn>
Measurement Measure(const std::vector<std::vector<std::string>>& slices,
                    Fn&& run) {
  Measurement m;
  double sink = 0.0;
  for (size_t p = 0; p < slices.size(); ++p) {
    const auto start = Clock::now();
    sink += run(slices[p]);
    const double seconds = SecondsSince(start);
    if (p == 0 || seconds < m.seconds) m.seconds = seconds;
  }
  if (sink < 0.0) std::printf("impossible checksum %f\n", sink);
  m.records_per_sec =
      m.seconds > 0.0 && !slices.empty()
          ? static_cast<double>(slices.front().size()) / m.seconds
          : 0.0;
  return m;
}

// Gold key fields: extract with the record's own labels through the same
// field extractor every parser shares.
whois::ParsedWhois GoldParse(const whois::LabeledRecord& record) {
  const auto lines = text::SplitRecord(record.text);
  std::vector<whois::Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == whois::Level1Label::kRegistrant) {
      subs.push_back(
          record.sub_labels[i].value_or(whois::Level2Label::kOther));
    }
  }
  whois::ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const whois::ParsedWhois& a,
                              const whois::ParsedWhois& b) {
  const auto va = cascade::KeyFieldValues(a);
  const auto vb = cascade::KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

int Main() {
  // The smoke clamp does NOT shrink this bench's corpus: with a
  // tiny training set the cheap tiers cover too little of the eval mix,
  // and every fallthrough record then pays a cold CRF workspace while the
  // pure-CRF pass amortizes its line cache over the whole slice — the
  // "speedup" at that scale measures cache warmth, not dispatch. Smoke
  // only trims the parse slice and pass count; the full-size run stays
  // well under ten seconds.
  const bool smoke = util::BenchSmoke();
  const size_t train_count = smoke ? 300 : util::Scaled(300, 100);
  const size_t parse_count = smoke ? 1000 : util::Scaled(4000, 800);

  PrintHeader("cascade", "cascade vs pure-CRF records/sec at equal accuracy");

  const size_t passes = static_cast<size_t>(BenchPasses());
  const auto generator =
      MakeEvalGenerator(train_count + passes * parse_count);
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);

  cascade::CascadeOptions cascade_options;
  cascade_options.shadow_sample_rate = std::atof(
      util::EnvString("WHOISCRF_BENCH_SHADOW_RATE", "0.02").c_str());
  const cascade::CascadeParser cascade_parser(&parser, train,
                                              cascade_options);

  // Per-pass slices of record text, plus the last pass's labeled records
  // for the accuracy accounting.
  std::vector<std::vector<std::string>> slices(passes);
  std::vector<whois::LabeledRecord> labeled;
  labeled.reserve(parse_count);
  for (size_t p = 0; p < passes; ++p) {
    slices[p].reserve(parse_count);
    for (size_t i = 0; i < parse_count; ++i) {
      whois::LabeledRecord thick =
          generator.Generate(train_count + p * parse_count + i).thick;
      slices[p].push_back(thick.text);
      if (p + 1 == passes) labeled.push_back(std::move(thick));
    }
  }

  // Warm-up: touch both paths once so lazy initialization stays out of the
  // timed regions.
  {
    whois::ParseWorkspace ws;
    (void)parser.Parse(slices.front().front(), ws);
    (void)cascade_parser.Parse(slices.front().front(), ws);
  }

  whois::ParseWorkspace crf_ws;
  const Measurement crf = Measure(slices, [&](const auto& recs) {
    double sum = 0.0;
    for (const std::string& r : recs) sum += Checksum(parser.Parse(r, crf_ws));
    return sum;
  });

  whois::ParseWorkspace cascade_ws;
  const Measurement casc = Measure(slices, [&](const auto& recs) {
    double sum = 0.0;
    for (const std::string& r : recs) {
      sum += Checksum(cascade_parser.ParseRecord(r, cascade_ws));
    }
    return sum;
  });

  // Accuracy + dispatch accounting over the last slice's labeled records
  // (untimed; the rps numbers above already include dispatch overhead).
  size_t cascade_agree = 0;
  size_t crf_agree = 0;
  size_t total_fields = 0;
  size_t tier_counts[3] = {0, 0, 0};
  whois::ParseWorkspace acc_ws;
  for (const whois::LabeledRecord& record : labeled) {
    const whois::ParsedWhois gold = GoldParse(record);
    const cascade::CascadeResult result =
        cascade_parser.Parse(record.text, acc_ws);
    const whois::ParsedWhois pure = parser.Parse(record.text, acc_ws);
    cascade_agree += CountAgreeingKeyFields(result.parsed, gold);
    crf_agree += CountAgreeingKeyFields(pure, gold);
    total_fields += cascade::kNumKeyFields;
    ++tier_counts[static_cast<int>(result.tier)];
  }
  const double cascade_acc =
      total_fields > 0
          ? static_cast<double>(cascade_agree) /
                static_cast<double>(total_fields)
          : 1.0;
  const double crf_acc =
      total_fields > 0
          ? static_cast<double>(crf_agree) / static_cast<double>(total_fields)
          : 1.0;
  // Positive when the cascade is LESS accurate than the pure CRF; the
  // floor check caps this, so "faster but wronger" fails CI.
  const double accuracy_delta = crf_acc - cascade_acc;

  const double speedup =
      crf.records_per_sec > 0.0 ? casc.records_per_sec / crf.records_per_sec
                                : 0.0;

  uint64_t shadow_samples = 0;
  uint64_t shadow_disagreements = 0;
  for (const auto& [registrar, stats] : cascade_parser.ShadowSnapshot()) {
    shadow_samples += stats.samples;
    shadow_disagreements += stats.disagreements;
  }

  std::printf("records: %zu x %zu passes   shadow rate: %.3f\n\n",
              parse_count, passes, cascade_options.shadow_sample_rate);
  std::printf("%-22s %12s %10s %12s\n", "mode", "records/s", "vs crf",
              "field acc");
  std::printf("%-22s %12.0f %9.2fx %11.4f\n", "pure CRF",
              crf.records_per_sec, 1.0, crf_acc);
  std::printf("%-22s %12.0f %9.2fx %11.4f\n", "cascade",
              casc.records_per_sec, speedup, cascade_acc);
  std::printf("\ndispatch (last slice): template %zu  rule %zu  crf %zu\n",
              tier_counts[0], tier_counts[1], tier_counts[2]);
  std::printf("shadow guard: %llu samples, %llu disagreements\n",
              static_cast<unsigned long long>(shadow_samples),
              static_cast<unsigned long long>(shadow_disagreements));

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_cascade.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"cascade\",\n";
  os << "  \"records\": " << parse_count << ",\n";
  os << "  \"passes\": " << passes << ",\n";
  os << "  \"shadow_sample_rate\": " << cascade_options.shadow_sample_rate
     << ",\n";
  os << "  \"crf_rps\": " << crf.records_per_sec << ",\n";
  os << "  \"cascade_rps\": " << casc.records_per_sec << ",\n";
  os << "  \"cascade_vs_crf_speedup\": " << speedup << ",\n";
  os << "  \"crf_field_accuracy\": " << crf_acc << ",\n";
  os << "  \"cascade_field_accuracy\": " << cascade_acc << ",\n";
  os << "  \"field_accuracy_delta\": " << accuracy_delta << ",\n";
  os << "  \"dispatch\": {\"template\": " << tier_counts[0]
     << ", \"rule\": " << tier_counts[1] << ", \"crf\": " << tier_counts[2]
     << "},\n";
  os << "  \"shadow\": {\"samples\": " << shadow_samples
     << ", \"disagreements\": " << shadow_disagreements << "},\n";
  // Registry snapshot: the whoiscrf_cascade_* counters cover every record
  // of every pass, not just the accuracy slice.
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
