// Parsing throughput: records/sec of the inference fast path, single- and
// multi-threaded, against the pre-workspace naive Parse loop measured in
// the same run. Writes BENCH_parse_throughput.json (override the path with
// WHOISCRF_BENCH_OUT) so the perf trajectory is tracked across PRs.
//
// The ROADMAP north star is census-scale parsing (the paper's survey runs
// over 102M .com records), so this bench is the scoreboard every inference
// change should move — or at least not regress.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Folds a parse into a checksum so the optimizer cannot drop the work.
double Checksum(const whois::ParsedWhois& parsed) {
  return parsed.log_prob + static_cast<double>(parsed.line_labels.size());
}

int BenchPasses() {
  static const int passes = [] {
    const char* e = std::getenv("WHOISCRF_BENCH_PASSES");
    const int n = e != nullptr ? std::atoi(e) : 3;
    return n > 0 ? n : 1;
  }();
  return passes;
}

struct Measurement {
  double seconds = 0.0;  // best (fastest) pass
  double records_per_sec = 0.0;
  std::vector<double> checksums;  // one per pass/slice
};

// Runs `run` over one slice of fresh records per pass and keeps the fastest
// pass. Fresh records per pass keep the measurement honest for the cached
// fast path: every pass sees the real cross-record template overlap instead
// of re-parsing byte-identical strings, while state a mode carries across
// records (a warm ParseWorkspace — exactly what a census run holds) still
// pays off from the second pass on. The workload is deterministic, so the
// minimum is the pass least disturbed by other tenants of the machine;
// single passes here are a few hundred ms, well inside scheduler-noise
// territory.
template <typename Fn>
Measurement Measure(const std::vector<std::vector<std::string>>& slices,
                    Fn&& run) {
  Measurement m;
  for (size_t p = 0; p < slices.size(); ++p) {
    const auto start = Clock::now();
    m.checksums.push_back(run(slices[p]));
    const double seconds = SecondsSince(start);
    if (p == 0 || seconds < m.seconds) m.seconds = seconds;
  }
  m.records_per_sec =
      m.seconds > 0.0 && !slices.empty()
          ? static_cast<double>(slices.front().size()) / m.seconds
          : 0.0;
  return m;
}

int Main() {
  const size_t train_count = util::Scaled(300, 100);
  const size_t parse_count = util::Scaled(4000, 800);

  PrintHeader("throughput", "records/sec, fast path vs naive, by threads");

  const size_t passes = static_cast<size_t>(BenchPasses());
  const auto generator =
      MakeEvalGenerator(train_count + passes * parse_count);
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);

  std::vector<std::vector<std::string>> slices(passes);
  for (size_t p = 0; p < passes; ++p) {
    slices[p].reserve(parse_count);
    for (size_t i = 0; i < parse_count; ++i) {
      slices[p].push_back(
          generator.Generate(train_count + p * parse_count + i).thick.text);
    }
  }

  // Warm-up: touch every path once so first-run page faults and lazy
  // initialization don't land inside a timed region.
  {
    whois::ParseWorkspace ws;
    (void)parser.ParseNaive(slices.front().front());
    (void)parser.Parse(slices.front().front(), ws);
  }

  const Measurement naive = Measure(slices, [&](const auto& recs) {
    double sum = 0.0;
    for (const std::string& r : recs) sum += Checksum(parser.ParseNaive(r));
    return sum;
  });

  // One workspace for the whole mode, like a census worker thread: its line
  // cache carries template lines across slices, so later passes measure the
  // steady state while per-record values still miss like they would in
  // production.
  whois::ParseWorkspace fast_ws;
  const Measurement fast = Measure(slices, [&](const auto& recs) {
    double sum = 0.0;
    for (const std::string& r : recs) sum += Checksum(parser.Parse(r, fast_ws));
    return sum;
  });

  // Beam mode: same fast path with beam-pruned Viterbi (ParseWorkspace::
  // beam_width) restricted to the transition support recorded at training.
  // Approximate by design, so it gets its own accuracy accounting instead
  // of the bit-identical checksum gate: label agreement vs the exact
  // decode, measured over the last slice.
  const int beam_width =
      std::max(1, static_cast<int>(util::EnvInt("WHOISCRF_BENCH_BEAM", 3)));
  whois::ParseWorkspace beam_ws;
  beam_ws.beam_width = beam_width;
  const Measurement beam = Measure(slices, [&](const auto& recs) {
    double sum = 0.0;
    for (const std::string& r : recs) sum += Checksum(parser.Parse(r, beam_ws));
    return sum;
  });
  size_t beam_agree = 0;
  size_t beam_total = 0;
  for (const std::string& r : slices.back()) {
    const whois::ParsedWhois exact = parser.Parse(r, fast_ws);
    const whois::ParsedWhois approx = parser.Parse(r, beam_ws);
    for (size_t t = 0; t < exact.line_labels.size(); ++t) {
      ++beam_total;
      if (approx.line_labels[t] == exact.line_labels[t]) ++beam_agree;
    }
  }
  const double beam_agreement =
      beam_total > 0
          ? static_cast<double>(beam_agree) / static_cast<double>(beam_total)
          : 1.0;

  // Sweep 1,2,4,8 capped at the machine's core count, plus the core count
  // itself: on a 1-core box the old unconditional {1,2,4,8} sweep only
  // measured scheduler thrash and reported a meaningless scaling_vs_1.
  // WHOISCRF_BENCH_OVERSUBSCRIBE=1 restores the wide sweep; rows beyond
  // the core count are marked oversubscribed either way.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool sweep_wide = util::EnvInt("WHOISCRF_BENCH_OVERSUBSCRIBE", 0) != 0;
  std::vector<size_t> thread_counts;
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (sweep_wide || n <= hw) thread_counts.push_back(n);
  }
  if (thread_counts.back() < hw) thread_counts.push_back(hw);
  std::vector<Measurement> batch(thread_counts.size());
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    util::ThreadPool pool(thread_counts[i]);
    batch[i] = Measure(slices, [&](const auto& recs) {
      double sum = 0.0;
      for (const auto& parsed : parser.ParseBatch(recs, pool)) {
        sum += Checksum(parsed);
      }
      return sum;
    });
  }

  const double speedup =
      naive.records_per_sec > 0.0
          ? fast.records_per_sec / naive.records_per_sec
          : 0.0;

  std::printf("records: %zu x %zu passes   hardware threads: %u\n\n",
              parse_count, passes, hw);
  std::printf("%-22s %12s %10s\n", "mode", "records/s", "vs naive");
  std::printf("%-22s %12.0f %9.2fx\n", "naive (pre-change)",
              naive.records_per_sec, 1.0);
  std::printf("%-22s %12.0f %9.2fx\n", "fast (workspace)",
              fast.records_per_sec, speedup);
  char beam_label[40];
  std::snprintf(beam_label, sizeof(beam_label), "beam K=%d (approx)",
                beam_width);
  std::printf("%-22s %12.0f %9.2fx  (label agreement %.4f)\n", beam_label,
              beam.records_per_sec,
              naive.records_per_sec > 0.0
                  ? beam.records_per_sec / naive.records_per_sec
                  : 0.0,
              beam_agreement);
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    char label[40];
    std::snprintf(label, sizeof(label), "batch x%zu%s", thread_counts[i],
                  thread_counts[i] > hw ? " (oversubscribed)" : "");
    std::printf("%-22s %12.0f %9.2fx\n", label, batch[i].records_per_sec,
                naive.records_per_sec > 0.0
                    ? batch[i].records_per_sec / naive.records_per_sec
                    : 0.0);
  }
  // Every mode parsed the same slices, so per-slice checksums must agree
  // exactly (the fast path is bit-identical, not approximately equal).
  bool checksums_match = fast.checksums == naive.checksums;
  for (const Measurement& b : batch) {
    checksums_match = checksums_match && b.checksums == naive.checksums;
  }
  if (!checksums_match) {
    std::printf("\nWARNING: mode checksums differ from naive\n");
  }

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_parse_throughput.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"parse_throughput\",\n";
  os << "  \"records\": " << parse_count << ",\n";
  os << "  \"passes\": " << passes << ",\n";
  os << "  \"hardware_concurrency\": " << hw << ",\n";
  os << "  \"naive_rps\": " << naive.records_per_sec << ",\n";
  os << "  \"fast_rps\": " << fast.records_per_sec << ",\n";
  os << "  \"fast_vs_naive_speedup\": " << speedup << ",\n";
  os << "  \"beam_width\": " << beam_width << ",\n";
  os << "  \"beam_rps\": " << beam.records_per_sec << ",\n";
  os << "  \"beam_label_agreement\": " << beam_agreement << ",\n";
  os << "  \"beam_accuracy_delta\": " << (1.0 - beam_agreement) << ",\n";
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"batch\": [\n";
  for (size_t i = 0; i < thread_counts.size(); ++i) {
    os << "    {\"threads\": " << thread_counts[i]
       << ", \"rps\": " << batch[i].records_per_sec << ", \"scaling_vs_1\": "
       << (batch[0].records_per_sec > 0.0
               ? batch[i].records_per_sec / batch[0].records_per_sec
               : 0.0)
       << ", \"oversubscribed\": "
       << (thread_counts[i] > hw ? "true" : "false") << "}";
    os << (i + 1 < thread_counts.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  // Registry snapshot (whoiscrf_parse_* et al.) so a bench artifact also
  // shows cache hit rates and latency buckets, not just the headline rps.
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
