// Self-healing lifecycle: the closed loop's accuracy recovery and the hot
// swap's cost, measured against the no-loop baseline on the temporal
// drifting corpus (docs/lifecycle.md). Three models are compared on a
// held-out post-drift window:
//
//   stale   trained on the pre-drift prefix and never touched again
//           (the no-loop baseline the drift degrades),
//   loop    the model the lifecycle controller ends the stream with
//           (drift alarms -> harvest -> retrain -> gate -> promote),
//   fresh   trained on pre-drift + post-drift data from the start
//           (the oracle ceiling the loop is chasing).
//
// The acceptance criterion is recovery_gap = fresh - loop <= 0.01: the
// closed loop must land within a point of the model that saw the drift in
// its training data, while accuracy_gain = loop - stale stays visibly
// positive. Also reports ModelHost swap latency (the RCU pointer swap the
// serve layer pays per promotion) and the observe-loop's throughput tax.
// Writes BENCH_lifecycle.json (override with WHOISCRF_BENCH_OUT); the
// bench-smoke CI job gates accuracy_gain, recovery_gap, and promotions
// against bench/bench_floor.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "cascade/cascade.h"
#include "datagen/temporal.h"
#include "lifecycle/controller.h"
#include "obs/metrics.h"
#include "serve/model_host.h"
#include "text/line_splitter.h"
#include "util/env.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Gold key fields: extract with the record's own labels through the same
// field extractor every parser shares.
whois::ParsedWhois GoldParse(const whois::LabeledRecord& record) {
  const auto lines = text::SplitRecord(record.text);
  std::vector<whois::Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == whois::Level1Label::kRegistrant) {
      subs.push_back(
          record.sub_labels[i].value_or(whois::Level2Label::kOther));
    }
  }
  whois::ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const whois::ParsedWhois& a,
                              const whois::ParsedWhois& b) {
  const auto va = cascade::KeyFieldValues(a);
  const auto vb = cascade::KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

double AccuracyOver(const whois::WhoisParser& parser,
                    const datagen::TemporalCorpusGenerator& generator,
                    size_t begin, size_t end) {
  whois::ParseWorkspace ws;
  size_t agree = 0, total = 0;
  for (size_t i = begin; i < end; ++i) {
    const whois::LabeledRecord record = generator.Generate(i).thick;
    agree += CountAgreeingKeyFields(parser.Parse(record.text, ws),
                                    GoldParse(record));
    total += cascade::kNumKeyFields;
  }
  return total > 0 ? static_cast<double>(agree) / static_cast<double>(total)
                   : 1.0;
}

whois::WhoisParserOptions TrainOptions() {
  whois::WhoisParserOptions options;
  options.trainer.lbfgs.max_iterations = 60;
  options.trainer.threads = 1;
  return options;
}

int Main() {
  const bool smoke = util::BenchSmoke();
  // The smoke clamp keeps training (the dominant cost: the initial model
  // plus one retrain per alarm) inside the smoke budget; the stream and
  // eval windows scale with it.
  const size_t train_count = smoke ? 300 : util::Scaled(500, 300);
  const size_t stream_count = smoke ? 700 : util::Scaled(3000, 700);
  const size_t eval_count = smoke ? 200 : util::Scaled(800, 200);
  const size_t total = train_count + stream_count + eval_count;

  PrintHeader("lifecycle",
              "closed-loop drift recovery vs the no-loop baseline");

  datagen::TemporalCorpusOptions corpus_options;
  corpus_options.size = total;
  corpus_options.seed = kCorpusSeed;
  corpus_options.events = 1;  // event at total / 2
  const datagen::TemporalCorpusGenerator generator(corpus_options);
  const size_t event_at = generator.events()[0].at_index;
  const size_t stream_end = total - eval_count;

  std::vector<whois::LabeledRecord> base_training;
  base_training.reserve(train_count);
  for (size_t i = 0; i < train_count; ++i) {
    base_training.push_back(generator.Generate(i).thick);
  }

  std::printf("corpus: %zu records, drift event at %zu, stream [%zu, %zu), "
              "eval [%zu, %zu)\n",
              total, event_at, train_count, stream_end, stream_end, total);

  const auto train_start = Clock::now();
  const auto stale = std::make_shared<const whois::WhoisParser>(
      whois::WhoisParser::Train(base_training, TrainOptions()));
  const double train_seconds = SecondsSince(train_start);

  // The oracle: same base corpus plus a post-drift slice the size of the
  // lifecycle buffer, so "fresh" and "loop" learn from comparable data.
  lifecycle::ControllerOptions controller_options;
  controller_options.buffer.capacity = smoke ? 192 : 256;
  controller_options.buffer.seed = kCorpusSeed;
  controller_options.drift.window = smoke ? 16 : 32;
  controller_options.min_retrain_records = 32;
  controller_options.gate_epsilon = 0.01;
  controller_options.probation_window = 64;
  controller_options.trainer = TrainOptions();
  std::vector<whois::LabeledRecord> fresh_training = base_training;
  for (size_t i = event_at;
       i < event_at + controller_options.buffer.capacity; ++i) {
    fresh_training.push_back(generator.Generate(i).thick);
  }
  const whois::WhoisParser fresh =
      whois::WhoisParser::Train(fresh_training, TrainOptions());

  // --- No-loop baseline: the stale model streams blind. ------------------
  whois::ParseWorkspace ws;
  const auto noloop_start = Clock::now();
  double noloop_checksum = 0.0;
  for (size_t i = train_count; i < stream_end; ++i) {
    const whois::LabeledRecord record = generator.Generate(i).thick;
    noloop_checksum += static_cast<double>(
        stale->Parse(record.text, ws).line_labels.size());
  }
  const double noloop_seconds = SecondsSince(noloop_start);

  // --- Closed loop: observe, harvest on disagreement, retrain at alarms.
  lifecycle::LifecycleController controller(stale, base_training,
                                            controller_options);
  size_t promotions = 0, rejections = 0, retrains = 0;
  bool pending_alarm = false;
  double retrain_seconds = 0.0;
  const auto loop_start = Clock::now();
  for (size_t i = train_count; i < stream_end; ++i) {
    const datagen::GeneratedDomain domain = generator.Generate(i);
    const whois::LabeledRecord& record = domain.thick;
    const bool wrong =
        CountAgreeingKeyFields(
            controller.Current()->Parse(record.text, ws), GoldParse(record)) <
        cascade::kNumKeyFields;
    lifecycle::Observation obs;
    obs.registrar = domain.facts.registrar_name;
    obs.shadow_sampled = true;
    obs.shadow_disagreed = wrong;
    // An alarm that trips before the buffer has enough harvested records
    // stays pending until it does (the background driver polls the same
    // way).
    pending_alarm |= controller.Observe(obs, wrong ? &record : nullptr);
    if (pending_alarm &&
        controller.buffer_size() >= controller_options.min_retrain_records) {
      pending_alarm = false;
      const auto retrain_start = Clock::now();
      const lifecycle::RetrainOutcome outcome = controller.RetrainNow();
      retrain_seconds += SecondsSince(retrain_start);
      ++retrains;
      if (outcome.result == lifecycle::RetrainOutcome::Result::kPromoted) {
        ++promotions;
      } else if (outcome.result ==
                 lifecycle::RetrainOutcome::Result::kRejected) {
        ++rejections;
      }
    }
  }
  const double loop_seconds = SecondsSince(loop_start);

  // --- Accuracy on the held-out post-drift window. -----------------------
  const double stale_eval = AccuracyOver(*stale, generator, stream_end,
                                         total);
  const double loop_eval = AccuracyOver(*controller.Current(), generator,
                                        stream_end, total);
  const double fresh_eval = AccuracyOver(fresh, generator, stream_end,
                                         total);
  const double pre_drift = AccuracyOver(*stale, generator, train_count,
                                        train_count + eval_count);
  const double accuracy_gain = loop_eval - stale_eval;
  const double recovery_gap = fresh_eval - loop_eval;

  // --- Hot swap latency: the RCU pointer swap per promotion. -------------
  const auto next = std::make_shared<const whois::WhoisParser>(
      whois::WhoisParser::Train(base_training, TrainOptions()));
  serve::ModelHost host(stale);
  constexpr size_t kSwaps = 200;
  const auto swap_start = Clock::now();
  for (size_t i = 0; i < kSwaps; ++i) {
    host.Swap(i % 2 == 0 ? next : stale);
  }
  const double swap_avg_us = SecondsSince(swap_start) * 1e6 / kSwaps;

  const size_t streamed = stream_end - train_count;
  const double noloop_rps =
      noloop_seconds > 0.0 ? streamed / noloop_seconds : 0.0;
  const double loop_rps = loop_seconds > 0.0 ? streamed / loop_seconds : 0.0;
  const uint64_t rollbacks = obs::Registry::Global().CounterValue(
      "whoiscrf_lifecycle_rollbacks_total");

  std::printf("\ninitial training: %.2fs   retrains: %zu (%.2fs)   "
              "promotions: %zu   rejections: %zu\n",
              train_seconds, retrains, retrain_seconds, promotions,
              rejections);
  std::printf("%-28s %12s\n", "model", "field acc");
  std::printf("%-28s %12.4f   (pre-drift window: %.4f)\n", "stale (no loop)",
              stale_eval, pre_drift);
  std::printf("%-28s %12.4f   (gain %+.4f)\n", "closed loop", loop_eval,
              accuracy_gain);
  std::printf("%-28s %12.4f   (gap %+.4f)\n", "fresh (oracle)", fresh_eval,
              recovery_gap);
  std::printf("\nstream: no-loop %.0f rps, loop %.0f rps "
              "(retrain time included)\n",
              noloop_rps, loop_rps);
  std::printf("hot swap: %.3f us/swap over %zu swaps\n", swap_avg_us,
              kSwaps);
  if (noloop_checksum < 0.0) std::printf("impossible checksum\n");

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_lifecycle.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"lifecycle\",\n";
  os << "  \"corpus\": " << total << ",\n";
  os << "  \"train_count\": " << train_count << ",\n";
  os << "  \"streamed\": " << streamed << ",\n";
  os << "  \"eval_count\": " << eval_count << ",\n";
  os << "  \"pre_drift_accuracy\": " << pre_drift << ",\n";
  os << "  \"stale_post_accuracy\": " << stale_eval << ",\n";
  os << "  \"loop_post_accuracy\": " << loop_eval << ",\n";
  os << "  \"fresh_post_accuracy\": " << fresh_eval << ",\n";
  os << "  \"accuracy_gain\": " << accuracy_gain << ",\n";
  os << "  \"recovery_gap\": " << recovery_gap << ",\n";
  os << "  \"retrains\": " << retrains << ",\n";
  os << "  \"promotions\": " << promotions << ",\n";
  os << "  \"rejections\": " << rejections << ",\n";
  os << "  \"rollbacks\": " << rollbacks << ",\n";
  os << "  \"final_version\": " << controller.version() << ",\n";
  os << "  \"retrain_seconds\": " << retrain_seconds << ",\n";
  os << "  \"noloop_rps\": " << noloop_rps << ",\n";
  os << "  \"loop_rps\": " << loop_rps << ",\n";
  os << "  \"swap_avg_us\": " << swap_avg_us << ",\n";
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
