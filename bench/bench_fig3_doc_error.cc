// Figure 3: document error rate vs. number of labeled training examples,
// five-fold cross-validation, rule-based vs. statistical (§5.1).
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Figure 3",
                     "document error rate vs. number of labeled examples");

  const size_t corpus = util::Scaled(2500, 500);
  const size_t fold = corpus / 5;
  std::vector<size_t> sizes = {20, 100, 500};
  if (fold >= 1000) sizes = {20, 100, 1000, fold};
  const auto points = bench::cv::RunSweep(corpus, 5, sizes,
                                          util::Scaled(1500, 400));

  std::printf("%12s  %25s  %25s\n", "#examples", "rule-based doc err",
              "statistical doc err");
  for (const auto& p : points) {
    std::printf("%12zu  %12.5f +/- %8.5f  %12.5f +/- %8.5f\n", p.train_size,
                p.rule_doc_mean, p.rule_doc_std, p.stat_doc_mean,
                p.stat_doc_std);
  }
  std::printf(
      "\nPaper shape: both fall with more data; the statistical parser's\n"
      "document error rate drops well below the rule-based parser's.\n");
  return 0;
}
