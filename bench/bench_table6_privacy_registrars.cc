// Table 6: top 10 registrars used by privacy-protected domains (§6.3).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 6", "registrars of privacy-protected domains");

  const auto db = bench::SharedSurveyDatabase();
  std::printf("\nRegistrations using privacy protection:\n%s\n",
              bench::RenderTopK("Registrar",
                                survey::TopPrivacyRegistrars(db, 10))
                  .c_str());

  size_t privacy = 0;
  for (const auto& row : db.rows()) {
    if (row.privacy_protected) ++privacy;
  }
  std::printf("privacy-protected overall: %.1f%% of %zu domains "
              "(paper: ~20%%)\n",
              100.0 * static_cast<double>(privacy) /
                  static_cast<double>(db.size()),
              db.size());
  std::printf(
      "\nPaper shape: GoDaddy ~33%% of protected domains; eNom second;\n"
      "the list largely tracks overall registrar share, with GMO and\n"
      "DreamHost over-represented.\n");
  return 0;
}
