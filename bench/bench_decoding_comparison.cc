// Decoding-rule comparison: Viterbi (eq. 5 — maximum a posteriori over the
// whole sequence, what the paper uses) vs posterior max-marginal decoding
// (minimizes expected per-line error, exactly Figure 2's metric). On a
// confident model both coincide almost everywhere; this quantifies the
// residual gap on each metric.
#include <cstdio>

#include "bench_common.h"
#include "crf/tagger.h"
#include "text/line_splitter.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Decoding", "Viterbi vs posterior max-marginal");

  const size_t train_count = util::Scaled(400, 150);
  const size_t test_count = util::Scaled(1200, 300);
  const auto generator = bench::MakeEvalGenerator(train_count + test_count);
  const auto train = bench::TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = bench::TrainParser(train);
  const crf::Tagger tagger(parser.level1_model());
  const text::Tokenizer tokenizer;

  size_t lines = 0;
  size_t viterbi_wrong = 0, posterior_wrong = 0;
  size_t docs = 0;
  size_t viterbi_doc_wrong = 0, posterior_doc_wrong = 0;
  size_t disagreements = 0;
  for (size_t i = train_count; i < train_count + test_count; ++i) {
    const auto record = generator.Generate(i).thick;
    std::vector<text::LineAttributes> attrs;
    for (const auto& line : text::SplitRecord(record.text)) {
      attrs.push_back(tokenizer.Extract(line));
    }
    const auto viterbi = tagger.Tag(attrs);
    const auto posterior = tagger.TagPosterior(attrs);
    bool viterbi_any = false, posterior_any = false;
    for (size_t t = 0; t < viterbi.size(); ++t) {
      ++lines;
      const int gold = static_cast<int>(record.labels[t]);
      if (viterbi[t] != gold) { ++viterbi_wrong; viterbi_any = true; }
      if (posterior.labels[t] != gold) {
        ++posterior_wrong;
        posterior_any = true;
      }
      if (viterbi[t] != posterior.labels[t]) ++disagreements;
    }
    ++docs;
    if (viterbi_any) ++viterbi_doc_wrong;
    if (posterior_any) ++posterior_doc_wrong;
  }

  util::TextTable table({"decoder", "line err", "doc err"});
  auto rate = [](size_t wrong, size_t total) {
    return util::Format("%.5f", static_cast<double>(wrong) /
                                    static_cast<double>(total));
  };
  table.AddRow({"Viterbi (MAP, eq. 5)", rate(viterbi_wrong, lines),
                rate(viterbi_doc_wrong, docs)});
  table.AddRow({"posterior max-marginal", rate(posterior_wrong, lines),
                rate(posterior_doc_wrong, docs)});
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("decoders disagree on %zu of %zu lines (%.4f%%)\n",
              disagreements, lines,
              100.0 * static_cast<double>(disagreements) /
                  static_cast<double>(lines));
  std::printf(
      "\nExpected shape: near-identical on a well-trained model; posterior\n"
      "decoding can only help the line metric, Viterbi the document metric.\n");
  return 0;
}
