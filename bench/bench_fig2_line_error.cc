// Figure 2: line error rate vs. number of labeled training examples,
// five-fold cross-validation, rule-based vs. statistical (§5.1).
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Figure 2",
                     "line error rate vs. number of labeled examples");

  const size_t corpus = util::Scaled(2500, 500);
  const size_t fold = corpus / 5;
  std::vector<size_t> sizes = {20, 100, 500};
  if (fold >= 1000) sizes = {20, 100, 1000, fold};
  const auto points = bench::cv::RunSweep(corpus, 5, sizes,
                                          util::Scaled(1500, 400));

  std::printf("%12s  %25s  %25s\n", "#examples", "rule-based line err",
              "statistical line err");
  for (const auto& p : points) {
    std::printf("%12zu  %12.5f +/- %8.5f  %12.5f +/- %8.5f\n", p.train_size,
                p.rule_line_mean, p.rule_line_std, p.stat_line_mean,
                p.stat_line_std);
  }
  std::printf(
      "\nPaper shape: statistical dominates rule-based at every size;\n"
      ">98%% line accuracy by 100 examples, >99%% by 1000.\n");

  // Sanity of the reproduced shape, reported rather than asserted.
  const auto& first = points.front();
  const auto& last = points.back();
  std::printf("shape check: stat<=rule at smallest size: %s; "
              "stat improves with data: %s\n",
              first.stat_line_mean <= first.rule_line_mean + 1e-9 ? "yes"
                                                                  : "NO",
              last.stat_line_mean <= first.stat_line_mean + 1e-9 ? "yes"
                                                                 : "NO");
  return 0;
}
