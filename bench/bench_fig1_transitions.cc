// Figure 1: predictive features for detecting adjacent blocks — the top
// observed-transition features (eq. 8 form) on each label-pair edge (§3.4).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "crf/trainer.h"
#include "util/env.h"
#include "whois/training_data.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Figure 1",
                     "transition-detecting features between blocks");

  const size_t train_count = util::Scaled(1500, 300);
  const auto generator = bench::MakeEvalGenerator(train_count);
  const auto records = bench::TakeRecords(generator, 0, train_count);

  const text::Tokenizer tokenizer;
  const auto instances = whois::ToLevel1Instances(records, tokenizer);
  crf::TrainerOptions options;
  options.l2_sigma = 10.0;
  options.lbfgs.max_iterations = 150;
  const crf::CrfModel model =
      crf::Trainer(options).Train(whois::Level1Names(), instances);

  const int L = model.num_labels();
  std::printf("edge (from -> to): top observed-transition features\n\n");
  for (int i = 0; i < L; ++i) {
    for (int j = 0; j < L; ++j) {
      if (i == j) continue;
      std::vector<std::pair<double, std::string>> ranked;
      for (size_t s = 0; s < model.num_transition_slots(); ++s) {
        const double w = model.weights()[model.ObservedTransitionIndex(
            static_cast<int>(s), i, j)];
        ranked.emplace_back(
            w, model.vocab().Name(model.SlotAttr(static_cast<int>(s))));
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      if (ranked.empty() || ranked.front().first < 0.05) continue;
      std::printf("%-10s -> %-10s : ",
                  model.label_names()[static_cast<size_t>(i)].c_str(),
                  model.label_names()[static_cast<size_t>(j)].c_str());
      for (int k = 0; k < 3 && k < static_cast<int>(ranked.size()); ++k) {
        if (ranked[static_cast<size_t>(k)].first < 0.05) break;
        std::printf("%s%s(%.2f)", k ? ", " : "",
                    ranked[static_cast<size_t>(k)].second.c_str(),
                    ranked[static_cast<size_t>(k)].first);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper shape: block boundaries are detected by first-title words\n"
      "(admin/created/registrar/owner) and layout markers (NL/SHL/SYM).\n");
  return 0;
}
