// Shared machinery for the per-table/per-figure bench binaries.
//
// Every bench prints the same row/series structure as the corresponding
// table or figure in the paper. Sizes default to simulation scale and are
// multiplied by the WHOISCRF_SCALE environment variable (see DESIGN.md §5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/rule_parser.h"
#include "datagen/corpus_gen.h"
#include "survey/aggregates.h"
#include "survey/database.h"
#include "whois/whois_parser.h"

namespace whoiscrf::bench {

// Canonical seeds so every bench is reproducible and benches agree with
// each other about what "the corpus" is.
inline constexpr uint64_t kCorpusSeed = 20151028;  // IMC'15 opening day

// A corpus generator with survey-grade options (DBL and brand boosts on).
datagen::CorpusGenerator MakeSurveyGenerator(size_t size);

// A corpus generator with evaluation-grade options (no boosts).
datagen::CorpusGenerator MakeEvalGenerator(size_t size);

// The first `count` thick records of a generator's corpus.
std::vector<whois::LabeledRecord> TakeRecords(
    const datagen::CorpusGenerator& generator, size_t begin, size_t count);

// Trains the two-level statistical parser with bench-standard settings.
whois::WhoisParser TrainParser(const std::vector<whois::LabeledRecord>& train);

// Trains the parser and builds the parsed survey database over `count`
// corpus domains (the §6 pipeline). Training uses `train_count` records.
survey::SurveyDatabase BuildBenchDatabase(
    const datagen::CorpusGenerator& generator, size_t train_count,
    size_t count);

// The survey database every §6 bench runs on: train on `train` records,
// parse `count` domains of the survey corpus. Results are cached on disk
// (keyed by seed/train/count) so the nine table/figure benches share one
// training + parsing pass.
survey::SurveyDatabase SharedSurveyDatabase();
size_t SharedSurveyTrainCount();
size_t SharedSurveyCount();

// Line/document error rates of predicted vs gold labels over records.
struct ErrorRates {
  double line = 0.0;
  double document = 0.0;
  size_t lines = 0;
  size_t documents = 0;
};

// Counts errors of both parser types over the given test records.
ErrorRates EvaluateStatistical(const whois::WhoisParser& parser,
                               const std::vector<whois::LabeledRecord>& test);
ErrorRates EvaluateRuleBased(const baselines::RuleBasedParser& parser,
                             const std::vector<whois::LabeledRecord>& test);

// Renders a TopKResult in the paper's "Name  Number  (% All)" layout, with
// (Other)/(Unknown)/Total rows, like Tables 3 and 5-9.
std::string RenderTopK(const std::string& key_header,
                       const survey::TopKResult& result,
                       const std::string& unknown_label = "(Unknown)");

// Resolves country codes to display names for table rows ("US" ->
// "United States"); leaves unknown codes as-is.
survey::TopKResult WithCountryNames(survey::TopKResult result);

// Prints a standard bench header naming the paper artifact.
void PrintHeader(const std::string& artifact, const std::string& what);

}  // namespace whoiscrf::bench

namespace whoiscrf::bench::cv {

// Five-fold cross-validation sweep over training-set sizes (§5.1,
// Figures 2-3): for each fold and size, train a statistical parser on the
// subsample and roll the full rule-based parser back to the same records,
// then evaluate both on the records of the other folds.
struct SweepPoint {
  size_t train_size = 0;
  double stat_line_mean = 0.0, stat_line_std = 0.0;
  double rule_line_mean = 0.0, rule_line_std = 0.0;
  double stat_doc_mean = 0.0, stat_doc_std = 0.0;
  double rule_doc_mean = 0.0, rule_doc_std = 0.0;
};

std::vector<SweepPoint> RunSweep(size_t corpus_size, int folds,
                                 const std::vector<size_t>& train_sizes,
                                 size_t max_test_per_fold);

}  // namespace whoiscrf::bench::cv
