#include "bench_common.h"

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "datagen/country_data.h"
#include "survey/build.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"

namespace whoiscrf::bench {

datagen::CorpusGenerator MakeSurveyGenerator(size_t size) {
  datagen::CorpusOptions options;
  options.size = size;
  options.seed = kCorpusSeed;
  options.drift_fraction = 0.25;
  options.dbl_boost = 40.0;
  options.brand_boost = 5.0;
  return datagen::CorpusGenerator(options);
}

datagen::CorpusGenerator MakeEvalGenerator(size_t size) {
  datagen::CorpusOptions options;
  options.size = size;
  options.seed = kCorpusSeed;
  options.drift_fraction = 0.25;
  return datagen::CorpusGenerator(options);
}

std::vector<whois::LabeledRecord> TakeRecords(
    const datagen::CorpusGenerator& generator, size_t begin, size_t count) {
  std::vector<whois::LabeledRecord> out;
  out.reserve(count);
  for (size_t i = begin; i < begin + count; ++i) {
    out.push_back(generator.Generate(i).thick);
  }
  return out;
}

whois::WhoisParser TrainParser(
    const std::vector<whois::LabeledRecord>& train) {
  whois::WhoisParserOptions options;
  options.trainer.l2_sigma = 10.0;
  options.trainer.lbfgs.max_iterations = 150;
  return whois::WhoisParser::Train(train, options);
}

survey::SurveyDatabase BuildBenchDatabase(
    const datagen::CorpusGenerator& generator, size_t train_count,
    size_t count) {
  const auto train = TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = TrainParser(train);
  return survey::BuildDatabase(generator, parser, count);
}

ErrorRates EvaluateStatistical(
    const whois::WhoisParser& parser,
    const std::vector<whois::LabeledRecord>& test) {
  ErrorRates rates;
  size_t wrong_lines = 0;
  size_t wrong_docs = 0;
  for (const auto& record : test) {
    const auto predicted = parser.LabelLines(record.text);
    bool any = false;
    for (size_t t = 0; t < predicted.size(); ++t) {
      ++rates.lines;
      if (predicted[t] != record.labels[t]) {
        ++wrong_lines;
        any = true;
      }
    }
    ++rates.documents;
    if (any) ++wrong_docs;
  }
  rates.line = rates.lines ? static_cast<double>(wrong_lines) / rates.lines : 0;
  rates.document =
      rates.documents ? static_cast<double>(wrong_docs) / rates.documents : 0;
  return rates;
}

ErrorRates EvaluateRuleBased(const baselines::RuleBasedParser& parser,
                             const std::vector<whois::LabeledRecord>& test) {
  ErrorRates rates;
  size_t wrong_lines = 0;
  size_t wrong_docs = 0;
  for (const auto& record : test) {
    const auto predicted = parser.LabelLines(record.text);
    bool any = false;
    for (size_t t = 0; t < predicted.size(); ++t) {
      ++rates.lines;
      if (predicted[t] != record.labels[t]) {
        ++wrong_lines;
        any = true;
      }
    }
    ++rates.documents;
    if (any) ++wrong_docs;
  }
  rates.line = rates.lines ? static_cast<double>(wrong_lines) / rates.lines : 0;
  rates.document =
      rates.documents ? static_cast<double>(wrong_docs) / rates.documents : 0;
  return rates;
}

std::string RenderTopK(const std::string& key_header,
                       const survey::TopKResult& result,
                       const std::string& unknown_label) {
  util::TextTable table({key_header, "Number", "(% All)"});
  auto pct = [&](size_t count) {
    return util::Format("(%.1f)",
                        result.total == 0
                            ? 0.0
                            : 100.0 * static_cast<double>(count) /
                                  static_cast<double>(result.total));
  };
  for (const auto& row : result.top) {
    table.AddRow({row.key, util::WithCommas(static_cast<long long>(row.count)),
                  pct(row.count)});
  }
  table.AddRow({"(Other)",
                util::WithCommas(static_cast<long long>(result.other_count)),
                pct(result.other_count)});
  if (result.unknown_count > 0 || unknown_label == "(Unknown)") {
    table.AddRow({unknown_label,
                  util::WithCommas(static_cast<long long>(result.unknown_count)),
                  pct(result.unknown_count)});
  }
  table.AddSeparator();
  table.AddRow({"Total", util::WithCommas(static_cast<long long>(result.total)),
                "(100.0)"});
  return table.Render();
}

survey::TopKResult WithCountryNames(survey::TopKResult result) {
  for (auto& row : result.top) {
    const auto name = datagen::CountryDisplayName(row.key);
    if (!name.empty()) row.key = std::string(name);
  }
  return result;
}

size_t SharedSurveyTrainCount() { return util::Scaled(800, 200); }
size_t SharedSurveyCount() { return util::Scaled(20000, 2000); }

namespace {

std::string CachePath() {
  return util::Format("/tmp/whoiscrf_survey_cache_%llu_%zu_%zu.tsv",
                      static_cast<unsigned long long>(kCorpusSeed),
                      SharedSurveyTrainCount(), SharedSurveyCount());
}

bool LoadCache(const std::string& path, survey::SurveyDatabase& db) {
  std::ifstream is(path);
  if (!is) return false;
  std::string line;
  while (std::getline(is, line)) {
    const auto f = util::Split(line, '\t');
    if (f.size() != 9) return false;
    survey::DomainRow row;
    row.domain = std::string(f[0]);
    row.registrar = std::string(f[1]);
    row.created_year = std::atoi(std::string(f[2]).c_str());
    row.country_code = std::string(f[3]);
    row.registrant_name = std::string(f[4]);
    row.registrant_org = std::string(f[5]);
    row.privacy_protected = f[6] == "1";
    row.privacy_service = std::string(f[7]);
    row.on_dbl = f[8] == "1";
    db.Add(std::move(row));
  }
  return db.size() == SharedSurveyCount();
}

void SaveCache(const std::string& path, const survey::SurveyDatabase& db) {
  // Write-then-rename so concurrent benches (ctest -j runs several at
  // once) never observe a torn cache file.
  const std::string tmp =
      util::Format("%s.tmp.%d", path.c_str(), static_cast<int>(getpid()));
  {
    std::ofstream os(tmp);
    if (!os) return;
    for (const auto& r : db.rows()) {
      os << r.domain << '\t' << r.registrar << '\t' << r.created_year << '\t'
         << r.country_code << '\t' << r.registrant_name << '\t'
         << r.registrant_org << '\t' << (r.privacy_protected ? 1 : 0) << '\t'
         << r.privacy_service << '\t' << (r.on_dbl ? 1 : 0) << '\n';
    }
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

}  // namespace

survey::SurveyDatabase SharedSurveyDatabase() {
  const std::string path = CachePath();
  survey::SurveyDatabase cached;
  if (LoadCache(path, cached)) {
    std::fprintf(stderr, "[bench] using cached survey database %s (%zu rows)\n",
                 path.c_str(), cached.size());
    return cached;
  }
  std::fprintf(stderr,
               "[bench] training parser (%zu records) and parsing %zu domains"
               " (cached at %s for the other survey benches)\n",
               SharedSurveyTrainCount(), SharedSurveyCount(), path.c_str());
  const auto generator = MakeSurveyGenerator(SharedSurveyCount());
  survey::SurveyDatabase db =
      BuildBenchDatabase(generator, SharedSurveyTrainCount(),
                         SharedSurveyCount());
  SaveCache(path, db);
  return db;
}

void PrintHeader(const std::string& artifact, const std::string& what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("(synthetic corpus; shapes reproduce the paper, absolute\n");
  std::printf(" counts scale with corpus size; WHOISCRF_SCALE=%g)\n",
              util::ScaleFactor());
  std::printf("==============================================================\n");
}

}  // namespace whoiscrf::bench

namespace whoiscrf::bench::cv {

namespace {
struct MeanStd {
  double mean = 0.0;
  double std_dev = 0.0;
};
MeanStd Reduce(const std::vector<double>& xs) {
  MeanStd out;
  if (xs.empty()) return out;
  for (double x : xs) out.mean += x;
  out.mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - out.mean) * (x - out.mean);
  out.std_dev = xs.size() > 1
                    ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                    : 0.0;
  return out;
}
}  // namespace

std::vector<SweepPoint> RunSweep(size_t corpus_size, int folds,
                                 const std::vector<size_t>& train_sizes,
                                 size_t max_test_per_fold) {
  const datagen::CorpusGenerator generator = MakeEvalGenerator(corpus_size);
  const auto all = TakeRecords(generator, 0, corpus_size);

  // The "best" rule-based parser is built from the full corpus, then rolled
  // back per subsample (§5.1: some pattern rules cannot be rolled back, so
  // this parser is always at least as strong as one built from scratch).
  const baselines::RuleBasedParser full_rules =
      baselines::RuleBasedParser::Build(all);

  const size_t fold_size = corpus_size / static_cast<size_t>(folds);
  std::vector<SweepPoint> points;
  for (size_t train_size : train_sizes) {
    SweepPoint point;
    point.train_size = train_size;
    std::vector<double> stat_line, rule_line, stat_doc, rule_doc;
    for (int fold = 0; fold < folds; ++fold) {
      const size_t begin = static_cast<size_t>(fold) * fold_size;
      std::vector<whois::LabeledRecord> train(
          all.begin() + static_cast<ptrdiff_t>(begin),
          all.begin() +
              static_cast<ptrdiff_t>(begin + std::min(train_size, fold_size)));
      std::vector<whois::LabeledRecord> test;
      for (size_t i = 0; i < all.size() && test.size() < max_test_per_fold;
           ++i) {
        if (i < begin || i >= begin + fold_size) test.push_back(all[i]);
      }
      const whois::WhoisParser parser = TrainParser(train);
      const baselines::RuleBasedParser rules = full_rules.RollBack(train);
      const ErrorRates stat = EvaluateStatistical(parser, test);
      const ErrorRates rule = EvaluateRuleBased(rules, test);
      stat_line.push_back(stat.line);
      rule_line.push_back(rule.line);
      stat_doc.push_back(stat.document);
      rule_doc.push_back(rule.document);
    }
    const MeanStd sl = Reduce(stat_line), rl = Reduce(rule_line);
    const MeanStd sd = Reduce(stat_doc), rd = Reduce(rule_doc);
    point.stat_line_mean = sl.mean;
    point.stat_line_std = sl.std_dev;
    point.rule_line_mean = rl.mean;
    point.rule_line_std = rl.std_dev;
    point.stat_doc_mean = sd.mean;
    point.stat_doc_std = sd.std_dev;
    point.rule_doc_mean = rd.mean;
    point.rule_doc_std = rd.std_dev;
    points.push_back(point);
  }
  return points;
}

}  // namespace whoiscrf::bench::cv
