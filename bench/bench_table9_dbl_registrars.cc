// Table 9: top 10 registrars of .com domains on the (simulated) DBL
// blacklist, created in 2014 (§6.4).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 9", "registrars of DBL domains (2014)");

  const auto db = bench::SharedSurveyDatabase();
  std::printf("\n%s\n",
              bench::RenderTopK("Registrar",
                                survey::DblTopRegistrars(db, 10, 2014))
                  .c_str());
  std::printf(
      "Paper shape: abuse-implicated registrars (eNom, GMO Internet,\n"
      "Moniker, Xinnet, Bizcn) are over-represented relative to their\n"
      "market share; GoDaddy under-represented.\n");
  return 0;
}
