// Second-level extraction quality: per-subfield accuracy of the registrant
// fields against ground truth. The paper's survey (§6) depends on exactly
// these fields (country for Table 3, org for Table 4, name/org for privacy
// detection), so this bench quantifies the foundation those tables rest on.
#include <cstdio>

#include "bench_common.h"
#include "util/env.h"
#include "util/string_util.h"
#include "util/table.h"
#include "whois/whois_parser.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Level-2 fields",
                     "registrant subfield extraction accuracy");

  const size_t train_count = util::Scaled(800, 200);
  const size_t test_count = util::Scaled(1500, 300);
  const auto generator = bench::MakeEvalGenerator(train_count + test_count);
  const auto train = bench::TakeRecords(generator, 0, train_count);
  const whois::WhoisParser parser = bench::TrainParser(train);

  struct FieldStat {
    const char* name;
    size_t present = 0;  // ground truth non-empty
    size_t correct = 0;  // parsed value matches exactly
  };
  FieldStat stats[] = {{"name"},  {"org"},     {"city"},  {"state"},
                       {"postcode"}, {"country"}, {"phone"}, {"email"}};

  for (size_t i = train_count; i < train_count + test_count; ++i) {
    const auto domain = generator.Generate(i);
    const whois::ParsedWhois parsed = parser.Parse(domain.thick.text);
    const datagen::ContactFacts& truth = domain.facts.registrant;
    const whois::Contact& got = parsed.registrant;

    auto check = [&](FieldStat& stat, const std::string& want,
                     const std::string& have) {
      if (want.empty()) return;
      ++stat.present;
      if (want == have) ++stat.correct;
    };
    check(stats[0], truth.name, got.name);
    check(stats[1], truth.org, got.org);
    check(stats[2], truth.city, got.city);
    check(stats[3], truth.state, got.state);
    check(stats[4], truth.postcode, got.postcode);
    // Country may be printed as a code or a display name by the template.
    if (!truth.country_code.empty()) {
      ++stats[5].present;
      if (got.country == truth.country_code ||
          got.country == truth.country_name) {
        ++stats[5].correct;
      }
    }
    check(stats[6], truth.phone, got.phone);
    check(stats[7], truth.email, got.email);
  }

  util::TextTable table({"field", "present", "exact match", "accuracy"});
  for (const FieldStat& stat : stats) {
    table.AddRow({stat.name, std::to_string(stat.present),
                  std::to_string(stat.correct),
                  util::Format("%.1f%%",
                               stat.present == 0
                                   ? 0.0
                                   : 100.0 * static_cast<double>(stat.correct) /
                                         static_cast<double>(stat.present))});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Caveats: city is under-credited in block formats that print\n"
      "\"City, ST 12345\" on one composite line (the parser stores the\n"
      "composite under city); the survey pipeline only needs country,\n"
      "org, and name, which should all be >90%%.\n");
  return 0;
}
