// Performance microbenchmarks (google-benchmark): feature extraction,
// compilation, inference, Viterbi decoding, end-to-end parsing, and one
// training gradient pass — the building blocks whose cost determines
// whether parsing 102M records is feasible (it is: the paper's pipeline is
// embarrassingly parallel over records).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "crf/inference.h"
#include "crf/likelihood.h"
#include "crf/trainer.h"
#include "crf/viterbi.h"
#include "whois/training_data.h"

namespace {

using namespace whoiscrf;

struct Fixture {
  datagen::CorpusGenerator generator;
  std::vector<whois::LabeledRecord> train;
  whois::WhoisParser parser;
  text::Tokenizer tokenizer;
  std::string sample;

  Fixture()
      : generator(bench::MakeEvalGenerator(400)),
        train(bench::TakeRecords(generator, 0, 300)),
        parser(bench::TrainParser(train)),
        sample(generator.Generate(350).thick.text) {}
};

Fixture& GetFixture() {
  static Fixture fixture;
  return fixture;
}

void BM_SplitRecord(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::SplitRecord(f.sample));
  }
}
BENCHMARK(BM_SplitRecord);

void BM_ExtractAttributes(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tokenizer.ExtractRecord(f.sample));
  }
}
BENCHMARK(BM_ExtractAttributes);

void BM_CompileSequence(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto attrs = f.tokenizer.ExtractRecord(f.sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.parser.level1_model().Compile(attrs));
  }
}
BENCHMARK(BM_CompileSequence);

void BM_ComputeScores(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto attrs = f.tokenizer.ExtractRecord(f.sample);
  const auto seq = f.parser.level1_model().Compile(attrs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.parser.level1_model().ComputeScores(seq));
  }
}
BENCHMARK(BM_ComputeScores);

void BM_ForwardBackward(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto attrs = f.tokenizer.ExtractRecord(f.sample);
  const auto seq = f.parser.level1_model().Compile(attrs);
  const auto scores = f.parser.level1_model().ComputeScores(seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf::ForwardBackward(scores));
  }
}
BENCHMARK(BM_ForwardBackward);

void BM_ViterbiDecode(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto attrs = f.tokenizer.ExtractRecord(f.sample);
  const auto seq = f.parser.level1_model().Compile(attrs);
  const auto scores = f.parser.level1_model().ComputeScores(seq);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crf::Decode(scores));
  }
}
BENCHMARK(BM_ViterbiDecode);

void BM_ParseRecordEndToEnd(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t records = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.parser.Parse(f.sample));
    ++records;
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
}
BENCHMARK(BM_ParseRecordEndToEnd);

void BM_TrainingGradientPass(benchmark::State& state) {
  Fixture& f = GetFixture();
  const text::Tokenizer tokenizer;
  const auto instances = whois::ToLevel1Instances(f.train, tokenizer);
  crf::TrainerOptions options;
  crf::Trainer trainer(options);
  // Build the model once; measure one full objective+gradient evaluation.
  crf::CrfModel model =
      trainer.Train(whois::Level1Names(),
                    std::vector<crf::Instance>(instances.begin(),
                                               instances.begin() + 20));
  const crf::Dataset dataset = crf::Trainer::Compile(model, instances);
  crf::LogLikelihood objective(model, dataset, 10.0);
  std::vector<double> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.Evaluate(model.weights(), grad));
  }
}
BENCHMARK(BM_TrainingGradientPass)->Unit(benchmark::kMillisecond);

void BM_GenerateDomain(benchmark::State& state) {
  Fixture& f = GetFixture();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.generator.Generate(i++ % 400));
  }
}
BENCHMARK(BM_GenerateDomain);

}  // namespace

BENCHMARK_MAIN();
