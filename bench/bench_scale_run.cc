// Paper-scale harness bench: exercises `scale-run`'s whole contract at
// bench scale and prices its durability. Four phases:
//
//   1. fresh    — RunScaleRun end to end (generate -> checkpointed store
//                 -> streaming survey); sustained rps + peak RSS.
//   2. plain    — the same records through a bare ParseStream (no store,
//                 no checkpoints); the rps ratio is what durability costs.
//   3. kill     — a run aborted mid-stream from its checkpoint callback,
//                 then resumed; the resumed store bytes and the serialized
//                 survey accumulator must equal phase 1's exactly.
//   4. cross    — CrossCheckSurveyPaths: streaming accumulator vs the
//                 in-memory SurveyDatabase aggregates, compared exactly.
//
// checksums_match folds 3 and 4 together, so the bench floor gate
// (bench/bench_floor.json "scale_run") fails on any bit-level divergence,
// not just on slowdowns. Writes BENCH_bench_scale_run.json (override with
// WHOISCRF_BENCH_OUT).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "bench_common.h"
#include "datagen/record_source.h"
#include "datagen/temporal.h"
#include "obs/metrics.h"
#include "survey/scale_run.h"
#include "util/env.h"
#include "util/string_util.h"
#include "whois/record_store.h"
#include "whois/stream_checkpoint.h"
#include "whois/stream_pipeline.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Thrown by the kill-phase checkpoint observer; distinct type so the
// bench cannot accidentally swallow a real pipeline error.
struct InjectedKill : std::runtime_error {
  InjectedKill() : std::runtime_error("injected mid-run kill") {}
};

void RemoveStoreArtifacts(const std::string& prefix) {
  for (const std::string& p : {prefix, prefix + "-quarantine"}) {
    for (size_t s = 0; s < 1000; ++s) {
      const std::string shard = whois::RecordStoreShardPath(p, s);
      const bool had_final = std::remove(shard.c_str()) == 0;
      const bool had_tmp = std::remove((shard + ".tmp").c_str()) == 0;
      if (!had_final && !had_tmp) break;
    }
  }
  std::remove(whois::StreamCheckpointPath(prefix).c_str());
}

// FNV-1a over all sealed shards of a store, streamed in small chunks —
// the byte-identity unit the kill/resume phase compares. Hashing instead
// of materializing keeps the bench's own peak RSS representative of the
// harness (a 50k-record store is tens of MB; the corpus-sized buffers
// would dwarf the bounded-memory pipeline being measured). The byte count
// is folded in so equal hashes of different-length stores cannot pass.
uint64_t HashStoreBytes(const std::string& prefix) {
  uint64_t hash = 14695981039346656037ull;
  uint64_t total_bytes = 0;
  char buf[65536];
  for (size_t s = 0; s < 1000; ++s) {
    std::ifstream is(whois::RecordStoreShardPath(prefix, s),
                     std::ios::binary);
    if (!is) break;
    while (is) {
      is.read(buf, sizeof(buf));
      const std::streamsize n = is.gcount();
      for (std::streamsize i = 0; i < n; ++i) {
        hash ^= static_cast<unsigned char>(buf[i]);
        hash *= 1099511628211ull;
      }
      total_bytes += static_cast<uint64_t>(n);
    }
  }
  return hash ^ total_bytes;
}

int Main() {
  const size_t train_count = util::Scaled(300, 100);
  const size_t count = util::Scaled(50000, 2000);
  const size_t cross_count = util::Scaled(2000, 500);

  PrintHeader("scale_run",
              "paper-scale harness: durability cost + survey bit-identity");

  datagen::TemporalCorpusOptions corpus_options;
  corpus_options.size = count;
  corpus_options.seed = kCorpusSeed;
  const datagen::TemporalCorpusGenerator generator(corpus_options);
  const whois::WhoisParser parser =
      survey::TrainScaleParser(generator, train_count);

  const std::string tmp_prefix =
      util::Format("/tmp/whoiscrf_scale_bench_%d", static_cast<int>(getpid()));
  const std::string fresh_prefix = tmp_prefix + "_fresh";
  const std::string resume_prefix = tmp_prefix + "_resume";

  survey::ScaleRunOptions options;
  options.count = count;
  // ~8 checkpoints per run so the kill lands well inside the stream.
  options.checkpoint_interval =
      std::max<uint64_t>(static_cast<uint64_t>(count) / 8, 16);

  // Phase 1: fresh end-to-end run.
  options.store_prefix = fresh_prefix;
  const survey::ScaleRunResult fresh =
      survey::RunScaleRun(parser, generator, options);
  const std::string fresh_survey = fresh.survey.Serialize();
  const uint64_t fresh_hash = HashStoreBytes(fresh_prefix);

  // Phase 2: the same records through a bare pipeline — no store, no
  // checkpoints, no accumulator. What remains is the parse itself.
  double plain_rps = 0.0;
  {
    const auto start = Clock::now();
    datagen::GeneratedRecordSource source(
        count, [&](uint64_t i) { return generator.Generate(i).thick.text; });
    whois::StreamPipelineOptions pipeline;
    uint64_t records = 0;
    whois::ParseStream(parser, source, pipeline,
                       [&](uint64_t, const std::string&,
                           const whois::ParsedWhois&) { ++records; });
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    plain_rps = seconds > 0.0 ? static_cast<double>(records) / seconds : 0.0;
  }

  // Phase 3: kill the run from its checkpoint observer halfway through,
  // then resume. Durable state must carry the run to the same bytes.
  options.store_prefix = resume_prefix;
  const uint64_t kill_at = static_cast<uint64_t>(count) / 2;
  options.on_checkpoint = [&](const whois::StreamCheckpoint& cp) {
    if (!cp.complete && cp.consumed >= kill_at) throw InjectedKill();
  };
  bool killed = false;
  try {
    (void)survey::RunScaleRun(parser, generator, options);
  } catch (const InjectedKill&) {
    killed = true;
  }
  options.on_checkpoint = nullptr;
  options.resume = true;
  const survey::ScaleRunResult resumed =
      survey::RunScaleRun(parser, generator, options);
  options.resume = false;
  const bool resume_matches =
      killed && resumed.skipped >= kill_at &&
      resumed.survey.Serialize() == fresh_survey &&
      HashStoreBytes(resume_prefix) == fresh_hash;

  // Phase 4: streaming accumulator vs in-memory survey aggregates.
  std::string cross_detail;
  bool cross_matches = false;
  {
    whois::StreamPipelineOptions pipeline;
    cross_matches = survey::CrossCheckSurveyPaths(
        parser, generator, pipeline, cross_count, &cross_detail);
  }

  const bool checksums_match = resume_matches && cross_matches;
  const double durability_overhead_pct =
      plain_rps > 0.0 ? (1.0 - fresh.sustained_rps / plain_rps) * 100.0 : 0.0;
  const double checkpoint_overhead_pct =
      fresh.run_seconds > 0.0
          ? fresh.checkpoint_seconds / fresh.run_seconds * 100.0
          : 0.0;
  const long peak_rss_kb = survey::ScaleRunPeakRssKb();

  std::printf("records: %zu   train: %zu   checkpoints: %llu\n", count,
              train_count, static_cast<unsigned long long>(fresh.checkpoints));
  std::printf("scale-run sustained: %10.0f rec/s\n", fresh.sustained_rps);
  std::printf("plain pipeline:      %10.0f rec/s\n", plain_rps);
  std::printf("durability overhead: %.2f%% rps (checkpoint time %.2f%%)\n",
              durability_overhead_pct, checkpoint_overhead_pct);
  std::printf("kill+resume: %s (skipped %llu past the kill checkpoint)\n",
              resume_matches ? "byte-identical" : "MISMATCH",
              static_cast<unsigned long long>(resumed.skipped));
  if (cross_matches) {
    std::printf("survey cross-check:  identical\n");
  } else {
    std::printf("survey cross-check:  MISMATCH: %s\n", cross_detail.c_str());
  }
  std::printf("peak RSS: %ld KiB\n", peak_rss_kb);

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_bench_scale_run.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"scale_run\",\n";
  os << "  \"records\": " << count << ",\n";
  os << "  \"train_count\": " << train_count << ",\n";
  os << "  \"sustained_rps\": " << fresh.sustained_rps << ",\n";
  os << "  \"plain_rps\": " << plain_rps << ",\n";
  os << "  \"durability_overhead_pct\": " << durability_overhead_pct << ",\n";
  os << "  \"checkpoints\": " << fresh.checkpoints << ",\n";
  os << "  \"checkpoint_seconds\": " << fresh.checkpoint_seconds << ",\n";
  os << "  \"checkpoint_overhead_pct\": " << checkpoint_overhead_pct << ",\n";
  os << "  \"generate_seconds\": " << fresh.generate_seconds << ",\n";
  os << "  \"run_seconds\": " << fresh.run_seconds << ",\n";
  os << "  \"resume_skipped\": " << resumed.skipped << ",\n";
  os << "  \"resume_matches\": " << (resume_matches ? "true" : "false")
     << ",\n";
  os << "  \"cross_check_records\": " << cross_count << ",\n";
  os << "  \"cross_matches\": " << (cross_matches ? "true" : "false")
     << ",\n";
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"peak_rss_kb\": " << peak_rss_kb << ",\n";
  os << "  \"stalls\": {\"reader_s\": " << fresh.stats.reader_stall_seconds
     << ", \"worker_s\": " << fresh.stats.worker_stall_seconds
     << ", \"sink_s\": " << fresh.stats.sink_stall_seconds
     << ", \"batches\": " << fresh.stats.batches << "},\n";
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  RemoveStoreArtifacts(fresh_prefix);
  RemoveStoreArtifacts(resume_prefix);
  return checksums_match ? 0 : 1;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
