// Table 8: top 10 registrant countries of .com domains on the (simulated)
// DBL blacklist, created in 2014 (§6.4).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 8", "registrant countries of DBL domains (2014)");

  const auto db = bench::SharedSurveyDatabase();
  std::printf("\n%s\n",
              bench::RenderTopK(
                  "Country",
                  bench::WithCountryNames(survey::DblTopCountries(db, 10, 2014)))
                  .c_str());
  std::printf(
      "Paper shape: compared with all registrations (Table 3), Japan,\n"
      "China, and Vietnam are much more pronounced among blacklisted\n"
      "domains; European countries recede.\n");
  return 0;
}
