// Table 5: top 10 registrars of .com domains, all-time and 2014 (§6.2).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 5", "top registrars");

  const auto db = bench::SharedSurveyDatabase();

  std::printf("\nRegistrations across all time:\n%s\n",
              bench::RenderTopK("Registrar", survey::TopRegistrars(db, 10))
                  .c_str());
  std::printf("Registrations in 2014:\n%s\n",
              bench::RenderTopK("Registrar",
                                survey::TopRegistrars(db, 10, 2014))
                  .c_str());
  std::printf(
      "Paper shape: GoDaddy ~34%% both columns; eNom and Network Solutions\n"
      "next all-time; Chinese registrars (HiChina, Xinnet) rise into the\n"
      "2014 top 10; top-10 concentration ~66-73%%.\n");
  return 0;
}
