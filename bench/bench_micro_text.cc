// Text hot-path microbenchmarks: bytes/sec of the four scan-heavy kernels
// (record line splitting, separator detection, tokenizer attribute
// extraction, JSON escaping) at every byte-scan tier the machine supports
// (scalar / SWAR / SIMD, pinned with util::scan::ForceMode). The per-tier
// rows show what the dispatch actually buys; the scalar row is the
// portable floor a -DWHOISCRF_DISABLE_SIMD build would see everywhere.
// Writes BENCH_micro_text.json (override the path with WHOISCRF_BENCH_OUT).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.h"
#include "text/line_splitter.h"
#include "text/separator.h"
#include "text/tokenizer.h"
#include "util/byte_scan.h"
#include "util/env.h"
#include "util/json.h"

namespace whoiscrf::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

int BenchPasses() {
  static const int passes = [] {
    const char* e = std::getenv("WHOISCRF_BENCH_PASSES");
    const int n = e != nullptr ? std::atoi(e) : 3;
    return n > 0 ? n : 1;
  }();
  return passes;
}

// Sink that folds every attribute into a checksum so the optimizer cannot
// discard the tokenizer's work.
class ChecksumSink final : public text::AttrSink {
 public:
  void OnAttr(std::string_view attr, bool transition) override {
    for (const char c : attr) sum += static_cast<unsigned char>(c);
    sum += transition ? 1 : 0;
  }
  size_t sum = 0;
};

struct KernelResult {
  std::string kernel;
  std::string mode;
  double bytes_per_sec = 0.0;
  size_t checksum = 0;  // must agree across tiers for the same kernel
};

// Runs `fn` (which scans `bytes` bytes of input and returns a checksum)
// BenchPasses() times and keeps the fastest pass, like the throughput bench:
// the workload is deterministic, so the minimum is the pass least disturbed
// by other tenants of the machine.
template <typename Fn>
KernelResult MeasureKernel(const char* kernel, util::scan::Mode mode,
                           size_t bytes, Fn&& fn) {
  KernelResult r;
  r.kernel = kernel;
  r.mode = std::string(util::scan::ModeName(mode));
  double best = 0.0;
  for (int p = 0; p < BenchPasses(); ++p) {
    const auto start = Clock::now();
    r.checksum = fn();
    const double seconds = SecondsSince(start);
    if (p == 0 || seconds < best) best = seconds;
  }
  r.bytes_per_sec = best > 0.0 ? static_cast<double>(bytes) / best : 0.0;
  return r;
}

int Main() {
  const size_t record_count = util::Scaled(2000, 400);

  PrintHeader("micro_text", "bytes/sec per scan kernel, by byte-scan tier");

  const auto generator = MakeEvalGenerator(record_count);
  std::vector<std::string> records;
  records.reserve(record_count);
  size_t record_bytes = 0;
  for (size_t i = 0; i < record_count; ++i) {
    records.push_back(generator.Generate(i).thick.text);
    record_bytes += records.back().size();
  }

  // The per-line kernels run over the labeled lines of the same records so
  // every tier sees identical, realistic input (titles, values, %% frames).
  std::vector<std::string> lines;
  size_t line_bytes = 0;
  for (const std::string& r : records) {
    for (const text::Line& line : text::SplitRecord(r)) {
      lines.push_back(line.text);
      line_bytes += line.text.size();
    }
  }

  std::vector<util::scan::Mode> modes = {util::scan::Mode::kScalar};
  if (util::scan::BestSupportedMode() >= util::scan::Mode::kSwar) {
    modes.push_back(util::scan::Mode::kSwar);
  }
  if (util::scan::BestSupportedMode() >= util::scan::Mode::kSimd) {
    modes.push_back(util::scan::Mode::kSimd);
  }

  const text::Tokenizer tokenizer;
  std::vector<KernelResult> results;
  for (const util::scan::Mode mode : modes) {
    util::scan::ForceMode(mode);

    std::vector<text::Line> split_out;
    results.push_back(MeasureKernel("split_record", mode, record_bytes, [&] {
      size_t n = 0;
      for (const std::string& r : records) {
        text::SplitRecordInto(r, split_out);
        n += split_out.size();
      }
      return n;
    }));

    results.push_back(MeasureKernel("find_separator", mode, line_bytes, [&] {
      size_t n = 0;
      for (const std::string& line : lines) {
        if (const auto split = text::FindSeparator(line)) {
          n += split->title.size() + split->value.size();
        }
      }
      return n;
    }));

    results.push_back(MeasureKernel("tokenize", mode, line_bytes, [&] {
      ChecksumSink sink;
      text::TokenScratch scratch;
      text::Line line;
      for (size_t i = 0; i < lines.size(); ++i) {
        line.text = lines[i];
        line.index = static_cast<int>(i);
        tokenizer.ExtractTo(line, sink, scratch);
      }
      return sink.sum;
    }));

    results.push_back(MeasureKernel("json_escape", mode, line_bytes, [&] {
      size_t n = 0;
      for (const std::string& line : lines) {
        n += util::JsonWriter::Escape(line).size();
      }
      return n;
    }));
  }
  util::scan::ClearForcedMode();

  std::printf("records: %zu (%.1f MiB)   lines: %zu (%.1f MiB)   tiers:",
              records.size(), static_cast<double>(record_bytes) / (1 << 20),
              lines.size(), static_cast<double>(line_bytes) / (1 << 20));
  for (const util::scan::Mode mode : modes) {
    std::printf(" %s", std::string(util::scan::ModeName(mode)).c_str());
  }
  std::printf("\n\n%-16s %-8s %14s %12s\n", "kernel", "tier", "MiB/s",
              "vs scalar");

  // Per-kernel scalar baselines for the vs-scalar column, and a cross-tier
  // checksum gate: every tier must do exactly the same logical work.
  bool checksums_match = true;
  for (const KernelResult& r : results) {
    double scalar_bps = 0.0;
    for (const KernelResult& s : results) {
      if (s.kernel == r.kernel && s.mode == "scalar") {
        scalar_bps = s.bytes_per_sec;
        checksums_match = checksums_match && s.checksum == r.checksum;
      }
    }
    std::printf("%-16s %-8s %14.1f %11.2fx\n", r.kernel.c_str(),
                r.mode.c_str(), r.bytes_per_sec / (1 << 20),
                scalar_bps > 0.0 ? r.bytes_per_sec / scalar_bps : 0.0);
  }
  if (!checksums_match) {
    std::printf("\nWARNING: kernel checksums differ across tiers\n");
  }

  const char* out_env = std::getenv("WHOISCRF_BENCH_OUT");
  const std::string out_path =
      out_env != nullptr ? out_env : "BENCH_micro_text.json";
  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"bench\": \"micro_text\",\n";
  os << "  \"records\": " << records.size() << ",\n";
  os << "  \"record_bytes\": " << record_bytes << ",\n";
  os << "  \"lines\": " << lines.size() << ",\n";
  os << "  \"line_bytes\": " << line_bytes << ",\n";
  os << "  \"passes\": " << BenchPasses() << ",\n";
  os << "  \"best_supported_mode\": \""
     << util::scan::ModeName(util::scan::BestSupportedMode()) << "\",\n";
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    os << "    {\"kernel\": \"" << results[i].kernel << "\", \"mode\": \""
       << results[i].mode << "\", \"bytes_per_sec\": "
       << results[i].bytes_per_sec << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "  ]\n";
  os << "}\n";
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace whoiscrf::bench

int main() { return whoiscrf::bench::Main(); }
