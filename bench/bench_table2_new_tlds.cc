// Table 2: generalization to new, unseen TLDs — mislabeled lines per sample
// record (# error / total), rule-based vs. statistical (§5.2). One record
// per TLD suffices because each new-TLD registry uses a single template.
#include <cstdio>

#include "baselines/rule_parser.h"
#include "bench_common.h"
#include "util/env.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 2", "parser performance on new TLDs");

  const size_t train_count = util::Scaled(1200, 300);
  // Train both parsers on .com only.
  const auto generator = bench::MakeEvalGenerator(train_count + 16);
  const auto train = bench::TakeRecords(generator, 0, train_count);
  const whois::WhoisParser statistical = bench::TrainParser(train);
  const baselines::RuleBasedParser rules =
      baselines::RuleBasedParser::Build(train);

  std::printf("%-8s %-28s %12s %12s\n", "TLD", "example", "rule-based",
              "statistical");
  int rule_tlds_with_errors = 0;
  int stat_tlds_with_errors = 0;
  for (const std::string& tld : datagen::TemplateLibrary::NewTldNames()) {
    const auto domain = generator.GenerateNewTld(tld, 1);
    const auto rule_labels = rules.LabelLines(domain.thick.text);
    const auto stat_labels = statistical.LabelLines(domain.thick.text);
    size_t rule_errors = 0;
    size_t stat_errors = 0;
    const size_t total = domain.thick.labels.size();
    for (size_t t = 0; t < total; ++t) {
      if (rule_labels[t] != domain.thick.labels[t]) ++rule_errors;
      if (stat_labels[t] != domain.thick.labels[t]) ++stat_errors;
    }
    if (rule_errors > 0) ++rule_tlds_with_errors;
    if (stat_errors > 0) ++stat_tlds_with_errors;
    std::printf("%-8s %-28s %7zu/%-4zu %7zu/%-4zu\n", tld.c_str(),
                domain.facts.domain.c_str(), rule_errors, total, stat_errors,
                total);
  }
  std::printf(
      "\nTLDs with errors: rule-based %d/12 (paper: 10/12), "
      "statistical %d/12 (paper: 4/12)\n",
      rule_tlds_with_errors, stat_tlds_with_errors);
  std::printf(
      "Paper shape: the rule-based parser is never better and often far\n"
      "worse (asia, biz, coop, travel, us); both are clean on info/org.\n");
  return 0;
}
