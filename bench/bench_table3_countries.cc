// Table 3: top 10 countries of domain registrants, across all time and for
// domains created in 2014 (§6.1). Privacy-protected domains are excluded
// because the registrant country cannot be inferred.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 3", "top registrant countries");

  const auto db = bench::SharedSurveyDatabase();

  std::printf("\nRegistrants across all time:\n%s\n",
              bench::RenderTopK(
                  "Country",
                  bench::WithCountryNames(survey::TopCountries(db, 10)))
                  .c_str());
  std::printf("Registrants in 2014:\n%s\n",
              bench::RenderTopK(
                  "Country",
                  bench::WithCountryNames(survey::TopCountries(db, 10, 2014)))
                  .c_str());
  std::printf(
      "Paper shape: US first (~48%% all-time, ~41%% in 2014), China second\n"
      "and sharply rising (9.6%% all-time -> 18.2%% in 2014), then UK and\n"
      "other European countries; a few percent Unknown.\n");
  return 0;
}
