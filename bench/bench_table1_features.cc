// Table 1: the most heavily weighted unigram features (eq. 6 form) per
// first-level label — the "what did the model learn" inspection of §3.4.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "crf/trainer.h"
#include "util/env.h"
#include "whois/training_data.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 1", "heavily weighted features per label");

  const size_t train_count = util::Scaled(1500, 300);
  const auto generator = bench::MakeEvalGenerator(train_count);
  const auto records = bench::TakeRecords(generator, 0, train_count);

  const text::Tokenizer tokenizer;
  const auto instances = whois::ToLevel1Instances(records, tokenizer);
  crf::TrainerOptions options;
  options.l2_sigma = 10.0;
  options.lbfgs.max_iterations = 150;
  crf::TrainStats stats;
  const crf::CrfModel model =
      crf::Trainer(options).Train(whois::Level1Names(), instances, &stats);
  std::printf("model: %zu attributes, %zu features (paper: ~1M), "
              "%d L-BFGS iterations\n\n",
              stats.num_attributes, stats.num_features, stats.iterations);

  for (int label = 0; label < model.num_labels(); ++label) {
    std::vector<std::pair<double, std::string>> ranked;
    for (size_t attr = 0; attr < model.vocab().size(); ++attr) {
      const double w =
          model.weights()[model.UnigramIndex(static_cast<int>(attr), label)];
      ranked.emplace_back(w, model.vocab().Name(static_cast<int>(attr)));
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("%-10s ", model.label_names()[static_cast<size_t>(label)].c_str());
    for (int k = 0; k < 10 && k < static_cast<int>(ranked.size()); ++k) {
      std::printf("%s%s", k ? ", " : "", ranked[static_cast<size_t>(k)].second.c_str());
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape: intuitive associations dominate — registrant@T for\n"
      "registrant, registrar@T/SEP for registrar, date words for date,\n"
      "legalese/SYM for null — plus discovered non-obvious ones.\n");
  return 0;
}
