// Figure 4: (a) histogram of domain creation dates by year; (b) per-year
// country / privacy-protection composition (§6.1).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Figure 4",
                     "creation-date histogram and country proportions");

  const auto db = bench::SharedSurveyDatabase();

  // (a) Histogram, rendered as an ASCII bar chart.
  const auto hist = survey::CreationHistogram(db);
  size_t max_count = 1;
  for (const auto& [year, count] : hist) max_count = std::max(max_count, count);
  std::printf("\n(a) domains by creation year\n");
  for (const auto& [year, count] : hist) {
    const int bar = static_cast<int>(
        60.0 * static_cast<double>(count) / static_cast<double>(max_count));
    std::printf("%4d %8zu |%.*s\n", year, count, bar,
                "############################################################");
  }

  // (b) Composition per year, same series as the paper's stacked plot.
  const std::vector<std::string> countries = {"US", "CN", "GB", "FR", "DE"};
  std::printf("\n(b) per-year composition (fractions)\n");
  std::printf("%4s %8s %7s %7s %7s %7s %7s %7s %7s %7s\n", "year", "total",
              "Private", "Unknown", "Other", "US", "CN", "GB", "FR", "DE");
  for (const auto& comp :
       survey::CountryProportionsByYear(db, countries, 1995, 2014)) {
    std::printf("%4d %8zu %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f %7.3f\n",
                comp.year, comp.total, comp.shares.at("Private"),
                comp.shares.at("Unknown"), comp.shares.at("Other"),
                comp.shares.at("US"), comp.shares.at("CN"),
                comp.shares.at("GB"), comp.shares.at("FR"),
                comp.shares.at("DE"));
  }
  std::printf(
      "\nPaper shape: registrations grow dramatically with an increasing\n"
      "rate; privacy protection rises over time and passes 20%% in 2014;\n"
      "the US share of new registrations declines while China's grows.\n");
  return 0;
}
