// Figure 5: top 3 registrant countries for selected registrars (§6.2).
#include <cstdio>

#include "bench_common.h"
#include "datagen/country_data.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Figure 5", "top registrant countries per registrar");

  const auto db = bench::SharedSurveyDatabase();
  const std::vector<std::string> registrars = {"eNom", "HiChina",
                                               "GMO Internet", "Melbourne IT"};
  for (const auto& registrar : registrars) {
    const auto result = survey::RegistrarCountryBreakdown(db, registrar, 3);
    std::printf("\n%-13s (n=%zu, unknown country: %.1f%%)\n",
                registrar.c_str(), result.total,
                result.total == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(result.unknown_count) /
                          static_cast<double>(result.total));
    for (const auto& row : result.top) {
      std::printf("   %-4s %-16s %5.1f%%\n", row.key.c_str(),
                  std::string(datagen::CountryDisplayName(row.key)).c_str(),
                  100.0 * row.share);
    }
  }
  std::printf(
      "\nPaper shape: eNom is US/GB/CA; HiChina is dominated by China with\n"
      "a large missing-country share; GMO is primarily Japanese; Melbourne\n"
      "IT, though Australian, is led by US customers, then AU and JP.\n");
  return 0;
}
