// Table 4: well-known brand companies with the most .com domains (§6.1),
// found by aggregating the parsed registrant-organization field.
#include <cstdio>

#include "bench_common.h"
#include "datagen/pools.h"
#include "util/string_util.h"
#include "util/table.h"

int main() {
  using namespace whoiscrf;
  bench::PrintHeader("Table 4", "brand companies with the most com domains");

  const auto db = bench::SharedSurveyDatabase();

  std::vector<std::string> brands;
  for (const auto& brand : datagen::pools::Brands()) {
    brands.emplace_back(brand.company);
  }
  const auto counts = survey::BrandCounts(db, brands);

  util::TextTable table({"Company", "Domains", "Paper"});
  for (const auto& row : counts) {
    int paper = 0;
    for (const auto& brand : datagen::pools::Brands()) {
      if (row.key == brand.company) paper = brand.paper_domains;
    }
    table.AddRow({row.key, util::WithCommas(static_cast<long long>(row.count)),
                  util::WithCommas(paper)});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "Paper shape: Amazon/AOL/Microsoft lead; large retail, service, and\n"
      "media companies dominate. Counts scale with the synthetic corpus\n"
      "(the paper's column is shown for rank comparison).\n");
  return 0;
}
