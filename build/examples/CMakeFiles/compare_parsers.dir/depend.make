# Empty dependencies file for compare_parsers.
# This may be replaced when dependencies are built.
