file(REMOVE_RECURSE
  "CMakeFiles/compare_parsers.dir/compare_parsers.cpp.o"
  "CMakeFiles/compare_parsers.dir/compare_parsers.cpp.o.d"
  "compare_parsers"
  "compare_parsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
