# Empty dependencies file for crawl_simulation.
# This may be replaced when dependencies are built.
