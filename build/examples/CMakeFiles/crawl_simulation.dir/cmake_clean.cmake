file(REMOVE_RECURSE
  "CMakeFiles/crawl_simulation.dir/crawl_simulation.cpp.o"
  "CMakeFiles/crawl_simulation.dir/crawl_simulation.cpp.o.d"
  "crawl_simulation"
  "crawl_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crawl_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
