file(REMOVE_RECURSE
  "CMakeFiles/survey_com.dir/survey_com.cpp.o"
  "CMakeFiles/survey_com.dir/survey_com.cpp.o.d"
  "survey_com"
  "survey_com.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_com.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
