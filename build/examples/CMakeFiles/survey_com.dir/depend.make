# Empty dependencies file for survey_com.
# This may be replaced when dependencies are built.
