# Empty compiler generated dependencies file for adapt_new_tld.
# This may be replaced when dependencies are built.
