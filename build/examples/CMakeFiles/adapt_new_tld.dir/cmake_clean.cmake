file(REMOVE_RECURSE
  "CMakeFiles/adapt_new_tld.dir/adapt_new_tld.cpp.o"
  "CMakeFiles/adapt_new_tld.dir/adapt_new_tld.cpp.o.d"
  "adapt_new_tld"
  "adapt_new_tld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapt_new_tld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
