file(REMOVE_RECURSE
  "CMakeFiles/active_learning_loop.dir/active_learning_loop.cpp.o"
  "CMakeFiles/active_learning_loop.dir/active_learning_loop.cpp.o.d"
  "active_learning_loop"
  "active_learning_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_learning_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
