# Empty compiler generated dependencies file for active_learning_loop.
# This may be replaced when dependencies are built.
