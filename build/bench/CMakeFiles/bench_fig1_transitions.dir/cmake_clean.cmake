file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_transitions.dir/bench_fig1_transitions.cc.o"
  "CMakeFiles/bench_fig1_transitions.dir/bench_fig1_transitions.cc.o.d"
  "bench_fig1_transitions"
  "bench_fig1_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
