file(REMOVE_RECURSE
  "CMakeFiles/bench_decoding_comparison.dir/bench_decoding_comparison.cc.o"
  "CMakeFiles/bench_decoding_comparison.dir/bench_decoding_comparison.cc.o.d"
  "bench_decoding_comparison"
  "bench_decoding_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoding_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
