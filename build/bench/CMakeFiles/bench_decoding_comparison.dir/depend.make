# Empty dependencies file for bench_decoding_comparison.
# This may be replaced when dependencies are built.
