file(REMOVE_RECURSE
  "../lib/libwhoiscrf_bench_common.a"
  "../lib/libwhoiscrf_bench_common.pdb"
  "CMakeFiles/whoiscrf_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/whoiscrf_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
