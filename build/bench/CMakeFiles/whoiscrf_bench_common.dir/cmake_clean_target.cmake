file(REMOVE_RECURSE
  "../lib/libwhoiscrf_bench_common.a"
)
