# Empty dependencies file for whoiscrf_bench_common.
# This may be replaced when dependencies are built.
