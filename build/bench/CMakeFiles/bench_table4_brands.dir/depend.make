# Empty dependencies file for bench_table4_brands.
# This may be replaced when dependencies are built.
