file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_brands.dir/bench_table4_brands.cc.o"
  "CMakeFiles/bench_table4_brands.dir/bench_table4_brands.cc.o.d"
  "bench_table4_brands"
  "bench_table4_brands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_brands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
