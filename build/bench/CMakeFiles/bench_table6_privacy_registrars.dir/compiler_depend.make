# Empty compiler generated dependencies file for bench_table6_privacy_registrars.
# This may be replaced when dependencies are built.
