file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_privacy_registrars.dir/bench_table6_privacy_registrars.cc.o"
  "CMakeFiles/bench_table6_privacy_registrars.dir/bench_table6_privacy_registrars.cc.o.d"
  "bench_table6_privacy_registrars"
  "bench_table6_privacy_registrars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_privacy_registrars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
