file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_dbl_registrars.dir/bench_table9_dbl_registrars.cc.o"
  "CMakeFiles/bench_table9_dbl_registrars.dir/bench_table9_dbl_registrars.cc.o.d"
  "bench_table9_dbl_registrars"
  "bench_table9_dbl_registrars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_dbl_registrars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
