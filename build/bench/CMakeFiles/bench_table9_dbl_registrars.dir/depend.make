# Empty dependencies file for bench_table9_dbl_registrars.
# This may be replaced when dependencies are built.
