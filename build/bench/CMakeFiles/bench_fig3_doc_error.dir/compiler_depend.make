# Empty compiler generated dependencies file for bench_fig3_doc_error.
# This may be replaced when dependencies are built.
