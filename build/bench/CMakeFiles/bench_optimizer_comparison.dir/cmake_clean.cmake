file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_comparison.dir/bench_optimizer_comparison.cc.o"
  "CMakeFiles/bench_optimizer_comparison.dir/bench_optimizer_comparison.cc.o.d"
  "bench_optimizer_comparison"
  "bench_optimizer_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
