# Empty compiler generated dependencies file for bench_optimizer_comparison.
# This may be replaced when dependencies are built.
