# Empty compiler generated dependencies file for bench_micro_crf.
# This may be replaced when dependencies are built.
