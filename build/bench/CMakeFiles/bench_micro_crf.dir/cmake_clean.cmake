file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_crf.dir/bench_micro_crf.cc.o"
  "CMakeFiles/bench_micro_crf.dir/bench_micro_crf.cc.o.d"
  "bench_micro_crf"
  "bench_micro_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
