# Empty compiler generated dependencies file for bench_table8_dbl_countries.
# This may be replaced when dependencies are built.
