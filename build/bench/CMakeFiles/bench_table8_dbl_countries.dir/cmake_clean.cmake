file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_dbl_countries.dir/bench_table8_dbl_countries.cc.o"
  "CMakeFiles/bench_table8_dbl_countries.dir/bench_table8_dbl_countries.cc.o.d"
  "bench_table8_dbl_countries"
  "bench_table8_dbl_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_dbl_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
