# Empty dependencies file for bench_fig4_creation_dates.
# This may be replaced when dependencies are built.
