file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_creation_dates.dir/bench_fig4_creation_dates.cc.o"
  "CMakeFiles/bench_fig4_creation_dates.dir/bench_fig4_creation_dates.cc.o.d"
  "bench_fig4_creation_dates"
  "bench_fig4_creation_dates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_creation_dates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
