# Empty dependencies file for bench_baseline_coverage.
# This may be replaced when dependencies are built.
