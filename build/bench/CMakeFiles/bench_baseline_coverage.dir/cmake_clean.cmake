file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_coverage.dir/bench_baseline_coverage.cc.o"
  "CMakeFiles/bench_baseline_coverage.dir/bench_baseline_coverage.cc.o.d"
  "bench_baseline_coverage"
  "bench_baseline_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
