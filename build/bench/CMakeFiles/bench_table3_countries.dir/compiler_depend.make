# Empty compiler generated dependencies file for bench_table3_countries.
# This may be replaced when dependencies are built.
