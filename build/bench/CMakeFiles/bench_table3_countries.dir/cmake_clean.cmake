file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_countries.dir/bench_table3_countries.cc.o"
  "CMakeFiles/bench_table3_countries.dir/bench_table3_countries.cc.o.d"
  "bench_table3_countries"
  "bench_table3_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
