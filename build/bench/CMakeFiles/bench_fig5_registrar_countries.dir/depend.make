# Empty dependencies file for bench_fig5_registrar_countries.
# This may be replaced when dependencies are built.
