file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_registrar_countries.dir/bench_fig5_registrar_countries.cc.o"
  "CMakeFiles/bench_fig5_registrar_countries.dir/bench_fig5_registrar_countries.cc.o.d"
  "bench_fig5_registrar_countries"
  "bench_fig5_registrar_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_registrar_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
