file(REMOVE_RECURSE
  "CMakeFiles/bench_level2_fields.dir/bench_level2_fields.cc.o"
  "CMakeFiles/bench_level2_fields.dir/bench_level2_fields.cc.o.d"
  "bench_level2_fields"
  "bench_level2_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_level2_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
