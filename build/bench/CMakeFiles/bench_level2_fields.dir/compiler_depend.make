# Empty compiler generated dependencies file for bench_level2_fields.
# This may be replaced when dependencies are built.
