# Empty dependencies file for bench_table2_new_tlds.
# This may be replaced when dependencies are built.
