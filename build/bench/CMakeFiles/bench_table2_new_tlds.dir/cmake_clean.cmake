file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_new_tlds.dir/bench_table2_new_tlds.cc.o"
  "CMakeFiles/bench_table2_new_tlds.dir/bench_table2_new_tlds.cc.o.d"
  "bench_table2_new_tlds"
  "bench_table2_new_tlds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_new_tlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
