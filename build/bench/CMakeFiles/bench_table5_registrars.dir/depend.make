# Empty dependencies file for bench_table5_registrars.
# This may be replaced when dependencies are built.
