# Empty dependencies file for bench_fig2_line_error.
# This may be replaced when dependencies are built.
