
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig2_line_error.cc" "bench/CMakeFiles/bench_fig2_line_error.dir/bench_fig2_line_error.cc.o" "gcc" "bench/CMakeFiles/bench_fig2_line_error.dir/bench_fig2_line_error.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/whoiscrf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/whoiscrf_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/whoiscrf_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/whoiscrf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/whoiscrf_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
