# Empty compiler generated dependencies file for bench_table7_privacy_services.
# This may be replaced when dependencies are built.
