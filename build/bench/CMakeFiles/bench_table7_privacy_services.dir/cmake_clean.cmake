file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_privacy_services.dir/bench_table7_privacy_services.cc.o"
  "CMakeFiles/bench_table7_privacy_services.dir/bench_table7_privacy_services.cc.o.d"
  "bench_table7_privacy_services"
  "bench_table7_privacy_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_privacy_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
