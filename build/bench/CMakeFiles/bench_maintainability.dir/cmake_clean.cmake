file(REMOVE_RECURSE
  "CMakeFiles/bench_maintainability.dir/bench_maintainability.cc.o"
  "CMakeFiles/bench_maintainability.dir/bench_maintainability.cc.o.d"
  "bench_maintainability"
  "bench_maintainability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maintainability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
