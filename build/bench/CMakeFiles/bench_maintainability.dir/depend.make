# Empty dependencies file for bench_maintainability.
# This may be replaced when dependencies are built.
