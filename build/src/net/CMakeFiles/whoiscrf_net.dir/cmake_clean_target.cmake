file(REMOVE_RECURSE
  "libwhoiscrf_net.a"
)
