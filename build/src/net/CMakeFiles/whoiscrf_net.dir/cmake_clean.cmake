file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_net.dir/crawler.cc.o"
  "CMakeFiles/whoiscrf_net.dir/crawler.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/flaky.cc.o"
  "CMakeFiles/whoiscrf_net.dir/flaky.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/rate_limiter.cc.o"
  "CMakeFiles/whoiscrf_net.dir/rate_limiter.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/simulation.cc.o"
  "CMakeFiles/whoiscrf_net.dir/simulation.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/tcp.cc.o"
  "CMakeFiles/whoiscrf_net.dir/tcp.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/transport.cc.o"
  "CMakeFiles/whoiscrf_net.dir/transport.cc.o.d"
  "CMakeFiles/whoiscrf_net.dir/whois_server.cc.o"
  "CMakeFiles/whoiscrf_net.dir/whois_server.cc.o.d"
  "libwhoiscrf_net.a"
  "libwhoiscrf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
