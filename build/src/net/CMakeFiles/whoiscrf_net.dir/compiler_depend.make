# Empty compiler generated dependencies file for whoiscrf_net.
# This may be replaced when dependencies are built.
