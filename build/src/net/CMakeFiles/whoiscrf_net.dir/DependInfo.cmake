
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/crawler.cc" "src/net/CMakeFiles/whoiscrf_net.dir/crawler.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/crawler.cc.o.d"
  "/root/repo/src/net/flaky.cc" "src/net/CMakeFiles/whoiscrf_net.dir/flaky.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/flaky.cc.o.d"
  "/root/repo/src/net/rate_limiter.cc" "src/net/CMakeFiles/whoiscrf_net.dir/rate_limiter.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/rate_limiter.cc.o.d"
  "/root/repo/src/net/simulation.cc" "src/net/CMakeFiles/whoiscrf_net.dir/simulation.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/simulation.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/whoiscrf_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/transport.cc" "src/net/CMakeFiles/whoiscrf_net.dir/transport.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/transport.cc.o.d"
  "/root/repo/src/net/whois_server.cc" "src/net/CMakeFiles/whoiscrf_net.dir/whois_server.cc.o" "gcc" "src/net/CMakeFiles/whoiscrf_net.dir/whois_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datagen/CMakeFiles/whoiscrf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/whoiscrf_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
