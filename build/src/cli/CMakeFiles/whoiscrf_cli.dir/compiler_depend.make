# Empty compiler generated dependencies file for whoiscrf_cli.
# This may be replaced when dependencies are built.
