file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_cli.dir/cli_main.cc.o"
  "CMakeFiles/whoiscrf_cli.dir/cli_main.cc.o.d"
  "whoiscrf"
  "whoiscrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
