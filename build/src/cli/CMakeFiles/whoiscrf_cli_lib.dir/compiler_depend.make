# Empty compiler generated dependencies file for whoiscrf_cli_lib.
# This may be replaced when dependencies are built.
