file(REMOVE_RECURSE
  "libwhoiscrf_cli_lib.a"
)
