file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_adapt.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_adapt.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_crawl.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_crawl.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_eval.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_eval.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_gen.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_gen.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_parse.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_parse.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_select.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_select.cc.o.d"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_train.cc.o"
  "CMakeFiles/whoiscrf_cli_lib.dir/cmd_train.cc.o.d"
  "libwhoiscrf_cli_lib.a"
  "libwhoiscrf_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
