
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/cmd_adapt.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_adapt.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_adapt.cc.o.d"
  "/root/repo/src/cli/cmd_crawl.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_crawl.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_crawl.cc.o.d"
  "/root/repo/src/cli/cmd_eval.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_eval.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_eval.cc.o.d"
  "/root/repo/src/cli/cmd_gen.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_gen.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_gen.cc.o.d"
  "/root/repo/src/cli/cmd_parse.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_parse.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_parse.cc.o.d"
  "/root/repo/src/cli/cmd_select.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_select.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_select.cc.o.d"
  "/root/repo/src/cli/cmd_train.cc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_train.cc.o" "gcc" "src/cli/CMakeFiles/whoiscrf_cli_lib.dir/cmd_train.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/whoiscrf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/whoiscrf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/whoiscrf_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
