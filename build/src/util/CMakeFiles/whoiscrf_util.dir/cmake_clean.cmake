file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_util.dir/env.cc.o"
  "CMakeFiles/whoiscrf_util.dir/env.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/flags.cc.o"
  "CMakeFiles/whoiscrf_util.dir/flags.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/json.cc.o"
  "CMakeFiles/whoiscrf_util.dir/json.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/logging.cc.o"
  "CMakeFiles/whoiscrf_util.dir/logging.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/random.cc.o"
  "CMakeFiles/whoiscrf_util.dir/random.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/string_util.cc.o"
  "CMakeFiles/whoiscrf_util.dir/string_util.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/table.cc.o"
  "CMakeFiles/whoiscrf_util.dir/table.cc.o.d"
  "CMakeFiles/whoiscrf_util.dir/thread_pool.cc.o"
  "CMakeFiles/whoiscrf_util.dir/thread_pool.cc.o.d"
  "libwhoiscrf_util.a"
  "libwhoiscrf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
