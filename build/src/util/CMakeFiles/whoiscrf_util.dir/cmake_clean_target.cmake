file(REMOVE_RECURSE
  "libwhoiscrf_util.a"
)
