# Empty compiler generated dependencies file for whoiscrf_util.
# This may be replaced when dependencies are built.
