
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/whois/active_learning.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/active_learning.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/active_learning.cc.o.d"
  "/root/repo/src/whois/json_export.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/json_export.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/json_export.cc.o.d"
  "/root/repo/src/whois/labels.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/labels.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/labels.cc.o.d"
  "/root/repo/src/whois/record.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/record.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/record.cc.o.d"
  "/root/repo/src/whois/training_data.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/training_data.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/training_data.cc.o.d"
  "/root/repo/src/whois/whois_parser.cc" "src/whois/CMakeFiles/whoiscrf_whois.dir/whois_parser.cc.o" "gcc" "src/whois/CMakeFiles/whoiscrf_whois.dir/whois_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
