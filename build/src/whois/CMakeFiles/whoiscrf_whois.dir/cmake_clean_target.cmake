file(REMOVE_RECURSE
  "libwhoiscrf_whois.a"
)
