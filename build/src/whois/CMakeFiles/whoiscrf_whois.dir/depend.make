# Empty dependencies file for whoiscrf_whois.
# This may be replaced when dependencies are built.
