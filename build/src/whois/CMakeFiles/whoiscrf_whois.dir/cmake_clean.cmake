file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_whois.dir/active_learning.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/active_learning.cc.o.d"
  "CMakeFiles/whoiscrf_whois.dir/json_export.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/json_export.cc.o.d"
  "CMakeFiles/whoiscrf_whois.dir/labels.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/labels.cc.o.d"
  "CMakeFiles/whoiscrf_whois.dir/record.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/record.cc.o.d"
  "CMakeFiles/whoiscrf_whois.dir/training_data.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/training_data.cc.o.d"
  "CMakeFiles/whoiscrf_whois.dir/whois_parser.cc.o"
  "CMakeFiles/whoiscrf_whois.dir/whois_parser.cc.o.d"
  "libwhoiscrf_whois.a"
  "libwhoiscrf_whois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_whois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
