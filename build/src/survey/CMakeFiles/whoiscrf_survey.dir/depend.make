# Empty dependencies file for whoiscrf_survey.
# This may be replaced when dependencies are built.
