file(REMOVE_RECURSE
  "libwhoiscrf_survey.a"
)
