file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_survey.dir/aggregates.cc.o"
  "CMakeFiles/whoiscrf_survey.dir/aggregates.cc.o.d"
  "CMakeFiles/whoiscrf_survey.dir/build.cc.o"
  "CMakeFiles/whoiscrf_survey.dir/build.cc.o.d"
  "CMakeFiles/whoiscrf_survey.dir/database.cc.o"
  "CMakeFiles/whoiscrf_survey.dir/database.cc.o.d"
  "libwhoiscrf_survey.a"
  "libwhoiscrf_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
