# CMake generated Testfile for 
# Source directory: /root/repo/src/survey
# Build directory: /root/repo/build/src/survey
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
