
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/line_splitter.cc" "src/text/CMakeFiles/whoiscrf_text.dir/line_splitter.cc.o" "gcc" "src/text/CMakeFiles/whoiscrf_text.dir/line_splitter.cc.o.d"
  "/root/repo/src/text/separator.cc" "src/text/CMakeFiles/whoiscrf_text.dir/separator.cc.o" "gcc" "src/text/CMakeFiles/whoiscrf_text.dir/separator.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/whoiscrf_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/whoiscrf_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/text/CMakeFiles/whoiscrf_text.dir/vocabulary.cc.o" "gcc" "src/text/CMakeFiles/whoiscrf_text.dir/vocabulary.cc.o.d"
  "/root/repo/src/text/word_classes.cc" "src/text/CMakeFiles/whoiscrf_text.dir/word_classes.cc.o" "gcc" "src/text/CMakeFiles/whoiscrf_text.dir/word_classes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
