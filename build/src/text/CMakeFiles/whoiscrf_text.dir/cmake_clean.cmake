file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_text.dir/line_splitter.cc.o"
  "CMakeFiles/whoiscrf_text.dir/line_splitter.cc.o.d"
  "CMakeFiles/whoiscrf_text.dir/separator.cc.o"
  "CMakeFiles/whoiscrf_text.dir/separator.cc.o.d"
  "CMakeFiles/whoiscrf_text.dir/tokenizer.cc.o"
  "CMakeFiles/whoiscrf_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/whoiscrf_text.dir/vocabulary.cc.o"
  "CMakeFiles/whoiscrf_text.dir/vocabulary.cc.o.d"
  "CMakeFiles/whoiscrf_text.dir/word_classes.cc.o"
  "CMakeFiles/whoiscrf_text.dir/word_classes.cc.o.d"
  "libwhoiscrf_text.a"
  "libwhoiscrf_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
