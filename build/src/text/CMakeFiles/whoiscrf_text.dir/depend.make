# Empty dependencies file for whoiscrf_text.
# This may be replaced when dependencies are built.
