file(REMOVE_RECURSE
  "libwhoiscrf_text.a"
)
