file(REMOVE_RECURSE
  "libwhoiscrf_datagen.a"
)
