file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_datagen.dir/corpus_gen.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/corpus_gen.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/country_data.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/country_data.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/entity_gen.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/entity_gen.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/new_tld_templates.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/new_tld_templates.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/pools.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/pools.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/privacy.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/privacy.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/registrar_profiles.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/registrar_profiles.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/template_engine.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/template_engine.cc.o.d"
  "CMakeFiles/whoiscrf_datagen.dir/template_library.cc.o"
  "CMakeFiles/whoiscrf_datagen.dir/template_library.cc.o.d"
  "libwhoiscrf_datagen.a"
  "libwhoiscrf_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
