# Empty compiler generated dependencies file for whoiscrf_datagen.
# This may be replaced when dependencies are built.
