
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/corpus_gen.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/corpus_gen.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/corpus_gen.cc.o.d"
  "/root/repo/src/datagen/country_data.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/country_data.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/country_data.cc.o.d"
  "/root/repo/src/datagen/entity_gen.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/entity_gen.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/entity_gen.cc.o.d"
  "/root/repo/src/datagen/new_tld_templates.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/new_tld_templates.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/new_tld_templates.cc.o.d"
  "/root/repo/src/datagen/pools.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/pools.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/pools.cc.o.d"
  "/root/repo/src/datagen/privacy.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/privacy.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/privacy.cc.o.d"
  "/root/repo/src/datagen/registrar_profiles.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/registrar_profiles.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/registrar_profiles.cc.o.d"
  "/root/repo/src/datagen/template_engine.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/template_engine.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/template_engine.cc.o.d"
  "/root/repo/src/datagen/template_library.cc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/template_library.cc.o" "gcc" "src/datagen/CMakeFiles/whoiscrf_datagen.dir/template_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/whois/CMakeFiles/whoiscrf_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
