file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_crf.dir/evaluation.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/evaluation.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/inference.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/inference.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/lbfgs.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/lbfgs.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/likelihood.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/likelihood.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/model.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/model.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/sgd.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/sgd.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/tagger.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/tagger.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/trainer.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/trainer.cc.o.d"
  "CMakeFiles/whoiscrf_crf.dir/viterbi.cc.o"
  "CMakeFiles/whoiscrf_crf.dir/viterbi.cc.o.d"
  "libwhoiscrf_crf.a"
  "libwhoiscrf_crf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_crf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
