# Empty compiler generated dependencies file for whoiscrf_crf.
# This may be replaced when dependencies are built.
