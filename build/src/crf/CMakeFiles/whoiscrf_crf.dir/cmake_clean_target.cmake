file(REMOVE_RECURSE
  "libwhoiscrf_crf.a"
)
