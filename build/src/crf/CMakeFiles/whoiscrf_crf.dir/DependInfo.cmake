
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crf/evaluation.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/evaluation.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/evaluation.cc.o.d"
  "/root/repo/src/crf/inference.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/inference.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/inference.cc.o.d"
  "/root/repo/src/crf/lbfgs.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/lbfgs.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/lbfgs.cc.o.d"
  "/root/repo/src/crf/likelihood.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/likelihood.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/likelihood.cc.o.d"
  "/root/repo/src/crf/model.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/model.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/model.cc.o.d"
  "/root/repo/src/crf/sgd.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/sgd.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/sgd.cc.o.d"
  "/root/repo/src/crf/tagger.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/tagger.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/tagger.cc.o.d"
  "/root/repo/src/crf/trainer.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/trainer.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/trainer.cc.o.d"
  "/root/repo/src/crf/viterbi.cc" "src/crf/CMakeFiles/whoiscrf_crf.dir/viterbi.cc.o" "gcc" "src/crf/CMakeFiles/whoiscrf_crf.dir/viterbi.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
