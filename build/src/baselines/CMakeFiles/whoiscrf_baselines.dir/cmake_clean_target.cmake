file(REMOVE_RECURSE
  "libwhoiscrf_baselines.a"
)
