file(REMOVE_RECURSE
  "CMakeFiles/whoiscrf_baselines.dir/rule_parser.cc.o"
  "CMakeFiles/whoiscrf_baselines.dir/rule_parser.cc.o.d"
  "CMakeFiles/whoiscrf_baselines.dir/template_parser.cc.o"
  "CMakeFiles/whoiscrf_baselines.dir/template_parser.cc.o.d"
  "libwhoiscrf_baselines.a"
  "libwhoiscrf_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whoiscrf_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
