# Empty dependencies file for whoiscrf_baselines.
# This may be replaced when dependencies are built.
