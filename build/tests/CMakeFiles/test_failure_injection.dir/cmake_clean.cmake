file(REMOVE_RECURSE
  "CMakeFiles/test_failure_injection.dir/test_failure_injection.cc.o"
  "CMakeFiles/test_failure_injection.dir/test_failure_injection.cc.o.d"
  "test_failure_injection"
  "test_failure_injection.pdb"
  "test_failure_injection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
