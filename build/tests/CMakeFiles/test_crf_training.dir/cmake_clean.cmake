file(REMOVE_RECURSE
  "CMakeFiles/test_crf_training.dir/test_crf_training.cc.o"
  "CMakeFiles/test_crf_training.dir/test_crf_training.cc.o.d"
  "test_crf_training"
  "test_crf_training.pdb"
  "test_crf_training[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crf_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
