# Empty compiler generated dependencies file for test_crf_training.
# This may be replaced when dependencies are built.
