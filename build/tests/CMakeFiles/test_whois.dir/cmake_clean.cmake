file(REMOVE_RECURSE
  "CMakeFiles/test_whois.dir/test_whois.cc.o"
  "CMakeFiles/test_whois.dir/test_whois.cc.o.d"
  "test_whois"
  "test_whois.pdb"
  "test_whois[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_whois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
