# Empty compiler generated dependencies file for test_whois.
# This may be replaced when dependencies are built.
