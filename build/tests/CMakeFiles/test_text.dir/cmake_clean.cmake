file(REMOVE_RECURSE
  "CMakeFiles/test_text.dir/test_text.cc.o"
  "CMakeFiles/test_text.dir/test_text.cc.o.d"
  "test_text"
  "test_text.pdb"
  "test_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
