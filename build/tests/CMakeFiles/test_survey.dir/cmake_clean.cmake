file(REMOVE_RECURSE
  "CMakeFiles/test_survey.dir/test_survey.cc.o"
  "CMakeFiles/test_survey.dir/test_survey.cc.o.d"
  "test_survey"
  "test_survey.pdb"
  "test_survey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
