# Empty dependencies file for test_survey.
# This may be replaced when dependencies are built.
