# Empty dependencies file for test_crf_inference.
# This may be replaced when dependencies are built.
