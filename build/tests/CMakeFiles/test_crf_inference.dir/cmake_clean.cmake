file(REMOVE_RECURSE
  "CMakeFiles/test_crf_inference.dir/test_crf_inference.cc.o"
  "CMakeFiles/test_crf_inference.dir/test_crf_inference.cc.o.d"
  "test_crf_inference"
  "test_crf_inference.pdb"
  "test_crf_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crf_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
