# Empty compiler generated dependencies file for test_active_learning.
# This may be replaced when dependencies are built.
