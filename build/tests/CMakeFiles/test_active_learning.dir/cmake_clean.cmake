file(REMOVE_RECURSE
  "CMakeFiles/test_active_learning.dir/test_active_learning.cc.o"
  "CMakeFiles/test_active_learning.dir/test_active_learning.cc.o.d"
  "test_active_learning"
  "test_active_learning.pdb"
  "test_active_learning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_active_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
