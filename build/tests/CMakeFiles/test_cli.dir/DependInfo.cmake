
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cli.cc" "tests/CMakeFiles/test_cli.dir/test_cli.cc.o" "gcc" "tests/CMakeFiles/test_cli.dir/test_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/whoiscrf_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/whoiscrf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/whoiscrf_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/whois/CMakeFiles/whoiscrf_whois.dir/DependInfo.cmake"
  "/root/repo/build/src/crf/CMakeFiles/whoiscrf_crf.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/whoiscrf_text.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/whoiscrf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
