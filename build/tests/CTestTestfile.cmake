# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_crf_inference[1]_include.cmake")
include("/root/repo/build/tests/test_crf_training[1]_include.cmake")
include("/root/repo/build/tests/test_whois[1]_include.cmake")
include("/root/repo/build/tests/test_datagen[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_survey[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_active_learning[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_failure_injection[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
