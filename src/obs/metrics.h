// Process-wide metrics registry: monotonic counters, gauges, and
// fixed-bucket latency histograms, exportable as Prometheus text or as the
// JSON run report (docs/observability.md is the authoritative contract —
// every metric registered anywhere in src/ or bench/ must be documented
// there; scripts/check_metrics_docs.py enforces this in CTest).
//
// Hot-path cost model: Counter::Inc is one relaxed atomic add on a
// per-thread cache-line-padded shard, so the parse/crawl fast paths pay no
// shared-line contention. Histogram::Observe is a bucket binary search plus
// two relaxed adds. Registration (GetCounter & co) takes a mutex and may
// allocate — do it once at construction time and hold the pointer, never
// per event. Returned pointers stay valid for the registry's lifetime.
//
// Naming convention (enforced by the docs cross-check): every metric is
// `whoiscrf_<area>_<what>[_<unit>][_total]`, lower_snake_case, with the
// unit spelled out (`_seconds`, `_ms`, `_us`). Dynamic dimensions (server
// names, statuses) go in labels, never in the metric name, so the name set
// stays closed and documentable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace whoiscrf::util {
class JsonWriter;
}  // namespace whoiscrf::util

namespace whoiscrf::obs {

// Label set for one metric instance, e.g. {{"status", "ok"}}. Order given
// by the caller is irrelevant; the registry keys instances by the sorted
// set.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonic counter, sharded per thread: each thread adds to its own
// cache-line-padded slot, so concurrent increments never bounce a line.
// Value() sums the shards (approximate only in the sense that it may miss
// adds that race with the read — it never double-counts).
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Inc(uint64_t n = 1) noexcept {
    shards_[ThreadShard()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const noexcept {
    uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

 private:
  friend class Registry;
  Counter() = default;

  // Stable per-thread shard slot; threads are striped round-robin.
  static size_t ThreadShard() noexcept;

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_;
};

// Point-in-time value; Set overwrites, Add accumulates (CAS loop, so Add
// from multiple threads never loses an update).
class Gauge {
 public:
  void Set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  void Add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram with Prometheus `le` semantics: bucket i counts
// observations with value <= bounds[i]; one implicit +Inf bucket catches
// the rest. Bounds are fixed at registration; Observe never allocates.
class Histogram {
 public:
  void Observe(double value) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const noexcept;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds+1 slots
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Registry of named metrics. `Global()` is the process-wide instance every
// library layer registers into; standalone instances exist for tests.
class Registry {
 public:
  static Registry& Global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Get-or-create. The (name, kind) pair is fixed at first registration:
  // re-registering a name with a different kind throws, as does a name
  // violating the `whoiscrf_` lower_snake_case convention above (tests may
  // use any [a-zA-Z_][a-zA-Z0-9_]* name on a non-global registry). `help`
  // is kept from the first registration that supplies one.
  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  const Labels& labels = {});
  // All instances of one histogram family share the bucket layout of the
  // first registration; later `bounds` arguments are ignored.
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds,
                          const Labels& labels = {});

  // Read-back for derived statistics and tests; 0 when absent.
  uint64_t CounterValue(std::string_view name,
                        const Labels& labels = {}) const;
  double GaugeValue(std::string_view name, const Labels& labels = {}) const;

  // Prometheus text exposition (HELP/TYPE + one line per instance;
  // histograms expand to cumulative _bucket/_sum/_count). Families and
  // instances are emitted in sorted order, so output is deterministic.
  std::string RenderPrometheus() const;

  // Writes the registry as one JSON object value (the `metrics` object of
  // the run-report schema): {"counters":[...],"gauges":[...],
  // "histograms":[...]}.
  void RenderJson(util::JsonWriter& w) const;
  std::string RenderJson() const;

  // Zeroes every value but keeps registrations (pointers stay valid).
  void Reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instance {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;               // histograms only
    std::map<std::string, Instance> instances;  // key: serialized labels
  };

  Instance& GetInstance(std::string_view name, Kind kind,
                        std::string_view help, const Labels& labels,
                        std::vector<double>* bounds);
  const Instance* FindInstance(std::string_view name,
                               const Labels& labels) const;

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace whoiscrf::obs
