#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <ostream>

#include "util/json.h"
#include "util/logging.h"

namespace whoiscrf::obs {

uint64_t MonotonicMicros() noexcept {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

namespace {

uint64_t NextTracerId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Tracer::Tracer() : id_(NextTracerId()) {}

Tracer& Tracer::Global() {
  static Tracer* instance = new Tracer();  // never destroyed
  return *instance;
}

Tracer::Buffer* Tracer::ThreadBuffer() {
  // Usually one entry (the global tracer); tests with local tracers add a
  // few more. Linear scan beats a map at this size.
  struct CacheEntry {
    uint64_t tracer_id;
    Buffer* buffer;
  };
  static thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.tracer_id == id_) return e.buffer;
  }
  std::unique_lock<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer* buffer = buffers_.back().get();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  lock.unlock();
  cache.push_back({id_, buffer});
  return buffer;
}

void Tracer::Record(const char* name, uint64_t start_us, uint64_t dur_us) {
  Buffer* buffer = ThreadBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back({name, start_us, dur_us});
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"traceEvents\":[";
  bool first = true;
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->dropped;
    for (const Event& e : buffer->events) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"" << util::JsonWriter::Escape(e.name)
         << "\",\"cat\":\"whoiscrf\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << buffer->tid << ",\"ts\":" << e.start_us << ",\"dur\":" << e.dur_us
         << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"";
  if (dropped > 0) {
    os << ",\"metadata\":{\"whoiscrf_dropped_events\":" << dropped << "}";
  }
  os << "}\n";
}

bool Tracer::WriteFile(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    LOG_ERROR("tracer: cannot open %s", path.c_str());
    return false;
  }
  WriteChromeTrace(os);
  return os.good();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

size_t Tracer::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->events.size();
  }
  return n;
}

uint64_t Tracer::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    n += buffer->dropped;
  }
  return n;
}

}  // namespace whoiscrf::obs
