#include "obs/report.h"

#include <fstream>
#include <stdexcept>

#include "util/json.h"

namespace whoiscrf::obs {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// The derived block turns raw counters into the numbers a human asks for
// first. Keys appear only when their inputs are present, so a `train` run
// report doesn't carry zero-filled parse rates.
void RenderDerived(const Registry& registry, const RunInfo& info,
                   util::JsonWriter& w) {
  w.Key("derived").BeginObject();
  const double wall = info.wall_seconds;

  const auto records = registry.CounterValue("whoiscrf_parse_records_total");
  if (records > 0 && wall > 0.0) {
    w.Key("parse_records_per_sec")
        .Double(static_cast<double>(records) / wall);
  }
  const auto hits =
      registry.CounterValue("whoiscrf_compile_cache_hits_total");
  const auto misses =
      registry.CounterValue("whoiscrf_compile_cache_misses_total");
  if (hits + misses > 0) {
    w.Key("compile_cache_hit_rate")
        .Double(static_cast<double>(hits) /
                static_cast<double>(hits + misses));
  }

  const auto queries = registry.CounterValue("whoiscrf_crawl_queries_total");
  if (queries > 0 && wall > 0.0) {
    w.Key("crawl_queries_per_sec")
        .Double(static_cast<double>(queries) / wall);
  }
  uint64_t crawled = 0;
  for (const char* status : {"ok", "no_match", "thin_only", "failed"}) {
    crawled += registry.CounterValue("whoiscrf_crawl_results_total",
                                     {{"status", status}});
  }
  if (crawled > 0) {
    w.Key("crawl_success_rate")
        .Double(static_cast<double>(registry.CounterValue(
                    "whoiscrf_crawl_results_total", {{"status", "ok"}})) /
                static_cast<double>(crawled));
  }

  const auto rows = registry.CounterValue("whoiscrf_survey_rows_total");
  if (rows > 0 && wall > 0.0) {
    w.Key("survey_rows_per_sec").Double(static_cast<double>(rows) / wall);
  }
  w.EndObject();
}

}  // namespace

std::string RenderRunReport(const Registry& registry, const RunInfo& info) {
  util::JsonWriter w;
  w.BeginObject();
  w.Field("schema", "whoiscrf.run_report.v1");
  w.Field("command", info.command);
  w.Key("exit_code").Int(info.exit_code);
  w.Key("wall_seconds").Double(info.wall_seconds);
  RenderDerived(registry, info, w);
  w.Key("metrics");
  registry.RenderJson(w);
  w.EndObject();
  return w.str();
}

void WriteMetricsFile(const std::string& path, const Registry& registry,
                      const RunInfo& info) {
  const bool prometheus = EndsWith(path, ".prom") || EndsWith(path, ".txt");
  const bool append = EndsWith(path, ".jsonl");
  std::ofstream os(path, append ? std::ios::app : std::ios::trunc);
  if (!os) {
    throw std::runtime_error("WriteMetricsFile: cannot open " + path);
  }
  if (prometheus) {
    os << registry.RenderPrometheus();
  } else {
    os << RenderRunReport(registry, info) << "\n";
  }
  if (!os.good()) {
    throw std::runtime_error("WriteMetricsFile: write failed for " + path);
  }
}

}  // namespace whoiscrf::obs
