// JSON run report + metrics file output — the `--metrics-out` backend.
//
// A run report is one JSON object describing a whole command invocation:
// schema tag, command, exit code, wall time, a `derived` block of
// ready-to-read rates computed from well-known metrics (records/sec, cache
// hit rate, crawl success rate), and the full registry snapshot under
// `metrics`. docs/observability.md documents the schema.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace whoiscrf::obs {

struct RunInfo {
  std::string command;  // subcommand or tool name, e.g. "parse"
  int exit_code = 0;
  double wall_seconds = 0.0;
};

// Renders the whoiscrf.run_report.v1 JSON object (compact, one line).
std::string RenderRunReport(const Registry& registry, const RunInfo& info);

// Writes the registry to `path` in a format chosen by extension:
//   *.prom / *.txt  Prometheus text exposition
//   *.jsonl         appends the run report as one JSON line (lets several
//                   pipeline stages merge into a single report file)
//   anything else   the JSON run report as a single compact object
// Throws std::runtime_error when the file cannot be written.
void WriteMetricsFile(const std::string& path, const Registry& registry,
                      const RunInfo& info);

}  // namespace whoiscrf::obs
