// Lightweight scoped trace spans with Chrome `chrome://tracing` / Perfetto
// JSON output.
//
// Spans record into per-thread buffers owned by a Tracer; when tracing is
// disabled (the default) constructing a ScopedSpan costs one relaxed
// atomic load and nothing is recorded, so spans can live permanently on
// the parse/crawl hot paths. Enable the global tracer with
// `--trace-out=<path>` on any whoiscrf subcommand (or Tracer::Enable in
// code), then open the written file at chrome://tracing or
// https://ui.perfetto.dev.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointer, not a copy, to keep recording allocation-lean.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace whoiscrf::obs {

// Microseconds since process start on the steady clock — the timebase of
// every trace event (and handy for latency metrics).
uint64_t MonotonicMicros() noexcept;

class Tracer {
 public:
  static Tracer& Global();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Records one complete ("ph":"X") event on the calling thread's buffer.
  // `name` must outlive the tracer (use string literals). Callers normally
  // go through ScopedSpan; Record exists for events whose duration was
  // measured elsewhere (e.g. optimizer iteration callbacks).
  void Record(const char* name, uint64_t start_us, uint64_t dur_us);

  // Chrome trace-event JSON: {"traceEvents":[...]} with one pid and one
  // tid per recording thread. Loadable in chrome://tracing and Perfetto.
  void WriteChromeTrace(std::ostream& os) const;
  // Returns false (and logs) when the file cannot be opened.
  bool WriteFile(const std::string& path) const;

  // Drops all recorded events (buffers and thread registrations remain).
  void Clear();

  size_t EventCount() const;
  uint64_t DroppedCount() const;

 private:
  struct Event {
    const char* name;
    uint64_t start_us;
    uint64_t dur_us;
  };
  struct Buffer {
    uint32_t tid = 0;
    mutable std::mutex mu;  // uncontended: only the owner thread records
    std::vector<Event> events;
    uint64_t dropped = 0;  // events past kMaxEventsPerThread
  };

  // Each thread's events go to one buffer per tracer, found via a small
  // thread-local cache keyed by tracer id (ids are never reused, so a
  // stale cache entry for a destroyed test tracer can never alias).
  Buffer* ThreadBuffer();

  // Census-scale runs emit millions of spans; cap per-thread memory and
  // count what was dropped instead of growing without bound.
  static constexpr size_t kMaxEventsPerThread = 1 << 20;

  const uint64_t id_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards buffers_ registration
  std::deque<std::unique_ptr<Buffer>> buffers_;
};

// RAII span: measures construction → destruction and records it as one
// complete event. When the tracer is disabled at construction, the span is
// inert (destruction does nothing).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(Tracer::Global(), name) {}

  ScopedSpan(Tracer& tracer, const char* name) {
    if (tracer.enabled()) {
      tracer_ = &tracer;
      name_ = name;
      start_us_ = MonotonicMicros();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_us_, MonotonicMicros() - start_us_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_us_ = 0;
};

}  // namespace whoiscrf::obs
