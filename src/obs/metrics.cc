#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/json.h"

namespace whoiscrf::obs {

namespace {

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

Labels SortedLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

// Serialized instance key within a family: `k1="v1",k2="v2"` over the
// sorted label set (also exactly the Prometheus label body).
std::string LabelKey(const Labels& sorted) {
  std::string key;
  for (const auto& [k, v] : sorted) {
    if (!key.empty()) key += ',';
    key += k;
    key += "=\"";
    key += v;  // label values here are short identifiers; no escaping
    key += '"';
  }
  return key;
}

// Value formatting shared by Prometheus and the `le` bucket labels:
// integral values print without an exponent or trailing zeros so golden
// outputs stay readable; everything else gets %.12g.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

size_t Counter::ThreadShard() noexcept {
  static std::atomic<size_t> next{0};
  static thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) noexcept {
  // Prometheus `le` semantics: the first bound >= value is inclusive, so
  // lower_bound lands on exactly the right bucket (the +Inf overflow slot
  // when value exceeds every bound).
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();  // never destroyed
  return *instance;
}

Registry::Instance& Registry::GetInstance(std::string_view name, Kind kind,
                                          std::string_view help,
                                          const Labels& labels,
                                          std::vector<double>* bounds) {
  if (!ValidMetricName(name)) {
    throw std::invalid_argument("Registry: invalid metric name '" +
                                std::string(name) + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, inserted] = families_.try_emplace(std::string(name));
  Family& family = fit->second;
  if (inserted) {
    family.kind = kind;
    if (bounds != nullptr) family.bounds = *bounds;
  } else if (family.kind != kind) {
    throw std::invalid_argument("Registry: metric '" + std::string(name) +
                                "' re-registered with a different kind");
  }
  if (family.help.empty() && !help.empty()) family.help = help;

  Labels sorted = SortedLabels(labels);
  std::string key = LabelKey(sorted);
  auto [iit, fresh] = family.instances.try_emplace(std::move(key));
  Instance& instance = iit->second;
  if (fresh) {
    instance.labels = std::move(sorted);
    switch (kind) {
      case Kind::kCounter:
        instance.counter.reset(new Counter());
        break;
      case Kind::kGauge:
        instance.gauge.reset(new Gauge());
        break;
      case Kind::kHistogram:
        instance.histogram.reset(new Histogram(family.bounds));
        break;
    }
  }
  return instance;
}

Counter* Registry::GetCounter(std::string_view name, std::string_view help,
                              const Labels& labels) {
  return GetInstance(name, Kind::kCounter, help, labels, nullptr)
      .counter.get();
}

Gauge* Registry::GetGauge(std::string_view name, std::string_view help,
                          const Labels& labels) {
  return GetInstance(name, Kind::kGauge, help, labels, nullptr).gauge.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::string_view help,
                                  std::vector<double> bounds,
                                  const Labels& labels) {
  return GetInstance(name, Kind::kHistogram, help, labels, &bounds)
      .histogram.get();
}

const Registry::Instance* Registry::FindInstance(std::string_view name,
                                                 const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto fit = families_.find(std::string(name));
  if (fit == families_.end()) return nullptr;
  const auto iit = fit->second.instances.find(LabelKey(SortedLabels(labels)));
  if (iit == fit->second.instances.end()) return nullptr;
  return &iit->second;
}

uint64_t Registry::CounterValue(std::string_view name,
                                const Labels& labels) const {
  const Instance* instance = FindInstance(name, labels);
  return instance != nullptr && instance->counter != nullptr
             ? instance->counter->Value()
             : 0;
}

double Registry::GaugeValue(std::string_view name,
                            const Labels& labels) const {
  const Instance* instance = FindInstance(name, labels);
  return instance != nullptr && instance->gauge != nullptr
             ? instance->gauge->Value()
             : 0.0;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [key, instance] : family.instances) {
      const auto with_labels = [&](const std::string& suffix,
                                   const std::string& extra) {
        std::string line = name + suffix;
        if (!key.empty() || !extra.empty()) {
          line += '{';
          line += key;
          if (!key.empty() && !extra.empty()) line += ',';
          line += extra;
          line += '}';
        }
        return line;
      };
      switch (family.kind) {
        case Kind::kCounter:
          out += with_labels("", "") + " " +
                 std::to_string(instance.counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += with_labels("", "") + " " +
                 FormatValue(instance.gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instance.histogram;
          const auto counts = h.BucketCounts();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += counts[i];
            out += with_labels("_bucket",
                               "le=\"" + FormatValue(h.bounds()[i]) + "\"") +
                   " " + std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += with_labels("_bucket", "le=\"+Inf\"") + " " +
                 std::to_string(cumulative) + "\n";
          out += with_labels("_sum", "") + " " + FormatValue(h.Sum()) + "\n";
          out += with_labels("_count", "") + " " + std::to_string(h.Count()) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

void Registry::RenderJson(util::JsonWriter& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto emit_name_labels = [&](const std::string& name,
                                    const Instance& instance) {
    w.Field("name", name);
    if (!instance.labels.empty()) {
      w.Key("labels").BeginObject();
      for (const auto& [k, v] : instance.labels) w.Field(k, v);
      w.EndObject();
    }
  };

  w.BeginObject();
  for (const auto& [kind, section] :
       {std::pair{Kind::kCounter, "counters"},
        std::pair{Kind::kGauge, "gauges"},
        std::pair{Kind::kHistogram, "histograms"}}) {
    w.Key(section).BeginArray();
    for (const auto& [name, family] : families_) {
      if (family.kind != kind) continue;
      for (const auto& [key, instance] : family.instances) {
        w.BeginObject();
        emit_name_labels(name, instance);
        switch (kind) {
          case Kind::kCounter:
            w.Key("value").Int(
                static_cast<long long>(instance.counter->Value()));
            break;
          case Kind::kGauge:
            w.Key("value").Double(instance.gauge->Value());
            break;
          case Kind::kHistogram: {
            const Histogram& h = *instance.histogram;
            w.Key("bounds").BeginArray();
            for (double b : h.bounds()) w.Double(b);
            w.EndArray();
            w.Key("counts").BeginArray();
            for (uint64_t c : h.BucketCounts()) {
              w.Int(static_cast<long long>(c));
            }
            w.EndArray();
            w.Key("count").Int(static_cast<long long>(h.Count()));
            w.Key("sum").Double(h.Sum());
            break;
          }
        }
        w.EndObject();
      }
    }
    w.EndArray();
  }
  w.EndObject();
}

std::string Registry::RenderJson() const {
  util::JsonWriter w;
  RenderJson(w);
  return w.str();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, family] : families_) {
    for (auto& [key, instance] : family.instances) {
      if (instance.counter != nullptr) {
        for (auto& shard : instance.counter->shards_) shard.v.store(0);
      }
      if (instance.gauge != nullptr) instance.gauge->Set(0.0);
      if (instance.histogram != nullptr) {
        Histogram& h = *instance.histogram;
        for (size_t i = 0; i <= h.bounds_.size(); ++i) h.buckets_[i].store(0);
        h.count_.store(0);
        h.sum_.store(0.0);
      }
    }
  }
}

}  // namespace whoiscrf::obs
