// Attribute extraction: one labeled line -> the set of string attributes the
// CRF's binary features test for (paper §3.3).
//
// Per the paper:
//  * words left of the first separator get the suffix "@T" (title), words
//    right of it get "@V" (value); lines with no separator are all "@V";
//  * a preceding blank line adds the marker "NL"; indentation shifts add
//    "SHL"/"SHR"; symbol-opened lines add "SYM"; a separator adds "SEP" plus
//    its kind;
//  * word-class attributes ("CLS_5DIGIT@V", "CLS_EMAIL@V", ...) capture
//    general classes of words (eq. 7).
//
// Attributes flagged `transition` additionally generate features of the
// eq. 8 form f(y_{t-1}, y_t, x_t) — these are the layout markers and the
// first title word, which are the signals that mark block boundaries
// (Figure 1).
#pragma once

#include <string>
#include <vector>

#include "text/line_splitter.h"

namespace whoiscrf::text {

struct LineAttributes {
  // All attributes for this line, deduplicated, order-stable.
  std::vector<std::string> attrs;
  // Parallel flags: attrs[i] also generates (y_{t-1}, y_t) features.
  std::vector<bool> transition;
};

struct TokenizerOptions {
  // Maximum length of a word attribute; longer words are truncated so the
  // dictionary cannot be blown up by base64 blobs in boilerplate.
  size_t max_word_length = 24;
  // Emit word-class attributes (eq. 7 features).
  bool word_classes = true;
  // Emit layout-marker attributes (NL/SHL/SHR/SYM/TABCH).
  bool layout_markers = true;
  // Emit separator attributes (SEP, SEP_<kind>).
  bool separator_markers = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Extracts attributes from one line (with its layout context).
  LineAttributes Extract(const Line& line) const;

  // Convenience: full record -> per-line attributes.
  std::vector<LineAttributes> ExtractRecord(std::string_view record) const;

  // Normalizes one raw word: lower-case, strip surrounding punctuation,
  // truncate. Returns empty string if nothing is left.
  std::string NormalizeWord(std::string_view word) const;

 private:
  TokenizerOptions options_;
};

}  // namespace whoiscrf::text
