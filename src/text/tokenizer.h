// Attribute extraction: one labeled line -> the set of string attributes the
// CRF's binary features test for (paper §3.3).
//
// Per the paper:
//  * words left of the first separator get the suffix "@T" (title), words
//    right of it get "@V" (value); lines with no separator are all "@V";
//  * a preceding blank line adds the marker "NL"; indentation shifts add
//    "SHL"/"SHR"; symbol-opened lines add "SYM"; a separator adds "SEP" plus
//    its kind;
//  * word-class attributes ("CLS_5DIGIT@V", "CLS_EMAIL@V", ...) capture
//    general classes of words (eq. 7).
//
// Attributes flagged `transition` additionally generate features of the
// eq. 8 form f(y_{t-1}, y_t, x_t) — these are the layout markers and the
// first title word, which are the signals that mark block boundaries
// (Figure 1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "text/line_splitter.h"
#include "text/word_classes.h"

namespace whoiscrf::text {

struct LineAttributes {
  // All attributes for this line, deduplicated, order-stable.
  std::vector<std::string> attrs;
  // Parallel flags: attrs[i] also generates (y_{t-1}, y_t) features.
  std::vector<bool> transition;
};

// Receiver for the streaming extraction path. `attr` points into scratch
// owned by the caller and is only valid for the duration of the call — a
// sink that keeps attributes must copy (or intern) them. Attributes are
// emitted in the same order as `Tokenizer::Extract` produces them, but
// *without* deduplication; sinks that need set semantics keep the first
// occurrence of each attribute (which is what Extract's dedup does).
class AttrSink {
 public:
  virtual ~AttrSink() = default;
  virtual void OnAttr(std::string_view attr, bool transition) = 0;

  // Word-level memoization hook. Before normalizing `raw_word`, ExtractTo
  // offers it to the sink: a return of >= 0 means the sink already knows
  // (and has handled) every attribute this word emits — the value is the
  // number of OnAttr calls the word would have produced, and the word is
  // skipped entirely. A return of -1 declines: the tokenizer then runs the
  // normal normalize/classify path (whose attributes arrive via OnAttr)
  // and calls EndWord() when the word's emissions are complete, so the
  // sink can memoize them. A word's attribute stream is a pure function of
  // (raw bytes, title flag) for a fixed tokenizer configuration;
  // `transition` is the per-call context (first-title-word) that the sink
  // must re-apply itself on replay. The default implementation declines
  // every word, preserving the plain streaming contract.
  virtual int OnWord(std::string_view /*raw_word*/, bool /*title*/,
                     bool /*transition*/) {
    return -1;
  }
  virtual void EndWord() {}
};

// Reusable buffers for `Tokenizer::ExtractTo`. Hold one per thread (or per
// workspace) and the extraction loop stops allocating once the buffers have
// grown to the working-set size.
struct TokenScratch {
  std::string attr;                // attribute name under construction
  std::string word;                // normalized word
  std::vector<WordClass> classes;  // word classes of the current raw word
};

struct TokenizerOptions {
  // Maximum length of a word attribute; longer words are truncated so the
  // dictionary cannot be blown up by base64 blobs in boilerplate.
  size_t max_word_length = 24;
  // Emit word-class attributes (eq. 7 features).
  bool word_classes = true;
  // Emit layout-marker attributes (NL/SHL/SHR/SYM/TABCH).
  bool layout_markers = true;
  // Emit separator attributes (SEP, SEP_<kind>).
  bool separator_markers = true;
};

class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  // Extracts attributes from one line (with its layout context).
  LineAttributes Extract(const Line& line) const;

  // The original extraction implementation, frozen verbatim as a
  // differential reference (per-line hash-set dedup, by-value strings,
  // vector-returning word classification). Produces exactly the same
  // LineAttributes as Extract; WhoisParser::ParseNaive and the
  // equivalence tests use it so benchmarks compare the streaming fast
  // path against the true pre-fast-path cost.
  LineAttributes ExtractClassic(const Line& line) const;

  // Streaming fast path: emits this line's attributes into `sink` in
  // Extract's order, using `scratch` for all string building. Emits raw
  // (non-deduplicated) attributes; see AttrSink. Guarantees at least one
  // emission per line ("EMPTYLINE" when nothing else matched).
  void ExtractTo(const Line& line, AttrSink& sink, TokenScratch& scratch) const;

  // Convenience: full record -> per-line attributes.
  std::vector<LineAttributes> ExtractRecord(std::string_view record) const;

  // Normalizes one raw word: lower-case, strip surrounding punctuation,
  // truncate. Returns empty string if nothing is left.
  std::string NormalizeWord(std::string_view word) const;

  // Allocation-free variant: writes the normalized word into `out` (reusing
  // its capacity). Returns false — with `out` cleared — if nothing is left.
  bool NormalizeWordInto(std::string_view word, std::string& out) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace whoiscrf::text
