#include "text/vocabulary.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace whoiscrf::text {

namespace {

void WriteU32(std::ostream& os, uint32_t v) {
  unsigned char buf[4] = {
      static_cast<unsigned char>(v), static_cast<unsigned char>(v >> 8),
      static_cast<unsigned char>(v >> 16), static_cast<unsigned char>(v >> 24)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

uint32_t ReadU32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw std::runtime_error("Vocabulary::Load: truncated stream");
  return static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
         (static_cast<uint32_t>(buf[2]) << 16) |
         (static_cast<uint32_t>(buf[3]) << 24);
}

}  // namespace

void Vocabulary::Count(std::string_view attr) {
  if (frozen_) {
    throw std::logic_error("Vocabulary::Count called after Freeze");
  }
  auto it = counts_.find(attr);
  if (it == counts_.end()) {
    it = counts_.emplace(std::string(attr), Entry{}).first;
    it->second.first_seen = next_seen_++;
  }
  ++it->second.count;
}

void Vocabulary::Freeze(uint32_t min_count) {
  if (frozen_) throw std::logic_error("Vocabulary::Freeze called twice");
  std::vector<std::pair<int64_t, const std::string*>> kept;
  kept.reserve(counts_.size());
  for (const auto& [attr, entry] : counts_) {
    if (entry.count >= min_count) kept.emplace_back(entry.first_seen, &attr);
  }
  std::sort(kept.begin(), kept.end());
  names_.reserve(kept.size());
  ids_.reserve(kept.size());
  for (const auto& [seen, attr] : kept) {
    ids_.emplace(*attr, static_cast<int>(names_.size()));
    names_.push_back(*attr);
  }
  frozen_ = true;
}

int Vocabulary::Lookup(std::string_view attr) const {
  if (!frozen_) throw std::logic_error("Vocabulary::Lookup before Freeze");
  // Heterogeneous find: no allocation on this hot path (called for every
  // attribute of every line at parse time).
  auto it = ids_.find(attr);
  return it == ids_.end() ? kNotFound : it->second;
}

const std::string& Vocabulary::Name(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= names_.size()) {
    throw std::out_of_range("Vocabulary::Name: bad id");
  }
  return names_[static_cast<size_t>(id)];
}

void Vocabulary::Save(std::ostream& os) const {
  if (!frozen_) throw std::logic_error("Vocabulary::Save before Freeze");
  WriteU32(os, static_cast<uint32_t>(names_.size()));
  for (const std::string& name : names_) {
    WriteU32(os, static_cast<uint32_t>(name.size()));
    os.write(name.data(), static_cast<std::streamsize>(name.size()));
  }
}

Vocabulary Vocabulary::Load(std::istream& is) {
  Vocabulary v;
  const uint32_t n = ReadU32(is);
  v.names_.reserve(n);
  v.ids_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t len = ReadU32(is);
    std::string name(len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(len));
    if (!is) throw std::runtime_error("Vocabulary::Load: truncated stream");
    v.ids_.emplace(name, static_cast<int>(v.names_.size()));
    v.names_.push_back(std::move(name));
  }
  v.frozen_ = true;
  return v;
}

}  // namespace whoiscrf::text
