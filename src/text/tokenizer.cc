#include "text/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "text/separator.h"
#include "text/word_classes.h"
#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

// Punctuation stripped from word edges; interior punctuation (e.g. the dots
// of a domain name or the '@' of an email) is preserved.
bool IsEdgePunct(char c) {
  switch (c) {
    case ',': case '.': case ';': case '"': case '\'': case '(': case ')':
    case '[': case ']': case '<': case '>': case '*': case '#': case '%':
    case '!': case '?':
      return true;
    default:
      return false;
  }
}

void AddAttr(LineAttributes& out, std::unordered_set<std::string>& seen,
             std::string attr, bool transition) {
  if (attr.empty()) return;
  if (!seen.insert(attr).second) return;
  out.attrs.push_back(std::move(attr));
  out.transition.push_back(transition);
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::string Tokenizer::NormalizeWord(std::string_view word) const {
  size_t begin = 0;
  size_t end = word.size();
  while (begin < end && IsEdgePunct(word[begin])) ++begin;
  while (end > begin && IsEdgePunct(word[end - 1])) --end;
  std::string_view core = word.substr(begin, end - begin);
  if (core.empty()) return {};
  std::string lower = util::ToLower(core);
  if (lower.size() > options_.max_word_length) {
    lower.resize(options_.max_word_length);
  }
  return lower;
}

LineAttributes Tokenizer::Extract(const Line& line) const {
  LineAttributes out;
  std::unordered_set<std::string> seen;

  if (options_.layout_markers) {
    if (line.preceded_by_blank) AddAttr(out, seen, "NL", true);
    if (line.shift_left) AddAttr(out, seen, "SHL", true);
    if (line.shift_right) AddAttr(out, seen, "SHR", true);
    if (line.starts_with_symbol) AddAttr(out, seen, "SYM", true);
    if (line.has_tab) AddAttr(out, seen, "TABCH", false);
  }

  const auto split = FindSeparator(line.text);
  std::string_view title_part;
  std::string_view value_part;
  if (split.has_value()) {
    title_part = split->title;
    value_part = split->value;
    if (options_.separator_markers) {
      AddAttr(out, seen, "SEP", true);
      AddAttr(out, seen,
              std::string("SEP_") + std::string(SeparatorName(split->kind)),
              false);
      if (split->value.empty()) {
        // "Registrant:" alone on a line — block-header form (§4.2).
        AddAttr(out, seen, "SEP_EMPTYVAL", true);
      }
    }
  } else {
    value_part = util::Trim(line.text);
  }

  bool first_title_word = true;
  for (std::string_view raw_word : util::SplitWhitespace(title_part)) {
    std::string word = NormalizeWord(raw_word);
    if (word.empty()) continue;
    // The first title word is the strongest block-boundary signal (Figure 1
    // edges are dominated by first-title words), so it alone is
    // transition-eligible among words.
    AddAttr(out, seen, word + "@T", first_title_word);
    first_title_word = false;
    if (options_.word_classes) {
      for (WordClass cls : ClassifyWord(raw_word)) {
        AddAttr(out, seen, std::string(WordClassName(cls)) + "@T", false);
      }
    }
  }

  for (std::string_view raw_word : util::SplitWhitespace(value_part)) {
    std::string word = NormalizeWord(raw_word);
    if (word.empty()) continue;
    AddAttr(out, seen, word + "@V", false);
    if (options_.word_classes) {
      for (WordClass cls : ClassifyWord(raw_word)) {
        AddAttr(out, seen, std::string(WordClassName(cls)) + "@V", false);
      }
    }
  }

  // A line with no attributes at all (pathological input) still needs one
  // observation for the CRF to score; emit a bias marker.
  if (out.attrs.empty()) AddAttr(out, seen, "EMPTYLINE", false);
  return out;
}

std::vector<LineAttributes> Tokenizer::ExtractRecord(
    std::string_view record) const {
  std::vector<LineAttributes> out;
  for (const Line& line : SplitRecord(record)) {
    out.push_back(Extract(line));
  }
  return out;
}

}  // namespace whoiscrf::text
