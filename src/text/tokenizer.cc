#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "text/separator.h"
#include "text/word_classes.h"
#include "util/byte_scan.h"
#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

namespace scan = util::scan;

// Punctuation stripped from word edges; interior punctuation (e.g. the dots
// of a domain name or the '@' of an email) is preserved. The set is the
// kEdgePunct class in util/byte_scan.h.
bool IsEdgePunct(char c) { return scan::InClass(c, scan::kEdgePunct); }

// Whitespace-split without materializing a vector of pieces; word
// boundaries come from chunked space scans rather than per-byte tests.
template <typename Fn>
void ForEachWord(std::string_view s, Fn&& fn) {
  size_t i = 0;
  while (i < s.size()) {
    const size_t start = scan::SkipSpace(s, i);
    if (start == std::string_view::npos) return;
    size_t end = scan::FindSpace(s, start);
    if (end == std::string_view::npos) end = s.size();
    fn(s.substr(start, end - start));
    i = end;
  }
}

// Sink that reconstructs the classic LineAttributes contract: first
// occurrence of each attribute wins, order-stable. Attribute lists are a
// couple dozen entries at most, so a linear scan beats a hash set.
class CollectSink final : public AttrSink {
 public:
  explicit CollectSink(LineAttributes& out) : out_(out) {}

  void OnAttr(std::string_view attr, bool transition) override {
    for (const std::string& existing : out_.attrs) {
      if (existing == attr) return;
    }
    out_.attrs.emplace_back(attr);
    out_.transition.push_back(transition);
  }

 private:
  LineAttributes& out_;
};

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::string Tokenizer::NormalizeWord(std::string_view word) const {
  std::string out;
  NormalizeWordInto(word, out);
  return out;
}

bool Tokenizer::NormalizeWordInto(std::string_view word,
                                  std::string& out) const {
  size_t begin = 0;
  size_t end = word.size();
  while (begin < end && IsEdgePunct(word[begin])) ++begin;
  while (end > begin && IsEdgePunct(word[end - 1])) --end;
  const size_t n =
      std::min(end - begin, static_cast<size_t>(options_.max_word_length));
  out.resize(n);
  scan::AsciiLower(word.data() + begin, n, out.data());
  return n != 0;
}

LineAttributes Tokenizer::Extract(const Line& line) const {
  LineAttributes out;
  CollectSink sink(out);
  TokenScratch scratch;
  ExtractTo(line, sink, scratch);
  return out;
}

namespace {

// Classic-path helper: hash-set dedup with by-value attribute strings.
void AddAttr(LineAttributes& out, std::unordered_set<std::string>& seen,
             std::string attr, bool transition) {
  if (attr.empty()) return;
  if (!seen.insert(attr).second) return;
  out.attrs.push_back(std::move(attr));
  out.transition.push_back(transition);
}

}  // namespace

// Kept byte-for-byte as the pre-fast-path implementation (including its
// per-word/per-attr allocations) so ParseNaive measures the real
// pre-change cost. Do not "optimize" this function; improve ExtractTo.
LineAttributes Tokenizer::ExtractClassic(const Line& line) const {
  LineAttributes out;
  std::unordered_set<std::string> seen;

  auto normalize = [&](std::string_view word) -> std::string {
    size_t begin = 0;
    size_t end = word.size();
    while (begin < end && IsEdgePunct(word[begin])) ++begin;
    while (end > begin && IsEdgePunct(word[end - 1])) --end;
    std::string_view core = word.substr(begin, end - begin);
    if (core.empty()) return {};
    std::string lower = util::ToLower(core);
    if (lower.size() > options_.max_word_length) {
      lower.resize(options_.max_word_length);
    }
    return lower;
  };

  if (options_.layout_markers) {
    if (line.preceded_by_blank) AddAttr(out, seen, "NL", true);
    if (line.shift_left) AddAttr(out, seen, "SHL", true);
    if (line.shift_right) AddAttr(out, seen, "SHR", true);
    if (line.starts_with_symbol) AddAttr(out, seen, "SYM", true);
    if (line.has_tab) AddAttr(out, seen, "TABCH", false);
  }

  const auto split = FindSeparator(line.text);
  std::string_view title_part;
  std::string_view value_part;
  if (split.has_value()) {
    title_part = split->title;
    value_part = split->value;
    if (options_.separator_markers) {
      AddAttr(out, seen, "SEP", true);
      AddAttr(out, seen,
              std::string("SEP_") + std::string(SeparatorName(split->kind)),
              false);
      if (split->value.empty()) {
        AddAttr(out, seen, "SEP_EMPTYVAL", true);
      }
    }
  } else {
    value_part = util::Trim(line.text);
  }

  bool first_title_word = true;
  for (std::string_view raw_word : util::SplitWhitespace(title_part)) {
    std::string word = normalize(raw_word);
    if (word.empty()) continue;
    AddAttr(out, seen, word + "@T", first_title_word);
    first_title_word = false;
    if (options_.word_classes) {
      for (WordClass cls : ClassifyWord(raw_word)) {
        AddAttr(out, seen, std::string(WordClassName(cls)) + "@T", false);
      }
    }
  }

  for (std::string_view raw_word : util::SplitWhitespace(value_part)) {
    std::string word = normalize(raw_word);
    if (word.empty()) continue;
    AddAttr(out, seen, word + "@V", false);
    if (options_.word_classes) {
      for (WordClass cls : ClassifyWord(raw_word)) {
        AddAttr(out, seen, std::string(WordClassName(cls)) + "@V", false);
      }
    }
  }

  if (out.attrs.empty()) AddAttr(out, seen, "EMPTYLINE", false);
  return out;
}

void Tokenizer::ExtractTo(const Line& line, AttrSink& sink,
                          TokenScratch& scratch) const {
  size_t emitted = 0;
  auto emit = [&](std::string_view attr, bool transition) {
    sink.OnAttr(attr, transition);
    ++emitted;
  };

  if (options_.layout_markers) {
    if (line.preceded_by_blank) emit("NL", true);
    if (line.shift_left) emit("SHL", true);
    if (line.shift_right) emit("SHR", true);
    if (line.starts_with_symbol) emit("SYM", true);
    if (line.has_tab) emit("TABCH", false);
  }

  const auto split = FindSeparator(line.text);
  std::string_view title_part;
  std::string_view value_part;
  if (split.has_value()) {
    title_part = split->title;
    value_part = split->value;
    if (options_.separator_markers) {
      emit("SEP", true);
      scratch.attr.assign("SEP_");
      scratch.attr.append(SeparatorName(split->kind));
      emit(scratch.attr, false);
      if (split->value.empty()) {
        // "Registrant:" alone on a line — block-header form (§4.2).
        emit("SEP_EMPTYVAL", true);
      }
    }
  } else {
    value_part = util::Trim(line.text);
  }

  // Emits `word + suffix` plus the raw word's class attributes.
  auto emit_word = [&](std::string_view raw_word, std::string_view suffix,
                       bool transition) {
    scratch.attr.assign(scratch.word);
    scratch.attr.append(suffix);
    emit(scratch.attr, transition);
    if (options_.word_classes) {
      ClassifyWord(raw_word, scratch.classes);
      for (WordClass cls : scratch.classes) {
        scratch.attr.assign(WordClassName(cls));
        scratch.attr.append(suffix);
        emit(scratch.attr, false);
      }
    }
  };

  bool first_title_word = true;
  ForEachWord(title_part, [&](std::string_view raw_word) {
    // The first title word is the strongest block-boundary signal (Figure 1
    // edges are dominated by first-title words), so it alone is
    // transition-eligible among words. A claimed count of 0 means the word
    // normalizes to nothing, which must not consume the first-word flag.
    const int claimed = sink.OnWord(raw_word, /*title=*/true, first_title_word);
    if (claimed >= 0) {
      emitted += static_cast<size_t>(claimed);
      if (claimed > 0) first_title_word = false;
      return;
    }
    if (NormalizeWordInto(raw_word, scratch.word)) {
      emit_word(raw_word, "@T", first_title_word);
      first_title_word = false;
    }
    sink.EndWord();
  });

  ForEachWord(value_part, [&](std::string_view raw_word) {
    const int claimed = sink.OnWord(raw_word, /*title=*/false, false);
    if (claimed >= 0) {
      emitted += static_cast<size_t>(claimed);
      return;
    }
    if (NormalizeWordInto(raw_word, scratch.word)) {
      emit_word(raw_word, "@V", false);
    }
    sink.EndWord();
  });

  // A line with no attributes at all (pathological input) still needs one
  // observation for the CRF to score; emit a bias marker.
  if (emitted == 0) emit("EMPTYLINE", false);
}

std::vector<LineAttributes> Tokenizer::ExtractRecord(
    std::string_view record) const {
  std::vector<LineAttributes> out;
  for (const Line& line : SplitRecord(record)) {
    out.push_back(Extract(line));
  }
  return out;
}

}  // namespace whoiscrf::text
