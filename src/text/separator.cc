#include "text/separator.h"

#include "util/byte_scan.h"
#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

// True if the colon at position `pos` belongs to a URL scheme ("http://",
// "https://", "ftp://") or a port-like "whois:43" — contexts where it does
// not separate a title from a value.
bool ColonIsUrlScheme(std::string_view line, size_t pos) {
  return pos + 2 < line.size() && line[pos + 1] == '/' && line[pos + 2] == '/';
}

}  // namespace

std::optional<SeparatorSplit> FindSeparator(std::string_view line) {
  // Scan once left-to-right; the first match wins, which is exactly the
  // "first-appearing separator" rule from the paper.
  std::string_view body = util::TrimLeft(line);
  // Bracketed titles: "[Domain Name] EXAMPLE.COM".
  if (!body.empty() && body.front() == '[') {
    const size_t close = body.find(']');
    if (close != std::string_view::npos && close > 1) {
      return SeparatorSplit{SeparatorKind::kBracket,
                            util::Trim(body.substr(1, close - 1)),
                            util::Trim(body.substr(close + 1))};
    }
  }
  // Only five characters can open a separator (':' '.' '\t' '=' ' '), so
  // jump from candidate to candidate with a chunked scan; everything in
  // between is skipped without a per-byte branch.
  for (size_t i = util::scan::FindSepTrigger(body);
       i != std::string_view::npos;
       i = util::scan::FindSepTrigger(body, i + 1)) {
    const char c = body[i];
    if (c == ':') {
      if (ColonIsUrlScheme(body, i)) continue;
      if (i == 0) continue;  // a leading colon separates nothing
      return SeparatorSplit{SeparatorKind::kColon,
                            util::Trim(body.substr(0, i)),
                            util::Trim(body.substr(i + 1))};
    }
    if (c == '.' && i + 2 < body.size() && body[i + 1] == '.' &&
        body[i + 2] == '.') {
      size_t end = i + 3;
      while (end < body.size() && body[end] == '.') ++end;
      if (end < body.size() && body[end] == ':') ++end;
      if (i == 0) continue;
      return SeparatorSplit{SeparatorKind::kEllipsis,
                            util::Trim(body.substr(0, i)),
                            util::Trim(body.substr(end))};
    }
    if (c == '\t') {
      size_t end = i + 1;
      while (end < body.size() && body[end] == '\t') ++end;
      if (i == 0) continue;
      return SeparatorSplit{SeparatorKind::kTab,
                            util::Trim(body.substr(0, i)),
                            util::Trim(body.substr(end))};
    }
    if (c == '=' && (i + 1 >= body.size() || body[i + 1] != '=')) {
      if (i == 0) continue;
      return SeparatorSplit{SeparatorKind::kEquals,
                            util::Trim(body.substr(0, i)),
                            util::Trim(body.substr(i + 1))};
    }
    if (c == ' ' && i + 1 < body.size() && body[i + 1] == ' ') {
      size_t end = i + 1;
      while (end < body.size() && body[end] == ' ') ++end;
      if (i == 0) continue;
      if (end >= body.size()) break;  // trailing spaces only
      return SeparatorSplit{SeparatorKind::kWideSpace,
                            util::Trim(body.substr(0, i)),
                            util::Trim(body.substr(end))};
    }
  }
  return std::nullopt;
}

std::string_view SeparatorName(SeparatorKind kind) {
  switch (kind) {
    case SeparatorKind::kColon: return "COLON";
    case SeparatorKind::kEllipsis: return "ELLIPSIS";
    case SeparatorKind::kTab: return "TAB";
    case SeparatorKind::kWideSpace: return "WIDESPACE";
    case SeparatorKind::kEquals: return "EQUALS";
    case SeparatorKind::kBracket: return "BRACKET";
  }
  return "?";
}

}  // namespace whoiscrf::text
