#include "text/line_splitter.h"

#include "util/byte_scan.h"
#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

int IndentWidth(std::string_view line) {
  int width = 0;
  for (char c : line) {
    if (c == ' ') {
      ++width;
    } else if (c == '\t') {
      width += 8 - width % 8;
    } else {
      break;
    }
  }
  return width;
}

bool StartsWithSymbol(std::string_view line) {
  std::string_view t = util::TrimLeft(line);
  if (t.empty()) return false;
  switch (t.front()) {
    case '#':
    case '%':
    case '*':
    case '>':
    case '=':
    case ';':
      return true;
    case '-':
      // A single dash could open a value ("-example"); require a rule-like
      // run of dashes to call it a symbol line.
      return t.size() >= 2 && t[1] == '-';
    default:
      return false;
  }
}

// Layout state carried from one labeled line to the next.
struct LayoutState {
  int pending_blanks = 0;
  bool have_prev = false;
  int prev_indent = 0;
};

// Annotates one raw line. Unlabeled lines only bump the blank counter;
// labeled lines fill the next slot of `out` (reusing its string capacity
// when the slot already exists) and advance `used`.
void FeedLine(std::string_view raw_line, size_t raw, LayoutState& state,
              std::vector<Line>& out, size_t& used) {
  if (!IsLabeledLine(raw_line)) {
    ++state.pending_blanks;
    return;
  }
  if (used == out.size()) out.emplace_back();
  Line& line = out[used];
  line.text.assign(raw_line);
  line.index = static_cast<int>(used);
  line.raw_index = static_cast<int>(raw);
  line.preceded_by_blank = state.pending_blanks > 0;
  line.starts_with_symbol = StartsWithSymbol(raw_line);
  line.has_tab = raw_line.find('\t') != std::string_view::npos;
  line.indent = IndentWidth(raw_line);
  line.shift_left = state.have_prev && line.indent < state.prev_indent;
  line.shift_right = state.have_prev && line.indent > state.prev_indent;
  state.prev_indent = line.indent;
  state.have_prev = true;
  state.pending_blanks = 0;
  ++used;
}

}  // namespace

bool IsLabeledLine(std::string_view line) { return util::HasAlnum(line); }

std::vector<Line> SplitRecord(std::string_view record) {
  std::vector<Line> out;
  SplitRecordInto(record, out);
  return out;
}

void SplitRecordInto(std::string_view record, std::vector<Line>& out) {
  LayoutState state;
  size_t used = 0;
  // Inline line split (same \n / \r\n / bare-\r handling as
  // util::SplitLines) so no intermediate vector of pieces is built; the
  // chunked scan jumps terminator to terminator instead of walking bytes.
  size_t start = 0;
  size_t raw = 0;
  for (size_t nl = util::scan::FindNewline(record);
       nl != std::string_view::npos;
       nl = util::scan::FindNewline(record, start)) {
    FeedLine(record.substr(start, nl - start), raw++, state, out, used);
    // "\r\n" is one terminator; "\n" and bare "\r" each end a line alone.
    start = nl + 1;
    if (record[nl] == '\r' && start < record.size() && record[start] == '\n') {
      ++start;
    }
  }
  if (start < record.size()) {
    FeedLine(record.substr(start), raw++, state, out, used);
  }
  out.resize(used);
}

std::vector<Line> AnnotateLines(std::span<const std::string> raw_lines) {
  std::vector<Line> out;
  LayoutState state;
  size_t used = 0;
  for (size_t raw = 0; raw < raw_lines.size(); ++raw) {
    FeedLine(raw_lines[raw], raw, state, out, used);
  }
  out.resize(used);
  return out;
}

}  // namespace whoiscrf::text
