#include "text/line_splitter.h"

#include <cctype>

#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

int IndentWidth(std::string_view line) {
  int width = 0;
  for (char c : line) {
    if (c == ' ') {
      ++width;
    } else if (c == '\t') {
      width += 8 - width % 8;
    } else {
      break;
    }
  }
  return width;
}

bool StartsWithSymbol(std::string_view line) {
  std::string_view t = util::TrimLeft(line);
  if (t.empty()) return false;
  switch (t.front()) {
    case '#':
    case '%':
    case '*':
    case '>':
    case '=':
    case ';':
      return true;
    case '-':
      // A single dash could open a value ("-example"); require a rule-like
      // run of dashes to call it a symbol line.
      return t.size() >= 2 && t[1] == '-';
    default:
      return false;
  }
}

}  // namespace

bool IsLabeledLine(std::string_view line) { return util::HasAlnum(line); }

std::vector<Line> SplitRecord(std::string_view record) {
  std::vector<Line> out;
  const auto raw_lines = util::SplitLines(record);

  int pending_blanks = 0;
  bool have_prev = false;
  int prev_indent = 0;

  for (size_t raw = 0; raw < raw_lines.size(); ++raw) {
    std::string_view raw_line = raw_lines[raw];
    if (!IsLabeledLine(raw_line)) {
      ++pending_blanks;
      continue;
    }
    Line line;
    line.text = std::string(raw_line);
    line.index = static_cast<int>(out.size());
    line.raw_index = static_cast<int>(raw);
    line.preceded_by_blank = pending_blanks > 0;
    line.starts_with_symbol = StartsWithSymbol(raw_line);
    line.has_tab = raw_line.find('\t') != std::string_view::npos;
    line.indent = IndentWidth(raw_line);
    if (have_prev) {
      line.shift_left = line.indent < prev_indent;
      line.shift_right = line.indent > prev_indent;
    }
    prev_indent = line.indent;
    have_prev = true;
    pending_blanks = 0;
    out.push_back(std::move(line));
  }
  return out;
}

}  // namespace whoiscrf::text
