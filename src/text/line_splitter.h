// Record chunking (paper §3, first paragraph; §3.3 markers).
//
// A WHOIS record is divided into lines; each *labeled* line (one containing
// at least one alphanumeric character) becomes one CRF token. Empty lines
// and symbol-only lines are not labeled themselves but leave layout markers
// (NL, SYM, SHL, ...) on the following labeled line.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::text {

// One labeled line of a WHOIS record plus its layout context.
struct Line {
  std::string text;        // original text, untrimmed
  int index = 0;           // index among labeled lines (CRF position t)
  int raw_index = 0;       // index within the raw record, counting all lines

  // Layout markers (paper §3.3 and Figure 1's punctuation key).
  bool preceded_by_blank = false;  // NL: one or more blank/unlabeled lines above
  bool shift_left = false;         // SHL: indentation decreased vs. previous line
  bool shift_right = false;        // SHR: indentation increased vs. previous line
  bool starts_with_symbol = false; // SYM: first non-space char is #, %, *, >, -, =
  bool has_tab = false;            // TAB: contains a tab character
  int indent = 0;                  // leading whitespace width (tab = 8)
};

// Splits a raw record into labeled lines with layout markers.
std::vector<Line> SplitRecord(std::string_view record);

// Allocation-reusing variant: refills `out` in place, reusing Line slots
// (including their string capacity) across records. Produces exactly what
// SplitRecord returns.
void SplitRecordInto(std::string_view record, std::vector<Line>& out);

// Runs the same layout state machine over lines that are already split
// (e.g. the raw lines of a labeled training record), without re-joining
// them into one buffer first. Equivalent to
// SplitRecord(Join(raw_lines, "\n")) as long as no element contains a
// newline — which is true of anything produced by a line split.
std::vector<Line> AnnotateLines(std::span<const std::string> raw_lines);

// True if the line would be labeled (contains an alphanumeric character).
bool IsLabeledLine(std::string_view line);

}  // namespace whoiscrf::text
