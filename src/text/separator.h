// Title/value separator detection (paper §3.3).
//
// Many WHOIS lines have the form "Registrant Name: John Smith". The words
// left of the first-appearing separator are the field *title*; those right
// of it are the field *value*. Recognized separators, in order of priority
// at a given position: colon, ellipsis ("..." optionally followed by ':'),
// tab run, and a run of two or more spaces.
#pragma once

#include <optional>
#include <string_view>

namespace whoiscrf::text {

enum class SeparatorKind {
  kColon, kEllipsis, kTab, kWideSpace, kEquals, kBracket
};

struct SeparatorSplit {
  SeparatorKind kind;
  std::string_view title;  // text left of the separator, trimmed
  std::string_view value;  // text right of the separator, trimmed
};

// Finds the first-appearing separator in `line`, or nullopt if the line has
// none (in which case all its words are value words, per the paper).
// An equals sign is accepted as a separator when no colon precedes it.
// Lines of the form "[Title] value" (bracketed titles, as used by several
// Japanese registrars) split at the closing bracket.
// A colon that is part of "http://" or "https://" is not a separator.
std::optional<SeparatorSplit> FindSeparator(std::string_view line);

// Short stable name for a separator kind ("COLON", "ELLIPSIS", ...), used
// as a CRF attribute (the paper's "SEP" features distinguish records whose
// schema uses separators).
std::string_view SeparatorName(SeparatorKind kind);

}  // namespace whoiscrf::text
