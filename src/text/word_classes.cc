#include "text/word_classes.h"

#include <cctype>

#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
bool IsAsciiAlnum(char c) { return IsAsciiDigit(c) || IsAsciiAlpha(c); }

size_t CountIf(std::string_view w, bool (*pred)(char)) {
  size_t n = 0;
  for (char c : w) {
    if (pred(c)) ++n;
  }
  return n;
}

}  // namespace

bool IsFiveDigit(std::string_view w) {
  return w.size() == 5 && util::IsDigits(w);
}

bool IsNumber(std::string_view w) { return util::IsDigits(w); }

bool IsYear(std::string_view w) {
  return w.size() == 4 && util::IsDigits(w) && (w[0] == '1' || w[0] == '2') &&
         (w.substr(0, 2) == "19" || w.substr(0, 2) == "20");
}

bool IsDateLike(std::string_view w) {
  // Accept digit groups joined by '-', '/', or '.': 2015-02-14, 14/02/2015,
  // 2015.02.14; and dd-mon-yyyy: 14-feb-2015.
  int groups = 0;
  size_t i = 0;
  bool ok = true;
  while (i < w.size()) {
    size_t start = i;
    while (i < w.size() && IsAsciiAlnum(w[i])) ++i;
    if (i == start) { ok = false; break; }
    std::string_view group = w.substr(start, i - start);
    const bool digits = util::IsDigits(group);
    const bool alpha = CountIf(group, IsAsciiAlpha) == group.size();
    if (!digits && !(alpha && group.size() == 3)) { ok = false; break; }
    ++groups;
    if (i < w.size()) {
      if (w[i] != '-' && w[i] != '/' && w[i] != '.') { ok = false; break; }
      ++i;
      if (i == w.size()) { ok = false; break; }  // trailing separator
    }
  }
  if (!ok || groups != 3) return false;
  // At least one group must be a plausible year.
  for (std::string_view g : util::Split(w, w.find('-') != std::string_view::npos
                                               ? '-'
                                               : (w.find('/') != std::string_view::npos ? '/' : '.'))) {
    if (IsYear(g)) return true;
  }
  return false;
}

bool IsTimeLike(std::string_view w) {
  // hh:mm or hh:mm:ss, optionally with a trailing 'z' or timezone offset.
  auto parts = util::Split(w, ':');
  if (parts.size() != 2 && parts.size() != 3) return false;
  for (size_t i = 0; i < parts.size(); ++i) {
    std::string_view p = parts[i];
    if (i + 1 == parts.size()) {
      // Strip a trailing 'Z'/'z'.
      if (!p.empty() && (p.back() == 'z' || p.back() == 'Z')) {
        p.remove_suffix(1);
      }
    }
    if (p.size() < 1 || p.size() > 2 || !util::IsDigits(p)) return false;
  }
  return true;
}

bool IsEmail(std::string_view w) {
  const size_t at = w.find('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= w.size()) {
    return false;
  }
  if (w.find('@', at + 1) != std::string_view::npos) return false;
  std::string_view domain = w.substr(at + 1);
  return IsDomainName(domain);
}

bool IsPhoneLike(std::string_view w) {
  // Require at least 7 digits and only phone punctuation between them.
  size_t digits = 0;
  for (char c : w) {
    if (IsAsciiDigit(c)) {
      ++digits;
    } else if (c != '+' && c != '-' && c != '.' && c != '(' && c != ')' &&
               c != ' ' && c != 'x' && c != 'X') {
      return false;
    }
  }
  return digits >= 7 && digits <= 17;
}

bool IsUrl(std::string_view w) {
  std::string lower = util::ToLower(w);
  if (util::StartsWith(lower, "http://") ||
      util::StartsWith(lower, "https://") ||
      util::StartsWith(lower, "ftp://")) {
    return true;
  }
  return util::StartsWith(lower, "www.") && IsDomainName(lower);
}

bool IsIpv4(std::string_view w) {
  auto parts = util::Split(w, '.');
  if (parts.size() != 4) return false;
  for (std::string_view p : parts) {
    if (p.empty() || p.size() > 3 || !util::IsDigits(p)) return false;
    int v = 0;
    for (char c : p) v = v * 10 + (c - '0');
    if (v > 255) return false;
  }
  return true;
}

bool IsDomainName(std::string_view w) {
  if (w.size() < 4 || w.size() > 253) return false;
  if (IsIpv4(w)) return false;
  auto labels = util::Split(w, '.');
  if (labels.size() < 2) return false;
  for (std::string_view label : labels) {
    if (label.empty() || label.size() > 63) return false;
    if (label.front() == '-' || label.back() == '-') return false;
    for (char c : label) {
      if (!IsAsciiAlnum(c) && c != '-') return false;
    }
  }
  // TLD must be alphabetic (or punycode).
  std::string_view tld = labels.back();
  if (util::StartsWith(tld, "xn--")) return true;
  return CountIf(tld, IsAsciiAlpha) == tld.size() && tld.size() >= 2;
}

bool IsPunycode(std::string_view w) {
  std::string lower = util::ToLower(w);
  if (util::StartsWith(lower, "xn--")) return true;
  return lower.find(".xn--") != std::string::npos;
}

bool IsCountryCode(std::string_view w) {
  return w.size() == 2 && w[0] >= 'A' && w[0] <= 'Z' && w[1] >= 'A' &&
         w[1] <= 'Z';
}

std::string_view WordClassName(WordClass cls) {
  switch (cls) {
    case WordClass::kFiveDigit: return "CLS_5DIGIT";
    case WordClass::kNumber: return "CLS_NUMBER";
    case WordClass::kYear: return "CLS_YEAR";
    case WordClass::kDateLike: return "CLS_DATE";
    case WordClass::kTimeLike: return "CLS_TIME";
    case WordClass::kEmail: return "CLS_EMAIL";
    case WordClass::kPhoneLike: return "CLS_PHONE";
    case WordClass::kUrl: return "CLS_URL";
    case WordClass::kIpv4: return "CLS_IPV4";
    case WordClass::kDomain: return "CLS_DOMAIN";
    case WordClass::kPunycode: return "CLS_PUNYCODE";
    case WordClass::kCountryCode: return "CLS_CC";
    case WordClass::kUpperWord: return "CLS_UPPER";
    case WordClass::kCapitalized: return "CLS_CAP";
    case WordClass::kAlnumMixed: return "CLS_ALNUM";
  }
  return "CLS_?";
}

std::vector<WordClass> ClassifyWord(std::string_view w) {
  std::vector<WordClass> out;
  ClassifyWord(w, out);
  return out;
}

void ClassifyWord(std::string_view w, std::vector<WordClass>& out) {
  out.clear();
  if (w.empty()) return;
  if (IsFiveDigit(w)) out.push_back(WordClass::kFiveDigit);
  if (IsNumber(w)) out.push_back(WordClass::kNumber);
  if (IsYear(w)) out.push_back(WordClass::kYear);
  if (IsDateLike(w)) out.push_back(WordClass::kDateLike);
  if (IsTimeLike(w)) out.push_back(WordClass::kTimeLike);
  if (IsEmail(w)) out.push_back(WordClass::kEmail);
  if (!IsNumber(w) && !IsDateLike(w) && IsPhoneLike(w)) {
    out.push_back(WordClass::kPhoneLike);
  }
  if (IsUrl(w)) out.push_back(WordClass::kUrl);
  if (IsIpv4(w)) out.push_back(WordClass::kIpv4);
  if (IsDomainName(w) && !IsUrl(w)) out.push_back(WordClass::kDomain);
  if (IsPunycode(w)) out.push_back(WordClass::kPunycode);
  if (IsCountryCode(w)) out.push_back(WordClass::kCountryCode);

  const size_t letters = CountIf(w, IsAsciiAlpha);
  const size_t digits = CountIf(w, IsAsciiDigit);
  if (letters == w.size() && w.size() >= 3) {
    bool all_upper = true;
    for (char c : w) {
      if (c < 'A' || c > 'Z') { all_upper = false; break; }
    }
    if (all_upper) out.push_back(WordClass::kUpperWord);
  }
  if (letters == w.size() && w.size() >= 2 && w[0] >= 'A' && w[0] <= 'Z') {
    bool rest_lower = true;
    for (size_t i = 1; i < w.size(); ++i) {
      if (!(w[i] >= 'a' && w[i] <= 'z')) { rest_lower = false; break; }
    }
    if (rest_lower) out.push_back(WordClass::kCapitalized);
  }
  if (letters > 0 && digits > 0 && letters + digits == w.size()) {
    out.push_back(WordClass::kAlnumMixed);
  }
}

}  // namespace whoiscrf::text
