#include "text/word_classes.h"

#include "util/byte_scan.h"
#include "util/string_util.h"

namespace whoiscrf::text {

namespace {

namespace scan = util::scan;

bool IsAsciiDigit(char c) { return scan::InClass(c, scan::kDigit); }
bool IsAsciiAlnum(char c) { return scan::InClass(c, scan::kAlnum); }

size_t CountClass(std::string_view w, uint8_t mask) {
  size_t n = 0;
  for (char c : w) {
    if (scan::InClass(c, mask)) ++n;
  }
  return n;
}

char AsciiLowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c | 0x20) : c;
}

// Case-insensitive test against an all-lowercase `prefix`, equivalent to
// StartsWith(ToLower(w), prefix) without materializing the lowered copy.
bool StartsWithLowered(std::string_view w, std::string_view prefix) {
  if (w.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (AsciiLowerChar(w[i]) != prefix[i]) return false;
  }
  return true;
}

// Case-insensitive containment of an all-lowercase `needle`, equivalent to
// ToLower(w).find(needle) != npos.
bool ContainsLowered(std::string_view w, std::string_view needle) {
  if (w.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= w.size(); ++i) {
    if (StartsWithLowered(w.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

// Shared body of IsDomainName. The pre-change code lowered the word before
// the URL-path domain check, whose only case-sensitive step is the "xn--"
// TLD prefix; `fold_tld_case` reproduces that lowering without allocating.
bool DomainNameImpl(std::string_view w, bool fold_tld_case) {
  if (w.size() < 4 || w.size() > 253) return false;
  if (IsIpv4(w)) return false;
  if (w.find('.') == std::string_view::npos) return false;  // < 2 labels
  std::string_view tld;
  size_t start = 0;
  while (true) {
    const size_t pos = w.find('.', start);
    const std::string_view label =
        w.substr(start, (pos == std::string_view::npos ? w.size() : pos) -
                            start);
    if (label.empty() || label.size() > 63) return false;
    if (label.front() == '-' || label.back() == '-') return false;
    for (char c : label) {
      if (!IsAsciiAlnum(c) && c != '-') return false;
    }
    if (pos == std::string_view::npos) {
      tld = label;
      break;
    }
    start = pos + 1;
  }
  // TLD must be alphabetic (or punycode).
  if (fold_tld_case ? StartsWithLowered(tld, "xn--")
                    : util::StartsWith(tld, "xn--")) {
    return true;
  }
  return tld.size() >= 2 && CountClass(tld, scan::kAlpha) == tld.size();
}

}  // namespace

bool IsFiveDigit(std::string_view w) {
  return w.size() == 5 && util::IsDigits(w);
}

bool IsNumber(std::string_view w) { return util::IsDigits(w); }

bool IsYear(std::string_view w) {
  return w.size() == 4 && util::IsDigits(w) && (w[0] == '1' || w[0] == '2') &&
         (w.substr(0, 2) == "19" || w.substr(0, 2) == "20");
}

bool IsDateLike(std::string_view w) {
  // Accept digit groups joined by '-', '/', or '.': 2015-02-14, 14/02/2015,
  // 2015.02.14; and dd-mon-yyyy: 14-feb-2015.
  int groups = 0;
  size_t i = 0;
  bool ok = true;
  while (i < w.size()) {
    size_t start = i;
    while (i < w.size() && IsAsciiAlnum(w[i])) ++i;
    if (i == start) { ok = false; break; }
    std::string_view group = w.substr(start, i - start);
    const bool digits = util::IsDigits(group);
    const bool alpha = CountClass(group, scan::kAlpha) == group.size();
    if (!digits && !(alpha && group.size() == 3)) { ok = false; break; }
    ++groups;
    if (i < w.size()) {
      if (w[i] != '-' && w[i] != '/' && w[i] != '.') { ok = false; break; }
      ++i;
      if (i == w.size()) { ok = false; break; }  // trailing separator
    }
  }
  if (!ok || groups != 3) return false;
  // At least one group (splitting on the first-present of '-' '/' '.')
  // must be a plausible year.
  const char sep = w.find('-') != std::string_view::npos
                       ? '-'
                       : (w.find('/') != std::string_view::npos ? '/' : '.');
  size_t start = 0;
  while (true) {
    const size_t pos = w.find(sep, start);
    const std::string_view g =
        w.substr(start, (pos == std::string_view::npos ? w.size() : pos) -
                            start);
    if (IsYear(g)) return true;
    if (pos == std::string_view::npos) return false;
    start = pos + 1;
  }
}

bool IsTimeLike(std::string_view w) {
  // hh:mm or hh:mm:ss, optionally with a trailing 'z' or timezone offset.
  size_t parts = 0;
  size_t start = 0;
  while (true) {
    const size_t pos = w.find(':', start);
    const bool last = pos == std::string_view::npos;
    std::string_view p =
        w.substr(start, (last ? w.size() : pos) - start);
    if (++parts > 3) return false;
    if (last && !p.empty() && (p.back() == 'z' || p.back() == 'Z')) {
      p.remove_suffix(1);  // strip a trailing 'Z'/'z'
    }
    if (p.size() < 1 || p.size() > 2 || !util::IsDigits(p)) return false;
    if (last) break;
    start = pos + 1;
  }
  return parts == 2 || parts == 3;
}

bool IsEmail(std::string_view w) {
  const size_t at = w.find('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= w.size()) {
    return false;
  }
  if (w.find('@', at + 1) != std::string_view::npos) return false;
  std::string_view domain = w.substr(at + 1);
  return IsDomainName(domain);
}

bool IsPhoneLike(std::string_view w) {
  // Require at least 7 digits and only phone punctuation between them.
  size_t digits = 0;
  for (char c : w) {
    if (IsAsciiDigit(c)) {
      ++digits;
    } else if (c != '+' && c != '-' && c != '.' && c != '(' && c != ')' &&
               c != ' ' && c != 'x' && c != 'X') {
      return false;
    }
  }
  return digits >= 7 && digits <= 17;
}

bool IsUrl(std::string_view w) {
  if (StartsWithLowered(w, "http://") || StartsWithLowered(w, "https://") ||
      StartsWithLowered(w, "ftp://")) {
    return true;
  }
  return StartsWithLowered(w, "www.") && DomainNameImpl(w, true);
}

bool IsIpv4(std::string_view w) {
  size_t parts = 0;
  size_t start = 0;
  while (true) {
    const size_t pos = w.find('.', start);
    const std::string_view p =
        w.substr(start, (pos == std::string_view::npos ? w.size() : pos) -
                            start);
    if (++parts > 4) return false;
    if (p.empty() || p.size() > 3 || !util::IsDigits(p)) return false;
    int v = 0;
    for (char c : p) v = v * 10 + (c - '0');
    if (v > 255) return false;
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return parts == 4;
}

bool IsDomainName(std::string_view w) { return DomainNameImpl(w, false); }

bool IsPunycode(std::string_view w) {
  return StartsWithLowered(w, "xn--") || ContainsLowered(w, ".xn--");
}

bool IsCountryCode(std::string_view w) {
  return w.size() == 2 && w[0] >= 'A' && w[0] <= 'Z' && w[1] >= 'A' &&
         w[1] <= 'Z';
}

std::string_view WordClassName(WordClass cls) {
  switch (cls) {
    case WordClass::kFiveDigit: return "CLS_5DIGIT";
    case WordClass::kNumber: return "CLS_NUMBER";
    case WordClass::kYear: return "CLS_YEAR";
    case WordClass::kDateLike: return "CLS_DATE";
    case WordClass::kTimeLike: return "CLS_TIME";
    case WordClass::kEmail: return "CLS_EMAIL";
    case WordClass::kPhoneLike: return "CLS_PHONE";
    case WordClass::kUrl: return "CLS_URL";
    case WordClass::kIpv4: return "CLS_IPV4";
    case WordClass::kDomain: return "CLS_DOMAIN";
    case WordClass::kPunycode: return "CLS_PUNYCODE";
    case WordClass::kCountryCode: return "CLS_CC";
    case WordClass::kUpperWord: return "CLS_UPPER";
    case WordClass::kCapitalized: return "CLS_CAP";
    case WordClass::kAlnumMixed: return "CLS_ALNUM";
  }
  return "CLS_?";
}

std::vector<WordClass> ClassifyWord(std::string_view w) {
  std::vector<WordClass> out;
  ClassifyWord(w, out);
  return out;
}

void ClassifyWord(std::string_view w, std::vector<WordClass>& out) {
  out.clear();
  if (w.empty()) return;
  // Each predicate is evaluated at most once; the emission order matches
  // the membership tests exactly (it is part of the attribute contract).
  const bool number = IsNumber(w);
  const bool date = IsDateLike(w);
  const bool url = IsUrl(w);
  if (w.size() == 5 && number) out.push_back(WordClass::kFiveDigit);
  if (number) out.push_back(WordClass::kNumber);
  if (IsYear(w)) out.push_back(WordClass::kYear);
  if (date) out.push_back(WordClass::kDateLike);
  if (IsTimeLike(w)) out.push_back(WordClass::kTimeLike);
  if (IsEmail(w)) out.push_back(WordClass::kEmail);
  if (!number && !date && IsPhoneLike(w)) {
    out.push_back(WordClass::kPhoneLike);
  }
  if (url) out.push_back(WordClass::kUrl);
  if (IsIpv4(w)) out.push_back(WordClass::kIpv4);
  if (IsDomainName(w) && !url) out.push_back(WordClass::kDomain);
  if (IsPunycode(w)) out.push_back(WordClass::kPunycode);
  if (IsCountryCode(w)) out.push_back(WordClass::kCountryCode);

  const size_t letters = CountClass(w, scan::kAlpha);
  const size_t digits = CountClass(w, scan::kDigit);
  if (letters == w.size() && w.size() >= 3 &&
      CountClass(w, scan::kUpper) == w.size()) {
    out.push_back(WordClass::kUpperWord);
  }
  if (letters == w.size() && w.size() >= 2 && w[0] >= 'A' && w[0] <= 'Z' &&
      CountClass(w.substr(1), scan::kLower) == w.size() - 1) {
    out.push_back(WordClass::kCapitalized);
  }
  if (letters > 0 && digits > 0 && letters + digits == w.size()) {
    out.push_back(WordClass::kAlnumMixed);
  }
}

}  // namespace whoiscrf::text
