// Word-class detectors (paper §3.3, eq. 7): features that test for general
// classes of words — "contains a five-digit number", "looks like an email
// address" — rather than specific dictionary entries. These give the CRF
// generalization power on values it has never seen (every record has a
// different registrant email, but all emails look alike).
//
// Hand-rolled scanners instead of std::regex: these run on every word of
// every line, and std::regex is 50-100x slower than a direct scan.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace whoiscrf::text {

enum class WordClass {
  kFiveDigit,    // exactly five digits (US ZIP, eq. 7's example)
  kNumber,       // all digits, any length
  kYear,         // 19xx or 20xx
  kDateLike,     // contains date-ish structure, e.g. 2015-02-14 or 14-feb-2015
  kTimeLike,     // hh:mm[:ss]
  kEmail,        // local@domain.tld
  kPhoneLike,    // +1.8005551212, (858) 555-1212, 858-555-1212...
  kUrl,          // http(s)://... or www.-prefixed
  kIpv4,         // dotted quad
  kDomain,       // something.tld (at least one dot, alnum/hyphen labels)
  kPunycode,     // xn-- prefixed label
  kCountryCode,  // two ASCII letters, upper-case (US, CN, GB...)
  kUpperWord,    // all letters, all upper-case, length >= 3
  kCapitalized,  // first letter upper, rest lower
  kAlnumMixed,   // letters and digits mixed (ids, handles)
};

// Stable attribute name for a class ("CLS_5DIGIT", "CLS_EMAIL", ...).
std::string_view WordClassName(WordClass cls);

// All classes that `word` belongs to. A word can match several
// (e.g. "92093" is kFiveDigit and kNumber).
std::vector<WordClass> ClassifyWord(std::string_view word);

// Allocation-free variant: clears `out` and appends the classes. The hot
// tokenizer path calls this once per word with a reused buffer.
void ClassifyWord(std::string_view word, std::vector<WordClass>& out);

// Individual detectors, exposed for reuse by the rule-based baseline and by
// tests.
bool IsFiveDigit(std::string_view w);
bool IsNumber(std::string_view w);
bool IsYear(std::string_view w);
bool IsDateLike(std::string_view w);
bool IsTimeLike(std::string_view w);
bool IsEmail(std::string_view w);
bool IsPhoneLike(std::string_view w);
bool IsUrl(std::string_view w);
bool IsIpv4(std::string_view w);
bool IsDomainName(std::string_view w);
bool IsPunycode(std::string_view w);
bool IsCountryCode(std::string_view w);

}  // namespace whoiscrf::text
