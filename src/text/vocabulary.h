// Attribute dictionary with frequency trimming (paper §3.3: "We trim words
// that appear very infrequently from this list, but otherwise our dictionary
// is quite extensive, with tens of thousands of entries").
//
// Usage: Count() every attribute of every training line, then Freeze() with
// a minimum document frequency; afterwards Lookup() maps attribute strings
// to dense ids (or kNotFound for trimmed/unseen attributes).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace whoiscrf::text {

class Vocabulary {
 public:
  static constexpr int kNotFound = -1;

  Vocabulary() = default;

  // Increments the count of `attr`. Only valid before Freeze().
  void Count(std::string_view attr);

  // Builds the dense id space from all attributes with count >= min_count.
  // Ids are assigned in first-seen order, so vocabularies built from the
  // same stream are identical. Idempotent guard: throws if already frozen.
  void Freeze(uint32_t min_count = 1);

  bool frozen() const { return frozen_; }

  // Dense id of `attr`, or kNotFound. Valid only after Freeze().
  int Lookup(std::string_view attr) const;

  // Attribute string for a dense id. Valid only after Freeze().
  const std::string& Name(int id) const;

  // Number of retained attributes (after Freeze()).
  size_t size() const { return names_.size(); }

  // Number of distinct attributes counted (before trimming).
  size_t counted_size() const { return counts_.size(); }

  // Binary (de)serialization of a frozen vocabulary.
  void Save(std::ostream& os) const;
  static Vocabulary Load(std::istream& is);

 private:
  struct Entry {
    uint32_t count = 0;
    int64_t first_seen = 0;
  };
  // Transparent hashing so Lookup(string_view) does not allocate.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };
  std::unordered_map<std::string, Entry, SvHash, SvEq> counts_;
  std::unordered_map<std::string, int, SvHash, SvEq> ids_;
  std::vector<std::string> names_;
  int64_t next_seen_ = 0;
  bool frozen_ = false;
};

}  // namespace whoiscrf::text
