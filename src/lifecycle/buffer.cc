#include "lifecycle/buffer.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "whois/record_store.h"
#include "whois/training_data.h"

namespace whoiscrf::lifecycle {

namespace {

constexpr std::string_view kHeaderTag = "rbuf1";

// splitmix64-style mix of (seed, n): the whole reservoir state is (records,
// seen), so resume is just "reload and keep counting".
uint64_t Mix(uint64_t seed, uint64_t n) {
  uint64_t x = seed + n * 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ParseU64(std::string_view text, const char* what) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::runtime_error(std::string("RetrainBuffer: bad header field ") +
                             what);
  }
  return value;
}

}  // namespace

RetrainBuffer::RetrainBuffer(RetrainBufferOptions options)
    : options_(options) {
  if (options_.capacity == 0) {
    throw std::invalid_argument("RetrainBuffer: capacity must be >= 1");
  }
  records_.reserve(options_.capacity);
}

void RetrainBuffer::Add(whois::LabeledRecord record) {
  ++seen_;
  if (records_.size() < options_.capacity) {
    records_.push_back(std::move(record));
    return;
  }
  const uint64_t j = Mix(options_.seed, seen_) % seen_;
  if (j < options_.capacity) records_[j] = std::move(record);
}

void RetrainBuffer::Clear() { records_.clear(); }

void RetrainBuffer::Save(const std::string& prefix) const {
  whois::RecordStoreOptions store_options;
  // Header + every record fit one shard, so the rename at Finish() replaces
  // any previous save atomically.
  store_options.records_per_shard = options_.capacity + 1;
  whois::RecordStoreWriter writer(prefix, store_options);
  std::ostringstream header;
  header << kHeaderTag << '\t' << seen_ << '\t' << options_.capacity << '\t'
         << options_.seed;
  writer.Append(header.str());
  for (const whois::LabeledRecord& record : records_) {
    std::ostringstream body;
    whois::WriteLabeledRecords(body, {record});
    writer.Append(body.str());
  }
  writer.Finish();
}

bool RetrainBuffer::Load(const std::string& prefix) {
  std::unique_ptr<whois::RecordStoreReader> reader;
  try {
    reader = std::make_unique<whois::RecordStoreReader>(prefix);
  } catch (const std::runtime_error&) {
    return false;  // no store at this prefix
  }
  if (reader->size() == 0) {
    throw std::runtime_error("RetrainBuffer: store has no header entry");
  }
  const std::string header = reader->Get(0);
  std::vector<std::string_view> fields;
  std::string_view rest = header;
  while (!rest.empty()) {
    const size_t tab = rest.find('\t');
    fields.push_back(rest.substr(0, tab));
    if (tab == std::string_view::npos) break;
    rest.remove_prefix(tab + 1);
  }
  if (fields.size() != 4 || fields[0] != kHeaderTag) {
    throw std::runtime_error("RetrainBuffer: malformed store header");
  }
  const uint64_t seen = ParseU64(fields[1], "seen");
  const uint64_t capacity = ParseU64(fields[2], "capacity");
  const uint64_t seed = ParseU64(fields[3], "seed");
  if (capacity == 0) {
    throw std::runtime_error("RetrainBuffer: stored capacity is zero");
  }
  if (reader->size() - 1 > capacity) {
    throw std::runtime_error("RetrainBuffer: store exceeds its capacity");
  }
  // Adopt the stored reservoir parameters: determinism only holds when the
  // resumed run replays the same (seed, capacity) hash sequence.
  options_.capacity = static_cast<size_t>(capacity);
  options_.seed = seed;
  seen_ = seen;
  records_.clear();
  records_.reserve(options_.capacity);
  for (uint64_t i = 1; i < reader->size(); ++i) {
    std::istringstream body(reader->Get(i));
    std::vector<whois::LabeledRecord> parsed = whois::ReadLabeledRecords(body);
    if (parsed.size() != 1) {
      throw std::runtime_error(
          "RetrainBuffer: store entry is not a single labeled record");
    }
    records_.push_back(std::move(parsed.front()));
  }
  return true;
}

}  // namespace whoiscrf::lifecycle
