#include "lifecycle/controller.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cascade/cascade.h"
#include "obs/metrics.h"
#include "text/line_splitter.h"
#include "util/checkpoint.h"
#include "whois/stream_checkpoint.h"

namespace whoiscrf::lifecycle {

namespace {

constexpr std::string_view kStateTag = "lcs1";

// Ground-truth ParsedWhois from a labeled record, via the shared field
// extractor (same construction as bench_cascade's gold standard).
whois::ParsedWhois GoldParse(const whois::LabeledRecord& record) {
  const std::vector<text::Line> lines = text::SplitRecord(record.text);
  std::vector<whois::Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == whois::Level1Label::kRegistrant) {
      subs.push_back(
          record.sub_labels[i].value_or(whois::Level2Label::kOther));
    }
  }
  whois::ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const whois::ParsedWhois& a,
                              const whois::ParsedWhois& b) {
  const auto va = cascade::KeyFieldValues(a);
  const auto vb = cascade::KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

}  // namespace

std::string_view RetrainResultName(RetrainOutcome::Result result) {
  switch (result) {
    case RetrainOutcome::Result::kPromoted:
      return "promoted";
    case RetrainOutcome::Result::kRejected:
      return "rejected";
    case RetrainOutcome::Result::kCancelled:
      return "cancelled";
    case RetrainOutcome::Result::kNoData:
      return "no_data";
  }
  return "unknown";
}

LifecycleController::LifecycleController(
    std::shared_ptr<const whois::WhoisParser> initial,
    std::vector<whois::LabeledRecord> base_training, ControllerOptions options)
    : options_(std::move(options)),
      base_training_(std::move(base_training)),
      detector_(options_.drift),
      current_(std::move(initial)),
      buffer_(options_.buffer) {
  if (!current_) {
    throw std::invalid_argument("LifecycleController: initial model is null");
  }
  if (options_.holdout_fraction <= 0.0 || options_.holdout_fraction >= 1.0) {
    throw std::invalid_argument(
        "LifecycleController: holdout_fraction must be in (0, 1)");
  }
  auto& registry = obs::Registry::Global();
  harvested_total_ =
      registry.GetCounter("whoiscrf_lifecycle_harvested_total",
                          "records harvested into the retraining buffer");
  buffer_gauge_ = registry.GetGauge("whoiscrf_lifecycle_buffer_records",
                                    "records in the retraining buffer");
  const char* retrains_help = "retrain cycles by outcome";
  retrains_promoted_ =
      registry.GetCounter("whoiscrf_lifecycle_retrains_total", retrains_help,
                          {{"result", "promoted"}});
  retrains_rejected_ =
      registry.GetCounter("whoiscrf_lifecycle_retrains_total", retrains_help,
                          {{"result", "rejected"}});
  retrains_cancelled_ =
      registry.GetCounter("whoiscrf_lifecycle_retrains_total", retrains_help,
                          {{"result", "cancelled"}});
  rollbacks_total_ = registry.GetCounter(
      "whoiscrf_lifecycle_rollbacks_total",
      "automatic or manual rollbacks to the previous model");
  version_gauge_ = registry.GetGauge("whoiscrf_lifecycle_model_version",
                                     "live model version number");
  version_gauge_->Set(static_cast<double>(version_));
}

LifecycleController::~LifecycleController() {
  CancelRetrain();
  if (retrain_thread_.joinable()) retrain_thread_.join();
}

std::shared_ptr<const whois::WhoisParser> LifecycleController::Current()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t LifecycleController::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

void LifecycleController::set_on_swap(SwapCallback cb) {
  std::lock_guard<std::mutex> lock(swap_cb_mu_);
  on_swap_ = std::move(cb);
}

bool LifecycleController::Observe(const Observation& obs,
                                  const whois::LabeledRecord* truth) {
  const bool signal =
      obs.shadow_disagreed || obs.confidence < options_.confidence_floor;
  std::optional<SwapEvent> rollback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++consumed_;
    if (signal && truth != nullptr) {
      buffer_.Add(*truth);
      harvested_total_->Inc();
      buffer_gauge_->Set(static_cast<double>(buffer_.size()));
    }
    if (probation_active_ && obs.shadow_sampled) {
      ++probation_samples_;
      if (obs.shadow_disagreed) ++probation_bad_;
      if (probation_samples_ >= options_.probation_window) {
        const double rate = static_cast<double>(probation_bad_) /
                            static_cast<double>(probation_samples_);
        probation_active_ = false;
        if (rate >= options_.rollback_disagreement_rate) {
          std::ostringstream reason;
          reason << "post-swap shadow disagreement rate " << rate
                 << " over " << probation_samples_
                 << " samples exceeds rollback threshold "
                 << options_.rollback_disagreement_rate;
          rollback = RollbackLocked(reason.str());
        }
      }
    }
  }
  if (rollback) Publish(*rollback);
  return detector_.Observe(obs.registrar, signal);
}

size_t LifecycleController::buffer_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

RetrainOutcome LifecycleController::RetrainNow() {
  cancel_.store(false);
  return RunRetrain();
}

bool LifecycleController::StartRetrain() {
  if (retrain_active_.exchange(true)) return false;
  if (retrain_thread_.joinable()) retrain_thread_.join();
  cancel_.store(false);
  retrain_thread_ = std::thread([this] {
    RetrainOutcome outcome = RunRetrain();
    {
      std::lock_guard<std::mutex> lock(outcome_mu_);
      outcome_ = std::move(outcome);
    }
    retrain_active_.store(false);
  });
  return true;
}

std::optional<RetrainOutcome> LifecycleController::PollOutcome() {
  std::lock_guard<std::mutex> lock(outcome_mu_);
  std::optional<RetrainOutcome> out = std::move(outcome_);
  outcome_.reset();
  return out;
}

RetrainOutcome LifecycleController::WaitRetrain() {
  if (retrain_thread_.joinable()) retrain_thread_.join();
  std::optional<RetrainOutcome> out = PollOutcome();
  if (out) return *out;
  RetrainOutcome none;
  none.result = RetrainOutcome::Result::kNoData;
  none.version = version();
  none.reason = "no retrain was running";
  return none;
}

RetrainOutcome LifecycleController::RunRetrain() {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  RetrainOutcome outcome;

  std::vector<whois::LabeledRecord> harvested;
  std::shared_ptr<const whois::WhoisParser> incumbent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    harvested = buffer_.records();
    incumbent = current_;
  }
  if (harvested.size() < options_.min_retrain_records) {
    outcome.result = RetrainOutcome::Result::kNoData;
    outcome.version = version();
    std::ostringstream reason;
    reason << "buffer holds " << harvested.size() << " records, need "
           << options_.min_retrain_records;
    outcome.reason = reason.str();
    return outcome;
  }

  // Deterministic holdout split: every k-th harvested record gates, the
  // rest train.
  const size_t k = std::max<size_t>(
      2, static_cast<size_t>(std::llround(1.0 / options_.holdout_fraction)));
  std::vector<whois::LabeledRecord> holdout;
  std::vector<whois::LabeledRecord> train = base_training_;
  for (size_t i = 0; i < harvested.size(); ++i) {
    if (i % k == 0) {
      holdout.push_back(harvested[i]);
    } else {
      train.push_back(harvested[i]);
    }
  }

  whois::WhoisParserOptions train_options = options_.trainer;
  const auto should_stop = [this] { return cancel_.load(); };
  train_options.trainer.lbfgs.should_stop = should_stop;
  train_options.trainer.sgd.should_stop = should_stop;

  std::shared_ptr<const whois::WhoisParser> candidate;
  try {
    candidate = std::make_shared<const whois::WhoisParser>(
        whois::WhoisParser::Train(train, train_options));
  } catch (const std::exception& e) {
    outcome.result = RetrainOutcome::Result::kRejected;
    outcome.version = version();
    outcome.reason = std::string("training failed: ") + e.what();
    retrains_rejected_->Inc();
    std::lock_guard<std::mutex> lock(mu_);
    QuarantineLocked(nullptr, outcome.reason, "");
    return outcome;
  }
  if (cancel_.load()) {
    outcome.result = RetrainOutcome::Result::kCancelled;
    outcome.version = version();
    outcome.reason = "cancelled during training";
    retrains_cancelled_->Inc();
    return outcome;
  }

  outcome.gate = EvaluateGate(*candidate, *incumbent, holdout);
  if (cancel_.load()) {
    outcome.result = RetrainOutcome::Result::kCancelled;
    outcome.version = version();
    outcome.reason = "cancelled during gate evaluation";
    retrains_cancelled_->Inc();
    return outcome;
  }

  std::ostringstream gate_report;
  gate_report << "candidate_accuracy=" << outcome.gate.candidate_accuracy
              << " incumbent_accuracy=" << outcome.gate.incumbent_accuracy
              << " holdout_records=" << outcome.gate.holdout_records
              << " gate_epsilon=" << options_.gate_epsilon;

  if (outcome.gate.candidate_accuracy >=
      outcome.gate.incumbent_accuracy - options_.gate_epsilon) {
    SwapEvent event;
    {
      std::lock_guard<std::mutex> lock(mu_);
      event = SwapLocked(candidate, /*keep_previous=*/true);
      buffer_.Clear();
      buffer_gauge_->Set(0.0);
      probation_active_ = options_.probation_window > 0;
      probation_samples_ = 0;
      probation_bad_ = 0;
      outcome.version = version_;
      SaveStateLocked();
    }
    detector_.ClearAll();
    Publish(event);
    outcome.result = RetrainOutcome::Result::kPromoted;
    outcome.reason = gate_report.str();
    retrains_promoted_->Inc();
    return outcome;
  }

  outcome.result = RetrainOutcome::Result::kRejected;
  outcome.version = version();
  outcome.reason = "gate failed: " + gate_report.str();
  retrains_rejected_->Inc();
  {
    std::lock_guard<std::mutex> lock(mu_);
    QuarantineLocked(candidate.get(), outcome.reason, gate_report.str());
  }
  return outcome;
}

GateResult LifecycleController::EvaluateGate(
    const whois::WhoisParser& candidate, const whois::WhoisParser& incumbent,
    const std::vector<whois::LabeledRecord>& holdout) const {
  GateResult gate;
  gate.holdout_records = holdout.size();
  if (holdout.empty()) {
    gate.candidate_accuracy = 1.0;
    gate.incumbent_accuracy = 1.0;
    return gate;
  }
  whois::ParseWorkspace candidate_ws, incumbent_ws;
  size_t candidate_agree = 0, incumbent_agree = 0, total = 0;
  for (const whois::LabeledRecord& record : holdout) {
    const whois::ParsedWhois gold = GoldParse(record);
    candidate_agree += CountAgreeingKeyFields(
        candidate.Parse(record.text, candidate_ws), gold);
    incumbent_agree += CountAgreeingKeyFields(
        incumbent.Parse(record.text, incumbent_ws), gold);
    total += cascade::kNumKeyFields;
  }
  gate.candidate_accuracy =
      static_cast<double>(candidate_agree) / static_cast<double>(total);
  gate.incumbent_accuracy =
      static_cast<double>(incumbent_agree) / static_cast<double>(total);
  return gate;
}

LifecycleController::SwapEvent LifecycleController::SwapLocked(
    std::shared_ptr<const whois::WhoisParser> next, bool keep_previous) {
  SwapEvent event;
  event.old_version = version_;
  previous_ = keep_previous ? current_ : nullptr;
  current_ = std::move(next);
  ++version_;
  event.new_version = version_;
  event.model = current_;
  version_gauge_->Set(static_cast<double>(version_));
  return event;
}

std::optional<LifecycleController::SwapEvent>
LifecycleController::RollbackLocked(const std::string& reason) {
  if (!previous_) return std::nullopt;
  std::shared_ptr<const whois::WhoisParser> bad = current_;
  SwapEvent event = SwapLocked(previous_, /*keep_previous=*/false);
  rollbacks_total_->Inc();
  QuarantineLocked(bad.get(), "rolled back: " + reason, reason);
  SaveStateLocked();
  return event;
}

bool LifecycleController::Rollback(const std::string& reason) {
  std::optional<SwapEvent> event;
  {
    std::lock_guard<std::mutex> lock(mu_);
    event = RollbackLocked(reason);
  }
  if (!event) return false;
  Publish(*event);
  return true;
}

void LifecycleController::Publish(const SwapEvent& event) {
  SwapCallback cb;
  {
    std::lock_guard<std::mutex> lock(swap_cb_mu_);
    cb = on_swap_;
  }
  if (cb) cb(event.old_version, event.new_version, event.model);
}

void LifecycleController::QuarantineLocked(const whois::WhoisParser* model,
                                           const std::string& reason,
                                           const std::string& report) {
  const uint64_t id = quarantine_entries_.size();
  std::string model_file = "-";
  if (model != nullptr && !options_.state_dir.empty()) {
    model_file = "quarantine-model-" + std::to_string(id) + ".bin";
    std::ostringstream bytes;
    model->Save(bytes);
    util::AtomicWriteFile(options_.state_dir + "/" + model_file, bytes.str());
  }
  std::ostringstream body;
  body << "quarantined candidate model\n"
       << "model_file\t" << model_file << '\n';
  if (!report.empty()) body << "gate\t" << report << '\n';
  quarantine_entries_.push_back(
      whois::FormatQuarantineEntry(id, reason, body.str()));
  if (options_.state_dir.empty()) return;
  whois::RecordStoreOptions store_options;
  store_options.records_per_shard = quarantine_entries_.size() + 1;
  whois::RecordStoreWriter writer(QuarantinePrefix(), store_options);
  for (const std::string& entry : quarantine_entries_) writer.Append(entry);
  writer.Finish();
}

uint64_t LifecycleController::consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consumed_;
}

void LifecycleController::set_consumed(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  consumed_ = n;
}

std::string LifecycleController::StatePath() const {
  return options_.state_dir + "/lifecycle.state";
}

std::string LifecycleController::ModelPath(uint64_t version) const {
  return options_.state_dir + "/model-v" + std::to_string(version) + ".bin";
}

std::string LifecycleController::BufferPrefix() const {
  return options_.state_dir + "/buffer";
}

std::string LifecycleController::QuarantinePrefix() const {
  return options_.state_dir + "/models-quarantine";
}

void LifecycleController::SaveState() {
  std::lock_guard<std::mutex> lock(mu_);
  SaveStateLocked();
}

void LifecycleController::SaveStateLocked() {
  if (options_.state_dir.empty()) return;
  // Model bytes land durably before the state file that references them,
  // so a crash between the two writes leaves a loadable older state.
  std::ostringstream model_bytes;
  current_->Save(model_bytes);
  util::AtomicWriteFile(ModelPath(version_), model_bytes.str());
  buffer_.Save(BufferPrefix());
  std::ostringstream state;
  state << kStateTag << '\n'
        << "version\t" << version_ << '\n'
        << "model\tmodel-v" << version_ << ".bin\n"
        << "consumed\t" << consumed_ << '\n';
  util::AtomicWriteFile(StatePath(), state.str());
}

bool LifecycleController::LoadState() {
  if (options_.state_dir.empty()) return false;
  std::string text;
  if (!util::ReadFileToString(StatePath(), text)) return false;
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kStateTag) {
    throw std::runtime_error("LifecycleController: bad state file tag");
  }
  uint64_t version = 0, consumed = 0;
  std::string model_file;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      throw std::runtime_error("LifecycleController: malformed state line");
    }
    const std::string key = line.substr(0, tab);
    const std::string value = line.substr(tab + 1);
    if (key == "version") {
      version = std::stoull(value);
    } else if (key == "model") {
      model_file = value;
    } else if (key == "consumed") {
      consumed = std::stoull(value);
    }
    // Unknown keys are ignored for forward compatibility.
  }
  if (version == 0 || model_file.empty()) {
    throw std::runtime_error("LifecycleController: incomplete state file");
  }
  auto model = std::make_shared<const whois::WhoisParser>(
      whois::WhoisParser::LoadFile(options_.state_dir + "/" + model_file));

  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(model);
  previous_.reset();  // rollback history is not persisted
  version_ = version;
  consumed_ = consumed;
  probation_active_ = false;
  probation_samples_ = 0;
  probation_bad_ = 0;
  buffer_.Load(BufferPrefix());
  buffer_gauge_->Set(static_cast<double>(buffer_.size()));
  version_gauge_->Set(static_cast<double>(version_));
  quarantine_entries_.clear();
  try {
    whois::RecordStoreReader reader(QuarantinePrefix());
    quarantine_entries_.reserve(reader.size());
    for (uint64_t i = 0; i < reader.size(); ++i) {
      quarantine_entries_.push_back(reader.Get(i));
    }
  } catch (const std::runtime_error&) {
    // No quarantine store yet.
  }
  return true;
}

}  // namespace whoiscrf::lifecycle
