#include "lifecycle/confidence.h"

#include <vector>

#include "crf/inference.h"
#include "text/line_splitter.h"

namespace whoiscrf::lifecycle {

MarginalScorer::MarginalScorer(const whois::WhoisParser& parser)
    : parser_(&parser), tokenizer_(parser.options().tokenizer) {}

double MarginalScorer::Score(std::string_view record_text,
                             crf::Workspace& ws) const {
  const std::vector<text::Line> lines = text::SplitRecord(record_text);
  if (lines.empty()) return 1.0;
  const crf::CrfModel& model = parser_->level1_model();
  model.CompileInto(tokenizer_, lines, ws);
  if (ws.seq.empty()) return 1.0;
  model.ComputeScores(ws.seq, ws.scores);
  const crf::Posteriors& post =
      crf::ForwardBackward(ws.scores, ws, /*with_edges=*/false);
  const int L = post.L;
  double sum = 0.0;
  for (int t = 0; t < post.T; ++t) {
    double best = 0.0;
    const double* node = &post.node[static_cast<size_t>(t) * L];
    for (int j = 0; j < L; ++j) {
      if (node[j] > best) best = node[j];
    }
    sum += best;
  }
  return sum / static_cast<double>(post.T);
}

}  // namespace whoiscrf::lifecycle
