// Per-record CRF confidence from level-1 label marginals.
//
// ParsedWhois::log_prob (the Viterbi path's normalized log-probability) is
// the cheap confidence the parse path already computes; the marginal
// scorer here is the sharper signal the drift detector can opt into: the
// mean over lines of max_j Pr(y_t = j | x) from forward-backward. A
// record whose template the model knows scores near 1.0 on every line; a
// drifted record drags individual lines toward uniform even when the
// Viterbi path as a whole still looks plausible.
#pragma once

#include <string_view>

#include "crf/workspace.h"
#include "text/tokenizer.h"
#include "whois/whois_parser.h"

namespace whoiscrf::lifecycle {

class MarginalScorer {
 public:
  // Borrows `parser`; the scorer must not outlive it.
  explicit MarginalScorer(const whois::WhoisParser& parser);

  // Mean max level-1 node marginal over the record's lines, in [0, 1].
  // Empty records score 1.0 (nothing to be unsure about). Safe to call
  // concurrently with distinct workspaces.
  double Score(std::string_view record_text, crf::Workspace& ws) const;

 private:
  const whois::WhoisParser* parser_;
  text::Tokenizer tokenizer_;
};

}  // namespace whoiscrf::lifecycle
