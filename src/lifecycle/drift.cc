#include "lifecycle/drift.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace whoiscrf::lifecycle {

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options) {
  if (options_.window == 0) {
    throw std::invalid_argument("DriftDetector: window must be >= 1");
  }
  if (options_.clear_threshold >= options_.trip_threshold) {
    throw std::invalid_argument(
        "DriftDetector: clear_threshold must be below trip_threshold");
  }
  auto& registry = obs::Registry::Global();
  alarms_total_ = registry.GetCounter(
      "whoiscrf_lifecycle_drift_alarms_total",
      "per-registrar drift alarms tripped");
  alarmed_gauge_ = registry.GetGauge(
      "whoiscrf_lifecycle_registrars_alarmed",
      "registrars currently in the alarmed state");
}

bool DriftDetector::Observe(const std::string& registrar, bool drift_signal) {
  std::lock_guard<std::mutex> lock(mu_);
  DriftState& s = entries_[registrar].state;
  ++s.pending;
  if (drift_signal) ++s.pending_bad;
  if (s.pending < options_.window) return false;

  const double rate =
      static_cast<double>(s.pending_bad) / static_cast<double>(s.pending);
  s.last_rate = rate;
  s.pending = 0;
  s.pending_bad = 0;
  ++s.windows;

  if (rate >= options_.trip_threshold) {
    ++s.hot_streak;
    s.cool_streak = 0;
  } else if (rate <= options_.clear_threshold) {
    ++s.cool_streak;
    s.hot_streak = 0;
  } else {
    // Dead band: neither streak advances, so a rate hovering between the
    // thresholds can never trip OR clear — the no-flap guarantee.
    s.hot_streak = 0;
    s.cool_streak = 0;
  }

  if (!s.alarmed && s.hot_streak >= options_.trip_windows) {
    s.alarmed = true;
    ++s.alarms_tripped;
    ++alarmed_count_;
    alarms_total_->Inc();
    alarmed_gauge_->Set(static_cast<double>(alarmed_count_));
    return true;
  }
  if (s.alarmed && s.cool_streak >= options_.clear_windows) {
    s.alarmed = false;
    --alarmed_count_;
    alarmed_gauge_->Set(static_cast<double>(alarmed_count_));
  }
  return false;
}

bool DriftDetector::Alarmed(const std::string& registrar) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(registrar);
  return it != entries_.end() && it->second.state.alarmed;
}

std::vector<std::string> DriftDetector::AlarmedRegistrars() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [registrar, entry] : entries_) {
    if (entry.state.alarmed) out.push_back(registrar);
  }
  return out;
}

DriftState DriftDetector::State(const std::string& registrar) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(registrar);
  return it != entries_.end() ? it->second.state : DriftState{};
}

void DriftDetector::Clear(const std::string& registrar) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(registrar);
  if (it == entries_.end()) return;
  DriftState& s = it->second.state;
  if (s.alarmed) {
    s.alarmed = false;
    --alarmed_count_;
    alarmed_gauge_->Set(static_cast<double>(alarmed_count_));
  }
  s.hot_streak = 0;
  s.cool_streak = 0;
  s.pending = 0;
  s.pending_bad = 0;
}

void DriftDetector::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [registrar, entry] : entries_) {
    DriftState& s = entry.state;
    s.alarmed = false;
    s.hot_streak = 0;
    s.cool_streak = 0;
    s.pending = 0;
    s.pending_bad = 0;
  }
  alarmed_count_ = 0;
  alarmed_gauge_->Set(0.0);
}

}  // namespace whoiscrf::lifecycle
