// Self-healing model lifecycle: harvest -> retrain -> gate -> promote ->
// watch, with automatic rollback (ROADMAP item 4; docs/lifecycle.md is the
// narrative spec).
//
// The controller owns the live model as a versioned
// std::shared_ptr<const WhoisParser>: readers snapshot the pointer (RCU
// style — in-flight parses finish on the model they started with) and a
// promotion or rollback is one pointer swap. Around that swap it runs the
// paper's §5.3 maintainability workflow as a closed loop:
//
//   Observe   every parsed record reports a per-registrar drift signal
//             (cascade shadow disagreement or CRF confidence below the
//             harvest floor); signaled records with ground truth are
//             reservoir-sampled into the retraining buffer and the signal
//             feeds the hysteresis DriftDetector.
//   Retrain   a candidate is trained from base corpus + buffer on a
//             background thread, cancellable between optimizer iterations
//             (crf::LbfgsOptimizer/SgdOptimizer should_stop).
//   Gate      the candidate must match the incumbent's key-field accuracy
//             on a held-out slice of the buffer to within gate_epsilon.
//             Fail-closed: a failing candidate is quarantined with its
//             gate numbers and NEVER promoted.
//   Watch     after a promotion the next probation_window shadow samples
//             are scored; a disagreement-rate spike rolls back to the
//             previous model (with a fresh, strictly increasing version
//             number, so caches never confuse the restored model with its
//             first reign).
//
// Versions only move forward; every swap goes through the same on_swap
// callback the serve layer uses to re-key its result cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "lifecycle/buffer.h"
#include "lifecycle/drift.h"
#include "whois/record.h"
#include "whois/whois_parser.h"

namespace whoiscrf::obs {
class Counter;
class Gauge;
}  // namespace whoiscrf::obs

namespace whoiscrf::lifecycle {

struct ControllerOptions {
  DriftDetectorOptions drift;
  RetrainBufferOptions buffer;
  // Harvest floor for Observation::confidence (MarginalScorer scale,
  // [0, 1]): records scoring below it count as drift signals and are
  // harvested. Callers feeding a different confidence (e.g. raw log_prob)
  // must re-calibrate this.
  double confidence_floor = 0.6;
  // Promotion gate: candidate key-field accuracy on the holdout must be
  // >= incumbent accuracy - gate_epsilon.
  double gate_epsilon = 0.01;
  // Fraction of the buffer held out from training for the gate.
  double holdout_fraction = 0.25;
  // Minimum harvested records before a retrain is attempted.
  size_t min_retrain_records = 8;
  // Post-promotion probation: shadow samples scored before the promotion
  // is trusted; 0 disables the watchdog.
  size_t probation_window = 64;
  // Shadow disagreement rate over the probation window that triggers an
  // automatic rollback.
  double rollback_disagreement_rate = 0.5;
  // Training configuration for candidate models.
  whois::WhoisParserOptions trainer;
  // Directory for durable state (model files, buffer store, cursor,
  // quarantined candidates). Empty disables persistence. Must exist.
  std::string state_dir;
};

// One parsed record's lifecycle-relevant signals. `shadow_*` come from
// cascade::CascadeResult; callers without a cascade leave them false and
// rely on the confidence floor.
struct Observation {
  std::string registrar;
  double confidence = 1.0;
  bool shadow_sampled = false;
  bool shadow_disagreed = false;
};

struct GateResult {
  double candidate_accuracy = 0.0;
  double incumbent_accuracy = 0.0;
  size_t holdout_records = 0;
};

struct RetrainOutcome {
  enum class Result {
    kPromoted,   // candidate passed the gate and is now live
    kRejected,   // candidate failed the gate; quarantined
    kCancelled,  // CancelRetrain (or shutdown) interrupted training
    kNoData,     // buffer below min_retrain_records
  };
  Result result = Result::kNoData;
  uint64_t version = 0;  // live model version after this retrain concluded
  GateResult gate;
  std::string reason;
};

std::string_view RetrainResultName(RetrainOutcome::Result result);

class LifecycleController {
 public:
  // Notified after every swap (promotion OR rollback), outside the
  // controller's lock. The serve layer uses this to publish the model and
  // evict the old version's cache entries.
  using SwapCallback = std::function<void(
      uint64_t old_version, uint64_t new_version,
      std::shared_ptr<const whois::WhoisParser> model)>;

  // `initial` is live as version 1. `base_training` is the corpus every
  // candidate retrains from (plus the harvested buffer).
  LifecycleController(std::shared_ptr<const whois::WhoisParser> initial,
                      std::vector<whois::LabeledRecord> base_training,
                      ControllerOptions options = {});
  ~LifecycleController();  // cancels and joins any background retrain

  LifecycleController(const LifecycleController&) = delete;
  LifecycleController& operator=(const LifecycleController&) = delete;

  // RCU read side: a snapshot the caller may parse with indefinitely.
  std::shared_ptr<const whois::WhoisParser> Current() const;
  uint64_t version() const;
  void set_on_swap(SwapCallback cb);

  // Feeds one record's signals. `truth` (optional) is harvested into the
  // retraining buffer when the record signals drift. Returns true exactly
  // when this observation trips a NEW drift alarm for obs.registrar.
  bool Observe(const Observation& obs,
               const whois::LabeledRecord* truth = nullptr);

  size_t buffer_size() const;
  const DriftDetector& detector() const { return detector_; }
  DriftDetector& detector() { return detector_; }

  // Synchronous retrain-gate-promote cycle. Thread-safe, but only one
  // retrain (sync or background) runs at a time; a second caller blocks.
  RetrainOutcome RetrainNow();

  // Background retrain. Returns false when one is already running.
  bool StartRetrain();
  bool retraining() const { return retrain_active_.load(); }
  // Requests cancellation; the optimizer stops at the next iteration.
  void CancelRetrain() { cancel_.store(true); }
  // Consumes the finished background outcome, if any.
  std::optional<RetrainOutcome> PollOutcome();
  // Joins the background retrain and returns its outcome; kNoData when
  // none was running.
  RetrainOutcome WaitRetrain();

  // Reverts to the model that was live before the last promotion, under a
  // fresh version number. False when there is nothing to roll back to
  // (also after a rollback: only one step of history is kept).
  bool Rollback(const std::string& reason);

  // Input-stream cursor for kill/resume drivers (how many input records
  // have been fully observed); persisted with the rest of the state.
  uint64_t consumed() const;
  void set_consumed(uint64_t n);

  // Durable state under options_.state_dir: live model file, retraining
  // buffer, version counter, consumed cursor. SaveState is a no-op without
  // a state_dir; LoadState returns false when no state file exists and
  // throws on a corrupt one.
  void SaveState();
  bool LoadState();

  const ControllerOptions& options() const { return options_; }

 private:
  struct SwapEvent {
    uint64_t old_version = 0;
    uint64_t new_version = 0;
    std::shared_ptr<const whois::WhoisParser> model;
  };

  RetrainOutcome RunRetrain();
  GateResult EvaluateGate(const whois::WhoisParser& candidate,
                          const whois::WhoisParser& incumbent,
                          const std::vector<whois::LabeledRecord>& holdout)
      const;
  // Swaps `next` in as the live model under mu_; returns the event to
  // publish after the lock is dropped.
  SwapEvent SwapLocked(std::shared_ptr<const whois::WhoisParser> next,
                       bool keep_previous);
  std::optional<SwapEvent> RollbackLocked(const std::string& reason);
  void Publish(const SwapEvent& event);
  // Records a fail-closed quarantine entry (and, when `model` is non-null
  // and a state_dir is configured, the model binary next to it).
  void QuarantineLocked(const whois::WhoisParser* model,
                        const std::string& reason, const std::string& report);
  void SaveStateLocked();
  std::string StatePath() const;
  std::string ModelPath(uint64_t version) const;
  std::string BufferPrefix() const;
  std::string QuarantinePrefix() const;

  ControllerOptions options_;
  std::vector<whois::LabeledRecord> base_training_;
  DriftDetector detector_;

  mutable std::mutex mu_;  // model, buffer, probation, cursor, state I/O
  std::shared_ptr<const whois::WhoisParser> current_;
  std::shared_ptr<const whois::WhoisParser> previous_;
  uint64_t version_ = 1;
  RetrainBuffer buffer_;
  uint64_t consumed_ = 0;
  // Quarantine entries (FormatQuarantineEntry text), rewritten wholesale
  // to the quarantine store on every change — entries are rare and small
  // (the model binary lives in its own file), so a single-shard rewrite
  // buys an atomic-rename replace.
  std::vector<std::string> quarantine_entries_;
  // Probation watchdog state (active after a promotion).
  bool probation_active_ = false;
  uint64_t probation_samples_ = 0;
  uint64_t probation_bad_ = 0;

  std::mutex swap_cb_mu_;
  SwapCallback on_swap_;

  // One retrain at a time; guards the train -> gate -> promote sequence.
  std::mutex retrain_mu_;
  std::atomic<bool> retrain_active_{false};
  std::atomic<bool> cancel_{false};
  std::thread retrain_thread_;
  std::mutex outcome_mu_;
  std::optional<RetrainOutcome> outcome_;

  obs::Counter* harvested_total_ = nullptr;
  obs::Gauge* buffer_gauge_ = nullptr;
  obs::Counter* retrains_promoted_ = nullptr;
  obs::Counter* retrains_rejected_ = nullptr;
  obs::Counter* retrains_cancelled_ = nullptr;
  obs::Counter* rollbacks_total_ = nullptr;
  obs::Gauge* version_gauge_ = nullptr;
};

}  // namespace whoiscrf::lifecycle
