// Per-registrar drift detection with hysteresis (ROADMAP item 4; the
// online half of docs/lifecycle.md).
//
// The detector consumes one boolean "drift signal" per observed record —
// the cascade's shadow-guard disagreement (cascade::CascadeResult) or a
// CRF confidence below the harvest floor — bucketed by registrar, because
// format drift is a per-registrar event (the paper watched ONE large
// registrar change schema mid-measurement, §2.3). Signals accumulate into
// fixed-size windows; a window's bad-rate is compared against a trip
// threshold and a (lower) clear threshold, and an alarm changes state only
// after `trip_windows` / `clear_windows` CONSECUTIVE qualifying windows.
// The dead band between the thresholds plus the consecutive-window
// requirement is the hysteresis: a registrar oscillating around either
// threshold cannot flap the alarm.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace whoiscrf::obs {
class Counter;
class Gauge;
}  // namespace whoiscrf::obs

namespace whoiscrf::lifecycle {

struct DriftDetectorOptions {
  // Observations per evaluation window (per registrar).
  size_t window = 64;
  // A window with bad-rate >= trip_threshold is "hot"; an alarm trips
  // after `trip_windows` consecutive hot windows.
  double trip_threshold = 0.25;
  int trip_windows = 2;
  // A window with bad-rate <= clear_threshold is "cool"; an alarm clears
  // after `clear_windows` consecutive cool windows. Must be strictly
  // below trip_threshold — the gap is the hysteresis dead band.
  double clear_threshold = 0.08;
  int clear_windows = 2;
};

// Point-in-time view of one registrar's detector state.
struct DriftState {
  bool alarmed = false;
  uint64_t windows = 0;         // completed windows
  uint64_t alarms_tripped = 0;  // lifetime alarm count
  int hot_streak = 0;
  int cool_streak = 0;
  double last_rate = 0.0;       // bad-rate of the last completed window
  uint64_t pending = 0;         // observations in the current window
  uint64_t pending_bad = 0;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options = {});

  // Feeds one observation. Returns true exactly when this observation
  // completes a window that trips a NEW alarm for `registrar`.
  bool Observe(const std::string& registrar, bool drift_signal);

  bool Alarmed(const std::string& registrar) const;
  std::vector<std::string> AlarmedRegistrars() const;
  DriftState State(const std::string& registrar) const;

  // Acknowledges an alarm (the retraining controller clears alarms after
  // a successful promotion — the new model is presumed to cover the
  // drift; if it does not, the alarm re-trips on fresh windows).
  void Clear(const std::string& registrar);
  void ClearAll();

  const DriftDetectorOptions& options() const { return options_; }

 private:
  struct Entry {
    DriftState state;
  };

  const DriftDetectorOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  obs::Counter* alarms_total_ = nullptr;
  obs::Gauge* alarmed_gauge_ = nullptr;
  size_t alarmed_count_ = 0;  // guarded by mu_; mirrors alarmed_gauge_
};

}  // namespace whoiscrf::lifecycle
