// Bounded retraining buffer: the labeled records harvested from
// low-confidence / shadow-disagreeing traffic that the next retrain will
// learn from (docs/lifecycle.md "Harvesting").
//
// Reservoir sampling keeps the buffer a uniform sample of everything
// harvested since the last promotion while holding memory at `capacity`
// records no matter how long drift persists. The reservoir is
// *stateless-deterministic*: the keep/replace decision for the n-th
// harvested record is a pure hash of (seed, n), so reloading a persisted
// buffer and continuing to harvest reproduces exactly the buffer an
// uninterrupted run would hold — the property the kill/resume test pins.
//
// Persistence rides the sharded record store (whois/record_store.h):
// entry 0 is a small header carrying the reservoir position, each later
// entry is one labeled record in the training-data text format. The store
// finalizes via .tmp + rename, so a crash mid-save leaves the previous
// buffer intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "whois/record.h"

namespace whoiscrf::lifecycle {

struct RetrainBufferOptions {
  size_t capacity = 512;
  uint64_t seed = 1;
};

class RetrainBuffer {
 public:
  explicit RetrainBuffer(RetrainBufferOptions options = {});

  // Offers one harvested record to the reservoir.
  void Add(whois::LabeledRecord record);

  size_t size() const { return records_.size(); }
  uint64_t seen() const { return seen_; }
  const std::vector<whois::LabeledRecord>& records() const {
    return records_;
  }

  // Empties the reservoir (after a successful retrain consumed it) while
  // keeping `seen` monotonic so determinism is preserved across drains.
  void Clear();

  // Persists to the record store at `prefix` (single shard, atomically
  // finalized). Throws on I/O failure.
  void Save(const std::string& prefix) const;
  // Restores a persisted buffer; false when no store exists at `prefix`
  // (the buffer is left empty). Throws on a malformed store.
  bool Load(const std::string& prefix);

  const RetrainBufferOptions& options() const { return options_; }

 private:
  RetrainBufferOptions options_;
  std::vector<whois::LabeledRecord> records_;
  uint64_t seen_ = 0;
};

}  // namespace whoiscrf::lifecycle
