// whoiscrf serve — the parse service: answers raw WHOIS records with their
// parsed JSON over the length-prefixed framing protocol (docs/formats.md
// "Parse service framing"). SIGTERM/SIGINT triggers a graceful drain: stop
// accepting, finish every admitted request, then exit (so --metrics-out,
// handled by cli::RunCommand, still flushes a complete snapshot).
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "cli/commands.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int /*signum*/) { g_stop = 1; }

}  // namespace

int CmdServe(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const auto threads = static_cast<size_t>(flags.GetInt("threads", 0));
  const auto queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 128));
  const auto cache_entries =
      static_cast<size_t>(flags.GetInt("cache-entries", 4096));
  const auto deadline_ms =
      static_cast<uint64_t>(flags.GetInt("deadline-ms", 0));
  const auto max_record_bytes = static_cast<uint64_t>(flags.GetInt(
      "max-record-bytes",
      static_cast<int64_t>(serve::kDefaultMaxFrameBytes)));
  // Self-drain after N ms, for tests and demos that cannot send signals.
  const auto drain_after_ms =
      static_cast<uint64_t>(flags.GetInt("drain-after-ms", 0));
  if (model_path.empty()) {
    std::fprintf(stderr, "serve: --model is required\n");
    return 2;
  }

  const whois::WhoisParser parser = whois::WhoisParser::LoadFile(model_path);

  serve::ParseServerOptions options;
  options.port = port;
  options.max_frame_bytes = max_record_bytes;
  options.service.threads = threads;
  options.service.queue_capacity = queue_capacity;
  options.service.cache_entries = cache_entries;
  options.service.deadline_ms = deadline_ms;
  options.service.max_record_bytes = max_record_bytes;
  serve::ParseServer server(parser, options);

  std::fprintf(stderr,
               "serve: listening on 127.0.0.1:%u (%zu workers, queue %zu, "
               "cache %zu entries)\n",
               static_cast<unsigned>(server.port()),
               server.service().threads(), queue_capacity, cache_entries);

  g_stop = 0;
  auto* previous_term = std::signal(SIGTERM, OnSignal);
  auto* previous_int = std::signal(SIGINT, OnSignal);
  uint64_t waited_ms = 0;
  while (g_stop == 0 &&
         (drain_after_ms == 0 || waited_ms < drain_after_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    waited_ms += 50;
  }
  std::signal(SIGTERM, previous_term);
  std::signal(SIGINT, previous_int);

  std::fprintf(stderr, "serve: draining (in-flight requests finish)...\n");
  server.Shutdown();

  const auto& registry = obs::Registry::Global();
  const auto by_status = [&](const char* status) {
    return static_cast<unsigned long long>(registry.CounterValue(
        "whoiscrf_serve_requests_total", {{"status", status}}));
  };
  std::fprintf(stderr,
               "serve: done — %llu ok (%llu cached), %llu busy, "
               "%llu deadline, %llu error\n",
               by_status("ok"),
               static_cast<unsigned long long>(
                   registry.CounterValue("whoiscrf_serve_cache_hits_total")),
               by_status("busy"), by_status("deadline"), by_status("error"));
  return 0;
}

}  // namespace whoiscrf::cli
