// whoiscrf serve — the parse service: answers raw WHOIS records with their
// parsed JSON over the length-prefixed framing protocol (docs/formats.md
// "Parse service framing"). SIGTERM/SIGINT triggers a graceful drain: stop
// accepting, finish every admitted request, then exit (so --metrics-out,
// handled by cli::RunCommand, still flushes a complete snapshot).
//
// --model-watch turns on the hot-swap path (docs/lifecycle.md "Hot
// swap"): the model file is polled for mtime/size changes (and SIGHUP
// forces a reload check), a changed file is loaded off the serving path,
// and the new model is published atomically through serve::ModelHost —
// in-flight requests finish on the model they started with and a load
// failure keeps the current model serving (fail-closed).
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <thread>

#include "cascade/cascade.h"
#include "cli/commands.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_hup = 0;

void OnSignal(int /*signum*/) { g_stop = 1; }

void OnHup(int /*signum*/) { g_hup = 1; }

}  // namespace

int CmdServe(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const auto port = static_cast<uint16_t>(flags.GetInt("port", 0));
  const auto threads = static_cast<size_t>(flags.GetInt("threads", 0));
  const auto queue_capacity =
      static_cast<size_t>(flags.GetInt("queue-capacity", 128));
  const auto cache_entries =
      static_cast<size_t>(flags.GetInt("cache-entries", 4096));
  const auto deadline_ms =
      static_cast<uint64_t>(flags.GetInt("deadline-ms", 0));
  const auto max_record_bytes = static_cast<uint64_t>(flags.GetInt(
      "max-record-bytes",
      static_cast<int64_t>(serve::kDefaultMaxFrameBytes)));
  // Self-drain after N ms, for tests and demos that cannot send signals.
  const auto drain_after_ms =
      static_cast<uint64_t>(flags.GetInt("drain-after-ms", 0));
  const std::string frontend = flags.GetString("serve-frontend");
  const auto event_loops =
      static_cast<size_t>(flags.GetInt("event-loops", 1));
  const auto writeq_max_bytes = static_cast<size_t>(
      flags.GetInt("writeq-max-bytes", 4 * 1024 * 1024));
  const auto listen_backlog =
      static_cast<int>(flags.GetInt("listen-backlog", 1024));
  // --model-watch enables hot model reload; --model-watch-ms is the poll
  // cadence for mtime/size changes (SIGHUP is checked on the same tick).
  const bool model_watch = flags.GetBool("model-watch");
  const auto model_watch_ms = static_cast<uint64_t>(
      flags.GetInt("model-watch-ms", 1000));
  // --cascade-data enables the parser cascade (docs/cascade.md): requests
  // dispatch template -> rules -> CRF instead of always paying CRF cost.
  const std::string cascade_data = flags.GetString("cascade-data");
  cascade::CascadeOptions cascade_options;
  if (!cascade_data.empty()) {
    cascade_options.shadow_sample_rate = flags.GetDouble("shadow-rate", 0.0);
    cascade_options.rule_coverage_min =
        flags.GetDouble("rule-coverage-min", cascade_options.rule_coverage_min);
    cascade_options.rule_max_unknown_titles = static_cast<size_t>(
        flags.GetInt("rule-max-unknown",
                     static_cast<int64_t>(
                         cascade_options.rule_max_unknown_titles)));
    if (cascade_options.shadow_sample_rate < 0.0 ||
        cascade_options.shadow_sample_rate > 1.0) {
      std::fprintf(stderr, "serve: --shadow-rate must be in [0, 1]\n");
      return 2;
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "serve: --model is required\n");
    return 2;
  }
  if (model_watch && !cascade_data.empty()) {
    // The cascade binds a fixed parser via parse_override; the hot-swap
    // path replaces the parser under it. Pick one.
    std::fprintf(stderr,
                 "serve: --model-watch and --cascade-data are mutually "
                 "exclusive\n");
    return 2;
  }
  if (model_watch && model_watch_ms == 0) {
    std::fprintf(stderr, "serve: --model-watch-ms must be > 0\n");
    return 2;
  }
  serve::Frontend frontend_mode = serve::Frontend::kEpoll;
  if (frontend == "threads") {
    frontend_mode = serve::Frontend::kThreads;
  } else if (!frontend.empty() && frontend != "epoll") {
    std::fprintf(stderr,
                 "serve: --serve-frontend must be 'epoll' or 'threads'\n");
    return 2;
  }

  // Held by shared_ptr so the hot-swap path can retire it only after the
  // last in-flight request drops its snapshot; without --model-watch the
  // server just borrows the object for its lifetime.
  const auto initial = std::make_shared<const whois::WhoisParser>(
      whois::WhoisParser::LoadFile(model_path));

  // Declared before the server so worker threads never outlive them.
  std::unique_ptr<serve::ModelHost> host;
  if (model_watch) host = std::make_unique<serve::ModelHost>(initial);
  std::unique_ptr<cascade::CascadeParser> cascade_parser;
  if (!cascade_data.empty()) {
    cascade_parser = std::make_unique<cascade::CascadeParser>(
        initial.get(), whois::ReadLabeledRecordsFile(cascade_data),
        cascade_options);
  }

  serve::ParseServerOptions options;
  options.port = port;
  options.max_frame_bytes = max_record_bytes;
  options.frontend = frontend_mode;
  options.event_loops = event_loops;
  options.write_queue_max_bytes = writeq_max_bytes;
  options.listen_backlog = listen_backlog;
  options.service.threads = threads;
  options.service.queue_capacity = queue_capacity;
  options.service.cache_entries = cache_entries;
  options.service.deadline_ms = deadline_ms;
  options.service.max_record_bytes = max_record_bytes;
  if (cascade_parser) {
    options.service.parse_override = [&cascade = *cascade_parser](
                                         const std::string& record,
                                         whois::ParseWorkspace& ws) {
      return cascade.ParseRecord(record, ws);
    };
  }
  std::optional<serve::ParseServer> server;
  if (host) {
    server.emplace(host.get(), options);
  } else {
    server.emplace(*initial, options);
  }

  std::fprintf(stderr,
               "serve: listening on 127.0.0.1:%u (%s frontend, %zu workers, "
               "queue %zu, cache %zu entries%s)\n",
               static_cast<unsigned>(server->port()),
               frontend_mode == serve::Frontend::kEpoll ? "epoll" : "threads",
               server->service().threads(), queue_capacity, cache_entries,
               host ? ", model-watch" : "");

  g_stop = 0;
  g_hup = 0;
  auto* previous_term = std::signal(SIGTERM, OnSignal);
  auto* previous_int = std::signal(SIGINT, OnSignal);
  auto* previous_hup = host ? std::signal(SIGHUP, OnHup) : nullptr;

  // Model watcher: polls the file and swaps through the host. Runs beside
  // the signal loop; a load failure logs and keeps the current model.
  std::atomic<bool> watch_stop{false};
  std::thread watcher;
  if (host) {
    watcher = std::thread([&] {
      struct stat st{};
      time_t last_mtime = 0;
      off_t last_size = -1;
      if (::stat(model_path.c_str(), &st) == 0) {
        last_mtime = st.st_mtime;
        last_size = st.st_size;
      }
      while (!watch_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(model_watch_ms));
        bool reload = g_hup != 0;
        if (::stat(model_path.c_str(), &st) == 0 &&
            (st.st_mtime != last_mtime || st.st_size != last_size)) {
          last_mtime = st.st_mtime;
          last_size = st.st_size;
          reload = true;
        }
        if (!reload || watch_stop.load(std::memory_order_relaxed)) continue;
        g_hup = 0;
        try {
          auto next = std::make_shared<const whois::WhoisParser>(
              whois::WhoisParser::LoadFile(model_path));
          const uint64_t version = host->Swap(std::move(next));
          std::fprintf(stderr,
                       "serve: hot-swapped model from %s (now version "
                       "%llu)\n",
                       model_path.c_str(),
                       static_cast<unsigned long long>(version));
        } catch (const std::exception& e) {
          std::fprintf(
              stderr,
              "serve: model reload failed, keeping version %llu: %s\n",
              static_cast<unsigned long long>(host->version()), e.what());
        }
      }
    });
  }

  uint64_t waited_ms = 0;
  while (g_stop == 0 &&
         (drain_after_ms == 0 || waited_ms < drain_after_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    waited_ms += 50;
  }
  watch_stop.store(true, std::memory_order_relaxed);
  if (watcher.joinable()) watcher.join();
  std::signal(SIGTERM, previous_term);
  std::signal(SIGINT, previous_int);
  if (host) std::signal(SIGHUP, previous_hup);

  std::fprintf(stderr, "serve: draining (in-flight requests finish)...\n");
  server->Shutdown();

  const auto& registry = obs::Registry::Global();
  const auto by_status = [&](const char* status) {
    return static_cast<unsigned long long>(registry.CounterValue(
        "whoiscrf_serve_requests_total", {{"status", status}}));
  };
  std::fprintf(stderr,
               "serve: done — %llu ok (%llu cached), %llu busy, "
               "%llu deadline, %llu error\n",
               by_status("ok"),
               static_cast<unsigned long long>(
                   registry.CounterValue("whoiscrf_serve_cache_hits_total")),
               by_status("busy"), by_status("deadline"), by_status("error"));
  if (cascade_parser) {
    const auto by_tier = [&](const char* tier) {
      return static_cast<unsigned long long>(registry.CounterValue(
          "whoiscrf_cascade_dispatch_total", {{"tier", tier}}));
    };
    std::fprintf(stderr,
                 "serve: cascade dispatch — %llu template, %llu rule, "
                 "%llu crf\n",
                 by_tier("template"), by_tier("rule"), by_tier("crf"));
  }
  return 0;
}

}  // namespace whoiscrf::cli
