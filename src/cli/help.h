// Per-command --help text for the whoiscrf CLI.
//
// One raw-string table, append-only: every flag a Cmd* implementation
// consumes must be listed here, and every flag listed here must be
// documented in README.md or docs/ — scripts/check_cli_docs.py parses this
// file (lint job) and the built binary's `--help` output (CTest) to keep
// the three in sync.
#pragma once

#include <string>

namespace whoiscrf::cli {

// Help text for one subcommand, or nullptr if the command is unknown.
// Includes the shared global-flags trailer.
const char* CommandHelp(const std::string& command);

}  // namespace whoiscrf::cli
