#include <cstdio>
#include <memory>
#include <optional>

#include "cli/commands.h"
#include "datagen/corpus_gen.h"
#include "net/crawl_journal.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "obs/metrics.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdCrawl(util::FlagParser& flags) {
  const auto domains = static_cast<size_t>(flags.GetInt("domains", 200));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string model_path = flags.GetString("model");
  const bool as_json = flags.GetBool("json");
  const std::string journal_path = flags.GetString("journal");
  const bool resume = flags.GetBool("resume");
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "crawl: --resume requires --journal\n");
    return 2;
  }

  std::optional<whois::WhoisParser> parser;
  if (!model_path.empty()) {
    parser.emplace(whois::WhoisParser::LoadFile(model_path));
  }

  datagen::CorpusOptions corpus_options;
  corpus_options.size = domains;
  corpus_options.seed = seed;
  const datagen::CorpusGenerator generator(corpus_options);

  net::SimulationOptions sim_options;
  sim_options.num_domains = domains;
  auto sim = net::BuildSimulatedInternet(generator, sim_options);

  net::SimClock clock;
  net::CrawlerOptions crawl_options;
  crawl_options.registry_server = sim.registry_server;

  // Crash/resume: replay the journal so finished domains are skipped and
  // previously inferred rate limits pace the crawler from query one.
  net::CrawlJournal::Replay replay;
  if (resume) {
    replay = net::CrawlJournal::Load(journal_path);
    crawl_options.initial_limits = replay.limits;
  }
  std::vector<std::string> to_crawl;
  to_crawl.reserve(sim.zone_domains.size());
  for (const std::string& domain : sim.zone_domains) {
    if (replay.domains.find(domain) == replay.domains.end()) {
      to_crawl.push_back(domain);
    }
  }
  const size_t skipped = sim.zone_domains.size() - to_crawl.size();
  if (skipped > 0) {
    obs::Registry::Global()
        .GetCounter("whoiscrf_crawl_resume_skipped_total",
                    "Domains skipped on resume because the crawl journal "
                    "already records their outcome")
        ->Inc(skipped);
  }

  net::Crawler crawler(*sim.network, clock, crawl_options);
  std::optional<net::CrawlJournal> journal;
  if (!journal_path.empty()) {
    journal.emplace(journal_path);
    crawler.SetJournal(&*journal);
  }

  size_t emitted = 0;
  for (const auto& result : crawler.CrawlAll(to_crawl)) {
    if (result.status != net::CrawlResult::Status::kOk) continue;
    if (parser.has_value()) {
      const whois::ParsedWhois parsed = parser->Parse(result.thick);
      std::printf("%s\n", as_json ? whois::ToRdapJson(parsed).c_str()
                                  : whois::ToJson(parsed).c_str());
      ++emitted;
    }
  }

  const auto& stats = crawler.stats();
  std::fprintf(stderr,
               "crawl: %zu ok, %zu no-match, %zu thin-only, %zu failed; "
               "%zu queries, %zu limit hits, %zu parsed records emitted, "
               "%zu skipped via journal\n",
               stats.ok, stats.no_match, stats.thin_only, stats.failed,
               stats.queries_sent, stats.limit_hits, emitted, skipped);
  return 0;
}

}  // namespace whoiscrf::cli
