#include <cstdio>
#include <memory>
#include <optional>

#include "cli/commands.h"
#include "datagen/corpus_gen.h"
#include "net/crawler.h"
#include "net/simulation.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdCrawl(util::FlagParser& flags) {
  const auto domains = static_cast<size_t>(flags.GetInt("domains", 200));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string model_path = flags.GetString("model");
  const bool as_json = flags.GetBool("json");

  std::optional<whois::WhoisParser> parser;
  if (!model_path.empty()) {
    parser.emplace(whois::WhoisParser::LoadFile(model_path));
  }

  datagen::CorpusOptions corpus_options;
  corpus_options.size = domains;
  corpus_options.seed = seed;
  const datagen::CorpusGenerator generator(corpus_options);

  net::SimulationOptions sim_options;
  sim_options.num_domains = domains;
  auto sim = net::BuildSimulatedInternet(generator, sim_options);

  net::SimClock clock;
  net::CrawlerOptions crawl_options;
  crawl_options.registry_server = sim.registry_server;
  net::Crawler crawler(*sim.network, clock, crawl_options);

  size_t emitted = 0;
  for (const auto& result : crawler.CrawlAll(sim.zone_domains)) {
    if (result.status != net::CrawlResult::Status::kOk) continue;
    if (parser.has_value()) {
      const whois::ParsedWhois parsed = parser->Parse(result.thick);
      std::printf("%s\n", as_json ? whois::ToRdapJson(parsed).c_str()
                                  : whois::ToJson(parsed).c_str());
      ++emitted;
    }
  }

  const auto& stats = crawler.stats();
  std::fprintf(stderr,
               "crawl: %zu ok, %zu no-match, %zu thin-only, %zu failed; "
               "%zu queries, %zu limit hits, %zu parsed records emitted\n",
               stats.ok, stats.no_match, stats.thin_only, stats.failed,
               stats.queries_sent, stats.limit_hits, emitted);
  return 0;
}

}  // namespace whoiscrf::cli
