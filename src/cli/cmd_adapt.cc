#include <cstdio>

#include "cli/commands.h"
#include "whois/training_data.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdAdapt(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const std::string data = flags.GetString("data");
  const std::string out = flags.GetString("out");
  if (model_path.empty() || data.empty() || out.empty()) {
    std::fprintf(stderr, "adapt: --model, --data and --out are required\n");
    return 2;
  }

  const whois::WhoisParser base = whois::WhoisParser::LoadFile(model_path);
  const auto records = whois::ReadLabeledRecordsFile(data);
  std::printf("adapting %s with %zu labeled records "
              "(warm-started retraining, paper §5.3)...\n",
              model_path.c_str(), records.size());
  const whois::WhoisParser adapted = base.Adapt(records);
  adapted.SaveFile(out);
  std::printf("adapted model written to %s (level-1: %zu features)\n",
              out.c_str(), adapted.level1_model().num_weights());
  return 0;
}

}  // namespace whoiscrf::cli
