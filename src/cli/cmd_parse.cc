#include <cstdio>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "cascade/cascade.h"
#include "cli/commands.h"
#include "obs/metrics.h"
#include "text/line_splitter.h"
#include "util/chunk_reader.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/record_store.h"
#include "whois/record_stream.h"
#include "whois/stream_checkpoint.h"
#include "whois/stream_pipeline.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

std::vector<std::string> ReadRawRecords(const std::string& path) {
  // Framing (separator lines, trailing record, blank-record skipping) is
  // owned by whois::RecordStreamReader; this wrapper only materializes.
  return whois::ReadAllRecords(path);
}

namespace {

bool KnownFormat(const std::string& format) {
  return format == "json" || format == "rdap" || format == "labels" ||
         format == "fields";
}

void PrintParsed(const std::string& format, const std::string& record,
                 const whois::ParsedWhois& parsed) {
  if (format == "json") {
    std::printf("%s\n", whois::ToJson(parsed).c_str());
  } else if (format == "rdap") {
    std::printf("%s\n", whois::ToRdapJson(parsed).c_str());
  } else if (format == "labels") {
    const auto lines = text::SplitRecord(record);
    for (size_t t = 0; t < lines.size(); ++t) {
      std::printf("%-10s %s\n",
                  std::string(whois::Level1Name(parsed.line_labels[t]))
                      .c_str(),
                  lines[t].text.c_str());
    }
    std::printf("\n");
  } else {  // fields
    std::printf("domain:     %s\n", parsed.domain_name.c_str());
    std::printf("registrar:  %s\n", parsed.registrar.c_str());
    std::printf("created:    %s\n", parsed.created.c_str());
    std::printf("expires:    %s\n", parsed.expires.c_str());
    std::printf("registrant: %s%s%s\n", parsed.registrant.name.c_str(),
                parsed.registrant.org.empty() ? "" : " / ",
                parsed.registrant.org.c_str());
    std::printf("country:    %s\n", parsed.registrant.country.c_str());
    std::printf("email:      %s\n", parsed.registrant.email.c_str());
    std::printf("confidence: %.4f\n\n", parsed.log_prob);
  }
}

// Post-run cascade summary: where records landed and what the shadow
// guard saw (mirrors the serve command's drain summary).
void PrintCascadeSummary(const cascade::CascadeParser& cascade) {
  const auto& registry = obs::Registry::Global();
  const auto by_tier = [&](const char* tier) {
    return static_cast<unsigned long long>(registry.CounterValue(
        "whoiscrf_cascade_dispatch_total", {{"tier", tier}}));
  };
  std::fprintf(stderr,
               "parse: cascade dispatch — %llu template, %llu rule, "
               "%llu crf\n",
               by_tier("template"), by_tier("rule"), by_tier("crf"));
  for (const auto& [registrar, stats] : cascade.ShadowSnapshot()) {
    std::fprintf(stderr,
                 "parse: shadow %s — %llu sampled, %llu disagreed\n",
                 registrar.c_str(),
                 static_cast<unsigned long long>(stats.samples),
                 static_cast<unsigned long long>(stats.disagreements));
  }
}

}  // namespace

int CmdParse(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const std::string in = flags.GetString("in");
  const std::string in_store = flags.GetString("in-store");
  const std::string store_out = flags.GetString("store-out");
  const std::string format = flags.GetString("format", "fields");
  const size_t threads =
      static_cast<size_t>(flags.GetInt("threads", 0));  // 0 = hardware
  const bool stream = flags.GetBool("stream");
  // --beam K: opt-in beam-pruned Viterbi (K highest-scoring predecessor
  // states per step, restricted to transitions observed in training).
  // Omitting the flag means exact decoding. In-memory mode only.
  const bool has_beam = flags.Has("beam");
  const int beam = static_cast<int>(flags.GetInt("beam", 0));
  // --cascade: dispatch template -> rules -> CRF (docs/cascade.md), with
  // the cheap tiers built from the --cascade-data labeled corpus.
  const bool use_cascade = flags.GetBool("cascade");
  std::string cascade_data;
  cascade::CascadeOptions cascade_options;
  if (use_cascade) {
    cascade_data = flags.GetString("cascade-data");
    cascade_options.shadow_sample_rate = flags.GetDouble("shadow-rate", 0.0);
    cascade_options.rule_coverage_min =
        flags.GetDouble("rule-coverage-min", cascade_options.rule_coverage_min);
    cascade_options.rule_max_unknown_titles = static_cast<size_t>(
        flags.GetInt("rule-max-unknown",
                     static_cast<int64_t>(
                         cascade_options.rule_max_unknown_titles)));
  }
  const bool resume = flags.GetBool("resume");
  const auto checkpoint_interval =
      static_cast<uint64_t>(flags.GetInt("checkpoint-interval", 4096));
  const auto watchdog_ms =
      static_cast<uint64_t>(flags.GetInt("watchdog-ms", 0));
  const auto max_record_bytes =
      static_cast<uint64_t>(flags.GetInt("max-record-bytes", 0));
  if (model_path.empty()) {
    std::fprintf(stderr, "parse: --model is required\n");
    return 2;
  }
  if (!KnownFormat(format)) {
    std::fprintf(stderr, "parse: unknown --format '%s'\n", format.c_str());
    return 2;
  }
  if (has_beam && beam <= 0) {
    std::fprintf(stderr,
                 "parse: --beam must be >= 1 (omit the flag for exact "
                 "decoding)\n");
    return 2;
  }
  if (beam > 0 && stream) {
    std::fprintf(stderr, "parse: --beam is not supported with --stream\n");
    return 2;
  }
  if (use_cascade) {
    if (cascade_data.empty()) {
      std::fprintf(stderr, "parse: --cascade requires --cascade-data\n");
      return 2;
    }
    if (beam > 0) {
      std::fprintf(stderr,
                   "parse: --beam only applies to the pure-CRF path, not "
                   "--cascade\n");
      return 2;
    }
    if (cascade_options.shadow_sample_rate < 0.0 ||
        cascade_options.shadow_sample_rate > 1.0) {
      std::fprintf(stderr, "parse: --shadow-rate must be in [0, 1]\n");
      return 2;
    }
  }
  const whois::WhoisParser parser = whois::WhoisParser::LoadFile(model_path);

  // The cascade's cheap tiers are rebuilt from the labeled corpus at
  // startup (they are just hash maps; construction is negligible next to
  // model load).
  std::unique_ptr<cascade::CascadeParser> cascade_parser;
  if (use_cascade) {
    cascade_parser = std::make_unique<cascade::CascadeParser>(
        &parser, whois::ReadLabeledRecordsFile(cascade_data),
        cascade_options);
  }

  if (stream) {
    // Streaming mode: bounded-memory pipeline, output still in input
    // order. The full corpus is never materialized.
    std::unique_ptr<whois::RecordStoreReader> store_reader;
    std::unique_ptr<util::ByteSource> bytes;
    std::unique_ptr<whois::RecordSource> source;
    std::string input_id;
    if (!in_store.empty()) {
      store_reader = std::make_unique<whois::RecordStoreReader>(in_store);
      source = std::make_unique<whois::StoreRecordSource>(*store_reader);
      input_id = "store:" + in_store;
    } else {
      bytes = in.empty()
                  ? std::unique_ptr<util::ByteSource>(
                        std::make_unique<util::StreamByteSource>(std::cin))
                  : std::make_unique<util::FileByteSource>(in);
      source = std::make_unique<whois::TextRecordSource>(*bytes);
      input_id = in.empty() ? "stdin" : "file:" + in;
    }
    whois::StreamPipelineOptions options;
    options.threads = threads;
    options.watchdog_timeout_ms = watchdog_ms;
    if (cascade_parser) {
      options.parse_override = [&cascade = *cascade_parser](
                                   const std::string& record,
                                   whois::ParseWorkspace& ws) {
        return cascade.ParseRecord(record, ws);
      };
    }
    if (!store_out.empty()) {
      // Crash-safe path: records land in a checkpointed store, poison
      // records go to `<store_out>-quarantine`, and --resume continues an
      // interrupted run from `<store_out>.ckpt`.
      whois::CheckpointedParseOptions ckpt;
      ckpt.pipeline = options;
      ckpt.pipeline.max_record_bytes = max_record_bytes;
      ckpt.checkpoint_interval = checkpoint_interval;
      ckpt.resume = resume;
      ckpt.input_id = input_id;
      const whois::CheckpointedParseResult result = whois::ParseStreamToStore(
          parser, *source, store_out, ckpt,
          [&](uint64_t, const std::string& record,
              const whois::ParsedWhois& parsed) {
            PrintParsed(format, record, parsed);
          });
      std::fprintf(stderr,
                   "parse: %llu records stored (%llu skipped via resume, "
                   "%llu quarantined)\n",
                   static_cast<unsigned long long>(result.records_stored),
                   static_cast<unsigned long long>(result.skipped),
                   static_cast<unsigned long long>(result.quarantined));
      if (cascade_parser) PrintCascadeSummary(*cascade_parser);
      return 0;
    }
    whois::ParseStream(parser, *source, options,
                       [&](uint64_t, const std::string& record,
                           const whois::ParsedWhois& parsed) {
                         PrintParsed(format, record, parsed);
                       });
    if (cascade_parser) PrintCascadeSummary(*cascade_parser);
    return 0;
  }

  // --store-out packs the raw records into a sharded binary store (in
  // input order) alongside whatever gets printed.
  std::unique_ptr<whois::RecordStoreWriter> store_writer;
  if (!store_out.empty()) {
    store_writer = std::make_unique<whois::RecordStoreWriter>(store_out);
  }

  // In-memory mode: parse the whole batch on the thread pool, then print
  // in input order.
  std::vector<std::string> records;
  if (!in_store.empty()) {
    const whois::RecordStoreReader store_reader(in_store);
    whois::StoreRecordSource source(store_reader);
    std::string record;
    while (source.Next(record)) records.push_back(std::move(record));
  } else {
    records = ReadRawRecords(in);
  }
  std::vector<whois::ParsedWhois> parses;
  if (cascade_parser) {
    // Cascade in-memory mode: one workspace, records in order (the
    // streaming path above is the parallel one).
    whois::ParseWorkspace ws;
    parses.reserve(records.size());
    for (const std::string& record : records) {
      parses.push_back(cascade_parser->ParseRecord(record, ws));
    }
  } else {
    util::ThreadPool pool(threads);
    parses = parser.ParseBatch(records, pool, beam);
  }

  for (size_t r = 0; r < records.size(); ++r) {
    if (store_writer) store_writer->Append(records[r]);
    PrintParsed(format, records[r], parses[r]);
  }
  if (store_writer) store_writer->Finish();
  if (cascade_parser) PrintCascadeSummary(*cascade_parser);
  return 0;
}

}  // namespace whoiscrf::cli
