#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "cli/commands.h"
#include "text/line_splitter.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "whois/json_export.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

std::vector<std::string> ReadRawRecords(const std::string& path) {
  std::string content;
  if (path.empty()) {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    content = buffer.str();
  } else {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open " + path);
    std::ostringstream buffer;
    buffer << is.rdbuf();
    content = buffer.str();
  }

  std::vector<std::string> records;
  std::string current;
  for (std::string_view line : util::SplitLines(content)) {
    if (util::Trim(line) == "%%") {
      if (!current.empty()) records.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.append(line);
    current.push_back('\n');
  }
  if (util::HasAlnum(current)) records.push_back(std::move(current));
  return records;
}

int CmdParse(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const std::string in = flags.GetString("in");
  const std::string format = flags.GetString("format", "fields");
  const size_t threads =
      static_cast<size_t>(flags.GetInt("threads", 0));  // 0 = hardware
  if (model_path.empty()) {
    std::fprintf(stderr, "parse: --model is required\n");
    return 2;
  }
  const whois::WhoisParser parser = whois::WhoisParser::LoadFile(model_path);

  // Parse the whole batch on the thread pool, then print in input order.
  const std::vector<std::string> records = ReadRawRecords(in);
  util::ThreadPool pool(threads);
  const std::vector<whois::ParsedWhois> parses =
      parser.ParseBatch(records, pool);

  for (size_t r = 0; r < records.size(); ++r) {
    const std::string& record = records[r];
    const whois::ParsedWhois& parsed = parses[r];
    if (format == "json") {
      std::printf("%s\n", whois::ToJson(parsed).c_str());
    } else if (format == "rdap") {
      std::printf("%s\n", whois::ToRdapJson(parsed).c_str());
    } else if (format == "labels") {
      const auto lines = text::SplitRecord(record);
      for (size_t t = 0; t < lines.size(); ++t) {
        std::printf("%-10s %s\n",
                    std::string(whois::Level1Name(parsed.line_labels[t]))
                        .c_str(),
                    lines[t].text.c_str());
      }
      std::printf("\n");
    } else if (format == "fields") {
      std::printf("domain:     %s\n", parsed.domain_name.c_str());
      std::printf("registrar:  %s\n", parsed.registrar.c_str());
      std::printf("created:    %s\n", parsed.created.c_str());
      std::printf("expires:    %s\n", parsed.expires.c_str());
      std::printf("registrant: %s%s%s\n", parsed.registrant.name.c_str(),
                  parsed.registrant.org.empty() ? "" : " / ",
                  parsed.registrant.org.c_str());
      std::printf("country:    %s\n", parsed.registrant.country.c_str());
      std::printf("email:      %s\n", parsed.registrant.email.c_str());
      std::printf("confidence: %.4f\n\n", parsed.log_prob);
    } else {
      std::fprintf(stderr, "parse: unknown --format '%s'\n", format.c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace whoiscrf::cli
