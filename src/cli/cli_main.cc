// whoiscrf — command-line interface to the statistical WHOIS parser.
//
//   whoiscrf gen     generate a labeled synthetic corpus
//   whoiscrf train   train a parser from labeled records
//   whoiscrf parse   parse raw records to structured output
//   whoiscrf eval    evaluate a model against labeled records
//   whoiscrf select  rank unlabeled records for manual labeling
//   whoiscrf crawl   crawl the simulated .com and emit parsed JSON
//
// Run `whoiscrf <command> --help` for per-command flags.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "cli/commands.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: whoiscrf <command> [flags]\n"
               "\n"
               "commands:\n"
               "  gen     --out FILE --count N [--seed S] [--drift F] "
               "[--new-tld TLD]\n"
               "  train   --data FILE --model FILE [--sgd] [--l2 SIGMA] "
               "[--min-count K]\n"
               "  parse   --model FILE [--in FILE] [--format "
               "json|rdap|fields|labels] [--threads N]\n"
               "  adapt   --model FILE --data FILE --out FILE\n"
               "  eval    --model FILE --data FILE [--confusion]\n"
               "  select  --model FILE --in FILE [--k N]\n"
               "  crawl   [--domains N] [--seed S] [--model FILE] [--json]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  whoiscrf::util::FlagParser flags(argc, argv, 2);

  try {
    int code;
    if (command == "gen") {
      code = whoiscrf::cli::CmdGen(flags);
    } else if (command == "train") {
      code = whoiscrf::cli::CmdTrain(flags);
    } else if (command == "parse") {
      code = whoiscrf::cli::CmdParse(flags);
    } else if (command == "adapt") {
      code = whoiscrf::cli::CmdAdapt(flags);
    } else if (command == "eval") {
      code = whoiscrf::cli::CmdEval(flags);
    } else if (command == "select") {
      code = whoiscrf::cli::CmdSelect(flags);
    } else if (command == "crawl") {
      code = whoiscrf::cli::CmdCrawl(flags);
    } else {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      PrintUsage();
      return 2;
    }
    for (const auto& unused : flags.UnconsumedFlags()) {
      std::fprintf(stderr, "warning: unused flag %s\n", unused.c_str());
    }
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      code = 2;
    }
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
