// whoiscrf — command-line interface to the statistical WHOIS parser.
//
//   whoiscrf gen     generate a labeled synthetic corpus
//   whoiscrf train   train a parser from labeled records
//   whoiscrf parse   parse raw records to structured output
//   whoiscrf eval    evaluate a model against labeled records
//   whoiscrf select  rank unlabeled records for manual labeling
//   whoiscrf crawl   crawl the simulated .com and emit parsed JSON
//   whoiscrf serve   run the concurrent parse service on 127.0.0.1
//   whoiscrf shard-router
//                    consistent-hash front end over N serve backends
//   whoiscrf retrain-loop
//                    closed-loop drift detection + retraining driver
//   whoiscrf scale-run
//                    paper-scale streaming survey harness
//   whoiscrf quarantine
//                    inspect a quarantine record store
//
// Run `whoiscrf <command> --help` for per-command flags.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "cli/commands.h"

namespace {

void PrintUsage() {
  std::fprintf(stderr,
               "usage: whoiscrf <command> [flags]\n"
               "\n"
               "commands:\n"
               "  gen     --out FILE --count N [--seed S] [--drift F] "
               "[--new-tld TLD]\n"
               "  train   --data FILE --model FILE [--sgd] [--l2 SIGMA] "
               "[--min-count K]\n"
               "  parse   --model FILE [--in FILE] [--format "
               "json|rdap|fields|labels] [--threads N]\n"
               "          [--stream] [--store-out PREFIX] [--resume]\n"
               "          [--checkpoint-interval N] [--watchdog-ms MS]\n"
               "          [--max-record-bytes N] [--beam K]\n"
               "          [--cascade --cascade-data FILE "
               "[--shadow-rate R]]\n"
               "  adapt   --model FILE --data FILE --out FILE\n"
               "  eval    --model FILE --data FILE [--confusion]\n"
               "  select  --model FILE --in FILE [--k N]\n"
               "  crawl   [--domains N] [--seed S] [--model FILE] [--json]\n"
               "          [--journal FILE] [--resume]\n"
               "  serve   --model FILE [--port N] [--threads K]\n"
               "          [--queue-capacity N] [--cache-entries N]\n"
               "          [--deadline-ms D] [--max-record-bytes N]\n"
               "          [--serve-frontend epoll|threads] [--event-loops N]\n"
               "          [--model-watch [--model-watch-ms MS]]\n"
               "          [--cascade-data FILE [--shadow-rate R]]\n"
               "  shard-router\n"
               "          --backends P1,P2,... [--port N] [--vnodes N]\n"
               "          [--health-interval-ms MS] [--health-timeout-ms MS]\n"
               "  retrain-loop\n"
               "          --state-dir DIR [--count N] [--seed S] "
               "[--events K]\n"
               "          [--train-count N] [--resume]\n"
               "  scale-run\n"
               "          --out PREFIX [--count N] [--smoke] [--resume]\n"
               "          [--cascade [--shadow-rate R]] [--self-check N]\n"
               "          [--tables-out FILE] [--bench-out FILE]\n"
               "  quarantine\n"
               "          (ls | cat --index N | export [--out FILE]) "
               "--store PREFIX\n"
               "\n"
               "global flags (every command):\n"
               "  --metrics-out FILE   write metrics when the command ends\n"
               "                       (.prom/.txt Prometheus, .jsonl append,\n"
               "                       else JSON run report)\n"
               "  --trace-out FILE     record trace spans; open the file at\n"
               "                       chrome://tracing or ui.perfetto.dev\n"
               "  --help               per-command flag table\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  whoiscrf::util::FlagParser flags(argc, argv, 2);

  try {
    const std::optional<int> run = whoiscrf::cli::RunCommand(command, flags);
    if (!run.has_value()) {
      std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
      PrintUsage();
      return 2;
    }
    int code = *run;
    for (const auto& unused : flags.UnconsumedFlags()) {
      std::fprintf(stderr, "warning: unused flag %s\n", unused.c_str());
    }
    for (const auto& error : flags.errors()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      code = 2;
    }
    return code;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
