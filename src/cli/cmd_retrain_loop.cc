// whoiscrf retrain-loop — the self-healing lifecycle demo/driver
// (docs/lifecycle.md): streams the temporal drifting corpus in time
// order through a LifecycleController, harvests drift-signaled records,
// retrains in the background when a registrar's alarm trips, gates and
// promotes candidates, and checkpoints its state so a killed run resumes
// (--resume) exactly where it stopped. Prints a per-window key-field
// accuracy report so drift (accuracy dropping after a schema-change
// event) and recovery (accuracy restored after a promotion) are visible
// in the output.
#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cascade/cascade.h"
#include "cli/commands.h"
#include "datagen/temporal.h"
#include "lifecycle/confidence.h"
#include "lifecycle/controller.h"
#include "obs/metrics.h"
#include "text/line_splitter.h"
#include "util/checkpoint.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

namespace {

// Ground-truth ParsedWhois from a labeled record (same construction as
// the lifecycle gate and bench_cascade).
whois::ParsedWhois GoldParse(const whois::LabeledRecord& record) {
  const std::vector<text::Line> lines = text::SplitRecord(record.text);
  std::vector<whois::Level2Label> subs;
  for (size_t i = 0; i < record.labels.size(); ++i) {
    if (record.labels[i] == whois::Level1Label::kRegistrant) {
      subs.push_back(
          record.sub_labels[i].value_or(whois::Level2Label::kOther));
    }
  }
  whois::ParsedWhois gold;
  gold.line_labels = record.labels;
  whois::ExtractFields(lines, record.labels, subs, gold);
  return gold;
}

size_t CountAgreeingKeyFields(const whois::ParsedWhois& a,
                              const whois::ParsedWhois& b) {
  const auto va = cascade::KeyFieldValues(a);
  const auto vb = cascade::KeyFieldValues(b);
  size_t agree = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] == vb[i]) ++agree;
  }
  return agree;
}

// Pre-reads the live model named by an existing state file so the
// controller can be constructed without retraining; LoadState then
// restores the rest (version, cursor, buffer).
std::optional<whois::WhoisParser> PeekStateModel(
    const std::string& state_dir) {
  std::string text;
  if (!util::ReadFileToString(state_dir + "/lifecycle.state", text)) {
    return std::nullopt;
  }
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.rfind("model\t", 0) == 0) {
      return whois::WhoisParser::LoadFile(state_dir + "/" +
                                          line.substr(6));
    }
  }
  return std::nullopt;
}

}  // namespace

int CmdRetrainLoop(util::FlagParser& flags) {
  const std::string state_dir = flags.GetString("state-dir");
  const auto count = static_cast<size_t>(flags.GetInt("count", 20000));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const auto events = static_cast<size_t>(flags.GetInt("events", 2));
  const auto train_count =
      static_cast<size_t>(flags.GetInt("train-count", 400));
  const auto window = static_cast<size_t>(flags.GetInt("window", 64));
  const auto buffer_capacity =
      static_cast<size_t>(flags.GetInt("buffer-capacity", 512));
  const auto min_retrain =
      static_cast<size_t>(flags.GetInt("min-retrain", 64));
  const double gate_epsilon = flags.GetDouble("gate-epsilon", 0.01);
  // 0 disables the marginal scorer: drift then signals purely through
  // parse-vs-truth disagreement, and records parse ~2x faster.
  const double confidence_floor =
      flags.GetDouble("confidence-floor", 0.0);
  const auto probation_window =
      static_cast<size_t>(flags.GetInt("probation-window", 64));
  const double rollback_rate = flags.GetDouble("rollback-rate", 0.5);
  const auto report_every =
      static_cast<size_t>(flags.GetInt("report-every", 2000));
  const auto checkpoint_interval =
      static_cast<size_t>(flags.GetInt("checkpoint-interval", 4096));
  const bool resume = flags.GetBool("resume");
  // Blocking retrain at the alarm instead of the background thread:
  // deterministic record->version mapping, so recovery is visible
  // in-stream even when the input replays faster than training.
  const bool retrain_sync = flags.GetBool("retrain-sync");

  if (state_dir.empty()) {
    std::fprintf(stderr, "retrain-loop: --state-dir is required\n");
    return 2;
  }
  if (train_count == 0 || train_count >= count) {
    std::fprintf(stderr,
                 "retrain-loop: --train-count must be in (0, --count)\n");
    return 2;
  }
  ::mkdir(state_dir.c_str(), 0755);  // EEXIST is fine

  datagen::TemporalCorpusOptions corpus_options;
  corpus_options.size = count;
  corpus_options.seed = seed;
  corpus_options.events = events;
  const datagen::TemporalCorpusGenerator generator(corpus_options);
  for (const auto& event : generator.events()) {
    if (event.at_index < train_count) {
      std::fprintf(stderr,
                   "retrain-loop: --train-count %zu overlaps the first "
                   "drift event at %zu; shrink it\n",
                   train_count, event.at_index);
      return 2;
    }
  }

  lifecycle::ControllerOptions lifecycle_options;
  lifecycle_options.trainer.trainer.l2_sigma = flags.GetDouble("l2", 10.0);
  lifecycle_options.trainer.trainer.lbfgs.max_iterations =
      static_cast<int>(flags.GetInt("iterations", 60));
  lifecycle_options.trainer.trainer.threads =
      static_cast<size_t>(flags.GetInt("threads", 0));
  lifecycle_options.drift.window = window;
  lifecycle_options.buffer.capacity = buffer_capacity;
  lifecycle_options.buffer.seed = seed;
  lifecycle_options.min_retrain_records = min_retrain;
  lifecycle_options.gate_epsilon = gate_epsilon;
  lifecycle_options.confidence_floor = confidence_floor;
  lifecycle_options.probation_window = probation_window;
  lifecycle_options.rollback_disagreement_rate = rollback_rate;
  lifecycle_options.state_dir = state_dir;

  // Every candidate retrains from the clean pre-drift prefix plus the
  // harvested buffer; the prefix is regenerable, so resume re-derives it.
  std::vector<whois::LabeledRecord> base_training;
  base_training.reserve(train_count);
  for (size_t i = 0; i < train_count; ++i) {
    base_training.push_back(generator.Generate(i).thick);
  }

  std::shared_ptr<const whois::WhoisParser> initial;
  if (resume) {
    if (auto model = PeekStateModel(state_dir)) {
      initial = std::make_shared<const whois::WhoisParser>(
          std::move(*model));
    } else {
      std::fprintf(stderr,
                   "retrain-loop: --resume but no state in %s; starting "
                   "fresh\n",
                   state_dir.c_str());
    }
  }
  const bool fresh = initial == nullptr;
  if (fresh) {
    std::fprintf(stderr,
                 "retrain-loop: training initial model on %zu pre-drift "
                 "records...\n",
                 base_training.size());
    initial = std::make_shared<const whois::WhoisParser>(
        whois::WhoisParser::Train(base_training,
                                  lifecycle_options.trainer));
  }

  lifecycle::LifecycleController controller(initial, base_training,
                                            lifecycle_options);
  controller.set_on_swap(
      [](uint64_t old_version, uint64_t new_version,
         const std::shared_ptr<const whois::WhoisParser>&) {
        std::fprintf(stderr, "retrain-loop: model v%llu -> v%llu\n",
                     static_cast<unsigned long long>(old_version),
                     static_cast<unsigned long long>(new_version));
      });
  if (fresh) {
    controller.set_consumed(train_count);  // the prefix is training data
    controller.SaveState();
  } else {
    controller.LoadState();
  }

  const size_t start = static_cast<size_t>(controller.consumed());
  std::fprintf(stderr,
               "retrain-loop: streaming records [%zu, %zu) as model v%llu "
               "(%zu drift events)\n",
               start, count,
               static_cast<unsigned long long>(controller.version()),
               generator.events().size());

  // Per-report-window accuracy accumulators.
  uint64_t window_agree = 0;
  uint64_t window_fields = 0;
  size_t window_start = start;

  // Model snapshot + scorer, refreshed whenever the version moves.
  std::shared_ptr<const whois::WhoisParser> model;
  std::optional<lifecycle::MarginalScorer> scorer;
  uint64_t model_version = 0;
  whois::ParseWorkspace parse_ws;
  crf::Workspace crf_ws;

  const auto report = [&](size_t upto) {
    const double accuracy =
        window_fields == 0
            ? 1.0
            : static_cast<double>(window_agree) /
                  static_cast<double>(window_fields);
    std::printf("records [%zu, %zu): key-field accuracy %.4f, model v%llu, "
                "buffer %zu, alarmed %zu%s\n",
                window_start, upto, accuracy,
                static_cast<unsigned long long>(controller.version()),
                controller.buffer_size(),
                controller.detector().AlarmedRegistrars().size(),
                controller.retraining() ? ", retraining" : "");
    std::fflush(stdout);
    window_agree = 0;
    window_fields = 0;
    window_start = upto;
  };

  for (size_t i = start; i < count; ++i) {
    if (model_version != controller.version() || model == nullptr) {
      model = controller.Current();
      model_version = controller.version();
      scorer.emplace(*model);
    }
    const datagen::GeneratedDomain domain = generator.Generate(i);
    const whois::LabeledRecord& record = domain.thick;

    const whois::ParsedWhois parsed = model->Parse(record.text, parse_ws);
    const size_t agree = CountAgreeingKeyFields(parsed, GoldParse(record));
    window_agree += agree;
    window_fields += cascade::kNumKeyFields;

    // The loop driver has ground truth for every record, so the shadow
    // signal is exact: any key-field mismatch counts as a disagreement.
    lifecycle::Observation obs;
    obs.registrar = domain.facts.registrar_name;
    obs.shadow_sampled = true;
    obs.shadow_disagreed = agree < cascade::kNumKeyFields;
    if (confidence_floor > 0.0) {
      obs.confidence = scorer->Score(record.text, crf_ws);
    }
    const bool alarm = controller.Observe(obs, &record);

    const auto report_outcome = [&](const lifecycle::RetrainOutcome& out) {
      std::fprintf(
          stderr,
          "retrain-loop: retrain %s (candidate %.4f vs incumbent %.4f on "
          "%zu holdout records) -> model v%llu\n",
          std::string(lifecycle::RetrainResultName(out.result)).c_str(),
          out.gate.candidate_accuracy, out.gate.incumbent_accuracy,
          out.gate.holdout_records,
          static_cast<unsigned long long>(out.version));
    };
    if (alarm && !controller.retraining() &&
        controller.buffer_size() >= min_retrain) {
      std::fprintf(stderr,
                   "retrain-loop: drift alarm for '%s' at record %zu; "
                   "%s retrain (%zu harvested)\n",
                   obs.registrar.c_str(), i,
                   retrain_sync ? "synchronous" : "starting background",
                   controller.buffer_size());
      if (retrain_sync) {
        report_outcome(controller.RetrainNow());
      } else {
        controller.StartRetrain();
      }
    }
    if (auto outcome = controller.PollOutcome()) {
      report_outcome(*outcome);
    }

    if (checkpoint_interval != 0 && (i + 1) % checkpoint_interval == 0) {
      controller.SaveState();
    }
    if (report_every != 0 && (i + 1 - start) % report_every == 0) {
      report(i + 1);
    }
  }
  if (window_fields != 0) report(count);

  if (controller.retraining()) {
    std::fprintf(stderr,
                 "retrain-loop: waiting for in-flight retrain...\n");
    const lifecycle::RetrainOutcome outcome = controller.WaitRetrain();
    std::fprintf(stderr, "retrain-loop: final retrain %s -> model v%llu\n",
                 std::string(lifecycle::RetrainResultName(outcome.result))
                     .c_str(),
                 static_cast<unsigned long long>(outcome.version));
  }
  controller.SaveState();

  const auto& registry = obs::Registry::Global();
  const auto retrains = [&](const char* result) {
    return static_cast<unsigned long long>(registry.CounterValue(
        "whoiscrf_lifecycle_retrains_total", {{"result", result}}));
  };
  std::printf("retrain-loop: done — model v%llu, %llu promoted, "
              "%llu rejected, %llu cancelled, %llu rollbacks, "
              "%llu harvested\n",
              static_cast<unsigned long long>(controller.version()),
              retrains("promoted"), retrains("rejected"),
              retrains("cancelled"),
              static_cast<unsigned long long>(registry.CounterValue(
                  "whoiscrf_lifecycle_rollbacks_total")),
              static_cast<unsigned long long>(registry.CounterValue(
                  "whoiscrf_lifecycle_harvested_total")));
  return 0;
}

}  // namespace whoiscrf::cli
