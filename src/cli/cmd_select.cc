#include <cstdio>

#include "cli/commands.h"
#include "whois/active_learning.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdSelect(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const std::string in = flags.GetString("in");
  const auto k = static_cast<size_t>(flags.GetInt("k", 5));
  if (model_path.empty() || in.empty()) {
    std::fprintf(stderr, "select: --model and --in are required\n");
    return 2;
  }

  const whois::WhoisParser parser = whois::WhoisParser::LoadFile(model_path);
  const auto pool = ReadRawRecords(in);
  const auto selected = whois::SelectForLabeling(parser, pool, k);

  std::printf("%zu records in pool; %zu selected for labeling "
              "(lowest parse confidence first):\n\n",
              pool.size(), selected.size());
  for (const auto& choice : selected) {
    std::printf("--- record %zu (per-line log-prob %.4f) ---\n%s\n",
                choice.index, choice.confidence,
                pool[choice.index].c_str());
  }
  return 0;
}

}  // namespace whoiscrf::cli
