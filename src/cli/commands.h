// Subcommands of the `whoiscrf` command-line tool. Each takes the parsed
// flags and returns a process exit code. Implementations live in one file
// per command; cli_main.cc dispatches.
#pragma once

#include <optional>

#include "util/flags.h"

namespace whoiscrf::cli {

// Dispatches `command` to its Cmd* implementation, handling the global
// telemetry flags every subcommand accepts: --metrics-out=PATH writes the
// metrics registry / run report when the command finishes, --trace-out=PATH
// enables trace spans and writes Chrome trace JSON. Returns the command's
// exit code, or nullopt for an unknown command (caller prints usage).
std::optional<int> RunCommand(const std::string& command,
                              util::FlagParser& flags);

// whoiscrf gen     --out FILE --count N [--seed S] [--drift F] [--new-tld T]
// Generates a labeled synthetic corpus in the training-data text format.
int CmdGen(util::FlagParser& flags);

// whoiscrf train   --data FILE --model FILE [--sgd] [--l2 SIGMA]
//                  [--min-count K] [--iterations N] [--threads N]
// Trains the two-level parser from labeled records.
int CmdTrain(util::FlagParser& flags);

// whoiscrf parse   --model FILE [--in FILE | --in-store PREFIX]
//                  [--format json|rdap|fields|labels] [--threads N]
//                  [--stream] [--store-out PREFIX] [--beam K]
//                  [--cascade --cascade-data FILE [--shadow-rate R]
//                   [--rule-coverage-min X] [--rule-max-unknown N]]
// Parses raw records (from --in or stdin; multiple records separated by a
// line containing only "%%"; --in-store reads a sharded binary record
// store instead) and prints structured output. --stream runs the
// bounded-memory pipeline (docs/architecture.md "Streaming pipeline") so
// corpora larger than RAM parse without being materialized; --store-out
// additionally packs the raw records into a sharded binary store;
// --cascade dispatches through the template -> rules -> CRF cascade
// (docs/cascade.md). Run `whoiscrf parse --help` for the full flag table.
int CmdParse(util::FlagParser& flags);

// whoiscrf adapt   --model FILE --data FILE --out FILE
// Warm-started retraining (the §5.3 maintenance workflow): --data is the
// training set including any newly labeled failure cases.
int CmdAdapt(util::FlagParser& flags);

// whoiscrf eval    --model FILE --data FILE [--confusion]
// Evaluates a trained model against labeled records (line/document error).
int CmdEval(util::FlagParser& flags);

// whoiscrf select  --model FILE --in FILE [--k N]
// Active learning: ranks unlabeled records by parse confidence and prints
// the k records most in need of manual labeling.
int CmdSelect(util::FlagParser& flags);

// whoiscrf crawl   [--domains N] [--seed S] [--model FILE] [--json]
// Runs the simulated registry/registrar crawl; with --model, parses every
// thick record and emits one JSON object per domain.
int CmdCrawl(util::FlagParser& flags);

// whoiscrf serve   --model FILE [--port N] [--threads K]
//                  [--queue-capacity N] [--cache-entries N]
//                  [--deadline-ms D] [--max-record-bytes N]
//                  [--drain-after-ms MS] [--cascade-data FILE
//                  [--shadow-rate R] [--rule-coverage-min X]
//                  [--rule-max-unknown N]]
// Concurrent parse service on 127.0.0.1: answers raw records with parsed
// JSON over the length-prefixed framing protocol (docs/formats.md), with a
// result cache, admission control, and graceful drain on SIGTERM/SIGINT.
// --cascade-data serves through the parser cascade (docs/cascade.md).
int CmdServe(util::FlagParser& flags);

// whoiscrf shard-router --backends P1,P2,... [--port N] [--vnodes N]
//                       [--health-interval-ms MS] [--health-timeout-ms MS]
//                       [--max-record-bytes N] [--writeq-max-bytes N]
//                       [--listen-backlog N] [--drain-after-ms MS]
// Consistent-hash front end over N backend `serve` processes: each raw
// record hashes to the same shard every time (cache affinity), frames
// forward asynchronously through the epoll event loop, and unhealthy
// shards are ejected/re-admitted by periodic health checks
// (docs/formats.md "Router health checks").
int CmdShardRouter(util::FlagParser& flags);

// whoiscrf retrain-loop --state-dir DIR [--count N] [--seed S]
//                       [--events K] [--train-count N] [--resume] ...
// Closed-loop lifecycle driver (docs/lifecycle.md): streams the temporal
// drifting corpus in time order through a LifecycleController — harvest,
// background retrain on drift alarms, gated promotion, rollback — and
// checkpoints to --state-dir so a killed run resumes with --resume.
int CmdRetrainLoop(util::FlagParser& flags);

// whoiscrf scale-run --out PREFIX [--count N] [--seed S] [--events K]
//                    [--train-count N] [--threads N] [--resume]
//                    [--checkpoint-interval N] [--cascade [--shadow-rate R]]
//                    [--smoke] [--self-check N] [--tables-out FILE]
//                    [--bench-out FILE] [--journal FILE] [--brands A,B]
// Paper-scale survey harness (ROADMAP 5a): streams a 10-100M-record
// temporal corpus through the checkpointed parse pipeline into a sharded
// store while folding every record into the streaming SurveyAccumulator,
// then emits the §6 tables. Bounded memory at any corpus size; a killed
// run continues byte-identically with --resume. --smoke shrinks every
// knob to CI-smoke size; --bench-out writes the BENCH_scale_run.json
// artifact gated by bench/bench_floor.json.
int CmdScaleRun(util::FlagParser& flags);

// whoiscrf quarantine (ls | cat --index N | export [--out FILE])
//                     --store PREFIX
// Inspects a quarantine record store: the poison-record store of the
// checkpointed parse pipeline or the failed-candidate store of the model
// lifecycle (docs/lifecycle.md "Fail-closed quarantine").
int CmdQuarantine(util::FlagParser& flags);

// Reads raw records from a file or stdin ("" = stdin): records are
// separated by lines containing only "%%"; a file with no separator is one
// record. Shared by parse/select; framing is delegated to
// whois::RecordStreamReader so it cannot drift from the streaming paths.
std::vector<std::string> ReadRawRecords(const std::string& path);

}  // namespace whoiscrf::cli
