// Shared subcommand runner: dispatches to the Cmd* implementations and
// owns the observability flags every subcommand accepts.
//
//   --metrics-out=PATH  write the metrics registry when the command ends
//                       (.prom/.txt → Prometheus text, .jsonl → append one
//                       run-report line, else a JSON run report)
//   --trace-out=PATH    enable trace spans and write Chrome trace JSON
//
// Keeping this in one place means a new subcommand gets telemetry for free
// and no command can drift from the contract in docs/observability.md.
#include <chrono>
#include <cstdio>
#include <string>

#include "cli/commands.h"
#include "cli/help.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace whoiscrf::cli {

namespace {

// Trace events store the name pointer, so span names must be literals with
// process lifetime — hence this lookup instead of ("cli." + command).
const char* CommandSpanName(const std::string& command) {
  if (command == "gen") return "cli.gen";
  if (command == "train") return "cli.train";
  if (command == "parse") return "cli.parse";
  if (command == "adapt") return "cli.adapt";
  if (command == "eval") return "cli.eval";
  if (command == "select") return "cli.select";
  if (command == "crawl") return "cli.crawl";
  if (command == "serve") return "cli.serve";
  if (command == "shard-router") return "cli.shard_router";
  if (command == "retrain-loop") return "cli.retrain_loop";
  if (command == "scale-run") return "cli.scale_run";
  if (command == "quarantine") return "cli.quarantine";
  return "cli.command";
}

int Dispatch(const std::string& command, util::FlagParser& flags) {
  if (command == "gen") return CmdGen(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "parse") return CmdParse(flags);
  if (command == "adapt") return CmdAdapt(flags);
  if (command == "eval") return CmdEval(flags);
  if (command == "select") return CmdSelect(flags);
  if (command == "crawl") return CmdCrawl(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "shard-router") return CmdShardRouter(flags);
  if (command == "retrain-loop") return CmdRetrainLoop(flags);
  if (command == "scale-run") return CmdScaleRun(flags);
  if (command == "quarantine") return CmdQuarantine(flags);
  return -1;  // unreachable: RunCommand checks Known() first
}

bool Known(const std::string& command) {
  return command == "gen" || command == "train" || command == "parse" ||
         command == "adapt" || command == "eval" || command == "select" ||
         command == "crawl" || command == "serve" ||
         command == "shard-router" || command == "retrain-loop" ||
         command == "scale-run" || command == "quarantine";
}

}  // namespace

std::optional<int> RunCommand(const std::string& command,
                              util::FlagParser& flags) {
  if (!Known(command)) return std::nullopt;

  // `whoiscrf <cmd> --help` prints the flag table and exits before any
  // other flag is validated (so help works without --model etc.).
  if (flags.GetBool("help")) {
    std::fputs(CommandHelp(command), stdout);
    return 0;
  }

  // Consume the telemetry flags before dispatch so commands never see them
  // as unknown/unused.
  const std::string metrics_out = flags.GetString("metrics-out");
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) obs::Tracer::Global().Enable();

  const auto start = std::chrono::steady_clock::now();
  int code;
  {
    obs::ScopedSpan span(CommandSpanName(command));
    code = Dispatch(command, flags);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!metrics_out.empty()) {
    obs::RunInfo info;
    info.command = command;
    info.exit_code = code;
    info.wall_seconds = wall_seconds;
    obs::WriteMetricsFile(metrics_out, obs::Registry::Global(), info);
  }
  if (!trace_out.empty()) {
    obs::Tracer::Global().WriteFile(trace_out);
  }
  return code;
}

}  // namespace whoiscrf::cli
