#include <cstdio>

#include "cli/commands.h"
#include "whois/training_data.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdTrain(util::FlagParser& flags) {
  const std::string data = flags.GetString("data");
  const std::string model = flags.GetString("model");
  if (data.empty() || model.empty()) {
    std::fprintf(stderr, "train: --data and --model are required\n");
    return 2;
  }

  whois::WhoisParserOptions options;
  options.trainer.l2_sigma = flags.GetDouble("l2", 10.0);
  options.trainer.min_attr_count =
      static_cast<uint32_t>(flags.GetInt("min-count", 1));
  options.trainer.lbfgs.max_iterations =
      static_cast<int>(flags.GetInt("iterations", 150));
  options.trainer.threads = static_cast<size_t>(flags.GetInt("threads", 0));
  if (flags.GetBool("sgd")) {
    options.trainer.algorithm = crf::Algorithm::kSgd;
    options.trainer.sgd.epochs =
        static_cast<int>(flags.GetInt("epochs", 30));
  }
  options.trainer.verbose = flags.GetBool("verbose");

  const auto records = whois::ReadLabeledRecordsFile(data);
  std::printf("training on %zu labeled records from %s...\n", records.size(),
              data.c_str());
  const whois::WhoisParser parser = whois::WhoisParser::Train(records, options);
  parser.SaveFile(model);
  std::printf("model written to %s (level-1: %zu features, level-2: %zu)\n",
              model.c_str(), parser.level1_model().num_weights(),
              parser.level2_model().num_weights());
  return 0;
}

}  // namespace whoiscrf::cli
