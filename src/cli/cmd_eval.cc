#include <cstdio>

#include "cli/commands.h"
#include "crf/evaluation.h"
#include "whois/training_data.h"
#include "whois/whois_parser.h"

namespace whoiscrf::cli {

int CmdEval(util::FlagParser& flags) {
  const std::string model_path = flags.GetString("model");
  const std::string data = flags.GetString("data");
  if (model_path.empty() || data.empty()) {
    std::fprintf(stderr, "eval: --model and --data are required\n");
    return 2;
  }
  const bool confusion = flags.GetBool("confusion");

  const whois::WhoisParser parser = whois::WhoisParser::LoadFile(model_path);
  const auto records = whois::ReadLabeledRecordsFile(data);

  crf::Evaluator evaluator(whois::kNumLevel1Labels);
  for (const auto& record : records) {
    const auto predicted = parser.LabelLines(record.text);
    std::vector<int> gold;
    std::vector<int> pred;
    gold.reserve(record.labels.size());
    for (size_t t = 0; t < record.labels.size(); ++t) {
      gold.push_back(static_cast<int>(record.labels[t]));
      pred.push_back(static_cast<int>(predicted[t]));
    }
    evaluator.AddDocument(gold, pred);
  }

  const auto& result = evaluator.result();
  std::printf("records:              %zu\n", result.total_documents);
  std::printf("lines:                %zu\n", result.total_lines);
  std::printf("line error rate:      %.5f (%zu wrong)\n",
              result.LineErrorRate(), result.wrong_lines);
  std::printf("document error rate:  %.5f (%zu wrong)\n",
              result.DocumentErrorRate(), result.wrong_documents);
  if (confusion) {
    std::printf("\n%s", evaluator.RenderConfusion(whois::Level1Names()).c_str());
  }
  return result.wrong_lines == 0 ? 0 : 1;
}

}  // namespace whoiscrf::cli
