#include "cli/help.h"

#include <string>
#include <unordered_map>

namespace whoiscrf::cli {

namespace {

// Flags every subcommand accepts, appended to each command's help.
constexpr const char* kGlobalFlags = R"HELP(
global flags (every command):
  --metrics-out FILE     write the metrics registry when the command ends
                         (.prom/.txt Prometheus text, .jsonl appends one
                         run-report line, anything else a JSON run report)
  --trace-out FILE       record trace spans and write Chrome trace JSON
                         (open at chrome://tracing or ui.perfetto.dev)
  --help                 print this help and exit
)HELP";

constexpr const char* kGenHelp = R"HELP(usage: whoiscrf gen --out FILE [flags]

Generate a labeled synthetic WHOIS corpus in the training-data text format
(docs/formats.md).

flags:
  --out FILE             output path (required)
  --count N              number of domains to generate (default 100)
  --seed S               RNG seed (default 42)
  --drift F              fraction of records drawn from drifted template
                         variants (default 0.25)
  --new-tld TLD          also emit records for a held-out TLD, for
                         adaptation experiments
)HELP";

constexpr const char* kTrainHelp = R"HELP(usage: whoiscrf train --data FILE --model FILE [flags]

Train the two-level CRF parser from labeled records.

flags:
  --data FILE            labeled training records (required)
  --model FILE           output model path (required)
  --l2 SIGMA             L2 regularization sigma (default 10.0)
  --min-count K          minimum attribute count to keep a feature
                         (default 1)
  --iterations N         L-BFGS iteration cap (default 150)
  --threads N            training threads (default 0 = hardware)
  --sgd                  train with SGD instead of L-BFGS
  --epochs N             SGD epochs, with --sgd (default 30)
  --verbose              print per-iteration objective values
)HELP";

constexpr const char* kParseHelp = R"HELP(usage: whoiscrf parse --model FILE [flags]

Parse raw WHOIS records (from --in, --in-store, or stdin; multiple records
separated by a line containing only "%%") and print structured output.

flags:
  --model FILE           trained model (required)
  --in FILE              raw records file ("" or omitted = stdin)
  --in-store PREFIX      read a sharded binary record store instead
  --store-out PREFIX     also pack raw records into a sharded binary store;
                         with --stream this is the crash-safe checkpointed
                         path (quarantine + resume)
  --format FMT           json | rdap | fields | labels (default fields)
  --threads N            worker threads (default 0 = hardware)
  --stream               bounded-memory pipeline; corpus is never
                         materialized (docs/architecture.md)
  --beam K               beam-pruned Viterbi with width K >= 1 (omit the
                         flag for exact decoding); in-memory mode only
  --resume               with --stream --store-out: continue an interrupted
                         run from the checkpoint
  --checkpoint-interval N
                         records between checkpoints (default 4096)
  --watchdog-ms MS       per-record parse watchdog; hung records are
                         quarantined (default 0 = off)
  --max-record-bytes N   oversized records are quarantined (default 0 = off)
  --cascade              dispatch through the parser cascade
                         (template -> rules -> CRF; docs/cascade.md)
  --cascade-data FILE    labeled records the cascade's template and rule
                         tiers are built from (required with --cascade)
  --shadow-rate R        fraction of cheap-path records shadow-parsed
                         through the CRF (default 0 = off)
  --rule-coverage-min X  minimum learned-rule coverage to keep a record at
                         the rule tier (default 0.98)
  --rule-max-unknown N   titled lines unknown to the rule base before a
                         record falls through to the CRF (default 0)
)HELP";

constexpr const char* kAdaptHelp = R"HELP(usage: whoiscrf adapt --model FILE --data FILE --out FILE

Warm-started retraining (the paper's maintenance workflow): --data is the
training set including any newly labeled failure cases.

flags:
  --model FILE           model to adapt (required)
  --data FILE            labeled records to retrain on (required)
  --out FILE             output model path (required)
)HELP";

constexpr const char* kEvalHelp = R"HELP(usage: whoiscrf eval --model FILE --data FILE [flags]

Evaluate a trained model against labeled records (line and document error).

flags:
  --model FILE           trained model (required)
  --data FILE            labeled evaluation records (required)
  --confusion            also print the level-1 confusion matrix
)HELP";

constexpr const char* kSelectHelp = R"HELP(usage: whoiscrf select --model FILE --in FILE [flags]

Active learning: rank unlabeled records by parse confidence and print the k
records most in need of manual labeling.

flags:
  --model FILE           trained model (required)
  --in FILE              raw records to rank (required)
  --k N                  how many records to print (default 5)
)HELP";

constexpr const char* kCrawlHelp = R"HELP(usage: whoiscrf crawl [flags]

Run the simulated registry/registrar crawl; with --model, parse every thick
record and emit one JSON object per domain.

flags:
  --domains N            domains to crawl (default 200)
  --seed S               RNG seed (default 42)
  --model FILE           parse thick records with this model
  --json                 emit JSON even without --model
  --journal FILE         durable crawl journal for crash-safe resume
  --resume               continue from an existing --journal
)HELP";

constexpr const char* kServeHelp = R"HELP(usage: whoiscrf serve --model FILE [flags]

Run the concurrent parse service on 127.0.0.1: raw records in, parsed JSON
out, over the length-prefixed framing protocol (docs/formats.md). SIGTERM
or SIGINT drains gracefully.

flags:
  --model FILE           trained model (required)
  --port N               listen port (default 0 = ephemeral)
  --threads K            worker threads (default 0 = hardware)
  --queue-capacity N     admission-control queue bound (default 128)
  --cache-entries N      result cache capacity (default 4096)
  --deadline-ms D        per-request deadline (default 0 = none)
  --max-record-bytes N   maximum request frame size
  --drain-after-ms MS    self-drain after MS, for tests/demos that cannot
                         send signals (default 0 = run until signaled)
  --serve-frontend MODE  epoll (default: non-blocking event loops) or
                         threads (legacy thread-per-connection)
  --event-loops N        event-loop threads multiplexing connections
                         (epoll frontend; default 1)
  --writeq-max-bytes N   per-connection write-queue bound before the
                         connection stops being read (backpressure;
                         epoll frontend; default 4194304, 0 = unbounded)
  --listen-backlog N     listen(2) backlog (default 1024)
  --model-watch          hot model reload (docs/lifecycle.md "Hot swap"):
                         poll --model for changes, load off the serving
                         path, swap atomically; SIGHUP forces a reload
                         check; a load failure keeps the current model;
                         mutually exclusive with --cascade-data
  --model-watch-ms MS    model file poll cadence (default 1000)
  --cascade-data FILE    serve through the parser cascade built from these
                         labeled records (docs/cascade.md)
  --shadow-rate R        cascade shadow-sample rate (default 0 = off)
  --rule-coverage-min X  cascade rule-tier coverage gate (default 0.98)
  --rule-max-unknown N   cascade rule-tier unknown-title budget (default 0)
)HELP";

constexpr const char* kRetrainLoopHelp =
    R"HELP(usage: whoiscrf retrain-loop --state-dir DIR [flags]

Closed-loop self-healing lifecycle driver (docs/lifecycle.md): stream the
temporal drifting corpus in time order, harvest drift-signaled records
into the retraining buffer, retrain in the background when a registrar's
drift alarm trips, gate candidates against the incumbent on held-out
data, promote (or quarantine) them, and roll back a promotion whose
post-swap disagreement rate spikes. State checkpoints to --state-dir so a
killed run continues with --resume.

flags:
  --state-dir DIR        durable lifecycle state: live model, retraining
                         buffer, cursor, quarantined candidates (required;
                         created if missing)
  --count N              temporal corpus size = records streamed
                         (default 20000)
  --seed S               corpus + reservoir RNG seed (default 42)
  --events K             schema-change events, evenly spaced (default 2)
  --train-count N        pre-drift prefix used to train the initial model
                         and as every candidate's base corpus
                         (default 400)
  --resume               continue from an existing --state-dir checkpoint
  --retrain-sync         retrain inline at the alarm instead of on the
                         background thread (deterministic record->version
                         mapping for tests and replayed streams)
  --window N             drift-detector window per registrar (default 64)
  --buffer-capacity N    harvest reservoir capacity (default 512)
  --min-retrain N        harvested records required before a retrain
                         starts (default 64)
  --gate-epsilon X       promotion gate: candidate holdout accuracy must
                         be >= incumbent - X (default 0.01)
  --confidence-floor X   also harvest records whose marginal confidence
                         falls below X (default 0 = truth-signal only)
  --probation-window N   post-promotion shadow samples scored before the
                         promotion is trusted (default 64)
  --rollback-rate X      probation disagreement rate that rolls the
                         promotion back (default 0.5)
  --report-every N       records per accuracy report line (default 2000)
  --checkpoint-interval N
                         records between state checkpoints (default 4096)
  --iterations N         L-BFGS iteration cap per (re)train (default 60)
  --l2 SIGMA             L2 regularization sigma (default 10.0)
  --threads N            training threads (default 0 = hardware)
)HELP";

constexpr const char* kScaleRunHelp =
    R"HELP(usage: whoiscrf scale-run --out PREFIX [flags]

Paper-scale survey harness (docs/architecture.md "Paper-scale runs"):
generates a temporal synthetic corpus one record at a time, streams it
through the checkpointed parse pipeline into a sharded record store at
--out, folds every parsed record into the streaming survey accumulator,
and prints the paper's §6 tables. Memory stays bounded at any --count;
a killed run continues byte-identically with --resume; --bench-out
writes the BENCH_scale_run.json artifact the nightly scale CI tier
gates against bench/bench_floor.json.

flags:
  --out PREFIX           record store + checkpoint prefix (required)
  --count N              corpus size = records streamed (default 1000000;
                         --smoke 2000)
  --seed S               corpus RNG seed (default 42)
  --events K             schema-change events in the temporal corpus,
                         evenly spaced (default 2)
  --train-count N        corpus prefix the parser trains on (default 300;
                         --smoke 120)
  --threads N            parse workers (default 0 = hardware)
  --resume               continue from PREFIX.ckpt instead of restarting
  --checkpoint-interval N
                         records between durable checkpoints (default
                         65536; --smoke 256)
  --cascade              dispatch through the template -> rules -> CRF
                         cascade built from the training prefix
  --shadow-rate R        cascade shadow-sample rate in [0,1] (default 0)
  --smoke                CI-smoke preset: shrinks count/train-count/
                         checkpoint-interval/self-check defaults;
                         explicit flags still win
  --self-check N         cross-check the first N records against the
                         in-memory survey path (default 2000; --smoke
                         500; 0 disables unless --bench-out is set)
  --top-k N              rows per survey table (default 10)
  --brands A,B,...       registrant orgs to count exactly (Table 4)
  --tables-out FILE      write the survey tables here instead of stdout
  --bench-out FILE       write the BENCH_scale_run.json artifact
  --journal FILE         append one crawl-journal line per checkpoint
  --watchdog-ms MS       per-batch parse watchdog (default 0 = off)
  --max-record-bytes N   quarantine records larger than N bytes
)HELP";

constexpr const char* kQuarantineHelp =
    R"HELP(usage: whoiscrf quarantine (ls | cat | export) --store PREFIX [flags]

Inspect a quarantine record store: the poison-record store the
checkpointed parse pipeline writes next to its output store, or the
failed-candidate store the model lifecycle keeps under its state dir
(docs/lifecycle.md "Fail-closed quarantine"). --store accepts either the
main store prefix (the quarantine rides at PREFIX-quarantine) or the
quarantine store's own prefix.

modes:
  ls                     one TSV line per entry: index, reason, bytes
  cat                    print one entry's raw record (reason to stderr)
  export                 dump all records, %%-framed, re-parseable by
                         `whoiscrf parse --in`

flags:
  --store PREFIX         record store prefix (required)
  --index N              which entry to cat (the index column of ls)
  --out FILE             export destination (default stdout)
)HELP";

constexpr const char* kShardRouterHelp =
    R"HELP(usage: whoiscrf shard-router --backends P1,P2,... [flags]

Consistent-hash front end over N backend `whoiscrf serve` processes: each
raw record always routes to the same shard (cache affinity), frames are
forwarded asynchronously through the epoll event loop, and periodic health
checks eject and re-admit shards automatically (docs/formats.md "Router
health checks"). SIGTERM or SIGINT drains gracefully.

flags:
  --backends LIST        comma-separated backend endpoints, each "port" or
                         "ip:port" on loopback (required)
  --port N               listen port (default 0 = ephemeral)
  --vnodes N             virtual ring points per shard (default 64)
  --health-interval-ms MS
                         health-probe cadence (default 1000; 0 = off)
  --health-timeout-ms MS health-probe budget: connect + empty frame +
                         complete response (default 250)
  --max-record-bytes N   maximum request frame size
  --writeq-max-bytes N   per-connection write-queue bound before the
                         connection stops being read (backpressure;
                         default 4194304, 0 = unbounded)
  --listen-backlog N     listen(2) backlog (default 1024)
  --drain-after-ms MS    self-drain after MS, for tests/demos that cannot
                         send signals (default 0 = run until signaled)
)HELP";

}  // namespace

const char* CommandHelp(const std::string& command) {
  static const std::unordered_map<std::string, std::string>* table = [] {
    auto* t = new std::unordered_map<std::string, std::string>;
    const auto add = [t](const char* name, const char* body) {
      (*t)[name] = std::string(body) + kGlobalFlags;
    };
    add("gen", kGenHelp);
    add("train", kTrainHelp);
    add("parse", kParseHelp);
    add("adapt", kAdaptHelp);
    add("eval", kEvalHelp);
    add("select", kSelectHelp);
    add("crawl", kCrawlHelp);
    add("serve", kServeHelp);
    add("shard-router", kShardRouterHelp);
    add("retrain-loop", kRetrainLoopHelp);
    add("scale-run", kScaleRunHelp);
    add("quarantine", kQuarantineHelp);
    return t;
  }();
  const auto it = table->find(command);
  return it == table->end() ? nullptr : it->second.c_str();
}

}  // namespace whoiscrf::cli
