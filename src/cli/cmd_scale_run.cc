// whoiscrf scale-run — the paper-scale survey harness (ROADMAP item 5a):
// generate-or-resume a TemporalCorpusGenerator corpus of up to 100M
// records, stream it through the checkpointed parse pipeline (optionally
// the cascade) into a sharded record store, and emit the §6 survey
// tables from the streaming SurveyAccumulator, all on bounded memory.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cascade/cascade.h"
#include "cli/commands.h"
#include "datagen/temporal.h"
#include "net/crawl_journal.h"
#include "obs/metrics.h"
#include "survey/scale_run.h"
#include "util/string_util.h"

namespace whoiscrf::cli {

namespace {

std::vector<std::string> SplitBrands(const std::string& list) {
  std::vector<std::string> out;
  for (std::string_view brand : util::Split(list, ',')) {
    if (!brand.empty()) out.emplace_back(brand);
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  os << text;
  os.flush();
  return os.good();
}

// BENCH_scale_run.json: the artifact the nightly scale tier and the
// bench-smoke job gate via scripts/check_bench_floor.py ("scale_run"
// section of bench/bench_floor.json).
bool WriteBenchArtifact(const std::string& path,
                        const survey::ScaleRunResult& result,
                        uint64_t self_check_records, bool checksums_match) {
  const double checkpoint_overhead_pct =
      result.run_seconds > 0.0
          ? result.checkpoint_seconds / result.run_seconds * 100.0
          : 0.0;
  std::ofstream os(path);
  os << "{\n";
  os << "  \"bench\": \"scale_run\",\n";
  os << "  \"records\": " << result.records_stored << ",\n";
  os << "  \"records_this_run\": " << result.stats.records << ",\n";
  os << "  \"skipped\": " << result.skipped << ",\n";
  os << "  \"quarantined\": " << result.quarantined << ",\n";
  os << "  \"run_seconds\": " << result.run_seconds << ",\n";
  os << "  \"sustained_rps\": " << result.sustained_rps << ",\n";
  os << "  \"generate_seconds\": " << result.generate_seconds << ",\n";
  os << "  \"checkpoints\": " << result.checkpoints << ",\n";
  os << "  \"checkpoint_seconds\": " << result.checkpoint_seconds << ",\n";
  os << "  \"checkpoint_overhead_pct\": " << checkpoint_overhead_pct
     << ",\n";
  os << "  \"stalls\": {\"reader_s\": " << result.stats.reader_stall_seconds
     << ", \"worker_s\": " << result.stats.worker_stall_seconds
     << ", \"sink_s\": " << result.stats.sink_stall_seconds
     << ", \"batches\": " << result.stats.batches << "},\n";
  os << "  \"peak_rss_kb\": " << result.peak_rss_kb << ",\n";
  os << "  \"self_check_records\": " << self_check_records << ",\n";
  os << "  \"checksums_match\": " << (checksums_match ? "true" : "false")
     << ",\n";
  os << "  \"metrics\": " << obs::Registry::Global().RenderJson() << "\n";
  os << "}\n";
  os.flush();
  return os.good();
}

}  // namespace

int CmdScaleRun(util::FlagParser& flags) {
  const std::string out = flags.GetString("out");
  const bool smoke = flags.GetBool("smoke");
  // --smoke shrinks every scale knob to CI-smoke size; explicit flags
  // still win so a smoke run can be steered from the command line.
  const auto smoke_default = [&](const char* name, int64_t normal,
                                 int64_t tiny) {
    const int64_t fallback = smoke ? tiny : normal;
    return flags.Has(name) ? flags.GetInt(name, fallback) : fallback;
  };
  const auto count =
      static_cast<uint64_t>(smoke_default("count", 1000000, 2000));
  const auto train_count =
      static_cast<size_t>(smoke_default("train-count", 300, 120));
  const auto checkpoint_interval = static_cast<uint64_t>(
      smoke_default("checkpoint-interval", 65536, 256));
  auto self_check =
      static_cast<uint64_t>(smoke_default("self-check", 2000, 500));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const auto events = static_cast<size_t>(flags.GetInt("events", 2));
  const auto threads = static_cast<size_t>(flags.GetInt("threads", 0));
  const bool resume = flags.GetBool("resume");
  const bool use_cascade = flags.GetBool("cascade");
  const double shadow_rate = flags.GetDouble("shadow-rate", 0.0);
  const auto top_k = static_cast<size_t>(flags.GetInt("top-k", 10));
  const std::vector<std::string> brands =
      SplitBrands(flags.GetString("brands"));
  const std::string tables_out = flags.GetString("tables-out");
  const std::string bench_out = flags.GetString("bench-out");
  const std::string journal_path = flags.GetString("journal");
  const auto watchdog_ms =
      static_cast<uint64_t>(flags.GetInt("watchdog-ms", 0));
  const auto max_record_bytes =
      static_cast<uint64_t>(flags.GetInt("max-record-bytes", 0));

  if (out.empty()) {
    std::fprintf(stderr, "scale-run: --out is required\n");
    return 2;
  }
  if (count == 0) {
    std::fprintf(stderr, "scale-run: --count must be >= 1\n");
    return 2;
  }
  if (train_count == 0 || train_count > count) {
    std::fprintf(stderr,
                 "scale-run: --train-count must be in [1, --count]\n");
    return 2;
  }
  if (use_cascade && (shadow_rate < 0.0 || shadow_rate > 1.0)) {
    std::fprintf(stderr, "scale-run: --shadow-rate must be in [0, 1]\n");
    return 2;
  }
  if (!bench_out.empty() && self_check == 0) {
    // The bench artifact's checksums_match feeds the floor gate
    // (require_checksums_match), so a gated run always cross-checks.
    self_check = 500;
    std::fprintf(stderr,
                 "scale-run: --bench-out implies a self-check; using "
                 "--self-check 500\n");
  }
  self_check = std::min<uint64_t>(self_check, count);

  datagen::TemporalCorpusOptions corpus_options;
  corpus_options.size = static_cast<size_t>(count);
  corpus_options.seed = seed;
  corpus_options.events = events;
  const datagen::TemporalCorpusGenerator generator(corpus_options);

  std::fprintf(stderr,
               "scale-run: training on the first %zu records ...\n",
               train_count);
  const whois::WhoisParser parser =
      survey::TrainScaleParser(generator, train_count);

  // Cascade tiers are built from the same labeled prefix the parser
  // trained on — no external --cascade-data file is needed because the
  // corpus is synthetic and self-labeling.
  std::unique_ptr<cascade::CascadeParser> cascade_parser;
  if (use_cascade) {
    std::vector<whois::LabeledRecord> corpus;
    corpus.reserve(train_count);
    for (size_t i = 0; i < train_count; ++i) {
      corpus.push_back(generator.Generate(i).thick);
    }
    cascade::CascadeOptions cascade_options;
    cascade_options.shadow_sample_rate = shadow_rate;
    cascade_parser = std::make_unique<cascade::CascadeParser>(
        &parser, corpus, cascade_options);
  }

  std::unique_ptr<net::CrawlJournal> journal;
  if (!journal_path.empty()) {
    journal = std::make_unique<net::CrawlJournal>(journal_path);
  }

  survey::ScaleRunOptions options;
  options.store_prefix = out;
  options.count = count;
  options.threads = threads;
  options.checkpoint_interval = checkpoint_interval;
  options.max_record_bytes = max_record_bytes;
  options.watchdog_timeout_ms = watchdog_ms;
  options.resume = resume;
  options.brands = brands;
  options.input_tag = util::Format(":train=%zu:cascade=%d", train_count,
                                   use_cascade ? 1 : 0);
  if (cascade_parser) {
    options.parse_override = [&cascade = *cascade_parser](
                                 const std::string& record,
                                 whois::ParseWorkspace& ws) {
      return cascade.ParseRecord(record, ws);
    };
  }
  if (journal) {
    // One journal line per durable checkpoint: the crawl-journal is the
    // run's progress log, replayable with `whoiscrf crawl --resume`
    // tooling conventions (docs/formats.md "Crawl journal").
    options.on_checkpoint = [&journal](const whois::StreamCheckpoint& cp) {
      journal->RecordDomain(
          util::Format("scale:%llu",
                       static_cast<unsigned long long>(cp.consumed)),
          net::CrawlResult::Status::kOk, 1);
    };
  }

  const survey::ScaleRunResult result =
      survey::RunScaleRun(parser, generator, options);

  const double checkpoint_overhead_pct =
      result.run_seconds > 0.0
          ? result.checkpoint_seconds / result.run_seconds * 100.0
          : 0.0;
  std::fprintf(stderr,
               "scale-run: %llu records stored (%llu this run, %llu "
               "skipped via resume, %llu quarantined)\n",
               static_cast<unsigned long long>(result.records_stored),
               static_cast<unsigned long long>(result.stats.records),
               static_cast<unsigned long long>(result.skipped),
               static_cast<unsigned long long>(result.quarantined));
  std::fprintf(stderr,
               "scale-run: %.0f records/s sustained over %.1fs, %llu "
               "checkpoints (%.2f%% overhead), peak RSS %ld KiB\n",
               result.sustained_rps, result.run_seconds,
               static_cast<unsigned long long>(result.checkpoints),
               checkpoint_overhead_pct, result.peak_rss_kb);
  std::fprintf(stderr,
               "scale-run: stalls — reader %.2fs, worker %.2fs, "
               "sink %.2fs\n",
               result.stats.reader_stall_seconds,
               result.stats.worker_stall_seconds,
               result.stats.sink_stall_seconds);

  const std::string tables =
      survey::RenderScaleSurveyTables(result.survey, top_k);
  if (tables_out.empty()) {
    std::fputs(tables.c_str(), stdout);
  } else if (!WriteTextFile(tables_out, tables)) {
    std::fprintf(stderr, "scale-run: cannot write %s\n",
                 tables_out.c_str());
    return 1;
  }

  bool checksums_match = true;
  if (self_check > 0) {
    whois::StreamPipelineOptions pipeline;
    pipeline.threads = threads;
    pipeline.parse_override = options.parse_override;
    std::string detail;
    checksums_match = survey::CrossCheckSurveyPaths(
        parser, generator, pipeline, self_check, &detail);
    if (checksums_match) {
      std::fprintf(stderr,
                   "scale-run: self-check over %llu records: streaming "
                   "and in-memory survey paths identical\n",
                   static_cast<unsigned long long>(self_check));
    } else {
      std::fprintf(stderr, "scale-run: SELF-CHECK FAILED: %s\n",
                   detail.c_str());
    }
  }

  if (!bench_out.empty() &&
      !WriteBenchArtifact(bench_out, result, self_check, checksums_match)) {
    std::fprintf(stderr, "scale-run: cannot write %s\n", bench_out.c_str());
    return 1;
  }
  return checksums_match ? 0 : 1;
}

}  // namespace whoiscrf::cli
