// whoiscrf quarantine — inspect quarantine stores: the poison-record store
// the checkpointed parse pipeline writes next to its output
// (`<prefix>-quarantine`, docs/formats.md "Quarantine store") and the
// failed-candidate store the model lifecycle writes under its state dir
// (`<dir>/models-quarantine`, docs/lifecycle.md "Fail-closed quarantine").
// Both hold FormatQuarantineEntry records, so one tool reads either.
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "cli/commands.h"
#include "whois/record_store.h"
#include "whois/stream_checkpoint.h"

namespace whoiscrf::cli {

namespace {

// `--store P` accepts either the main-store prefix (the quarantine rides
// at `P-quarantine`) or the quarantine store's own prefix.
std::unique_ptr<whois::RecordStoreReader> OpenQuarantine(
    const std::string& store) {
  try {
    return std::make_unique<whois::RecordStoreReader>(store + "-quarantine");
  } catch (const std::runtime_error&) {
  }
  return std::make_unique<whois::RecordStoreReader>(store);
}

void PrintFramedRecord(std::FILE* out, const std::string& record) {
  std::fwrite(record.data(), 1, record.size(), out);
  if (record.empty() || record.back() != '\n') std::fputc('\n', out);
  std::fputs("%%\n", out);
}

}  // namespace

int CmdQuarantine(util::FlagParser& flags) {
  const std::string store = flags.GetString("store");
  const int64_t want_index = flags.GetInt("index", -1);
  const std::string out_path = flags.GetString("out");
  if (flags.positional().empty()) {
    std::fprintf(stderr,
                 "quarantine: missing mode (ls | cat | export); see "
                 "`whoiscrf quarantine --help`\n");
    return 2;
  }
  const std::string mode = flags.positional()[0];
  if (mode != "ls" && mode != "cat" && mode != "export") {
    std::fprintf(stderr, "quarantine: unknown mode '%s'\n", mode.c_str());
    return 2;
  }
  if (store.empty()) {
    std::fprintf(stderr, "quarantine: --store is required\n");
    return 2;
  }

  std::unique_ptr<whois::RecordStoreReader> reader;
  try {
    reader = OpenQuarantine(store);
  } catch (const std::runtime_error& e) {
    std::fprintf(stderr, "quarantine: %s\n", e.what());
    return 1;
  }

  if (mode == "ls") {
    // One TSV line per entry: recorded input index, reason, record bytes.
    for (uint64_t i = 0; i < reader->size(); ++i) {
      uint64_t index = 0;
      std::string reason, record;
      whois::ParseQuarantineEntry(reader->Get(i), index, reason, record);
      std::printf("%llu\t%s\t%zu\n",
                  static_cast<unsigned long long>(index), reason.c_str(),
                  record.size());
    }
    std::fprintf(stderr, "quarantine: %llu entries\n",
                 static_cast<unsigned long long>(reader->size()));
    return 0;
  }

  if (mode == "cat") {
    if (want_index < 0) {
      std::fprintf(stderr, "quarantine: cat needs --index N (from ls)\n");
      return 2;
    }
    for (uint64_t i = 0; i < reader->size(); ++i) {
      uint64_t index = 0;
      std::string reason, record;
      whois::ParseQuarantineEntry(reader->Get(i), index, reason, record);
      if (index != static_cast<uint64_t>(want_index)) continue;
      std::fprintf(stderr, "quarantine: index %llu: %s\n",
                   static_cast<unsigned long long>(index), reason.c_str());
      std::fwrite(record.data(), 1, record.size(), stdout);
      if (record.empty() || record.back() != '\n') std::fputc('\n', stdout);
      return 0;
    }
    std::fprintf(stderr, "quarantine: no entry with index %lld\n",
                 static_cast<long long>(want_index));
    return 1;
  }

  // export: raw records, %%-framed, re-parseable by `whoiscrf parse --in`.
  std::FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "quarantine: cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  for (uint64_t i = 0; i < reader->size(); ++i) {
    uint64_t index = 0;
    std::string reason, record;
    whois::ParseQuarantineEntry(reader->Get(i), index, reason, record);
    PrintFramedRecord(out, record);
  }
  if (out != stdout) std::fclose(out);
  std::fprintf(stderr, "quarantine: exported %llu records\n",
               static_cast<unsigned long long>(reader->size()));
  return 0;
}

}  // namespace whoiscrf::cli
