// whoiscrf shard-router — consistent-hash front end over N backend
// `whoiscrf serve` processes. Raw record bytes hash onto a ring of
// virtual nodes, so the same record always lands on the same shard's
// result cache; periodic health checks eject and re-admit shards.
// SIGTERM/SIGINT triggers a graceful drain, mirroring `whoiscrf serve`.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cli/commands.h"
#include "obs/metrics.h"
#include "serve/router.h"

namespace whoiscrf::cli {

namespace {

volatile std::sig_atomic_t g_router_stop = 0;

void OnRouterSignal(int /*signum*/) { g_router_stop = 1; }

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int CmdShardRouter(util::FlagParser& flags) {
  const std::vector<std::string> backends =
      SplitCommas(flags.GetString("backends"));
  if (backends.empty()) {
    std::fprintf(stderr,
                 "shard-router: --backends is required (comma-separated "
                 "\"port\" or \"ip:port\" endpoints)\n");
    return 2;
  }

  serve::ShardRouterOptions options;
  options.backends = backends;
  options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  options.vnodes = static_cast<size_t>(flags.GetInt("vnodes", 64));
  options.health_interval_ms =
      static_cast<uint64_t>(flags.GetInt("health-interval-ms", 1000));
  options.health_timeout_ms =
      static_cast<uint64_t>(flags.GetInt("health-timeout-ms", 250));
  options.max_frame_bytes = static_cast<size_t>(flags.GetInt(
      "max-record-bytes",
      static_cast<int64_t>(serve::kDefaultMaxFrameBytes)));
  options.write_queue_max_bytes = static_cast<size_t>(
      flags.GetInt("writeq-max-bytes", 4 * 1024 * 1024));
  options.listen_backlog =
      static_cast<int>(flags.GetInt("listen-backlog", 1024));
  const auto drain_after_ms =
      static_cast<uint64_t>(flags.GetInt("drain-after-ms", 0));

  serve::ShardRouter router(options);
  std::fprintf(stderr,
               "shard-router: listening on 127.0.0.1:%u (%zu shards, "
               "%zu vnodes each)\n",
               static_cast<unsigned>(router.port()), router.num_shards(),
               options.vnodes);

  g_router_stop = 0;
  auto* previous_term = std::signal(SIGTERM, OnRouterSignal);
  auto* previous_int = std::signal(SIGINT, OnRouterSignal);
  uint64_t waited_ms = 0;
  while (g_router_stop == 0 &&
         (drain_after_ms == 0 || waited_ms < drain_after_ms)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    waited_ms += 50;
  }
  std::signal(SIGTERM, previous_term);
  std::signal(SIGINT, previous_int);

  std::fprintf(stderr, "shard-router: draining...\n");
  router.Shutdown();

  const auto& registry = obs::Registry::Global();
  unsigned long long forwarded = 0;
  for (size_t i = 0; i < router.num_shards(); ++i) {
    forwarded += static_cast<unsigned long long>(
        registry.CounterValue("whoiscrf_router_forwarded_total",
                              {{"shard", std::to_string(i)}}));
  }
  std::fprintf(
      stderr, "shard-router: done — %llu forwarded, %llu unrouted\n",
      forwarded,
      static_cast<unsigned long long>(
          registry.CounterValue("whoiscrf_router_unrouted_total")));
  return 0;
}

}  // namespace whoiscrf::cli
