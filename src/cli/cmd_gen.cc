#include <cstdio>

#include "cli/commands.h"
#include "datagen/corpus_gen.h"
#include "whois/training_data.h"

namespace whoiscrf::cli {

int CmdGen(util::FlagParser& flags) {
  const std::string out = flags.GetString("out");
  const auto count = static_cast<size_t>(flags.GetInt("count", 100));
  const auto seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double drift = flags.GetDouble("drift", 0.25);
  const std::string new_tld = flags.GetString("new-tld");
  if (out.empty()) {
    std::fprintf(stderr, "gen: --out is required\n");
    return 2;
  }

  datagen::CorpusOptions options;
  options.size = count;
  options.seed = seed;
  options.drift_fraction = drift;
  const datagen::CorpusGenerator generator(options);

  std::vector<whois::LabeledRecord> records;
  records.reserve(count);
  if (new_tld.empty()) {
    for (size_t i = 0; i < count; ++i) {
      records.push_back(generator.Generate(i).thick);
    }
  } else {
    for (size_t i = 0; i < count; ++i) {
      records.push_back(generator.GenerateNewTld(new_tld, i + 1).thick);
    }
  }
  whois::WriteLabeledRecordsFile(out, records);
  std::printf("wrote %zu labeled records to %s\n", records.size(),
              out.c_str());
  return 0;
}

}  // namespace whoiscrf::cli
