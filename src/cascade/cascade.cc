#include "cascade/cascade.h"

#include <cmath>
#include <utility>

#include "obs/metrics.h"
#include "text/line_splitter.h"

namespace whoiscrf::cascade {

namespace {

using whois::Level1Label;
using whois::Level2Label;

constexpr std::string_view kUnknownRegistrar = "(unknown)";

}  // namespace

std::string_view TierName(Tier tier) {
  switch (tier) {
    case Tier::kTemplate:
      return "template";
    case Tier::kRule:
      return "rule";
    case Tier::kCrf:
      return "crf";
  }
  return "?";
}

std::string_view FallthroughName(Fallthrough reason) {
  switch (reason) {
    case Fallthrough::kNone:
      return "none";
    case Fallthrough::kTemplateMiss:
      return "template_miss";
    case Fallthrough::kRuleUnknownTitles:
      return "rule_unknown_titles";
    case Fallthrough::kRuleLowCoverage:
      return "rule_low_coverage";
    case Fallthrough::kRuleFieldSanity:
      return "rule_field_sanity";
  }
  return "?";
}

std::vector<std::string_view> KeyFieldValues(const whois::ParsedWhois& p) {
  return {p.domain_name,      p.registrar,        p.created,
          p.updated,          p.expires,          p.registrant.name,
          p.registrant.org,   p.registrant.email, p.registrant.country};
}

bool KeyFieldsAgree(const whois::ParsedWhois& a, const whois::ParsedWhois& b) {
  return KeyFieldValues(a) == KeyFieldValues(b);
}

CascadeParser::CascadeParser(const whois::WhoisParser* crf,
                             const std::vector<whois::LabeledRecord>& corpus,
                             CascadeOptions options)
    : crf_(crf),
      template_parser_(baselines::TemplateBasedParser::Build(corpus)),
      rule_parser_(baselines::RuleBasedParser::Build(corpus)),
      options_(options) {
  if (options_.shadow_sample_rate > 0.0) {
    shadow_period_ = static_cast<uint64_t>(
        std::llround(1.0 / std::min(1.0, options_.shadow_sample_rate)));
    if (shadow_period_ == 0) shadow_period_ = 1;
  }

  auto& reg = obs::Registry::Global();
  records_ = reg.GetCounter("whoiscrf_cascade_records_total",
                            "Records dispatched through the cascade");
  for (Tier t : {Tier::kTemplate, Tier::kRule, Tier::kCrf}) {
    dispatch_[static_cast<int>(t)] =
        reg.GetCounter("whoiscrf_cascade_dispatch_total",
                       "Records resolved by each cascade tier",
                       {{"tier", std::string(TierName(t))}});
  }
  for (Fallthrough f :
       {Fallthrough::kTemplateMiss, Fallthrough::kRuleUnknownTitles,
        Fallthrough::kRuleLowCoverage, Fallthrough::kRuleFieldSanity}) {
    fallthrough_[static_cast<int>(f)] =
        reg.GetCounter("whoiscrf_cascade_fallthrough_total",
                       "Records that fell past a cheap tier, by reason",
                       {{"reason", std::string(FallthroughName(f))}});
  }
}

void CascadeParser::ExtractParsed(const std::vector<text::Line>& lines,
                                  std::vector<Level1Label> labels,
                                  const std::vector<Level2Label>* subs,
                                  whois::ParseWorkspace& ws,
                                  whois::ParsedWhois& out) const {
  // Template hits carry the format's exact registrant sub-label sequence;
  // everything else falls back to the rule parser's heuristics.
  const std::vector<Level2Label> guessed =
      subs != nullptr ? std::vector<Level2Label>{}
                      : rule_parser_.RegistrantSubLabels(lines, labels);
  out.line_labels = std::move(labels);
  whois::ExtractFieldsCached(lines, out.line_labels, subs ? *subs : guessed,
                             out, ws.field_routes);
}

bool CascadeParser::FieldsSane(const whois::ParsedWhois& parsed) const {
  // A confident cheap parse of a thick record must have found a
  // plausible domain name...
  if (parsed.domain_name.empty() ||
      parsed.domain_name.find('.') == std::string::npos) {
    return false;
  }
  // ...its date values must actually contain dates...
  for (const std::string* date :
       {&parsed.created, &parsed.updated, &parsed.expires}) {
    if (!date->empty() && !whois::ExtractYear(*date).has_value()) {
      return false;
    }
  }
  // ...and an extracted email must at least be shaped like one.
  const std::string& email = parsed.registrant.email;
  if (!email.empty() && email.find('@') == std::string::npos) {
    return false;
  }
  return true;
}

CascadeResult CascadeParser::Parse(std::string_view record_text,
                                   whois::ParseWorkspace& ws) const {
  CascadeResult result;
  records_->Inc();

  // Split into the workspace's line buffer (reused across records). The
  // CRF re-splits into the same buffer on fallthrough and shadow parses,
  // which is safe: the cheap tiers are done with the lines by then.
  text::SplitRecordInto(record_text, ws.lines);
  const std::vector<text::Line>& lines = ws.lines;

  // Tier 1: template parser. An exact hit is as trustworthy as the labeled
  // corpus itself — the record's every line resolved against one format
  // the corpus contains verbatim.
  baselines::TemplateBasedParser::Result tpl = template_parser_.Parse(lines);
  if (tpl.matched) {
    ExtractParsed(lines, std::move(tpl.labels),
                  tpl.registrant_subs.empty() ? nullptr
                                              : &tpl.registrant_subs,
                  ws, result.parsed);
    result.tier = Tier::kTemplate;
    dispatch_[static_cast<int>(Tier::kTemplate)]->Inc();
    ShadowCheck(record_text, ws, result);
    return result;
  }
  result.template_fallthrough = Fallthrough::kTemplateMiss;
  fallthrough_[static_cast<int>(Fallthrough::kTemplateMiss)]->Inc();

  // Tier 2: rule parser, kept only when its own provenance says the rule
  // base was effectively developed against this format.
  baselines::RuleLabelStats stats;
  std::vector<Level1Label> labels = rule_parser_.LabelLines(lines, &stats);
  Fallthrough reject = Fallthrough::kNone;
  if (stats.unknown_titles > options_.rule_max_unknown_titles) {
    reject = Fallthrough::kRuleUnknownTitles;
  } else if (stats.LearnedCoverage() < options_.rule_coverage_min) {
    reject = Fallthrough::kRuleLowCoverage;
  } else {
    ExtractParsed(lines, std::move(labels), nullptr, ws, result.parsed);
    if (FieldsSane(result.parsed)) {
      result.tier = Tier::kRule;
      dispatch_[static_cast<int>(Tier::kRule)]->Inc();
      ShadowCheck(record_text, ws, result);
      return result;
    }
    reject = Fallthrough::kRuleFieldSanity;
    result.parsed = whois::ParsedWhois{};
  }
  result.rule_fallthrough = reject;
  fallthrough_[static_cast<int>(reject)]->Inc();

  // Tier 3: the CRF — the referee of last resort.
  result.parsed = crf_->Parse(record_text, ws);
  result.tier = Tier::kCrf;
  dispatch_[static_cast<int>(Tier::kCrf)]->Inc();
  return result;
}

void CascadeParser::ShadowCheck(std::string_view record_text,
                                whois::ParseWorkspace& ws,
                                CascadeResult& result) const {
  if (shadow_period_ == 0) return;
  const uint64_t tick = shadow_tick_.fetch_add(1, std::memory_order_relaxed);
  if (tick % shadow_period_ != 0) return;

  result.shadow_sampled = true;
  const whois::ParsedWhois referee = crf_->Parse(record_text, ws);
  result.shadow_disagreed = !KeyFieldsAgree(result.parsed, referee);

  std::string registrar = result.parsed.registrar.empty()
                              ? std::string(kUnknownRegistrar)
                              : result.parsed.registrar;
  std::lock_guard<std::mutex> lock(shadow_mu_);
  ShadowEntry& entry = shadow_[registrar];
  if (entry.samples == nullptr) {
    auto& reg = obs::Registry::Global();
    entry.samples =
        reg.GetCounter("whoiscrf_cascade_shadow_samples_total",
                       "Cheap-path records shadow-parsed through the CRF",
                       {{"registrar", registrar}});
    entry.disagreements = reg.GetCounter(
        "whoiscrf_cascade_shadow_disagreements_total",
        "Shadow samples where the cheap path and the CRF extracted "
        "different key fields (the drift signal)",
        {{"registrar", registrar}});
  }
  entry.stats.samples++;
  entry.samples->Inc();
  if (result.shadow_disagreed) {
    entry.stats.disagreements++;
    entry.disagreements->Inc();
  }
}

whois::ParsedWhois CascadeParser::ParseRecord(const std::string& record_text,
                                              whois::ParseWorkspace& ws) const {
  return Parse(record_text, ws).parsed;
}

std::map<std::string, ShadowStats> CascadeParser::ShadowSnapshot() const {
  std::map<std::string, ShadowStats> out;
  std::lock_guard<std::mutex> lock(shadow_mu_);
  for (const auto& [registrar, entry] : shadow_) {
    out.emplace(registrar, entry.stats);
  }
  return out;
}

}  // namespace whoiscrf::cascade
