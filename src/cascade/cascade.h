// Confidence-gated parser cascade (ROADMAP item 2; AdaParse-style
// dispatch, see PAPERS.md).
//
// The repo ships three parsers with a three-orders-of-magnitude cost
// spread: the template parser (hash lookups, fails closed on any format it
// has not seen verbatim), the rule parser (learned title/header rules plus
// keyword heuristics, degrades gracefully but silently), and the CRF (the
// paper's contribution — robust to format drift, but it runs Viterbi over
// every line). The cascade dispatches each record to the cheapest parser
// predicted to get it right:
//
//   1. Template tier: exact-match hit -> done. A miss costs one signature
//      hash probe plus a bounded scan, then falls through.
//   2. Rule tier: label the record and inspect the rule provenance
//      (RuleLabelStats). The record stays here only when the learned-rule
//      coverage clears `rule_coverage_min`, no titled line was unknown to
//      the rule base, and the extracted fields pass sanity checks (dates
//      carry years, emails carry '@', the domain looks like a domain).
//   3. CRF tier: everything the cheap parsers were not confident about.
//
// Correctness guard (ML-vs-Rules, see PAPERS.md): accuracy must not
// silently degrade when a registrar drifts in a way the cheap tiers still
// *think* they handle. Every Nth cheap-path record (N from
// `shadow_sample_rate`) is re-parsed through the CRF and the two results
// are compared field-by-field; disagreements are counted per registrar.
// A registrar whose disagreement rate climbs is drifting — that counter is
// the input signal for the ROADMAP item 4 drift-detection loop.
//
// Thread-safety: Parse is const and safe to call concurrently (one
// ParseWorkspace per thread, exactly like WhoisParser::Parse). Shadow
// accounting uses one relaxed atomic tick plus a mutex taken only on the
// sampled fraction of records.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/rule_parser.h"
#include "baselines/template_parser.h"
#include "whois/record.h"
#include "whois/whois_parser.h"

namespace whoiscrf::obs {
class Counter;
}  // namespace whoiscrf::obs

namespace whoiscrf::cascade {

// Which parser produced the record's final output.
enum class Tier { kTemplate = 0, kRule = 1, kCrf = 2 };

// Why a record fell past a cheap tier (metrics label values; kNone only in
// CascadeResult, never emitted).
enum class Fallthrough {
  kNone = 0,
  kTemplateMiss,       // no stored template applied cleanly (fail-closed)
  kRuleUnknownTitles,  // titled lines the rule base has no rule for
  kRuleLowCoverage,    // learned-rule coverage below rule_coverage_min
  kRuleFieldSanity,    // extracted fields failed the sanity checks
};

std::string_view TierName(Tier tier);
std::string_view FallthroughName(Fallthrough reason);

struct CascadeOptions {
  // Minimum fraction of lines the rule tier must have labeled via learned
  // rules (or contexts learned rules established) to keep the record.
  double rule_coverage_min = 0.98;
  // Maximum titled lines with no learned rule before the record falls
  // through. The default 0 mirrors the template tier's fail-closed stance:
  // a renamed field is exactly the drift the CRF exists to absorb.
  size_t rule_max_unknown_titles = 0;
  // Fraction of cheap-path (template/rule) records shadow-parsed through
  // the CRF. 0 disables the guard; 1.0 shadows every cheap record.
  // Sampling is deterministic (every round(1/rate)-th cheap record,
  // counted across threads), so tests and reruns see stable counts.
  double shadow_sample_rate = 0.0;
};

// Per-registrar shadow-sampling tallies (the drift signal).
struct ShadowStats {
  uint64_t samples = 0;
  uint64_t disagreements = 0;
};

// Outcome of one cascade dispatch.
struct CascadeResult {
  whois::ParsedWhois parsed;
  Tier tier = Tier::kCrf;
  // Reasons recorded on the way down: empty for a template hit, one entry
  // when the record stopped at the rule tier, two when it reached the CRF.
  Fallthrough template_fallthrough = Fallthrough::kNone;
  Fallthrough rule_fallthrough = Fallthrough::kNone;
  bool shadow_sampled = false;
  bool shadow_disagreed = false;
};

// The key extracted fields the shadow guard compares and the bench's
// field-level accuracy metric scores: domain name, registrar, the three
// dates, and the registrant's name / org / email / country. Order is
// fixed; kNumKeyFields is the denominator of field-level accuracy.
inline constexpr size_t kNumKeyFields = 9;
std::vector<std::string_view> KeyFieldValues(const whois::ParsedWhois& p);

// True when every key field matches exactly.
bool KeyFieldsAgree(const whois::ParsedWhois& a, const whois::ParsedWhois& b);

class CascadeParser {
 public:
  // Builds the cheap tiers (template + rule parsers) from `corpus` and
  // dispatches to `crf` for the rest. `crf` is borrowed and must outlive
  // the cascade. Metric counters are resolved here, once.
  CascadeParser(const whois::WhoisParser* crf,
                const std::vector<whois::LabeledRecord>& corpus,
                CascadeOptions options = {});

  // Dispatches one record. Safe to call concurrently with distinct
  // workspaces.
  CascadeResult Parse(std::string_view record_text,
                      whois::ParseWorkspace& ws) const;

  // Adapter with the StreamPipelineOptions / ParseServiceOptions
  // parse_override signature: the cascade's drop-in replacement for
  // WhoisParser::Parse in the streaming and serving layers.
  whois::ParsedWhois ParseRecord(const std::string& record_text,
                                 whois::ParseWorkspace& ws) const;

  // Point-in-time copy of the per-registrar shadow tallies (keyed by the
  // cheap path's extracted registrar; "(unknown)" when empty).
  std::map<std::string, ShadowStats> ShadowSnapshot() const;

  const CascadeOptions& options() const { return options_; }
  const baselines::TemplateBasedParser& template_parser() const {
    return template_parser_;
  }
  const baselines::RuleBasedParser& rule_parser() const {
    return rule_parser_;
  }

 private:
  // Labels -> ParsedWhois via the shared field extractor (the memoized
  // variant; the workspace carries the route-plan cache). `subs` supplies
  // the registrant sub-labels when the dispatching tier knows them exactly
  // (template hits); nullptr falls back to the rule parser's heuristics.
  void ExtractParsed(const std::vector<text::Line>& lines,
                     std::vector<whois::Level1Label> labels,
                     const std::vector<whois::Level2Label>* subs,
                     whois::ParseWorkspace& ws,
                     whois::ParsedWhois& out) const;

  // Do the extracted fields look internally consistent?
  bool FieldsSane(const whois::ParsedWhois& parsed) const;

  // Shadow-guard bookkeeping for one cheap-path record (called only when
  // the tick counter selects it).
  void ShadowCheck(std::string_view record_text, whois::ParseWorkspace& ws,
                   CascadeResult& result) const;

  const whois::WhoisParser* crf_;
  baselines::TemplateBasedParser template_parser_;
  baselines::RuleBasedParser rule_parser_;
  CascadeOptions options_;
  uint64_t shadow_period_ = 0;  // 0 = guard disabled

  // Global dispatch counters, resolved at construction.
  obs::Counter* records_ = nullptr;
  obs::Counter* dispatch_[3] = {nullptr, nullptr, nullptr};  // by Tier
  obs::Counter* fallthrough_[5] = {nullptr, nullptr, nullptr, nullptr,
                                   nullptr};  // by Fallthrough; [0] unused

  // Shadow guard state. The tick is advanced for every cheap-path record;
  // the map (and its per-registrar counters) is touched only on sampled
  // ones.
  mutable std::atomic<uint64_t> shadow_tick_{0};
  struct ShadowEntry {
    ShadowStats stats;
    obs::Counter* samples = nullptr;
    obs::Counter* disagreements = nullptr;
  };
  mutable std::mutex shadow_mu_;
  mutable std::map<std::string, ShadowEntry> shadow_;
};

}  // namespace whoiscrf::cascade
