// Versioned live-model handle for hot swapping (docs/lifecycle.md "Hot
// swap"; docs/architecture.md "Model lifecycle").
//
// RCU-style reads: a reader takes one mutex-guarded shared_ptr copy and
// parses with that snapshot for as long as it likes — a concurrent Swap
// never invalidates it, it just stops being the current model, and the old
// parser is destroyed when its last in-flight reader drops the reference.
// That is the whole zero-downtime story: no reader/writer barrier, no
// request ever observes a half-swapped model.
//
// Versions are strictly increasing and never reused (a rollback re-installs
// an old model under a NEW version). The serve result cache keys on the
// version (serve/cache.h), so "no stale cached JSON" falls out of key
// inequality rather than an invalidation protocol; subscribers (the parse
// service) additionally evict the old version's entries eagerly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "whois/whois_parser.h"

namespace whoiscrf::obs {
class Gauge;
}  // namespace whoiscrf::obs

namespace whoiscrf::serve {

class ModelHost {
 public:
  // A consistent (model, version) pair — parse with `model`, cache under
  // `version`.
  struct Snapshot {
    std::shared_ptr<const whois::WhoisParser> model;
    uint64_t version = 0;
  };

  // Called after every swap, outside the host's lock. Subscribers evict
  // old-version cache entries, log, update external state, etc.
  using Subscriber = std::function<void(uint64_t old_version,
                                        uint64_t new_version)>;

  explicit ModelHost(std::shared_ptr<const whois::WhoisParser> initial,
                     uint64_t initial_version = 1);

  Snapshot Acquire() const;
  std::shared_ptr<const whois::WhoisParser> Current() const;
  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  // Installs `next` under the next version number; returns that version.
  uint64_t Swap(std::shared_ptr<const whois::WhoisParser> next);

  // Installs `next` under a caller-chosen version (must exceed the current
  // one — versions only move forward; throws std::invalid_argument
  // otherwise). Used when an external authority (LifecycleController)
  // owns the version counter.
  void Publish(std::shared_ptr<const whois::WhoisParser> next,
               uint64_t version);

  // Subscription handle; pass to Unsubscribe before the subscriber's
  // captures die.
  uint64_t Subscribe(Subscriber subscriber);
  void Unsubscribe(uint64_t id);

 private:
  void Notify(uint64_t old_version, uint64_t new_version);

  mutable std::mutex mu_;  // guards model_ and swap ordering
  std::shared_ptr<const whois::WhoisParser> model_;
  // Published under mu_ but readable without it: version() is a monotonic
  // hint (cache key freshness), Acquire() gives the consistent pair.
  std::atomic<uint64_t> version_;

  std::mutex subscribers_mu_;
  std::vector<std::pair<uint64_t, Subscriber>> subscribers_;
  uint64_t next_subscriber_id_ = 1;

  obs::Gauge* version_gauge_ = nullptr;
};

}  // namespace whoiscrf::serve
