// Event-driven serving core: a minimal epoll reactor (EventLoop) plus the
// non-blocking framed-connection state machine (FrameConn) built on it.
// This is the front end that replaced thread-per-connection serving — one
// loop thread multiplexes thousands of sockets instead of parking one
// thread per client (docs/architecture.md "Event-driven serving").
//
// EventLoop is a plain epoll wrapper: edge-triggered fd readiness
// dispatched to per-fd handlers, plus a thread-safe Post() queue (eventfd
// wakeup) that is how other threads — parse workers finishing a request,
// the shutdown path — inject work into the loop thread. Everything else
// (every FrameConn, the listener) is owned by exactly one loop thread and
// is only ever touched there, so the connection state machine needs no
// locks.
//
// FrameConn speaks the length-prefixed framing of serve/protocol.h over a
// non-blocking socket:
//
//   * incremental frame assembly — partial reads accumulate in a buffer
//     until a full frame is present, so a client trickling one byte at a
//     time costs memory, not a blocked thread;
//   * ordered response slots — each request frame opens a slot in arrival
//     order; completions may land out of order (workers race) but
//     responses are serialized strictly in slot order, preserving the
//     protocol's pipelining contract;
//   * write-queue backpressure — responses that the socket cannot absorb
//     queue in userspace; past `write_queue_max_bytes` the connection
//     stops reading (its EPOLLIN interest is dropped) until the queue
//     drains below half the bound, so a client that sends fast and reads
//     slowly is throttled instead of ballooning server memory.
//
// The same machinery runs the parse server's client connections and both
// sides of the shard router (serve/router.h): `response_stream` flips the
// parser to response frames for router→backend connections.
#pragma once

#include <sys/epoll.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "serve/protocol.h"

namespace whoiscrf::obs {
class Counter;
class Gauge;
}  // namespace whoiscrf::obs

namespace whoiscrf::serve {

// One epoll reactor. Run() is called by exactly one thread (the loop
// thread); Stop() and Post() are thread-safe; the fd-registration calls
// must only be made from the loop thread (or before Run starts).
class EventLoop {
 public:
  // Handler receives the EPOLL* event bits for its fd.
  using FdHandler = std::function<void(uint32_t)>;

  // `wakeups`, when given, counts epoll_wait returns
  // (whoiscrf_serve_epoll_wakeups_total).
  explicit EventLoop(obs::Counter* wakeups = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Runs until Stop(). After the loop exits, any tasks still in the Post
  // queue are drained once (they must tolerate running on a stopped loop;
  // stale completions for closed connections are no-ops by design).
  void Run();
  void Stop();

  // Enqueues `task` to run on the loop thread, FIFO. Thread-safe.
  void Post(std::function<void()> task);

  // fd registration; loop thread only. `events` are EPOLL* bits
  // (typically EPOLLIN | EPOLLET). The handler is kept alive while
  // dispatching, so it may remove (even close) its own fd.
  void AddFd(int fd, uint32_t events, FdHandler handler);
  void ModFd(int fd, uint32_t events);
  void DelFd(int fd);

  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.load();
  }

 private:
  void RunPosted();
  void Wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> wake_armed_{false};
  std::mutex post_mu_;
  std::deque<std::function<void()>> posted_;
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::atomic<std::thread::id> loop_thread_{};
  obs::Counter* wakeups_;
};

// Metrics shared by every FrameConn of one server: the write-queue gauge
// is a process-wide byte total (backed by `writeq_total` so concurrent
// connections can delta it), the stall counter counts backpressure pauses.
struct FrameConnMetrics {
  obs::Gauge* writeq_bytes = nullptr;
  obs::Counter* backpressure_stalls = nullptr;
  std::atomic<int64_t>* writeq_total = nullptr;
};

struct FrameConnOptions {
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Backpressure bound on buffered response bytes; 0 disables (used by
  // router->backend connections, which are bounded by the shard's own
  // admission control instead).
  size_t write_queue_max_bytes = 4u << 20;
  // Incoming frames are responses (status byte + body) instead of
  // requests — the router's backend-facing connections.
  bool response_stream = false;
  // The fd has a non-blocking connect() in flight; writes buffer until
  // EPOLLOUT reports the connect outcome.
  bool connecting = false;
};

// One non-blocking framed connection, owned by its loop thread. All
// methods (and all callbacks) run on that thread; cross-thread completions
// go through EventLoop::Post.
class FrameConn : public std::enable_shared_from_this<FrameConn> {
 public:
  FrameConn(EventLoop* loop, int fd, FrameConnOptions options,
            FrameConnMetrics metrics);
  ~FrameConn();

  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  // Exactly one of these fires per complete incoming frame, depending on
  // options_.response_stream.
  std::function<void(std::string&&)> on_request;
  std::function<void(Status, std::string&&)> on_response;
  // Fires once, right after the fd is closed (pending slots discarded).
  std::function<void(FrameConn&)> on_closed;

  // Registers the fd with the loop. Call once, on the loop thread.
  void Start();

  // Opens the next response slot (request arrival order) and returns its
  // sequence number. CompleteSlot may be called in any order; responses
  // are written strictly in slot order. Completing a slot on a closed
  // connection is a no-op.
  uint64_t OpenSlot();
  void CompleteSlot(uint64_t seq, Status status, std::string body);

  // Appends one request frame to the write queue (router forward path).
  void SendRequestFrame(std::string_view payload);

  // Immediate close: fd closed, pending slots and buffered writes
  // discarded, on_closed fired.
  void Close();

  // Graceful close: stop reading new frames; once every open slot has
  // completed and the write queue has drained, close. (The drain path of
  // Shutdown, and the response to a clean client EOF with responses still
  // owed.)
  void CloseAfterFlush();

  bool closed() const { return closed_; }
  size_t pending_slots() const { return slots_.size(); }
  size_t buffered_write_bytes() const { return outbuf_.size() - out_off_; }
  int fd() const { return fd_; }

 private:
  struct Slot {
    bool done = false;
    Status status = Status::kError;
    std::string body;
  };

  void HandleEvents(uint32_t events);
  void ReadInput();
  void ConsumeFrames();
  void DispatchFrames();
  void FlushWrites();
  void UpdateInterest();
  void NoteWriteBytes(int64_t delta);
  void CheckBackpressure();
  void MaybeFinishClose();

  EventLoop* loop_;
  int fd_;
  const FrameConnOptions options_;
  const FrameConnMetrics metrics_;

  std::string inbuf_;  // unconsumed incoming bytes
  size_t in_off_ = 0;
  std::string outbuf_;  // unsent outgoing bytes
  size_t out_off_ = 0;

  std::deque<Slot> slots_;  // open slots, front = next to answer
  uint64_t base_seq_ = 0;   // seq of slots_.front()
  uint64_t next_seq_ = 0;

  uint32_t interest_ = 0;  // currently armed EPOLL* bits
  bool registered_ = false;
  bool want_write_ = false;    // EPOLLOUT armed for a pending flush
  bool paused_ = false;        // reading stopped by backpressure
  bool refuse_input_ = false;  // reading stopped for good (EOF/drain/abuse)
  bool corked_ = false;        // batch writes while dispatching frames
  bool close_after_flush_ = false;
  bool connecting_;
  bool closed_ = false;
};

// Listener/socket helpers shared by the server and router front ends.
// CreateListener throws std::runtime_error on failure; returns the fd and
// writes the bound port to *port (useful with port 0 = ephemeral).
int CreateListener(uint16_t port, int backlog, uint16_t* bound_port);
void SetNonBlocking(int fd);
void SetTcpNoDelay(int fd);

}  // namespace whoiscrf::serve
