#include "serve/model_host.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace whoiscrf::serve {

ModelHost::ModelHost(std::shared_ptr<const whois::WhoisParser> initial,
                     uint64_t initial_version)
    : model_(std::move(initial)), version_(initial_version) {
  if (!model_) {
    throw std::invalid_argument("ModelHost: initial model is null");
  }
  if (initial_version == 0) {
    throw std::invalid_argument("ModelHost: version 0 is reserved");
  }
  version_gauge_ = obs::Registry::Global().GetGauge(
      "whoiscrf_serve_model_version",
      "model version currently served (ModelHost)");
  version_gauge_->Set(static_cast<double>(initial_version));
}

ModelHost::Snapshot ModelHost::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{model_, version_.load(std::memory_order_relaxed)};
}

std::shared_ptr<const whois::WhoisParser> ModelHost::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_;
}

uint64_t ModelHost::Swap(std::shared_ptr<const whois::WhoisParser> next) {
  if (!next) throw std::invalid_argument("ModelHost: cannot swap in null");
  uint64_t old_version = 0, new_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_version = version_.load(std::memory_order_relaxed);
    new_version = old_version + 1;
    model_ = std::move(next);
    version_.store(new_version, std::memory_order_release);
  }
  version_gauge_->Set(static_cast<double>(new_version));
  Notify(old_version, new_version);
  return new_version;
}

void ModelHost::Publish(std::shared_ptr<const whois::WhoisParser> next,
                        uint64_t version) {
  if (!next) throw std::invalid_argument("ModelHost: cannot publish null");
  uint64_t old_version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_version = version_.load(std::memory_order_relaxed);
    if (version <= old_version) {
      throw std::invalid_argument(
          "ModelHost: published version must exceed the current one");
    }
    model_ = std::move(next);
    version_.store(version, std::memory_order_release);
  }
  version_gauge_->Set(static_cast<double>(version));
  Notify(old_version, version);
}

uint64_t ModelHost::Subscribe(Subscriber subscriber) {
  std::lock_guard<std::mutex> lock(subscribers_mu_);
  const uint64_t id = next_subscriber_id_++;
  subscribers_.emplace_back(id, std::move(subscriber));
  return id;
}

void ModelHost::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(subscribers_mu_);
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->first == id) {
      subscribers_.erase(it);
      return;
    }
  }
}

void ModelHost::Notify(uint64_t old_version, uint64_t new_version) {
  std::vector<Subscriber> subscribers;
  {
    std::lock_guard<std::mutex> lock(subscribers_mu_);
    subscribers.reserve(subscribers_.size());
    for (const auto& [id, subscriber] : subscribers_) {
      subscribers.push_back(subscriber);
    }
  }
  for (const Subscriber& subscriber : subscribers) {
    subscriber(old_version, new_version);
  }
}

}  // namespace whoiscrf::serve
