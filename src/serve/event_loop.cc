#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace whoiscrf::serve {

namespace {

void PutU32Le(uint32_t v, char out[4]) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32Le(const char in[4]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));  // NOLINT(concurrency-mt)
}

}  // namespace

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop(obs::Counter* wakeups) : wakeups_(wakeups) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) ThrowErrno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) ThrowErrno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    ThrowErrno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id());
  std::vector<epoll_event> events(256);
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      ThrowErrno("epoll_wait");
    }
    if (wakeups_ != nullptr) wakeups_->Inc();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain = 0;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        wake_armed_.store(false, std::memory_order_release);
        continue;
      }
      // Copy the handler shared_ptr: the handler may DelFd (even close)
      // its own fd while we dispatch to it.
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;
      auto handler = it->second;
      (*handler)(events[i].events);
    }
    RunPosted();
    if (n == static_cast<int>(events.size())) events.resize(events.size() * 2);
  }
  // Late tasks (worker completions racing Stop) must still run so their
  // captures are released on the loop thread; connections they reference
  // are closed, making them no-ops.
  RunPosted();
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(task));
  }
  if (!wake_armed_.exchange(true, std::memory_order_acq_rel)) Wake();
}

void EventLoop::RunPosted() {
  // Drain repeatedly: tasks posted from the loop thread while draining
  // must run before we block in epoll_wait again.
  while (true) {
    std::deque<std::function<void()>> batch;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (posted_.empty()) return;
      batch.swap(posted_);
    }
    for (auto& task : batch) task();
  }
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t w = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    handlers_.erase(fd);
    ThrowErrno("epoll_ctl(add)");
  }
}

void EventLoop::ModFd(int fd, uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    ThrowErrno("epoll_ctl(mod)");
  }
}

void EventLoop::DelFd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

// ---------------------------------------------------------------------------
// FrameConn

FrameConn::FrameConn(EventLoop* loop, int fd, FrameConnOptions options,
                     FrameConnMetrics metrics)
    : loop_(loop),
      fd_(fd),
      options_(options),
      metrics_(metrics),
      connecting_(options.connecting) {}

FrameConn::~FrameConn() {
  // Destruction without Close() only happens when Start() was never
  // called (the loop's handler map otherwise keeps the object alive).
  if (!closed_ && fd_ >= 0) ::close(fd_);
}

void FrameConn::Start() {
  interest_ = EPOLLET | EPOLLRDHUP;
  if (connecting_) {
    interest_ |= EPOLLOUT;
  } else {
    interest_ |= EPOLLIN;
  }
  auto self = shared_from_this();
  loop_->AddFd(fd_, interest_,
               [self](uint32_t events) { self->HandleEvents(events); });
  registered_ = true;
}

void FrameConn::HandleEvents(uint32_t events) {
  if (closed_) return;
  if (connecting_ && (events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      Close();
      return;
    }
    connecting_ = false;
    want_write_ = buffered_write_bytes() > 0;
    UpdateInterest();
  }
  if ((events & EPOLLERR) != 0) {
    Close();
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0 && !refuse_input_ &&
      !paused_) {
    ReadInput();
    if (closed_) return;
  }
  if ((events & EPOLLOUT) != 0 && want_write_) FlushWrites();
}

void FrameConn::ReadInput() {
  // A backpressure pause can interrupt ConsumeFrames with complete frames
  // still buffered; the resume kick lands here, so consume those before
  // touching the socket — read() may well say EAGAIN and the frames would
  // otherwise sit until the peer sends more bytes.
  ConsumeFrames();
  char chunk[64 * 1024];
  while (!closed_ && !refuse_input_ && !paused_) {
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      inbuf_.append(chunk, static_cast<size_t>(n));
      ConsumeFrames();
      continue;
    }
    if (n == 0) {
      // Peer finished sending. Responses already owed are still
      // delivered, then the connection closes.
      CloseAfterFlush();
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    Close();
    return;
  }
}

void FrameConn::ConsumeFrames() {
  // Cork while dispatching: inline completions (the service's cache-hit
  // fast path) land in CompleteSlot synchronously, and flushing once per
  // read batch turns N small write() calls into one — on pipelined
  // cache-hit traffic this is the difference between one syscall per
  // response and one per readiness wake.
  corked_ = true;
  DispatchFrames();
  corked_ = false;
  if (!closed_ && buffered_write_bytes() > 0 && !want_write_) FlushWrites();
}

void FrameConn::DispatchFrames() {
  while (!closed_ && !refuse_input_ && !paused_) {
    const size_t avail = inbuf_.size() - in_off_;
    if (avail < 4) break;
    const uint32_t len = GetU32Le(inbuf_.data() + in_off_);
    if (len > options_.max_frame_bytes) {
      if (options_.response_stream) {
        // A backend speaking garbage; nothing to salvage.
        Close();
        return;
      }
      // Mirror the blocking front end: answer kError, then close — the
      // oversized payload is unrecoverable, the stream cannot resync.
      const uint64_t seq = OpenSlot();
      refuse_input_ = true;
      close_after_flush_ = true;
      CompleteSlot(seq, Status::kError, "frame too large");
      return;
    }
    if (avail - 4 < len) break;
    std::string payload = inbuf_.substr(in_off_ + 4, len);
    in_off_ += 4 + static_cast<size_t>(len);
    if (options_.response_stream) {
      if (payload.empty()) {  // a response frame carries >= 1 status byte
        Close();
        return;
      }
      const auto status = static_cast<Status>(payload.front());
      payload.erase(0, 1);
      if (on_response) on_response(status, std::move(payload));
    } else {
      if (on_request) on_request(std::move(payload));
    }
  }
  if (in_off_ == inbuf_.size()) {
    inbuf_.clear();
    in_off_ = 0;
  } else if (in_off_ >= 4096 && in_off_ * 2 >= inbuf_.size()) {
    inbuf_.erase(0, in_off_);
    in_off_ = 0;
  }
}

uint64_t FrameConn::OpenSlot() {
  slots_.emplace_back();
  return next_seq_++;
}

void FrameConn::CompleteSlot(uint64_t seq, Status status, std::string body) {
  if (closed_ || seq < base_seq_) return;
  const size_t idx = static_cast<size_t>(seq - base_seq_);
  if (idx >= slots_.size()) return;
  Slot& slot = slots_[idx];
  slot.done = true;
  slot.status = status;
  slot.body = std::move(body);
  // Serialize the done prefix — responses leave strictly in slot order
  // no matter the order completions land in.
  size_t appended = 0;
  while (!slots_.empty() && slots_.front().done) {
    Slot& front = slots_.front();
    char head[5];
    PutU32Le(static_cast<uint32_t>(front.body.size() + 1), head);
    head[4] = static_cast<char>(front.status);
    outbuf_.append(head, 5);
    outbuf_.append(front.body);
    appended += 5 + front.body.size();
    slots_.pop_front();
    ++base_seq_;
  }
  if (appended > 0) {
    NoteWriteBytes(static_cast<int64_t>(appended));
    if (!corked_) FlushWrites();
  }
}

void FrameConn::SendRequestFrame(std::string_view payload) {
  if (closed_) return;
  char head[4];
  PutU32Le(static_cast<uint32_t>(payload.size()), head);
  outbuf_.append(head, 4);
  outbuf_.append(payload);
  NoteWriteBytes(static_cast<int64_t>(4 + payload.size()));
  if (connecting_) {
    want_write_ = true;
    return;  // flushed when EPOLLOUT reports the connect outcome
  }
  FlushWrites();
}

void FrameConn::FlushWrites() {
  if (closed_ || connecting_) return;
  while (out_off_ < outbuf_.size()) {
    const ssize_t n =
        ::write(fd_, outbuf_.data() + out_off_, outbuf_.size() - out_off_);
    if (n > 0) {
      out_off_ += static_cast<size_t>(n);
      NoteWriteBytes(-static_cast<int64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!want_write_) {
        want_write_ = true;
        UpdateInterest();
      }
      CheckBackpressure();
      return;
    }
    Close();
    return;
  }
  outbuf_.clear();
  out_off_ = 0;
  if (want_write_) {
    want_write_ = false;
    UpdateInterest();
  }
  CheckBackpressure();
  MaybeFinishClose();
}

void FrameConn::UpdateInterest() {
  if (!registered_ || closed_) return;
  uint32_t desired = EPOLLET | EPOLLRDHUP;
  if (!refuse_input_ && !paused_ && !connecting_) desired |= EPOLLIN;
  if (want_write_ || connecting_) desired |= EPOLLOUT;
  if (desired == interest_) return;
  interest_ = desired;
  loop_->ModFd(fd_, desired);
}

void FrameConn::NoteWriteBytes(int64_t delta) {
  if (metrics_.writeq_total == nullptr) return;
  const int64_t total = metrics_.writeq_total->fetch_add(delta) + delta;
  if (metrics_.writeq_bytes != nullptr) {
    metrics_.writeq_bytes->Set(static_cast<double>(total));
  }
}

void FrameConn::CheckBackpressure() {
  if (options_.write_queue_max_bytes == 0 || closed_) return;
  const size_t buffered = buffered_write_bytes();
  if (!paused_ && !refuse_input_ && buffered > options_.write_queue_max_bytes) {
    // Stop reading this connection until the peer drains what it already
    // owes us room for; resume at half the bound (hysteresis).
    paused_ = true;
    if (metrics_.backpressure_stalls != nullptr) {
      metrics_.backpressure_stalls->Inc();
    }
    UpdateInterest();
  } else if (paused_ && buffered <= options_.write_queue_max_bytes / 2) {
    paused_ = false;
    UpdateInterest();
    // Edge-triggered epoll will not re-report bytes that arrived while we
    // were paused — kick a fresh read pass from the loop queue (not
    // inline: we may be deep inside ReadInput already).
    auto self = shared_from_this();
    loop_->Post([self] {
      if (!self->closed_ && !self->paused_ && !self->refuse_input_) {
        self->ReadInput();
      }
    });
  }
}

void FrameConn::CloseAfterFlush() {
  if (closed_) return;
  refuse_input_ = true;
  close_after_flush_ = true;
  paused_ = false;
  UpdateInterest();
  if (!connecting_) FlushWrites();
  MaybeFinishClose();
}

void FrameConn::MaybeFinishClose() {
  if (closed_ || !close_after_flush_) return;
  if (slots_.empty() && out_off_ == outbuf_.size()) Close();
}

void FrameConn::Close() {
  if (closed_) return;
  auto self = shared_from_this();  // outlive on_closed detaching us
  closed_ = true;
  const auto buffered = static_cast<int64_t>(buffered_write_bytes());
  if (buffered > 0) NoteWriteBytes(-buffered);
  outbuf_.clear();
  out_off_ = 0;
  slots_.clear();
  if (registered_) {
    loop_->DelFd(fd_);
    registered_ = false;
  }
  ::close(fd_);
  fd_ = -1;
  if (on_closed) on_closed(*this);
}

// ---------------------------------------------------------------------------
// Socket helpers

int CreateListener(uint16_t port, int backlog, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ThrowErrno("bind");
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    ThrowErrno("listen");
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      ::close(fd);
      ThrowErrno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetTcpNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace whoiscrf::serve
