#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "whois/json_export.h"

namespace whoiscrf::serve {

namespace {

size_t ResolveThreads(size_t threads) {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ParseService::ParseService(const whois::WhoisParser& parser,
                           ParseServiceOptions options)
    : parser_(parser),
      options_(std::move(options)),
      num_threads_(ResolveThreads(options_.threads)),
      clock_(options_.clock != nullptr ? options_.clock : &real_clock_),
      queue_(options_.queue_capacity) {
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_entries);
  }

  auto& registry = obs::Registry::Global();
  const auto status_counter = [&](const char* status) {
    return registry.GetCounter("whoiscrf_serve_requests_total",
                               "parse-service requests by final status",
                               {{"status", status}});
  };
  metrics_.ok = status_counter("ok");
  metrics_.busy = status_counter("busy");
  metrics_.deadline = status_counter("deadline");
  metrics_.error = status_counter("error");
  metrics_.cache_hits = registry.GetCounter(
      "whoiscrf_serve_cache_hits_total",
      "requests answered from the result cache");
  metrics_.cache_misses = registry.GetCounter(
      "whoiscrf_serve_cache_misses_total",
      "requests that had to be parsed (result cache miss)");
  metrics_.cache_evictions = registry.GetCounter(
      "whoiscrf_serve_cache_evictions_total",
      "result-cache entries evicted to stay within capacity");
  metrics_.queue_depth = registry.GetGauge(
      "whoiscrf_serve_queue_depth",
      "requests admitted but not yet picked up by a worker");
  metrics_.cache_entries = registry.GetGauge(
      "whoiscrf_serve_cache_entries", "result-cache entries currently held");
  metrics_.cache_bytes = registry.GetGauge(
      "whoiscrf_serve_cache_bytes",
      "result-cache key+value payload bytes currently held");
  metrics_.latency_us = registry.GetHistogram(
      "whoiscrf_serve_request_latency_us",
      "admission-to-response latency of admitted requests, microseconds",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
       100000});

  pool_ = std::make_unique<util::ThreadPool>(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    pool_->Post([this] { WorkerLoop(); });
  }
}

ParseService::~ParseService() { Drain(); }

std::future<ServeResult> ParseService::Submit(std::string record) {
  Request req;
  req.record = std::move(record);
  req.start_us = obs::MonotonicMicros();
  std::future<ServeResult> result = req.promise.get_future();

  if (req.record.size() > options_.max_record_bytes) {
    metrics_.error->Inc();
    req.promise.set_value(
        ServeResult{Status::kError, "record too large", false});
    return result;
  }
  if (options_.deadline_ms != 0) {
    req.deadline_ms = clock_->NowMs() + options_.deadline_ms;
  }
  // TryPush (not Push): a full queue must answer immediately, not block
  // the acceptor — bounded queueing delay is the whole point of admission
  // control. A closed queue (draining) fails the same way.
  size_t depth = 0;
  if (draining() || !queue_.TryPush(req, &depth)) {
    metrics_.busy->Inc();
    req.promise.set_value(ServeResult{Status::kBusy, "server busy", false});
    return result;
  }
  metrics_.queue_depth->Set(static_cast<double>(depth));
  return result;
}

ServeResult ParseService::Handle(std::string record) {
  return Submit(std::move(record)).get();
}

void ParseService::WorkerLoop() {
  whois::ParseWorkspace ws;
  while (true) {
    size_t depth = 0;
    std::optional<Request> item = queue_.Pop(nullptr, &depth);
    if (!item.has_value()) return;  // closed and drained
    metrics_.queue_depth->Set(static_cast<double>(depth));
    Request& req = *item;
    obs::ScopedSpan span("serve.request");

    if (req.deadline_ms != 0 && clock_->NowMs() > req.deadline_ms) {
      Finish(req, Status::kDeadline, "deadline exceeded", false);
      continue;
    }
    std::string body;
    const size_t record_hash =
        cache_ != nullptr ? ResultCache::Hash(req.record) : 0;
    if (cache_ != nullptr && cache_->Get(req.record, record_hash, &body)) {
      metrics_.cache_hits->Inc();
      Finish(req, Status::kOk, std::move(body), true);
      continue;
    }
    if (cache_ != nullptr) metrics_.cache_misses->Inc();
    try {
      const whois::ParsedWhois parsed =
          options_.parse_override != nullptr
              ? options_.parse_override(req.record, ws)
              : parser_.Parse(req.record, ws);
      body = whois::ToJson(parsed);
    } catch (const std::exception& e) {
      Finish(req, Status::kError, std::string("parse failed: ") + e.what(),
             false);
      continue;
    }
    if (cache_ != nullptr) {
      // req.record is not needed past this point; move it in as the key.
      const size_t evicted =
          cache_->Put(std::move(req.record), record_hash, body);
      if (evicted > 0) metrics_.cache_evictions->Inc(evicted);
      metrics_.cache_entries->Set(static_cast<double>(cache_->entries()));
      metrics_.cache_bytes->Set(static_cast<double>(cache_->bytes()));
    }
    Finish(req, Status::kOk, std::move(body), false);
  }
}

void ParseService::Finish(Request& req, Status status, std::string body,
                          bool cache_hit) {
  metrics_.latency_us->Observe(
      static_cast<double>(obs::MonotonicMicros() - req.start_us));
  StatusCounter(status)->Inc();
  req.promise.set_value(ServeResult{status, std::move(body), cache_hit});
}

obs::Counter* ParseService::StatusCounter(Status status) {
  switch (status) {
    case Status::kOk:
      return metrics_.ok;
    case Status::kBusy:
      return metrics_.busy;
    case Status::kDeadline:
      return metrics_.deadline;
    case Status::kError:
      return metrics_.error;
  }
  return metrics_.error;
}

void ParseService::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  // Close, not Cancel: already-admitted requests drain through the
  // workers, so every accepted request still gets its answer.
  queue_.Close();
  std::lock_guard<std::mutex> lock(drain_mu_);
  pool_.reset();  // joins the workers once the queue is empty
  metrics_.queue_depth->Set(0.0);
}

// --- TCP front end --------------------------------------------------------

ParseServer::ParseServer(const whois::WhoisParser& parser,
                         ParseServerOptions options)
    : options_(std::move(options)), service_(parser, options_.service) {
  auto& registry = obs::Registry::Global();
  connections_total_ = registry.GetCounter(
      "whoiscrf_serve_connections_total", "TCP connections accepted");
  active_connections_ = registry.GetGauge(
      "whoiscrf_serve_active_connections", "TCP connections currently open");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("ParseServer: socket()");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(listen_fd_);
    throw std::runtime_error("ParseServer: bind()");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("ParseServer: listen()");
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

ParseServer::~ParseServer() { Shutdown(); }

void ParseServer::AcceptLoop() {
  while (!stop_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stop_.load()) return;
      continue;
    }
    connections_total_->Inc();
    active_connections_->Add(1.0);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.insert(client);
    conn_threads_.emplace_back(
        [this, client] { ServeConnection(client); });
  }
}

void ParseServer::ServeConnection(int client_fd) {
  FdStream stream(client_fd);
  std::string payload;
  while (true) {
    const FrameRead read = ReadFrame(stream, payload, options_.max_frame_bytes);
    if (read == FrameRead::kTooLarge) {
      // The oversized payload is still on the wire; answer and close
      // rather than consume an attacker-chosen number of bytes.
      WriteResponse(stream, Status::kError, "frame too large");
      break;
    }
    if (read != FrameRead::kFrame) break;  // EOF or torn frame
    const ServeResult result = service_.Handle(std::move(payload));
    payload.clear();
    if (!WriteResponse(stream, result.status, result.body)) break;
  }
  // Erase + close under the lock: Shutdown() walks conn_fds_ to shut down
  // blocked readers, so an fd may only be closed (and its number recycled)
  // while no such walk can be in flight.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(client_fd);
    ::shutdown(client_fd, SHUT_RDWR);
    ::close(client_fd);
  }
  active_connections_->Add(-1.0);
}

void ParseServer::Shutdown() {
  if (!stop_.exchange(true)) {
    // Wake the accept loop with shutdown() only: the blocked (and any
    // subsequent) accept() fails immediately, but the fd number stays
    // reserved until after the join, so AcceptLoop never reads a closed —
    // possibly recycled — fd and listen_fd_ is only written once the
    // thread is gone.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  // Every already-admitted request finishes and its response is written by
  // the connection thread that is waiting on it.
  service_.Drain();
  // Unblock readers idling on their next frame; their threads then exit.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace whoiscrf::serve
