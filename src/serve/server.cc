#include "serve/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "whois/json_export.h"

namespace whoiscrf::serve {

namespace {

size_t ResolveThreads(size_t threads) {
  if (threads != 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ParseService::ParseService(const whois::WhoisParser& parser,
                           ParseServiceOptions options)
    : ParseService(&parser, nullptr, std::move(options)) {}

ParseService::ParseService(ModelHost* host, ParseServiceOptions options)
    : ParseService(nullptr, host, std::move(options)) {
  if (host == nullptr) {
    throw std::invalid_argument("ParseService: model host is null");
  }
  if (options_.parse_override != nullptr) {
    throw std::invalid_argument(
        "ParseService: parse_override is incompatible with a model host "
        "(the override binds a fixed parser; hot swap would not reach it)");
  }
}

ParseService::ParseService(const whois::WhoisParser* parser, ModelHost* host,
                           ParseServiceOptions options)
    : parser_(parser),
      host_(host),
      options_(std::move(options)),
      num_threads_(ResolveThreads(options_.threads)),
      clock_(options_.clock != nullptr ? options_.clock : &real_clock_),
      queue_(options_.queue_capacity) {
  if (options_.cache_entries > 0) {
    cache_ = std::make_unique<ResultCache>(options_.cache_entries);
  }

  auto& registry = obs::Registry::Global();
  const auto status_counter = [&](const char* status) {
    return registry.GetCounter("whoiscrf_serve_requests_total",
                               "parse-service requests by final status",
                               {{"status", status}});
  };
  metrics_.ok = status_counter("ok");
  metrics_.busy = status_counter("busy");
  metrics_.deadline = status_counter("deadline");
  metrics_.error = status_counter("error");
  metrics_.cache_hits = registry.GetCounter(
      "whoiscrf_serve_cache_hits_total",
      "requests answered from the result cache");
  metrics_.cache_misses = registry.GetCounter(
      "whoiscrf_serve_cache_misses_total",
      "requests that had to be parsed (result cache miss)");
  metrics_.cache_evictions = registry.GetCounter(
      "whoiscrf_serve_cache_evictions_total",
      "result-cache entries evicted to stay within capacity");
  metrics_.queue_depth = registry.GetGauge(
      "whoiscrf_serve_queue_depth",
      "requests admitted but not yet picked up by a worker");
  metrics_.cache_entries = registry.GetGauge(
      "whoiscrf_serve_cache_entries", "result-cache entries currently held");
  metrics_.cache_bytes = registry.GetGauge(
      "whoiscrf_serve_cache_bytes",
      "result-cache key+value payload bytes currently held");
  metrics_.latency_us = registry.GetHistogram(
      "whoiscrf_serve_request_latency_us",
      "admission-to-response latency of admitted requests, microseconds",
      {10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
       100000});

  // Eager reclamation: when the host swaps models, the old version's cache
  // entries can never be hit again (keys carry the version) — drop them now
  // instead of letting them squat in the LRU until capacity pressure.
  if (host_ != nullptr && cache_ != nullptr) {
    host_subscription_ =
        host_->Subscribe([this](uint64_t old_version, uint64_t) {
          const size_t evicted = cache_->EvictVersion(old_version);
          if (evicted > 0) metrics_.cache_evictions->Inc(evicted);
          metrics_.cache_entries->Set(
              static_cast<double>(cache_->entries()));
          metrics_.cache_bytes->Set(static_cast<double>(cache_->bytes()));
        });
  }

  pool_ = std::make_unique<util::ThreadPool>(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    pool_->Post([this] { WorkerLoop(); });
  }
}

ParseService::~ParseService() {
  if (host_ != nullptr && host_subscription_ != 0) {
    host_->Unsubscribe(host_subscription_);
  }
  Drain();
}

void ParseService::SubmitAsync(std::string record,
                               std::function<void(ServeResult&&)> done) {
  Request req;
  req.record = std::move(record);
  req.start_us = obs::MonotonicMicros();
  req.done = std::move(done);

  if (req.record.size() > options_.max_record_bytes) {
    metrics_.error->Inc();
    req.done(ServeResult{Status::kError, "record too large", false});
    return;
  }
  // Inline cache-hit fast path: a hit needs no worker, so answering at
  // submit time saves the queue hand-off (two cross-thread wakes per
  // request). On the epoll front end this runs on the event-loop thread —
  // a sharded-LRU probe, cheap enough to keep the loop responsive — and
  // hot repeated traffic never leaves that thread. A miss is NOT counted
  // here: the record may hit by the time a worker picks it up (an
  // identical in-flight request completing first), and the worker's own
  // probe counts each admitted request exactly once.
  if (cache_ != nullptr) {
    // With a model host the probe key carries the CURRENT version, so a
    // request arriving after a swap can only hit entries the new model
    // produced. (The worker re-reads the version for its own probe/insert;
    // a swap between the two probes just turns this one into a miss.)
    if (host_ != nullptr) {
      ResultCache::AppendVersionSuffix(req.record, host_->version());
    }
    std::string body;
    const size_t record_hash = ResultCache::Hash(req.record);
    const bool hit = cache_->Get(req.record, record_hash, &body);
    if (host_ != nullptr) ResultCache::StripVersionSuffix(req.record);
    if (hit) {
      metrics_.cache_hits->Inc();
      Finish(req, Status::kOk, std::move(body), true);
      return;
    }
  }
  if (options_.deadline_ms != 0) {
    req.deadline_ms = clock_->NowMs() + options_.deadline_ms;
  }
  // TryPush (not Push): a full queue must answer immediately, not block
  // the acceptor — bounded queueing delay is the whole point of admission
  // control. A closed queue (draining) fails the same way.
  size_t depth = 0;
  if (draining() || !queue_.TryPush(req, &depth)) {
    metrics_.busy->Inc();
    req.done(ServeResult{Status::kBusy, "server busy", false});
    return;
  }
  metrics_.queue_depth->Set(static_cast<double>(depth));
}

std::future<ServeResult> ParseService::Submit(std::string record) {
  auto promise = std::make_shared<std::promise<ServeResult>>();
  std::future<ServeResult> result = promise->get_future();
  SubmitAsync(std::move(record), [promise](ServeResult&& r) {
    promise->set_value(std::move(r));
  });
  return result;
}

ServeResult ParseService::Handle(std::string record) {
  return Submit(std::move(record)).get();
}

void ParseService::WorkerLoop() {
  whois::ParseWorkspace ws;
  while (true) {
    size_t depth = 0;
    std::optional<Request> item = queue_.Pop(nullptr, &depth);
    if (!item.has_value()) return;  // closed and drained
    metrics_.queue_depth->Set(static_cast<double>(depth));
    Request& req = *item;
    obs::ScopedSpan span("serve.request");

    if (req.deadline_ms != 0 && clock_->NowMs() > req.deadline_ms) {
      Finish(req, Status::kDeadline, "deadline exceeded", false);
      continue;
    }
    // One consistent (model, version) snapshot per request: the parse and
    // the cache insert both use it, so a swap mid-request just means this
    // request finishes — and caches — under the model it started with.
    ModelHost::Snapshot snap;
    const whois::WhoisParser* parser = parser_;
    if (host_ != nullptr) {
      snap = host_->Acquire();
      parser = snap.model.get();
    }
    std::string body;
    if (host_ != nullptr && cache_ != nullptr) {
      ResultCache::AppendVersionSuffix(req.record, snap.version);
    }
    const size_t record_hash =
        cache_ != nullptr ? ResultCache::Hash(req.record) : 0;
    if (cache_ != nullptr && cache_->Get(req.record, record_hash, &body)) {
      metrics_.cache_hits->Inc();
      Finish(req, Status::kOk, std::move(body), true);
      continue;
    }
    if (cache_ != nullptr) {
      metrics_.cache_misses->Inc();
      if (host_ != nullptr) ResultCache::StripVersionSuffix(req.record);
    }
    try {
      const whois::ParsedWhois parsed =
          options_.parse_override != nullptr
              ? options_.parse_override(req.record, ws)
              : parser->Parse(req.record, ws);
      body = whois::ToJson(parsed);
    } catch (const std::exception& e) {
      Finish(req, Status::kError, std::string("parse failed: ") + e.what(),
             false);
      continue;
    }
    if (cache_ != nullptr) {
      // req.record is not needed past this point; move it in as the key
      // (re-tagged with the snapshot version when hot swap is on — the
      // suffix bytes are identical to the ones record_hash was computed
      // over, so the precomputed hash stays valid).
      if (host_ != nullptr) {
        ResultCache::AppendVersionSuffix(req.record, snap.version);
      }
      const size_t evicted =
          cache_->Put(std::move(req.record), record_hash, body);
      if (evicted > 0) metrics_.cache_evictions->Inc(evicted);
      metrics_.cache_entries->Set(static_cast<double>(cache_->entries()));
      metrics_.cache_bytes->Set(static_cast<double>(cache_->bytes()));
    }
    Finish(req, Status::kOk, std::move(body), false);
  }
}

void ParseService::Finish(Request& req, Status status, std::string body,
                          bool cache_hit) {
  metrics_.latency_us->Observe(
      static_cast<double>(obs::MonotonicMicros() - req.start_us));
  StatusCounter(status)->Inc();
  req.done(ServeResult{status, std::move(body), cache_hit});
}

obs::Counter* ParseService::StatusCounter(Status status) {
  switch (status) {
    case Status::kOk:
      return metrics_.ok;
    case Status::kBusy:
      return metrics_.busy;
    case Status::kDeadline:
      return metrics_.deadline;
    case Status::kError:
      return metrics_.error;
  }
  return metrics_.error;
}

void ParseService::Drain() {
  draining_.store(true, std::memory_order_relaxed);
  // Close, not Cancel: already-admitted requests drain through the
  // workers, so every accepted request still gets its answer.
  queue_.Close();
  std::lock_guard<std::mutex> lock(drain_mu_);
  pool_.reset();  // joins the workers once the queue is empty
  metrics_.queue_depth->Set(0.0);
}

// --- TCP front end --------------------------------------------------------

ParseServer::ParseServer(const whois::WhoisParser& parser,
                         ParseServerOptions options)
    : options_(std::move(options)), service_(parser, options_.service) {
  Init();
}

ParseServer::ParseServer(ModelHost* host, ParseServerOptions options)
    : options_(std::move(options)), service_(host, options_.service) {
  Init();
}

void ParseServer::Init() {
  auto& registry = obs::Registry::Global();
  connections_total_ = registry.GetCounter(
      "whoiscrf_serve_connections_total", "TCP connections accepted");
  active_connections_ = registry.GetGauge(
      "whoiscrf_serve_active_connections", "TCP connections currently open");
  epoll_wakeups_ = registry.GetCounter(
      "whoiscrf_serve_epoll_wakeups_total",
      "event-loop epoll_wait returns (readiness batches dispatched)");
  writeq_bytes_ = registry.GetGauge(
      "whoiscrf_serve_writeq_bytes",
      "response bytes buffered in per-connection write queues");
  backpressure_stalls_ = registry.GetCounter(
      "whoiscrf_serve_backpressure_stalls_total",
      "connections paused because their write queue exceeded the bound");

  listen_fd_ = CreateListener(options_.port, options_.listen_backlog, &port_);
  if (options_.frontend == Frontend::kEpoll) {
    StartEpoll();
  } else {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
  }
}

ParseServer::~ParseServer() { Shutdown(); }

void ParseServer::Shutdown() {
  if (stop_.exchange(true)) return;
  if (options_.frontend == Frontend::kEpoll) {
    ShutdownEpoll();
  } else {
    ShutdownThreads();
  }
}

// --- epoll front end ------------------------------------------------------

void ParseServer::StartEpoll() {
  SetNonBlocking(listen_fd_);
  const size_t n = std::max<size_t>(1, options_.event_loops);
  loops_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<LoopCtx>(epoll_wakeups_));
  }
  // Registering before Run() starts is the one off-thread AddFd allowed.
  loops_[0]->loop.AddFd(listen_fd_, EPOLLIN | EPOLLET,
                        [this](uint32_t) { AcceptReady(); });
  for (auto& ctx : loops_) {
    ctx->thread = std::thread([loop = &ctx->loop] { loop->Run(); });
  }
}

void ParseServer::AcceptReady() {
  // Edge-triggered: drain the accept queue completely or new connections
  // stall until the next edge.
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    SetTcpNoDelay(fd);
    connections_total_->Inc();
    active_connections_->Add(1.0);
    LoopCtx* ctx = loops_[next_loop_++ % loops_.size()].get();
    if (ctx == loops_[0].get()) {
      AttachConn(ctx, fd);
    } else {
      ctx->loop.Post([this, ctx, fd] { AttachConn(ctx, fd); });
    }
  }
}

void ParseServer::AttachConn(LoopCtx* ctx, int fd) {
  if (ctx->draining) {  // raced shutdown; refuse politely
    ::close(fd);
    active_connections_->Add(-1.0);
    return;
  }
  FrameConnOptions conn_options;
  conn_options.max_frame_bytes = options_.max_frame_bytes;
  conn_options.write_queue_max_bytes = options_.write_queue_max_bytes;
  FrameConnMetrics conn_metrics{writeq_bytes_, backpressure_stalls_,
                                &writeq_total_};
  auto conn = std::make_shared<FrameConn>(&ctx->loop, fd, conn_options,
                                          conn_metrics);
  // Raw `this`-style captures only: the conn's own shared_ptr in its
  // callbacks would be a reference cycle. The completion path captures a
  // fresh shared_ptr per request, which is exactly the lifetime needed.
  FrameConn* raw = conn.get();
  conn->on_request = [this, ctx, raw](std::string&& record) {
    const uint64_t seq = raw->OpenSlot();
    auto self = raw->shared_from_this();
    service_.SubmitAsync(
        std::move(record),
        [ctx, self = std::move(self), seq](ServeResult&& result) {
          // Inline completions (the cache-hit fast path answers inside
          // SubmitAsync, i.e. on this loop thread) write the slot
          // directly — the dispatch loop holds a handler reference, and
          // every FrameConn loop re-checks closed_/paused_, so a
          // synchronous CompleteSlot mid-ConsumeFrames is safe. Worker
          // completions hop to the owning loop; ServeResult is move-only
          // in spirit (big body), shared_ptr keeps the lambda copyable
          // for std::function.
          if (ctx->loop.InLoopThread()) {
            self->CompleteSlot(seq, result.status, std::move(result.body));
            return;
          }
          auto boxed = std::make_shared<ServeResult>(std::move(result));
          ctx->loop.Post([self, seq, boxed] {
            self->CompleteSlot(seq, boxed->status, std::move(boxed->body));
          });
        });
  };
  conn->on_closed = [this, ctx](FrameConn& c) {
    active_connections_->Add(-1.0);
    ctx->conns.erase(c.shared_from_this());
    if (ctx->draining && ctx->conns.empty()) ctx->loop.Stop();
  };
  ctx->conns.insert(conn);
  conn->Start();
}

void ParseServer::ShutdownEpoll() {
  // 1. Stop accepting: the listener lives on loop 0, so close it there.
  std::promise<void> closed;
  loops_[0]->loop.Post([this, &closed] {
    if (listen_fd_ >= 0) {
      loops_[0]->loop.DelFd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    closed.set_value();
  });
  closed.get_future().wait();

  // 2. Drain the service. Every admitted request's completion is posted
  //    to its loop before Drain returns (the workers are joined), so the
  //    drain tasks below — posted after — run with all responses already
  //    serialized into their connections' write queues (FIFO per loop).
  service_.Drain();

  // 3. Flush and close every connection; a loop stops once its last
  //    connection is gone.
  for (auto& ctx : loops_) {
    ctx->loop.Post([ctx = ctx.get()] {
      ctx->draining = true;
      auto conns = ctx->conns;  // CloseAfterFlush may erase synchronously
      for (const auto& conn : conns) conn->CloseAfterFlush();
      if (ctx->conns.empty()) ctx->loop.Stop();
    });
  }

  // 4. Watchdog: a peer that stops reading its responses would hold its
  //    loop open forever; force-close stragglers after the grace period.
  struct Watch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto watch = std::make_shared<Watch>();
  std::thread watchdog([this, watch] {
    std::unique_lock<std::mutex> lock(watch->mu);
    const auto grace = std::chrono::milliseconds(options_.drain_flush_ms);
    if (!watch->cv.wait_for(lock, grace, [&] { return watch->done; })) {
      for (auto& ctx : loops_) {
        ctx->loop.Post([ctx = ctx.get()] {
          auto conns = ctx->conns;
          for (const auto& conn : conns) conn->Close();
          ctx->loop.Stop();
        });
      }
    }
  });
  for (auto& ctx : loops_) {
    if (ctx->thread.joinable()) ctx->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(watch->mu);
    watch->done = true;
  }
  watch->cv.notify_all();
  watchdog.join();
}

// --- threads front end ----------------------------------------------------

void ParseServer::AcceptLoop() {
  while (!stop_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stop_.load()) return;
      continue;
    }
    SetTcpNoDelay(client);
    connections_total_->Inc();
    active_connections_->Add(1.0);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.insert(client);
    conn_threads_.emplace_back(
        [this, client] { ServeConnection(client); });
  }
}

void ParseServer::ServeConnection(int client_fd) {
  FdStream stream(client_fd);
  std::string payload;
  while (true) {
    const FrameRead read = ReadFrame(stream, payload, options_.max_frame_bytes);
    if (read == FrameRead::kTooLarge) {
      // The oversized payload is still on the wire; answer and close
      // rather than consume an attacker-chosen number of bytes.
      WriteResponse(stream, Status::kError, "frame too large");
      break;
    }
    if (read != FrameRead::kFrame) break;  // EOF or torn frame
    const ServeResult result = service_.Handle(std::move(payload));
    payload.clear();
    if (!WriteResponse(stream, result.status, result.body)) break;
  }
  // Erase + close under the lock: Shutdown() walks conn_fds_ to shut down
  // blocked readers, so an fd may only be closed (and its number recycled)
  // while no such walk can be in flight.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(client_fd);
    ::shutdown(client_fd, SHUT_RDWR);
    ::close(client_fd);
  }
  active_connections_->Add(-1.0);
}

void ParseServer::ShutdownThreads() {
  // Wake the accept loop with shutdown() only: the blocked (and any
  // subsequent) accept() fails immediately, but the fd number stays
  // reserved until after the join, so AcceptLoop never reads a closed —
  // possibly recycled — fd and listen_fd_ is only written once the
  // thread is gone.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Every already-admitted request finishes and its response is written by
  // the connection thread that is waiting on it.
  service_.Drain();
  // Unblock readers idling on their next frame; their threads then exit.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace whoiscrf::serve
