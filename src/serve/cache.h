// Sharded LRU result cache of the parse service: raw record bytes → the
// serialized JSON the service answered with. WHOIS traffic is heavily
// repetitive (popular domains get re-queried constantly), so a byte-keyed
// cache turns repeat requests into a hash probe + memcpy and skips the CRF
// entirely — and because the cached value is the exact response string, a
// hit is byte-identical to the parse that populated it.
//
// Sharding: the key hash picks one of `shards` independent LRU lists, each
// behind its own mutex, so concurrent workers rarely contend on a lock.
// LRU is therefore per-shard, not global — an eviction removes the oldest
// entry of the *full* shard, which approximates global LRU well once every
// shard holds a few hundred entries. Capacity is split evenly across
// shards (an entries bound, with byte usage tracked for observability).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace whoiscrf::serve {

class ResultCache {
 public:
  static constexpr size_t kDefaultShards = 16;

  // `max_entries` is the total capacity across all shards (minimum one
  // entry per shard). Tests pass `shards = 1` to make eviction order
  // deterministic.
  explicit ResultCache(size_t max_entries, size_t shards = kDefaultShards);

  // The hash used for both shard selection and the index. A Get/Put pair
  // over the same key (the worker's miss-then-insert path) can hash the
  // key once and pass it to both calls.
  static size_t Hash(std::string_view key) {
    return std::hash<std::string_view>{}(key);
  }

  // Copies the cached value into `*value` and refreshes the entry's
  // recency. False on miss. `hash` must equal Hash(key).
  bool Get(std::string_view key, size_t hash, std::string* value);
  bool Get(std::string_view key, std::string* value) {
    return Get(key, Hash(key), value);
  }

  // Inserts (or refreshes) `key`, evicting least-recently-used entries of
  // the target shard as needed. Returns how many entries were evicted.
  // Takes the key by value so callers done with the record bytes can move
  // them in instead of paying a copy. `hash` must equal Hash(key).
  size_t Put(std::string key, size_t hash, std::string value);
  size_t Put(std::string key, std::string value) {
    const size_t hash = Hash(key);
    return Put(std::move(key), hash, std::move(value));
  }

  // --- Versioned keys (hot model swap) ----------------------------------
  // A service running behind a ModelHost tags every cache key with the
  // model version that produced the value, as an 8-byte little-endian
  // suffix on the record bytes (a suffix so the tag can be appended to and
  // stripped from an owned string without copying the record). Lookups
  // under the new version can never hit an old model's JSON — staleness is
  // ruled out by key inequality — and EvictVersion reclaims the dead
  // version's entries eagerly instead of waiting for LRU pressure.

  static void AppendVersionSuffix(std::string& key, uint64_t version) {
    char suffix[sizeof(uint64_t)];
    for (size_t i = 0; i < sizeof(uint64_t); ++i) {
      suffix[i] = static_cast<char>((version >> (8 * i)) & 0xFF);
    }
    key.append(suffix, sizeof(suffix));
  }
  static void StripVersionSuffix(std::string& key) {
    key.resize(key.size() - sizeof(uint64_t));
  }

  // Removes every entry whose key carries `version`'s suffix, across all
  // shards. Returns how many entries were removed. Only meaningful on a
  // cache whose keys are version-tagged.
  size_t EvictVersion(uint64_t version);

  // Totals are maintained as atomics on the Put path, so these reads
  // never touch the shard locks (they sit on the serve worker's
  // per-request metrics path).
  size_t entries() const { return entries_.load(std::memory_order_relaxed); }
  // Key + value payload bytes currently held (excludes node overhead).
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  size_t max_entries() const { return per_shard_cap_ * shards_.size(); }

 private:
  struct Node {
    size_t hash = 0;  // Hash(key), kept so eviction never rehashes
    std::string key;
    std::string value;
  };
  using LruList = std::list<Node>;

  // Index key carrying its precomputed hash, so the map never hashes the
  // (potentially multi-KB) record bytes itself.
  struct HashedKey {
    size_t hash = 0;
    std::string_view view;
  };
  struct HashedKeyHash {
    size_t operator()(const HashedKey& k) const { return k.hash; }
  };
  struct HashedKeyEq {
    bool operator()(const HashedKey& a, const HashedKey& b) const {
      return a.view == b.view;
    }
  };

  // The index keys are views into the list nodes' key strings; list nodes
  // never move, so the views stay valid until their node is erased.
  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    std::unordered_map<HashedKey, LruList::iterator, HashedKeyHash,
                       HashedKeyEq>
        index;
    size_t bytes = 0;
  };

  const size_t per_shard_cap_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> entries_{0};
  std::atomic<size_t> bytes_{0};
};

}  // namespace whoiscrf::serve
