#include "serve/cache.h"

#include <algorithm>
#include <functional>

namespace whoiscrf::serve {

ResultCache::ResultCache(size_t max_entries, size_t shards)
    : per_shard_cap_(std::max<size_t>(
          1, max_entries / std::max<size_t>(1, shards))) {
  shards_.reserve(std::max<size_t>(1, shards));
  for (size_t i = 0; i < std::max<size_t>(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool ResultCache::Get(std::string_view key, size_t hash, std::string* value) {
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(HashedKey{hash, key});
  if (it == shard.index.end()) return false;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->value;
  return true;
}

size_t ResultCache::Put(std::string key, size_t hash, std::string value) {
  Shard& shard = *shards_[hash % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(HashedKey{hash, std::string_view(key)});
  if (it != shard.index.end()) {
    Node& node = *it->second;
    const size_t new_bytes = value.size();
    const size_t old_bytes = node.value.size();
    node.value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    bytes_.fetch_add(new_bytes, std::memory_order_relaxed);
    bytes_.fetch_sub(old_bytes, std::memory_order_relaxed);
    return 0;
  }
  shard.lru.push_front(Node{hash, std::move(key), std::move(value)});
  const Node& fresh = shard.lru.front();
  shard.index.emplace(HashedKey{fresh.hash, std::string_view(fresh.key)},
                      shard.lru.begin());
  size_t bytes_delta = fresh.key.size() + fresh.value.size();
  size_t freed = 0;

  size_t evicted = 0;
  while (shard.lru.size() > per_shard_cap_) {
    const Node& victim = shard.lru.back();
    freed += victim.key.size() + victim.value.size();
    shard.index.erase(HashedKey{victim.hash, std::string_view(victim.key)});
    shard.lru.pop_back();
    ++evicted;
  }
  bytes_.fetch_add(bytes_delta, std::memory_order_relaxed);
  bytes_.fetch_sub(freed, std::memory_order_relaxed);
  entries_.fetch_add(1, std::memory_order_relaxed);
  entries_.fetch_sub(evicted, std::memory_order_relaxed);
  return evicted;
}

size_t ResultCache::EvictVersion(uint64_t version) {
  std::string suffix;
  AppendVersionSuffix(suffix, version);
  size_t evicted = 0;
  size_t freed = 0;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const std::string& key = it->key;
      if (key.size() >= suffix.size() &&
          key.compare(key.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        freed += key.size() + it->value.size();
        shard.index.erase(HashedKey{it->hash, std::string_view(key)});
        it = shard.lru.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  bytes_.fetch_sub(freed, std::memory_order_relaxed);
  entries_.fetch_sub(evicted, std::memory_order_relaxed);
  return evicted;
}

}  // namespace whoiscrf::serve
