#include "serve/protocol.h"

#include <unistd.h>

#include <cstring>

namespace whoiscrf::serve {

namespace {

void PutU32Le(uint32_t v, char out[4]) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32Le(const char in[4]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

// Reads a frame whose payload is (prefix bytes + body): the request path
// passes prefix 0, the response path peels one status byte first.
FrameRead ReadPayload(FrameStream& in, std::string& body, size_t max_bytes,
                      char* prefix, size_t prefix_len) {
  char len_bytes[4];
  // Distinguish clean EOF from a torn frame: probe the first length byte
  // alone, then require the rest.
  if (!in.ReadExact(len_bytes, 1)) return FrameRead::kEof;
  if (!in.ReadExact(len_bytes + 1, 3)) return FrameRead::kTruncated;
  const uint32_t len = GetU32Le(len_bytes);
  if (len < prefix_len) return FrameRead::kTruncated;
  if (len > max_bytes) return FrameRead::kTooLarge;
  if (prefix_len > 0 && !in.ReadExact(prefix, prefix_len)) {
    return FrameRead::kTruncated;
  }
  body.resize(len - prefix_len);
  if (len > prefix_len && !in.ReadExact(body.data(), body.size())) {
    return FrameRead::kTruncated;
  }
  return FrameRead::kFrame;
}

}  // namespace

const char* StatusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kBusy:
      return "busy";
    case Status::kDeadline:
      return "deadline";
    case Status::kError:
      return "error";
  }
  return "unknown";
}

bool FdStream::ReadExact(void* buf, size_t n) {
  char* p = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd_, p + got, n - got);
    if (r <= 0) return false;
    got += static_cast<size_t>(r);
  }
  return true;
}

bool FdStream::WriteAll(const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::write(fd_, p + sent, n - sent);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool StringStream::ReadExact(void* buf, size_t n) {
  if (input_.size() - pos_ < n) {
    pos_ = input_.size();
    return false;
  }
  std::memcpy(buf, input_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool StringStream::WriteAll(const void* buf, size_t n) {
  output_.append(static_cast<const char*>(buf), n);
  return true;
}

FrameRead ReadFrame(FrameStream& in, std::string& payload, size_t max_bytes) {
  return ReadPayload(in, payload, max_bytes, nullptr, 0);
}

bool WriteFrame(FrameStream& out, std::string_view payload) {
  char len_bytes[4];
  PutU32Le(static_cast<uint32_t>(payload.size()), len_bytes);
  return out.WriteAll(len_bytes, 4) &&
         (payload.empty() || out.WriteAll(payload.data(), payload.size()));
}

bool WriteResponse(FrameStream& out, Status status, std::string_view body) {
  char head[5];
  PutU32Le(static_cast<uint32_t>(body.size() + 1), head);
  head[4] = static_cast<char>(status);
  return out.WriteAll(head, 5) &&
         (body.empty() || out.WriteAll(body.data(), body.size()));
}

FrameRead ReadResponse(FrameStream& in, Status& status, std::string& body,
                       size_t max_bytes) {
  char status_byte = 0;
  const FrameRead r = ReadPayload(in, body, max_bytes, &status_byte, 1);
  if (r == FrameRead::kFrame) status = static_cast<Status>(status_byte);
  return r;
}

}  // namespace whoiscrf::serve
