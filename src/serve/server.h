// Parse-as-a-service: the always-on counterpart of `whoiscrf parse`.
//
// ParseService is the transport-independent core: requests (raw WHOIS
// record bytes) pass admission control — a util::BoundedQueue whose
// capacity is the hard bound on queued work; a full queue fast-rejects
// with Status::kBusy instead of queueing without bound — then a
// util::ThreadPool of workers (one long-lived pop loop and one
// whois::ParseWorkspace per worker) parses them and answers with the
// record's JSON, byte-identical to the offline `parse --format json`
// output. Around the hot path:
//
//   * a sharded LRU result cache keyed by record bytes (serve/cache.h):
//     repeat requests skip the CRF entirely;
//   * per-request deadlines on the net::Clock abstraction: a request that
//     waited in the queue past its deadline is answered kDeadline without
//     being parsed (SimClock makes this testable without real waiting);
//   * graceful drain: Drain() stops admitting, lets every already-admitted
//     request finish, and joins the workers — the SIGTERM path of
//     `whoiscrf serve`;
//   * whoiscrf_serve_* metrics and the serve.request trace span
//     (docs/observability.md).
//
// ParseServer is the TCP front end, in one of two modes
// (docs/architecture.md "Event-driven serving"):
//
//   * Frontend::kEpoll (default): a configurable number of event-loop
//     threads (serve/event_loop.h) multiplex every connection with
//     edge-triggered epoll — incremental frame assembly, per-connection
//     ordered response slots so pipelined replies stay in request order
//     even though workers finish out of order, and write-queue
//     backpressure that stops reading a connection whose responses back
//     up. Completions hop from the worker thread back to the owning loop
//     via EventLoop::Post.
//   * Frontend::kThreads: the legacy thread-per-connection front end, one
//     blocking reader thread per connection handling requests
//     synchronously — kept as a comparison/fallback mode behind
//     `--serve-frontend=threads`.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "net/clock.h"
#include "serve/cache.h"
#include "serve/event_loop.h"
#include "serve/model_host.h"
#include "serve/protocol.h"
#include "util/bounded_queue.h"
#include "util/thread_pool.h"
#include "whois/whois_parser.h"

namespace whoiscrf::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace whoiscrf::obs

namespace whoiscrf::serve {

struct ParseServiceOptions {
  // Parse workers; 0 = hardware concurrency (min 1).
  size_t threads = 0;
  // Admitted-but-unstarted requests the queue may hold. Beyond this,
  // Submit fast-rejects with Status::kBusy — the admission-control bound
  // that keeps queueing delay (and memory) capped under overload.
  size_t queue_capacity = 128;
  // Result-cache capacity in entries; 0 disables the cache.
  size_t cache_entries = 4096;
  // A request not picked up by a worker within this budget (measured from
  // admission on `clock`) is answered kDeadline without being parsed.
  // 0 = no deadline.
  uint64_t deadline_ms = 0;
  // Requests larger than this are answered kError without being queued.
  uint64_t max_record_bytes = kDefaultMaxFrameBytes;
  // Deadline timebase; nullptr = an internal RealClock. Tests inject
  // net::SimClock to exercise expiry without real waiting.
  net::Clock* clock = nullptr;
  // Mirrors StreamPipelineOptions::parse_override: replaces parser.Parse
  // for each request. `serve --cascade-data` routes requests through the
  // parser cascade (src/cascade/) this way; tests use it to inject
  // deterministic parses. Must be safe to invoke concurrently with
  // distinct workspaces. Unset = plain parser.Parse.
  std::function<whois::ParsedWhois(const std::string& record,
                                   whois::ParseWorkspace& ws)>
      parse_override = nullptr;
};

struct ServeResult {
  Status status = Status::kError;
  std::string body;        // JSON on kOk, reason otherwise
  bool cache_hit = false;  // kOk answered from the result cache
};

class ParseService {
 public:
  ParseService(const whois::WhoisParser& parser,
               ParseServiceOptions options = {});
  // Hot-swappable variant: every request parses with a consistent
  // (model, version) snapshot from `host` — in-flight requests finish on
  // the model they started with — and result-cache keys carry the version,
  // so a swap can never serve stale JSON (serve/model_host.h). The service
  // subscribes to `host` to evict the old version's cache entries eagerly;
  // `host` must outlive the service. Incompatible with
  // options.parse_override (which binds a fixed parser); throws
  // std::invalid_argument when both are given.
  ParseService(ModelHost* host, ParseServiceOptions options = {});
  ~ParseService();  // drains

  ParseService(const ParseService&) = delete;
  ParseService& operator=(const ParseService&) = delete;

  // Admission-controlled asynchronous submit. `done` is invoked exactly
  // once: synchronously (on the caller's thread) for fast rejects — kBusy
  // when the queue is full or the service is draining, kError for an
  // oversized record — otherwise on a worker thread with whatever the
  // worker answers. The event-loop front end's completion path: `done`
  // posts back to the connection's loop.
  void SubmitAsync(std::string record,
                   std::function<void(ServeResult&&)> done);

  // SubmitAsync wrapped in a future.
  std::future<ServeResult> Submit(std::string record);

  // Submit + wait; the synchronous path connection threads use.
  ServeResult Handle(std::string record);

  // Graceful drain: stop admitting (Submit answers kBusy), finish every
  // already-admitted request, join the workers. Idempotent; also run by
  // the destructor.
  void Drain();

  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  size_t threads() const { return num_threads_; }
  size_t queue_depth() const { return queue_.Size(); }

 private:
  struct Request {
    std::string record;
    uint64_t deadline_ms = 0;  // absolute on clock_; 0 = none
    uint64_t start_us = 0;     // admission time, steady clock
    std::function<void(ServeResult&&)> done;
  };

  ParseService(const whois::WhoisParser* parser, ModelHost* host,
               ParseServiceOptions options);

  void WorkerLoop();
  void Finish(Request& req, Status status, std::string body, bool cache_hit);
  obs::Counter* StatusCounter(Status status);

  // Exactly one of parser_ / host_ is set. With a host, cache keys are
  // version-suffixed (ResultCache::AppendVersionSuffix).
  const whois::WhoisParser* parser_ = nullptr;
  ModelHost* host_ = nullptr;
  uint64_t host_subscription_ = 0;
  const ParseServiceOptions options_;
  const size_t num_threads_;
  net::RealClock real_clock_;
  net::Clock* clock_;
  std::unique_ptr<ResultCache> cache_;
  util::BoundedQueue<Request> queue_;
  std::atomic<bool> draining_{false};
  std::mutex drain_mu_;  // serializes Drain callers around the pool join
  std::unique_ptr<util::ThreadPool> pool_;

  // Registry metrics, resolved once at construction
  // (docs/observability.md "Serve").
  struct Metrics {
    obs::Counter* ok = nullptr;
    obs::Counter* busy = nullptr;
    obs::Counter* deadline = nullptr;
    obs::Counter* error = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* cache_evictions = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* cache_entries = nullptr;
    obs::Gauge* cache_bytes = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  Metrics metrics_;
};

// TCP front-end flavor; `--serve-frontend`.
enum class Frontend {
  kEpoll,    // non-blocking event loops (default)
  kThreads,  // legacy thread-per-connection
};

struct ParseServerOptions {
  ParseServiceOptions service;
  // TCP port on 127.0.0.1; 0 = ephemeral (read the bound port back with
  // port()).
  uint16_t port = 0;
  // Cap on one request frame; larger length prefixes draw kError and the
  // connection closes (the payload cannot be skipped safely).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  Frontend frontend = Frontend::kEpoll;
  // Event-loop threads multiplexing connections (epoll front end only);
  // 0 = 1. Accepted connections are spread round-robin.
  size_t event_loops = 1;
  // Per-connection write-queue bound: a connection whose unsent response
  // bytes exceed this stops being read until the peer drains to half the
  // bound; 0 = unbounded (epoll front end only).
  size_t write_queue_max_bytes = 4u << 20;
  // listen(2) backlog.
  int listen_backlog = 1024;
  // Shutdown grace for flushing responses to slow readers before their
  // connections are force-closed (epoll front end only).
  uint64_t drain_flush_ms = 5000;
};

class ParseServer {
 public:
  // Binds 127.0.0.1 and starts accepting immediately. Throws
  // std::runtime_error if the socket cannot be created/bound.
  ParseServer(const whois::WhoisParser& parser, ParseServerOptions options);
  // Hot-swappable variant (see the ParseService host constructor); `host`
  // must outlive the server.
  ParseServer(ModelHost* host, ParseServerOptions options);
  ~ParseServer();

  ParseServer(const ParseServer&) = delete;
  ParseServer& operator=(const ParseServer&) = delete;

  uint16_t port() const { return port_; }
  ParseService& service() { return service_; }

  // Graceful shutdown: stop accepting, drain the service (every admitted
  // request is answered and written), flush per-connection write queues
  // (bounded by drain_flush_ms for peers that stop reading), then stop
  // the front-end threads. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  // One event-loop thread and the connections it owns. `conns` and
  // `draining` are loop-thread-only.
  struct LoopCtx {
    explicit LoopCtx(obs::Counter* wakeups) : loop(wakeups) {}
    EventLoop loop;
    std::thread thread;
    std::unordered_set<std::shared_ptr<FrameConn>> conns;
    bool draining = false;
  };

  void Init();  // shared constructor tail: metrics, listener, front end
  void StartEpoll();
  void AcceptReady();  // loop 0: accept until EAGAIN, spread round-robin
  void AttachConn(LoopCtx* ctx, int fd);
  void ShutdownEpoll();

  void AcceptLoop();  // threads front end
  void ServeConnection(int client_fd);
  void ShutdownThreads();

  const ParseServerOptions options_;
  ParseService service_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  // Epoll front end.
  std::vector<std::unique_ptr<LoopCtx>> loops_;
  size_t next_loop_ = 0;  // round-robin cursor; loop-0-thread-only
  std::atomic<int64_t> writeq_total_{0};

  // Threads front end.
  std::thread accept_thread_;
  std::mutex conn_mu_;  // guards conn_fds_ and conn_threads_
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;

  obs::Counter* connections_total_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
  obs::Counter* epoll_wakeups_ = nullptr;
  obs::Gauge* writeq_bytes_ = nullptr;
  obs::Counter* backpressure_stalls_ = nullptr;
};

}  // namespace whoiscrf::serve
