#include "serve/router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <future>
#include <stdexcept>

#include "obs/metrics.h"

namespace whoiscrf::serve {

namespace {

struct Endpoint {
  std::string ip;
  uint16_t port = 0;
};

Endpoint ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  ep.ip = "127.0.0.1";
  std::string port_str = spec;
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    ep.ip = spec.substr(0, colon);
    port_str = spec.substr(colon + 1);
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    throw std::runtime_error("shard-router: bad backend '" + spec +
                             "' (want port or ip:port)");
  }
  ep.port = static_cast<uint16_t>(port);
  return ep;
}

bool FillAddr(const std::string& ip, uint16_t port, sockaddr_in* addr) {
  *addr = {};
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, ip.c_str(), &addr->sin_addr) == 1;
}

obs::Counter* RouterLoopWakeups() {
  // The router runs the same event-loop machinery as the serve front
  // end, so its loop shares the wakeup counter name (the two never live
  // in one process).
  return obs::Registry::Global().GetCounter(
      "whoiscrf_serve_epoll_wakeups_total",
      "event-loop epoll_wait returns (readiness batches dispatched)");
}

}  // namespace

ProbeBackoff::ProbeBackoff(uint64_t base_ms, uint64_t max_ms,
                           uint64_t jitter_seed)
    : base_ms_(std::max<uint64_t>(1, base_ms)),
      max_ms_(std::max(max_ms, base_ms_)),
      current_ms_(base_ms_),
      state_(jitter_seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL) {}

uint64_t ProbeBackoff::Next(bool success) {
  if (success) {
    current_ms_ = base_ms_;
    return current_ms_;
  }
  current_ms_ = std::min(max_ms_, current_ms_ * 2);
  // Deterministic jitter: scale by [0.75, 1.25) from a seeded LCG. The
  // un-jittered current_ms_ stays the exponential schedule, so a later
  // success still resets cleanly.
  state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
  const uint64_t r = (state_ >> 33) % 512;  // [0, 512)
  const int64_t quarter = static_cast<int64_t>(current_ms_ / 4);
  const int64_t jitter =
      quarter * (static_cast<int64_t>(r) - 256) / 256;  // [-q, +q)
  const int64_t delayed = static_cast<int64_t>(current_ms_) + jitter;
  return std::max<int64_t>(static_cast<int64_t>(base_ms_), delayed);
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

HashRing::HashRing(size_t shards, size_t vnodes) : shards_(shards) {
  points_.reserve(shards * vnodes);
  for (size_t s = 0; s < shards; ++s) {
    for (size_t v = 0; v < vnodes; ++v) {
      char key[40];
      const int len = std::snprintf(key, sizeof(key), "shard-%zu/vnode-%zu",
                                    s, v);
      points_.emplace_back(Fnv1a64({key, static_cast<size_t>(len)}),
                           static_cast<uint32_t>(s));
    }
  }
  std::sort(points_.begin(), points_.end());
}

int HashRing::Pick(uint64_t hash,
                   const std::function<bool(size_t)>& healthy) const {
  if (points_.empty()) return -1;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const std::pair<uint64_t, uint32_t>& p, uint64_t h) {
        return p.first < h;
      });
  for (size_t walked = 0; walked < points_.size(); ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (healthy(it->second)) return static_cast<int>(it->second);
  }
  return -1;
}

int HashRing::Owner(uint64_t hash) const {
  return Pick(hash, [](size_t) { return true; });
}

// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(std::move(options)),
      ring_(options_.backends.size(), options_.vnodes),
      loop_(RouterLoopWakeups()) {
  if (options_.backends.empty()) {
    throw std::runtime_error("shard-router: no backends");
  }
  auto& registry = obs::Registry::Global();
  connections_total_ = registry.GetCounter(
      "whoiscrf_router_connections_total", "client connections accepted");
  active_connections_ = registry.GetGauge(
      "whoiscrf_router_active_connections",
      "client connections currently open");
  unrouted_ = registry.GetCounter(
      "whoiscrf_router_unrouted_total",
      "requests answered kError because no healthy shard could take them");
  writeq_bytes_ = registry.GetGauge(
      "whoiscrf_serve_writeq_bytes",
      "response bytes buffered in per-connection write queues");
  backpressure_stalls_ = registry.GetCounter(
      "whoiscrf_serve_backpressure_stalls_total",
      "connections paused because their write queue exceeded the bound");

  backends_.reserve(options_.backends.size());
  for (size_t i = 0; i < options_.backends.size(); ++i) {
    const Endpoint ep = ParseEndpoint(options_.backends[i]);
    sockaddr_in probe_addr{};
    if (!FillAddr(ep.ip, ep.port, &probe_addr)) {
      throw std::runtime_error("shard-router: bad backend address '" +
                               options_.backends[i] + "'");
    }
    auto backend = std::make_unique<Backend>();
    backend->ip = ep.ip;
    backend->tcp_port = ep.port;
    const std::string shard_label = std::to_string(i);
    backend->forwarded = registry.GetCounter(
        "whoiscrf_router_forwarded_total", "request frames forwarded, by shard",
        {{"shard", shard_label}});
    backend->healthy_gauge = registry.GetGauge(
        "whoiscrf_router_shard_healthy",
        "1 while the shard is routed to, 0 while ejected",
        {{"shard", shard_label}});
    backend->healthy_gauge->Set(1.0);
    backends_.push_back(std::move(backend));
  }

  listen_fd_ = CreateListener(options_.port, options_.listen_backlog, &port_);
  SetNonBlocking(listen_fd_);
  loop_.AddFd(listen_fd_, EPOLLIN | EPOLLET,
              [this](uint32_t) { AcceptReady(); });
  loop_thread_ = std::thread([this] { loop_.Run(); });
  if (options_.health_interval_ms > 0) {
    health_thread_ = std::thread([this] { HealthLoop(); });
  }
}

ShardRouter::~ShardRouter() { Shutdown(); }

void ShardRouter::AcceptReady() {
  while (listen_fd_ >= 0) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone
    }
    SetTcpNoDelay(fd);
    connections_total_->Inc();
    active_connections_->Add(1.0);
    AttachClient(fd);
  }
}

void ShardRouter::AttachClient(int fd) {
  if (draining_) {
    ::close(fd);
    active_connections_->Add(-1.0);
    return;
  }
  FrameConnOptions conn_options;
  conn_options.max_frame_bytes = options_.max_frame_bytes;
  conn_options.write_queue_max_bytes = options_.write_queue_max_bytes;
  FrameConnMetrics conn_metrics{writeq_bytes_, backpressure_stalls_,
                                &writeq_total_};
  auto conn =
      std::make_shared<FrameConn>(&loop_, fd, conn_options, conn_metrics);
  FrameConn* raw = conn.get();
  conn->on_request = [this, raw](std::string&& record) {
    const uint64_t seq = raw->OpenSlot();
    Dispatch(raw->shared_from_this(), seq, std::move(record), 0);
  };
  conn->on_closed = [this](FrameConn& c) {
    active_connections_->Add(-1.0);
    clients_.erase(c.shared_from_this());
    if (draining_ && clients_.empty()) MaybeFinishDrain();
  };
  clients_.insert(conn);
  conn->Start();
}

void ShardRouter::Dispatch(std::shared_ptr<FrameConn> client, uint64_t seq,
                           std::string record, size_t attempts) {
  if (client->closed()) return;
  if (attempts >= backends_.size()) {
    unrouted_->Inc();
    client->CompleteSlot(seq, Status::kError, "shard unavailable");
    return;
  }
  const uint64_t hash = Fnv1a64(record);
  const int shard = ring_.Pick(hash, [this](size_t s) {
    return backends_[s]->healthy.load(std::memory_order_relaxed);
  });
  if (shard < 0) {
    unrouted_->Inc();
    client->CompleteSlot(seq, Status::kError, "no healthy shard");
    return;
  }
  Backend& backend = *backends_[shard];
  if (!EnsureBackendConn(static_cast<size_t>(shard))) {
    // Synchronous connect failure: eject and retry on the next shard.
    if (backend.healthy.exchange(false)) backend.healthy_gauge->Set(0.0);
    Dispatch(std::move(client), seq, std::move(record), attempts + 1);
    return;
  }
  backend.pending.push_back(
      {std::move(client), seq, std::move(record), attempts});
  backend.conn->SendRequestFrame(backend.pending.back().record);
  backend.forwarded->Inc();
}

bool ShardRouter::EnsureBackendConn(size_t shard) {
  Backend& backend = *backends_[shard];
  if (backend.conn != nullptr && !backend.conn->closed()) return true;
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  FillAddr(backend.ip, backend.tcp_port, &addr);
  bool connecting = false;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    connecting = true;
  }
  SetTcpNoDelay(fd);
  FrameConnOptions conn_options;
  conn_options.max_frame_bytes = options_.max_frame_bytes;
  conn_options.write_queue_max_bytes = 0;  // bounded by shard admission
  conn_options.response_stream = true;
  conn_options.connecting = connecting;
  FrameConnMetrics conn_metrics{writeq_bytes_, backpressure_stalls_,
                                &writeq_total_};
  backend.conn =
      std::make_shared<FrameConn>(&loop_, fd, conn_options, conn_metrics);
  backend.conn->on_response = [this, shard](Status status,
                                            std::string&& body) {
    Backend& b = *backends_[shard];
    if (b.pending.empty()) return;  // stray frame from a confused backend
    Backend::Pending p = std::move(b.pending.front());
    b.pending.pop_front();
    p.client->CompleteSlot(p.seq, status, std::move(body));
  };
  backend.conn->on_closed = [this, shard](FrameConn&) {
    HandleBackendDown(shard);
  };
  backend.conn->Start();
  return true;
}

void ShardRouter::HandleBackendDown(size_t shard) {
  Backend& backend = *backends_[shard];
  backend.conn.reset();
  std::deque<Backend::Pending> orphaned;
  orphaned.swap(backend.pending);
  if (draining_) return;  // clients are gone or going; nothing to redo
  if (backend.healthy.exchange(false)) backend.healthy_gauge->Set(0.0);
  // Re-dispatch in order: the surviving shards take over this shard's
  // in-flight work (each request retries at most once per shard).
  for (auto& p : orphaned) {
    Dispatch(std::move(p.client), p.seq, std::move(p.record), p.attempts + 1);
  }
}

void ShardRouter::MaybeFinishDrain() {
  if (!draining_ || !clients_.empty()) return;
  for (auto& backend : backends_) {
    if (backend->conn != nullptr) backend->conn->Close();
  }
  loop_.Stop();
}

void ShardRouter::HealthLoop() {
  // Per-backend probe schedules: healthy backends keep the fixed
  // health_interval_ms cadence (ProbeBackoff resets to base on success);
  // a dead backend's re-probes back off exponentially with jitter up to
  // health_backoff_max_ms, so a long outage is not hammered at full rate
  // and routers sharing a dead shard desynchronize their probes.
  const auto now_ms = [] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  std::vector<ProbeBackoff> backoff;
  backoff.reserve(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    backoff.emplace_back(options_.health_interval_ms,
                         options_.health_backoff_max_ms,
                         /*jitter_seed=*/i + 1);
  }
  std::vector<uint64_t> next_probe_ms(backends_.size(), 0);  // all due now

  std::unique_lock<std::mutex> lock(health_mu_);
  while (!health_stop_) {
    lock.unlock();
    const uint64_t now = now_ms();
    uint64_t wake = now + options_.health_interval_ms;
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (stop_.load(std::memory_order_relaxed)) break;
      if (now < next_probe_ms[i]) {
        wake = std::min(wake, next_probe_ms[i]);
        continue;
      }
      Backend& backend = *backends_[i];
      const bool ok = ProbeBackend(backend);
      const bool was = backend.healthy.load(std::memory_order_relaxed);
      if (ok && !was) {
        // Re-admit: the next Dispatch picks it up again.
        backend.healthy.store(true, std::memory_order_relaxed);
        backend.healthy_gauge->Set(1.0);
      } else if (!ok && was) {
        backend.healthy.store(false, std::memory_order_relaxed);
        backend.healthy_gauge->Set(0.0);
        // Drop the live connection (if any) on the loop thread so its
        // in-flight requests re-dispatch to healthy shards.
        loop_.Post([this, i] {
          if (backends_[i]->conn != nullptr) backends_[i]->conn->Close();
        });
      }
      next_probe_ms[i] = now + backoff[i].Next(ok);
      wake = std::min(wake, next_probe_ms[i]);
    }
    lock.lock();
    const uint64_t after = now_ms();
    const uint64_t sleep_ms = wake > after ? wake - after : 1;
    health_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                        [this] { return health_stop_; });
  }
}

// The health-check exchange (docs/formats.md): connect, send one empty
// request frame, require one complete response frame — any status —
// within the timeout.
bool ShardRouter::ProbeBackend(const Backend& backend) const {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  FillAddr(backend.ip, backend.tcp_port, &addr);
  const int timeout_ms = static_cast<int>(options_.health_timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, timeout_ms) <= 0) {
      ::close(fd);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  // Connected; switch to blocking with the probe budget as I/O timeout.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  FdStream stream(fd);
  bool ok = WriteFrame(stream, std::string_view());
  if (ok) {
    Status status = Status::kError;
    std::string body;
    ok = ReadResponse(stream, status, body, options_.max_frame_bytes) ==
         FrameRead::kFrame;
  }
  ::close(fd);
  return ok;
}

void ShardRouter::Shutdown() {
  if (stop_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(health_mu_);
    health_stop_ = true;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();

  std::promise<void> quiesced;
  loop_.Post([this, &quiesced] {
    if (listen_fd_ >= 0) {
      loop_.DelFd(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    draining_ = true;
    auto clients = clients_;  // CloseAfterFlush may erase synchronously
    for (const auto& client : clients) client->CloseAfterFlush();
    MaybeFinishDrain();
    quiesced.set_value();
  });
  quiesced.get_future().wait();

  struct Watch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  auto watch = std::make_shared<Watch>();
  std::thread watchdog([this, watch] {
    std::unique_lock<std::mutex> lock(watch->mu);
    const auto grace = std::chrono::milliseconds(options_.drain_flush_ms);
    if (!watch->cv.wait_for(lock, grace, [&] { return watch->done; })) {
      loop_.Post([this] {
        auto clients = clients_;
        for (const auto& client : clients) client->Close();
        for (auto& backend : backends_) {
          if (backend->conn != nullptr) backend->conn->Close();
        }
        loop_.Stop();
      });
    }
  });
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(watch->mu);
    watch->done = true;
  }
  watch->cv.notify_all();
  watchdog.join();
}

}  // namespace whoiscrf::serve
