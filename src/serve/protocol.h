// Framing protocol of the parse service (`whoiscrf serve`): length-prefixed
// binary frames over a byte stream, spec in docs/formats.md "Parse service
// framing".
//
//   request  := len:u32le  record:byte[len]
//   response := len:u32le  status:u8  body:byte[len-1]
//
// A request carries one raw WHOIS record; the matching response carries a
// status byte plus a body whose meaning depends on the status (JSON on
// `kOk`, a human-readable reason otherwise). Clients may pipeline requests
// on one connection; responses come back in request order.
//
// Framing is written against the FrameStream abstraction so the same
// encode/decode code runs over real sockets (FdStream) and over in-memory
// buffers in tests (StringStream) — the byte layout cannot drift between
// the two.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace whoiscrf::serve {

// Status byte of a response frame. The values are printable so a captured
// frame is eyeballable in a hex dump.
enum class Status : uint8_t {
  kOk = 'O',        // body: parsed record as JSON (parse --format json)
  kBusy = 'B',      // admission queue full or server draining; retry later
  kDeadline = 'D',  // request sat in the queue past its deadline
  kError = 'E',     // malformed/oversized request or parse failure
};

// Lower-case status name, used as the `status` metric label value.
const char* StatusName(Status status);

// Default cap on one frame's payload; guards server memory against a
// hostile length prefix.
inline constexpr size_t kDefaultMaxFrameBytes = 16 * 1024 * 1024;

// Byte stream the framing runs over.
class FrameStream {
 public:
  virtual ~FrameStream() = default;
  // Reads exactly `n` bytes; false on EOF or error before `n` bytes.
  virtual bool ReadExact(void* buf, size_t n) = 0;
  // Writes all `n` bytes; false on error.
  virtual bool WriteAll(const void* buf, size_t n) = 0;
};

// Stream over a connected socket / pipe fd. Does not own the fd.
class FdStream final : public FrameStream {
 public:
  explicit FdStream(int fd) : fd_(fd) {}
  bool ReadExact(void* buf, size_t n) override;
  bool WriteAll(const void* buf, size_t n) override;

 private:
  int fd_;
};

// In-memory stream for tests and the in-process bench client: ReadExact
// consumes `input`, WriteAll appends to `output`.
class StringStream final : public FrameStream {
 public:
  explicit StringStream(std::string input = {}) : input_(std::move(input)) {}
  bool ReadExact(void* buf, size_t n) override;
  bool WriteAll(const void* buf, size_t n) override;

  const std::string& output() const { return output_; }
  // Remaining unread input bytes.
  size_t remaining() const { return input_.size() - pos_; }

 private:
  std::string input_;
  size_t pos_ = 0;
  std::string output_;
};

// Outcome of reading one frame.
enum class FrameRead {
  kFrame,      // one complete frame read
  kEof,        // clean end of stream (no bytes where a frame would start)
  kTooLarge,   // length prefix exceeds max_bytes; payload NOT consumed
  kTruncated,  // stream ended mid-frame
};

// Reads one request frame into `payload`. On kTooLarge the caller should
// answer with Status::kError and close — the oversized payload is still on
// the wire, so the stream cannot be resynchronized.
FrameRead ReadFrame(FrameStream& in, std::string& payload, size_t max_bytes);

// Writes one request frame.
bool WriteFrame(FrameStream& out, std::string_view payload);

// Writes one response frame (status byte + body).
bool WriteResponse(FrameStream& out, Status status, std::string_view body);

// Reads one response frame into (status, body).
FrameRead ReadResponse(FrameStream& in, Status& status, std::string& body,
                       size_t max_bytes);

}  // namespace whoiscrf::serve
