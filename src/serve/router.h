// Consistent-hash shard router: `whoiscrf shard-router`.
//
// One router process fans client traffic out over N backend `whoiscrf
// serve` processes. Each request's raw record bytes are hashed (FNV-1a
// 64) onto a consistent-hash ring of virtual nodes, so the same record
// always lands on the same shard — that shard's LRU result cache keeps
// its hit rate as if it were the only server, and adding or removing a
// shard remaps only the ring segments it owned (docs/architecture.md
// "Event-driven serving").
//
// The router reuses the serve event-loop machinery (serve/event_loop.h):
// a single epoll thread owns the listener, every client connection, and
// one multiplexed upstream connection per backend. Client pipelining is
// preserved end to end: requests open ordered response slots on the
// client connection, each backend answers its own connection in request
// order (FIFO pending queue), and slots serialize replies back in
// arrival order no matter how shards interleave.
//
// Health: a prober thread periodically performs the health-check
// exchange specified in docs/formats.md — connect, send one empty
// request frame, require a complete response frame within the timeout.
// A shard that fails the probe (or whose connection drops mid-flight) is
// ejected from routing; in-flight requests it owed are re-dispatched to
// the surviving shards (bounded retries), and a later successful probe
// re-admits it automatically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/event_loop.h"

namespace whoiscrf::obs {
class Counter;
class Gauge;
}  // namespace whoiscrf::obs

namespace whoiscrf::serve {

// FNV-1a 64-bit over raw bytes; the record -> shard hash.
uint64_t Fnv1a64(std::string_view bytes);

// Consistent-hash ring: `vnodes` virtual points per shard, point
// positions derived only from (shard index, vnode index) so adding a
// shard never moves another shard's points — the minimal-remap property.
class HashRing {
 public:
  HashRing(size_t shards, size_t vnodes);

  // First shard at or after `hash` (wrapping) for which `healthy` holds;
  // -1 when no point satisfies it.
  int Pick(uint64_t hash,
           const std::function<bool(size_t)>& healthy) const;
  // Owning shard ignoring health.
  int Owner(uint64_t hash) const;

  size_t shards() const { return shards_; }

 private:
  std::vector<std::pair<uint64_t, uint32_t>> points_;  // sorted by .first
  size_t shards_;
};

// Jittered exponential backoff schedule for dead-shard re-probes. A dead
// backend that stays dead is probed at base, 2*base, 4*base, ... up to
// `max_ms`, each delay scaled by a deterministic per-instance jitter in
// [0.75, 1.25) so N routers watching the same dead shard spread their
// probes instead of stampeding it the moment it restarts. One successful
// probe resets the schedule to the base interval. Deterministic (the
// jitter PRNG is seeded, not clocked), so tests can pin exact schedules.
class ProbeBackoff {
 public:
  // `base_ms` is the healthy cadence and the post-failure starting point;
  // `max_ms` caps the exponential growth (clamped up to base_ms).
  ProbeBackoff(uint64_t base_ms, uint64_t max_ms, uint64_t jitter_seed = 0);

  // Delay until the next probe, given this probe's outcome. Success
  // resets to exactly base_ms; failure doubles the un-jittered delay
  // (capped at max_ms) and returns it jittered.
  uint64_t Next(bool success);

  // Current un-jittered delay (base_ms until a failure has been seen).
  uint64_t current_ms() const { return current_ms_; }

 private:
  uint64_t base_ms_;
  uint64_t max_ms_;
  uint64_t current_ms_;
  uint64_t state_;  // jitter PRNG (LCG) state
};

struct ShardRouterOptions {
  // Backend serve endpoints, "port" or "ip:port" (loopback default).
  std::vector<std::string> backends;
  // TCP port on 127.0.0.1; 0 = ephemeral (read back with port()).
  uint16_t port = 0;
  // Virtual points per shard on the ring.
  size_t vnodes = 64;
  // Probe cadence for healthy backends; 0 disables the health prober
  // (connection failures still eject, but nothing re-admits).
  uint64_t health_interval_ms = 1000;
  // Probe budget: connect + empty-record frame + complete response.
  uint64_t health_timeout_ms = 250;
  // Cap on the per-backend exponential re-probe backoff for UNHEALTHY
  // backends (ProbeBackoff above); a long outage costs one probe per cap
  // interval instead of one per health_interval_ms.
  uint64_t health_backoff_max_ms = 30000;
  // Cap on one client request frame.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Client-connection write-queue bound (backpressure); 0 = unbounded.
  size_t write_queue_max_bytes = 4u << 20;
  int listen_backlog = 1024;
  // Shutdown grace for flushing responses before force-closing.
  uint64_t drain_flush_ms = 5000;
};

class ShardRouter {
 public:
  // Binds 127.0.0.1 and starts routing immediately. Throws
  // std::runtime_error on an empty/invalid backend list or socket
  // failure. Backends start optimistically healthy.
  explicit ShardRouter(ShardRouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  uint16_t port() const { return port_; }
  size_t num_shards() const { return backends_.size(); }
  bool ShardHealthy(size_t shard) const {
    return backends_[shard]->healthy.load(std::memory_order_relaxed);
  }

  // Graceful shutdown: stop accepting, let in-flight requests finish and
  // flush (bounded by drain_flush_ms), close backend connections, stop
  // the loop. Idempotent; also run by the destructor.
  void Shutdown();

 private:
  struct Backend {
    std::string ip;
    uint16_t tcp_port = 0;
    std::atomic<bool> healthy{true};

    // Loop-thread-only state.
    std::shared_ptr<FrameConn> conn;  // lazily (re)connected upstream
    struct Pending {
      std::shared_ptr<FrameConn> client;
      uint64_t seq = 0;
      std::string record;  // kept for re-dispatch on shard death
      size_t attempts = 0;
    };
    std::deque<Pending> pending;  // FIFO matches upstream response order

    obs::Counter* forwarded = nullptr;
    obs::Gauge* healthy_gauge = nullptr;
  };

  void AcceptReady();
  void AttachClient(int fd);
  void Dispatch(std::shared_ptr<FrameConn> client, uint64_t seq,
                std::string record, size_t attempts);
  bool EnsureBackendConn(size_t shard);
  void HandleBackendDown(size_t shard);
  void MaybeFinishDrain();
  void HealthLoop();
  bool ProbeBackend(const Backend& backend) const;

  const ShardRouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<Backend>> backends_;

  EventLoop loop_;
  std::thread loop_thread_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};

  // Loop-thread-only.
  std::unordered_set<std::shared_ptr<FrameConn>> clients_;
  bool draining_ = false;
  std::atomic<int64_t> writeq_total_{0};

  std::thread health_thread_;
  std::mutex health_mu_;
  std::condition_variable health_cv_;
  bool health_stop_ = false;

  obs::Counter* connections_total_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
  obs::Counter* unrouted_ = nullptr;
  obs::Gauge* writeq_bytes_ = nullptr;
  obs::Counter* backpressure_stalls_ = nullptr;
};

}  // namespace whoiscrf::serve
