// Three-stage streaming parse pipeline: reader → parser workers → in-order
// sink, with bounded queues at both couplings so memory stays
// O(batch * queue depth) however large the corpus is.
//
//   RecordSource ──► [input queue] ──► worker × N ──► [output queue] ──► sink
//      (1 thread)      bounded          per-thread       bounded        (caller
//                                     ParseWorkspace                    thread)
//
// Ordering contract: batches carry sequence numbers; the caller thread
// reorders completed batches with a small stash, so `sink` observes
// records in exact input order with no global barrier — a slow batch
// stalls emission, never computation, and the stash is bounded by
// (input capacity + workers + output capacity) batches because every
// upstream stage blocks on its queue.
//
// Backpressure contract: the reader blocks once `queue_capacity` batches
// are waiting to be parsed; workers block once `queue_capacity` parsed
// batches are waiting to be emitted. A throwing sink (or source) cancels
// both queues, joins all threads, and rethrows on the calling thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "whois/record_stream.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {

struct StreamPipelineOptions {
  // Parser worker threads; 0 = hardware concurrency (min 1).
  size_t threads = 0;
  // Records per work item. Large enough to amortize queue hand-offs
  // against ~100µs parses; small enough to keep batches cache-friendly.
  size_t batch_records = 64;
  // Batches each queue may hold before its producer blocks. Peak pipeline
  // memory ≈ (2*queue_capacity + threads + stash) * batch_records records.
  size_t queue_capacity = 8;
};

struct StreamPipelineStats {
  uint64_t records = 0;
  uint64_t batches = 0;
  double reader_stall_seconds = 0.0;  // reader blocked on a full input queue
  double worker_stall_seconds = 0.0;  // workers blocked (empty in/full out)
  double sink_stall_seconds = 0.0;    // caller blocked on an empty out queue
};

// Parses every record of `source`, invoking
// `sink(index, record, parsed)` on the calling thread in input order.
// Output is identical to calling WhoisParser::Parse on each record
// sequentially. Registers/updates the whoiscrf_stream_* metrics
// (docs/observability.md).
StreamPipelineStats ParseStream(
    const WhoisParser& parser, RecordSource& source,
    const StreamPipelineOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink);

}  // namespace whoiscrf::whois
