// Three-stage streaming parse pipeline: reader → parser workers → in-order
// sink, with bounded queues at both couplings so memory stays
// O(batch * queue depth) however large the corpus is.
//
//   RecordSource ──► [input queue] ──► worker × N ──► [output queue] ──► sink
//      (1 thread)      bounded          per-thread       bounded        (caller
//                                     ParseWorkspace                    thread)
//
// Ordering contract: batches carry sequence numbers; the caller thread
// reorders completed batches with a small stash, so `sink` observes
// records in exact input order with no global barrier — a slow batch
// stalls emission, never computation, and the stash is bounded by
// (input capacity + workers + output capacity) batches because every
// upstream stage blocks on its queue.
//
// Backpressure contract: the reader blocks once `queue_capacity` batches
// are waiting to be parsed; workers block once `queue_capacity` parsed
// batches are waiting to be emitted. A throwing sink (or source) cancels
// both queues, joins all threads, and rethrows on the calling thread.
//
// Failure model (docs/architecture.md "Failure model"): with
// `on_quarantine` set, a *parser* exception is contained — the raw record
// is handed to the quarantine callback with the error reason and the run
// continues; infrastructure errors (source I/O, sink I/O, queue
// cancellation) still abort the run. Without `on_quarantine` any
// exception aborts, preserving the pre-containment contract.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "whois/record_stream.h"
#include "whois/whois_parser.h"

namespace whoiscrf::whois {

// Thrown (on the calling thread) when the stage watchdog detects that no
// batch crossed any queue for `watchdog_timeout_ms`. The message names the
// suspect stage and the queue depths at trip time.
class StreamStallError : public std::runtime_error {
 public:
  explicit StreamStallError(const std::string& what)
      : std::runtime_error(what) {}
};

struct StreamPipelineOptions {
  // Parser worker threads; 0 = hardware concurrency (min 1).
  size_t threads = 0;
  // Records per work item. Large enough to amortize queue hand-offs
  // against ~100µs parses; small enough to keep batches cache-friendly.
  size_t batch_records = 64;
  // Batches each queue may hold before its producer blocks. Peak pipeline
  // memory ≈ (2*queue_capacity + threads + stash) * batch_records records.
  size_t queue_capacity = 8;
  // Per-record error containment: when set, a record whose parse throws is
  // NOT emitted to the sink; instead `on_quarantine(index, record, reason)`
  // runs on the calling thread, in input order, interleaved with sink
  // calls. `index` is the record's global input position — the sink sees
  // gaps at quarantined indices. When unset (default), a parser exception
  // aborts the run.
  std::function<void(uint64_t index, const std::string& record,
                     const std::string& reason)>
      on_quarantine = nullptr;
  // With containment on, records larger than this are quarantined without
  // attempting a parse (0 = no limit). Guards workspace memory against
  // pathological inputs.
  uint64_t max_record_bytes = 0;
  // Stage watchdog: if no batch crosses any queue for this many
  // milliseconds, cancel the pipeline and raise StreamStallError instead
  // of hanging forever (0 = disabled). Note: a stage wedged inside user
  // code that never returns cannot be interrupted — the watchdog unwedges
  // every queue wait, which covers deadlock-shaped stalls.
  uint64_t watchdog_timeout_ms = 0;
  // Replaces parser.Parse for each record (workspace supplied per worker
  // thread). This is how the parser cascade (src/cascade/) plugs into the
  // streaming path — `parse --stream --cascade` routes every record
  // through CascadeParser::ParseRecord; tests also use it to inject
  // deterministic parses. The callable must be safe to invoke concurrently
  // with distinct workspaces. Unset = plain parser.Parse.
  std::function<ParsedWhois(const std::string& record, ParseWorkspace& ws)>
      parse_override = nullptr;
};

struct StreamPipelineStats {
  uint64_t records = 0;      // records delivered to the sink
  uint64_t quarantined = 0;  // records diverted to on_quarantine
  uint64_t batches = 0;
  double reader_stall_seconds = 0.0;  // reader blocked on a full input queue
  double worker_stall_seconds = 0.0;  // workers blocked (empty in/full out)
  double sink_stall_seconds = 0.0;    // caller blocked on an empty out queue
};

// Parses every record of `source`, invoking
// `sink(index, record, parsed)` on the calling thread in input order.
// Output is identical to calling WhoisParser::Parse on each record
// sequentially. Registers/updates the whoiscrf_stream_* metrics
// (docs/observability.md).
StreamPipelineStats ParseStream(
    const WhoisParser& parser, RecordSource& source,
    const StreamPipelineOptions& options,
    const std::function<void(uint64_t index, const std::string& record,
                             const ParsedWhois& parsed)>& sink);

}  // namespace whoiscrf::whois
