// Structured export of parsed WHOIS records.
//
// The IETF's answer to WHOIS's lack of schema is RDAP (the paper cites the
// draft as [20]); exporting parsed records in an RDAP-inspired JSON shape
// makes the parser's output directly consumable by downstream measurement
// pipelines.
#pragma once

#include <string>

#include "whois/record.h"

namespace whoiscrf::whois {

// Plain JSON rendering of a ParsedWhois: every extracted field under
// stable keys, empty fields omitted.
std::string ToJson(const ParsedWhois& parsed);

// RDAP-flavored rendering (objectClassName/events/entities structure,
// after draft-ietf-weirds-rdap-query): the shape a thick registry would
// serve over RDAP for the same registration.
std::string ToRdapJson(const ParsedWhois& parsed);

}  // namespace whoiscrf::whois
