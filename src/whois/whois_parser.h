// WhoisParser — the library's primary public API (the paper's contribution).
//
// A two-level statistical parser (§3.2): a first-level CRF segments a thick
// WHOIS record into six blocks (registrar / domain / date / registrant /
// other / null); a second-level CRF refines registrant blocks into twelve
// contact subfields. Field values are then extracted from each labeled line
// using its title/value separator.
//
// Typical use:
//   auto parser = whois::WhoisParser::Train(labeled_records);
//   whois::ParsedWhois parsed = parser.Parse(record_text);
//   std::cout << parsed.registrant.country;
//
// Models can be persisted with Save/Load, and adapted to new formats with
// Adapt() by supplying a handful of newly labeled examples (§5.3).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "crf/tagger.h"
#include "crf/trainer.h"
#include "text/tokenizer.h"
#include "whois/record.h"
#include "whois/training_data.h"

namespace whoiscrf::whois {

struct WhoisParserOptions {
  crf::TrainerOptions trainer;
  text::TokenizerOptions tokenizer;
};

class WhoisParser {
 public:
  // Trains both CRF levels from labeled records.
  static WhoisParser Train(const std::vector<LabeledRecord>& records,
                           const WhoisParserOptions& options = {});

  // Re-trains from `records` (typically: the original training set plus a
  // handful of newly labeled failure cases), warm-starting from this
  // parser's weights (§5.3 maintainability workflow).
  WhoisParser Adapt(const std::vector<LabeledRecord>& records) const;

  // Parses one thick record: Viterbi-labels every line, then extracts
  // structured fields.
  ParsedWhois Parse(std::string_view record_text) const;

  // Level-1 labels only (used by the evaluation harness).
  std::vector<Level1Label> LabelLines(std::string_view record_text) const;

  // Level-2 labels for a list of registrant-block lines.
  std::vector<Level2Label> LabelRegistrantLines(
      const std::vector<std::string>& lines) const;

  // --- Persistence ------------------------------------------------------
  void Save(std::ostream& os) const;
  static WhoisParser Load(std::istream& is);
  void SaveFile(const std::string& path) const;
  static WhoisParser LoadFile(const std::string& path);

  const crf::CrfModel& level1_model() const { return *level1_; }
  const crf::CrfModel& level2_model() const { return *level2_; }
  const WhoisParserOptions& options() const { return options_; }

 private:
  WhoisParser(std::unique_ptr<crf::CrfModel> level1,
              std::unique_ptr<crf::CrfModel> level2,
              WhoisParserOptions options);

  // Models are heap-held so the parser stays cheaply movable.
  std::unique_ptr<crf::CrfModel> level1_;
  std::unique_ptr<crf::CrfModel> level2_;
  WhoisParserOptions options_;
  text::Tokenizer tokenizer_;
};

// Field extraction from labeled lines (exposed for reuse by the baselines
// and tests): routes each line's value into the ParsedWhois struct
// according to its level-1 label and title keywords. `other_sub_labels`
// refines lines labeled `other` into the other-contact proxy fields; pass
// an empty vector to skip that refinement.
void ExtractFields(const std::vector<text::Line>& lines,
                   const std::vector<Level1Label>& labels,
                   const std::vector<Level2Label>& registrant_sub_labels,
                   ParsedWhois& out,
                   const std::vector<Level2Label>& other_sub_labels = {});

}  // namespace whoiscrf::whois
