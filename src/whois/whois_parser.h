// WhoisParser — the library's primary public API (the paper's contribution).
//
// A two-level statistical parser (§3.2): a first-level CRF segments a thick
// WHOIS record into six blocks (registrar / domain / date / registrant /
// other / null); a second-level CRF refines registrant blocks into twelve
// contact subfields. Field values are then extracted from each labeled line
// using its title/value separator.
//
// Typical use:
//   auto parser = whois::WhoisParser::Train(labeled_records);
//   whois::ParsedWhois parsed = parser.Parse(record_text);
//   std::cout << parsed.registrant.country;
//
// Models can be persisted with Save/Load, and adapted to new formats with
// Adapt() by supplying a handful of newly labeled examples (§5.3).
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "crf/tagger.h"
#include "crf/trainer.h"
#include "crf/workspace.h"
#include "text/tokenizer.h"
#include "whois/record.h"
#include "whois/training_data.h"

namespace whoiscrf::util {
class ThreadPool;
}  // namespace whoiscrf::util

namespace whoiscrf::obs {
class Counter;
class Histogram;
}  // namespace whoiscrf::obs

namespace whoiscrf::whois {

struct WhoisParserOptions {
  crf::TrainerOptions trainer;
  text::TokenizerOptions tokenizer;
};

// Memoized compilation + unary scores for one distinct line, for both CRF
// levels. WHOIS corpora repeat lines massively (the paper's survey parses
// 102M records drawn from a few thousand registrar templates), so caching
// by line content skips tokenization, word classification, vocabulary
// interning, and the unary part of scoring on every repeat.
struct LineCacheEntry {
  crf::CompiledItem level1, level2;
  std::vector<double> unary1, unary2;  // num_labels() doubles per level
  // Field-extraction view of the line (separator split, title lowered),
  // also a pure function of the text.
  std::string title_lower, value;
};

// Transparent string hash so map probes can take a string_view key.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(std::string_view(s));
  }
};

// Per-thread scratch for the parsing fast path: split lines, the line
// cache, sub-label buffers, and all CRF inference state. After a few
// records the buffers stop growing and Parse runs allocation-free on
// cache hits (apart from the strings of the ParsedWhois it returns).
struct ParseWorkspace {
  std::vector<text::Line> lines;
  std::vector<Level2Label> sub_labels;
  std::vector<Level2Label> other_subs;
  crf::Workspace crf;

  // Line cache, keyed by layout flags + text — the only Line fields
  // feature extraction reads. Entries are valid for exactly one parser
  // instance (`cache_owner`); Parse clears the cache when handed a
  // workspace last used with a different parser. deque keeps overflow
  // entries (past the cap) pointer-stable within a record.
  uint64_t cache_owner = 0;
  std::unordered_map<std::string, LineCacheEntry, TransparentStringHash,
                     std::equal_to<>>
      line_cache;
  std::deque<LineCacheEntry> overflow;
  std::vector<const LineCacheEntry*> line_entries;  // per line, this record
  std::vector<const LineCacheEntry*> block;         // level-2 subset
  std::string key;
};

class WhoisParser {
 public:
  // Trains both CRF levels from labeled records.
  static WhoisParser Train(const std::vector<LabeledRecord>& records,
                           const WhoisParserOptions& options = {});

  // Re-trains from `records` (typically: the original training set plus a
  // handful of newly labeled failure cases), warm-starting from this
  // parser's weights (§5.3 maintainability workflow).
  WhoisParser Adapt(const std::vector<LabeledRecord>& records) const;

  // Parses one thick record: Viterbi-labels every line, then extracts
  // structured fields. Uses a thread-local workspace internally; the
  // overload below lets callers manage workspaces explicitly.
  ParsedWhois Parse(std::string_view record_text) const;

  // Fast-path Parse with caller-provided scratch. Field-identical output
  // (including log_prob, bit-for-bit) to Parse/ParseNaive.
  ParsedWhois Parse(std::string_view record_text, ParseWorkspace& ws) const;

  // The pre-workspace implementation, kept as a differential reference:
  // allocates per line and per record, runs full forward-backward, and
  // builds a fresh tagger per level-2 block. bench_parse_throughput
  // measures the fast path's speedup against it, and tests assert
  // equivalence.
  ParsedWhois ParseNaive(std::string_view record_text) const;

  // Parses many records on a thread pool, one workspace per chunk.
  // Results are in input order and identical to calling Parse on each.
  std::vector<ParsedWhois> ParseBatch(std::span<const std::string> records,
                                      util::ThreadPool& pool) const;

  // Level-1 labels only (used by the evaluation harness).
  std::vector<Level1Label> LabelLines(std::string_view record_text) const;

  // Level-2 labels for a list of registrant-block lines.
  std::vector<Level2Label> LabelRegistrantLines(
      const std::vector<std::string>& lines) const;

  // --- Persistence ------------------------------------------------------
  void Save(std::ostream& os) const;
  static WhoisParser Load(std::istream& is);
  void SaveFile(const std::string& path) const;
  static WhoisParser LoadFile(const std::string& path);

  const crf::CrfModel& level1_model() const { return *level1_; }
  const crf::CrfModel& level2_model() const { return *level2_; }
  const WhoisParserOptions& options() const { return options_; }

 private:
  WhoisParser(std::unique_ptr<crf::CrfModel> level1,
              std::unique_ptr<crf::CrfModel> level2,
              WhoisParserOptions options);

  // Models are heap-held so the parser stays cheaply movable.
  std::unique_ptr<crf::CrfModel> level1_;
  std::unique_ptr<crf::CrfModel> level2_;
  WhoisParserOptions options_;
  text::Tokenizer tokenizer_;
  // Identifies this parser to ParseWorkspace line caches; drawn from a
  // process-wide counter so ids are never reused.
  uint64_t instance_id_;

  // Registry metrics for the fast path (whoiscrf_parse_*, shared across
  // parser instances; see docs/observability.md). Resolved once at
  // construction so Parse pays only per-thread-sharded relaxed adds —
  // cache hit/miss counts accumulate in locals and flush once per record.
  struct ParseMetrics {
    obs::Counter* records = nullptr;
    obs::Counter* lines = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* workspace_cold = nullptr;
    obs::Histogram* latency_us = nullptr;
  };
  ParseMetrics metrics_;

  // Both levels' vocabularies merged into one attr -> (id, slot) table, so
  // compiling a cache-miss line probes one hash map per attribute instead
  // of two vocabularies plus two slot maps. -1 marks "not in this level".
  struct DualAttr {
    int id1 = -1, slot1 = -1;
    int id2 = -1, slot2 = -1;
  };
  std::unordered_map<std::string, DualAttr, TransparentStringHash,
                     std::equal_to<>>
      attr_map_;
};

// Field extraction from labeled lines (exposed for reuse by the baselines
// and tests): routes each line's value into the ParsedWhois struct
// according to its level-1 label and title keywords. `other_sub_labels`
// refines lines labeled `other` into the other-contact proxy fields; pass
// an empty vector to skip that refinement.
void ExtractFields(const std::vector<text::Line>& lines,
                   const std::vector<Level1Label>& labels,
                   const std::vector<Level2Label>& registrant_sub_labels,
                   ParsedWhois& out,
                   const std::vector<Level2Label>& other_sub_labels = {});

}  // namespace whoiscrf::whois
